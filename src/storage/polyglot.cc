#include "storage/polyglot.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace hygraph::storage {

namespace {

ts::HypertableOptions WithDefaultMetrics(ts::HypertableOptions options,
                                         obs::MetricsRegistry* registry) {
  if (options.metrics == nullptr) options.metrics = registry;
  return options;
}

Result<SeriesId> ResolveIn(const PolyglotStore::SeriesMap& map, uint64_t id,
                           const std::string& key) {
  auto it = map.find(PolyglotStore::EntityKey{id, key});
  if (it == map.end()) {
    return Status::NotFound("no series '" + key + "' on entity " +
                            std::to_string(id));
  }
  return it->second;
}

std::vector<std::string> KeysOf(const PolyglotStore::SeriesMap& map,
                                uint64_t id) {
  std::vector<std::string> keys;
  for (const auto& [entity_key, sid] : map) {
    (void)sid;
    if (entity_key.id == id) keys.push_back(entity_key.key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// An entity without a series under `key` behaves like an entity with an
// empty series, matching AllInGraphStore (whose generic property scan
// cannot distinguish the two). Aggregates over nothing fold the same way
// as AggState::Finalize on an empty range.
Result<double> EmptyAggregate(ts::AggKind kind) {
  if (kind == ts::AggKind::kCount) return 0.0;
  return Status::NotFound("aggregate over empty range");
}

// Resolves each entity's series under `key` and pre-fills the answer
// vector with EmptyAggregate placeholders; absent entities keep the
// placeholder (matching the single-entity overrides). Present entities are
// recorded as (series, output slot) pairs for the batch call.
std::vector<Result<double>> PlanAggregateBatch(
    const PolyglotStore::SeriesMap& map, const std::vector<uint64_t>& ids,
    const std::string& key, ts::AggKind kind, std::vector<SeriesId>* present,
    std::vector<size_t>* slot) {
  std::vector<Result<double>> out;
  out.reserve(ids.size());
  present->reserve(ids.size());
  slot->reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto sid = ResolveIn(map, ids[i], key);
    if (sid.ok()) {
      present->push_back(*sid);
      slot->push_back(i);
    }
    out.push_back(EmptyAggregate(kind));
  }
  return out;
}

// Runs the resolved series through the hypertable's batch aggregate (one
// morsel per series) and scatters the answers into their slots. A
// batch-wide failure (cancellation, deadline, budget) overwrites every
// slot; per-series errors come back inside the results themselves.
void ScatterAggregateBatch(const ts::HypertableStore& store,
                           const Interval& interval, ts::AggKind kind,
                           const std::vector<SeriesId>& present,
                           const std::vector<size_t>& slot,
                           std::vector<Result<double>>* out) {
  if (present.empty()) return;
  std::vector<Result<double>> results;
  const Status batch = store.AggregateMany(present, interval, kind, &results);
  if (!batch.ok()) {
    for (auto& r : *out) r = batch;
    return;
  }
  for (size_t i = 0; i < present.size(); ++i) {
    (*out)[slot[i]] = std::move(results[i]);
  }
}

query::BackendWork WorkFromStats(const ts::HypertableStats& stats) {
  query::BackendWork w;
  w.series_points_scanned = stats.samples_scanned;
  w.chunks_decoded = stats.chunks_decoded;
  w.chunks_cache_hits = stats.chunks_from_cache;
  w.chunks_zonemap_skipped = stats.chunks_zonemap_skipped;
  w.cold_chunks_loaded = stats.cold_pins;
  return w;
}

/// A pinned read view: the graph by refcount, the (entity, key) maps by
/// copy, and the hypertable by an O(series) fork whose chunk vectors are
/// shared until the origin writes. The fork shares the origin's registry,
/// so Work()/PROFILE attribution keeps working across a snapshot.
class PolyglotSnapshot final : public query::QueryBackend {
 public:
  PolyglotSnapshot(std::shared_ptr<const graph::PropertyGraph> graph,
                   PolyglotStore::SeriesMap vertex_series,
                   PolyglotStore::SeriesMap edge_series,
                   std::shared_ptr<const ts::HypertableStore> series)
      : graph_(std::move(graph)),
        vertex_series_(std::move(vertex_series)),
        edge_series_(std::move(edge_series)),
        series_(std::move(series)) {}

  std::string name() const override { return "polyglot"; }
  const graph::PropertyGraph& topology() const override { return *graph_; }
  graph::PropertyGraph* mutable_topology() override { return nullptr; }

  obs::MetricsRegistry* metrics() const override { return series_->metrics(); }
  query::BackendWork Work() const override {
    return WorkFromStats(series_->stats());
  }

  Status AppendVertexSample(graph::VertexId, const std::string&, Timestamp,
                            double) override {
    return Status::FailedPrecondition("snapshot is read-only");
  }
  Status AppendEdgeSample(graph::EdgeId, const std::string&, Timestamp,
                          double) override {
    return Status::FailedPrecondition("snapshot is read-only");
  }

  Result<ts::Series> VertexSeriesRange(
      graph::VertexId v, const std::string& key,
      const Interval& interval) const override {
    auto sid = ResolveIn(vertex_series_, v, key);
    if (!sid.ok()) return ts::Series(key);
    return series_->Materialize(*sid, interval);
  }
  Result<ts::Series> EdgeSeriesRange(graph::EdgeId e, const std::string& key,
                                     const Interval& interval) const override {
    auto sid = ResolveIn(edge_series_, e, key);
    if (!sid.ok()) return ts::Series(key);
    return series_->Materialize(*sid, interval);
  }

  Result<double> VertexSeriesAggregate(graph::VertexId v,
                                       const std::string& key,
                                       const Interval& interval,
                                       ts::AggKind kind) const override {
    auto sid = ResolveIn(vertex_series_, v, key);
    if (!sid.ok()) return EmptyAggregate(kind);
    return series_->Aggregate(*sid, interval, kind);
  }
  Result<double> EdgeSeriesAggregate(graph::EdgeId e, const std::string& key,
                                     const Interval& interval,
                                     ts::AggKind kind) const override {
    auto sid = ResolveIn(edge_series_, e, key);
    if (!sid.ok()) return EmptyAggregate(kind);
    return series_->Aggregate(*sid, interval, kind);
  }

  std::vector<Result<double>> VertexSeriesAggregateBatch(
      const std::vector<graph::VertexId>& vertices, const std::string& key,
      const Interval& interval, ts::AggKind kind) const override {
    std::vector<SeriesId> present;
    std::vector<size_t> slot;
    auto out = PlanAggregateBatch(vertex_series_, vertices, key, kind,
                                  &present, &slot);
    ScatterAggregateBatch(*series_, interval, kind, present, slot, &out);
    return out;
  }
  std::vector<Result<double>> EdgeSeriesAggregateBatch(
      const std::vector<graph::EdgeId>& edges, const std::string& key,
      const Interval& interval, ts::AggKind kind) const override {
    std::vector<SeriesId> present;
    std::vector<size_t> slot;
    auto out = PlanAggregateBatch(edge_series_, edges, key, kind, &present,
                                  &slot);
    ScatterAggregateBatch(*series_, interval, kind, present, slot, &out);
    return out;
  }

  Result<ts::Series> VertexSeriesWindowAggregate(
      graph::VertexId v, const std::string& key, const Interval& interval,
      Duration width, ts::AggKind kind) const override {
    auto sid = ResolveIn(vertex_series_, v, key);
    if (!sid.ok()) return ts::Series(key);
    return series_->WindowAggregate(*sid, interval, width, kind);
  }
  Result<ts::Series> EdgeSeriesWindowAggregate(
      graph::EdgeId e, const std::string& key, const Interval& interval,
      Duration width, ts::AggKind kind) const override {
    auto sid = ResolveIn(edge_series_, e, key);
    if (!sid.ok()) return ts::Series(key);
    return series_->WindowAggregate(*sid, interval, width, kind);
  }

  Result<size_t> VertexSeriesCountInRange(graph::VertexId v,
                                          const std::string& key,
                                          const Interval& interval,
                                          double min_value,
                                          double max_value) const override {
    auto sid = ResolveIn(vertex_series_, v, key);
    if (!sid.ok()) return size_t{0};
    return series_->CountMatching(*sid, interval,
                                  ts::ScanPredicate{min_value, max_value});
  }
  Result<size_t> EdgeSeriesCountInRange(graph::EdgeId e,
                                        const std::string& key,
                                        const Interval& interval,
                                        double min_value,
                                        double max_value) const override {
    auto sid = ResolveIn(edge_series_, e, key);
    if (!sid.ok()) return size_t{0};
    return series_->CountMatching(*sid, interval,
                                  ts::ScanPredicate{min_value, max_value});
  }

  std::vector<std::string> VertexSeriesKeys(graph::VertexId v) const override {
    return KeysOf(vertex_series_, v);
  }
  std::vector<std::string> EdgeSeriesKeys(graph::EdgeId e) const override {
    return KeysOf(edge_series_, e);
  }

 private:
  std::shared_ptr<const graph::PropertyGraph> graph_;
  const PolyglotStore::SeriesMap vertex_series_;
  const PolyglotStore::SeriesMap edge_series_;
  std::shared_ptr<const ts::HypertableStore> series_;
};

}  // namespace

PolyglotStore::PolyglotStore(ts::HypertableOptions ts_options)
    : graph_(std::make_shared<graph::PropertyGraph>()),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      series_(WithDefaultMetrics(std::move(ts_options), metrics_.get())),
      topology_cow_copies_(
          series_.metrics()->counter("concurrency.topology_cow_copies")),
      sync_(SyncInstruments::ForRegistry(series_.metrics())),
      store_mu_(std::make_unique<SharedMutex>(LockRank::kStoreCoarse, sync_)) {
}

query::BackendWork PolyglotStore::Work() const {
  return WorkFromStats(series_.stats());
}

const graph::PropertyGraph& PolyglotStore::topology() const {
  SharedLock lock(*store_mu_);
  return *graph_;  // reference outlives the guard; see header contract
}

graph::PropertyGraph* PolyglotStore::Detach() {
  if (graph_.use_count() > 1) {
    graph_ = std::make_shared<graph::PropertyGraph>(*graph_);
    topology_cow_copies_->Increment();
  }
  return graph_.get();
}

graph::PropertyGraph* PolyglotStore::mutable_topology() {
  ExclusiveLock lock(*store_mu_);
  return Detach();
}

Status PolyglotStore::MutateTopology(
    const std::function<Status(graph::PropertyGraph*)>& fn) {
  ExclusiveLock lock(*store_mu_);
  return fn(Detach());
}

std::shared_ptr<const query::QueryBackend> PolyglotStore::BeginSnapshot()
    const {
  // Series creation takes the exclusive guard, so under the shared guard
  // the maps and the hypertable's series set cannot drift apart; the fork
  // itself pins each series' chunk vector under that series' shard lock.
  SharedLock lock(*store_mu_);
  return std::make_shared<PolyglotSnapshot>(graph_, vertex_series_,
                                            edge_series_, series_.Fork());
}

Result<SeriesId> PolyglotStore::ResolveLocked(bool vertex, uint64_t id,
                                              const std::string& key) const {
  SharedLock lock(*store_mu_);
  return ResolveIn(vertex ? vertex_series_ : edge_series_, id, key);
}

SeriesId PolyglotStore::ResolveOrCreate(SeriesMap* map, uint64_t id,
                                        const std::string& key,
                                        const char* scope) {
  auto it = map->find(EntityKey{id, key});
  if (it != map->end()) return it->second;
  // The slot-name contract (query::SeriesSlotName) is what lets the cold
  // tier's catalog map persisted series back to (entity, key) on recovery.
  const SeriesId sid =
      series_.Create(query::SeriesSlotName(scope[0] == 'v', id, key));
  map->emplace(EntityKey{id, key}, sid);
  return sid;
}

Result<SeriesId> PolyglotStore::EnsureSeries(bool vertex, uint64_t entity,
                                             const std::string& key) {
  ExclusiveLock lock(*store_mu_);
  return ResolveOrCreate(vertex ? &vertex_series_ : &edge_series_, entity, key,
                         vertex ? "v" : "e");
}

Status PolyglotStore::AppendVertexSample(graph::VertexId v,
                                         const std::string& key, Timestamp t,
                                         double value) {
  SeriesId sid = 0;
  bool found = false;
  {
    // Fast path: existing series resolve under the shared guard, so
    // steady-state ingest on different series runs concurrently.
    SharedLock lock(*store_mu_);
    if (!graph_->HasVertex(v)) {
      return Status::NotFound("no vertex with id " + std::to_string(v));
    }
    auto it = vertex_series_.find(EntityKey{v, key});
    if (it != vertex_series_.end()) {
      sid = it->second;
      found = true;
    }
  }
  if (!found) {
    ExclusiveLock lock(*store_mu_);
    if (!graph_->HasVertex(v)) {  // recheck: guard was dropped
      return Status::NotFound("no vertex with id " + std::to_string(v));
    }
    sid = ResolveOrCreate(&vertex_series_, v, key, "v");
  }
  return series_.Insert(sid, t, value);
}

Status PolyglotStore::AppendEdgeSample(graph::EdgeId e, const std::string& key,
                                       Timestamp t, double value) {
  SeriesId sid = 0;
  bool found = false;
  {
    SharedLock lock(*store_mu_);
    if (!graph_->HasEdge(e)) {
      return Status::NotFound("no edge with id " + std::to_string(e));
    }
    auto it = edge_series_.find(EntityKey{e, key});
    if (it != edge_series_.end()) {
      sid = it->second;
      found = true;
    }
  }
  if (!found) {
    ExclusiveLock lock(*store_mu_);
    if (!graph_->HasEdge(e)) {  // recheck: guard was dropped
      return Status::NotFound("no edge with id " + std::to_string(e));
    }
    sid = ResolveOrCreate(&edge_series_, e, key, "e");
  }
  return series_.Insert(sid, t, value);
}

std::vector<std::string> PolyglotStore::VertexSeriesKeys(
    graph::VertexId v) const {
  SharedLock lock(*store_mu_);
  return KeysOf(vertex_series_, v);
}

std::vector<std::string> PolyglotStore::EdgeSeriesKeys(graph::EdgeId e) const {
  SharedLock lock(*store_mu_);
  return KeysOf(edge_series_, e);
}

Result<ts::Series> PolyglotStore::VertexSeriesRange(
    graph::VertexId v, const std::string& key,
    const Interval& interval) const {
  auto sid = ResolveLocked(/*vertex=*/true, v, key);
  if (!sid.ok()) return ts::Series(key);
  return series_.Materialize(*sid, interval);
}

Result<ts::Series> PolyglotStore::EdgeSeriesRange(
    graph::EdgeId e, const std::string& key, const Interval& interval) const {
  auto sid = ResolveLocked(/*vertex=*/false, e, key);
  if (!sid.ok()) return ts::Series(key);
  return series_.Materialize(*sid, interval);
}

Result<double> PolyglotStore::VertexSeriesAggregate(graph::VertexId v,
                                                    const std::string& key,
                                                    const Interval& interval,
                                                    ts::AggKind kind) const {
  auto sid = ResolveLocked(/*vertex=*/true, v, key);
  if (!sid.ok()) return EmptyAggregate(kind);
  return series_.Aggregate(*sid, interval, kind);
}

Result<double> PolyglotStore::EdgeSeriesAggregate(graph::EdgeId e,
                                                  const std::string& key,
                                                  const Interval& interval,
                                                  ts::AggKind kind) const {
  auto sid = ResolveLocked(/*vertex=*/false, e, key);
  if (!sid.ok()) return EmptyAggregate(kind);
  return series_.Aggregate(*sid, interval, kind);
}

std::vector<Result<double>> PolyglotStore::VertexSeriesAggregateBatch(
    const std::vector<graph::VertexId>& vertices, const std::string& key,
    const Interval& interval, ts::AggKind kind) const {
  std::vector<SeriesId> present;
  std::vector<size_t> slot;
  std::vector<Result<double>> out;
  {
    // Resolve under one brief shared hold instead of per-entity locking;
    // the aggregate itself runs unlocked against the per-series shards.
    SharedLock lock(*store_mu_);
    out = PlanAggregateBatch(vertex_series_, vertices, key, kind, &present,
                             &slot);
  }
  ScatterAggregateBatch(series_, interval, kind, present, slot, &out);
  return out;
}

std::vector<Result<double>> PolyglotStore::EdgeSeriesAggregateBatch(
    const std::vector<graph::EdgeId>& edges, const std::string& key,
    const Interval& interval, ts::AggKind kind) const {
  std::vector<SeriesId> present;
  std::vector<size_t> slot;
  std::vector<Result<double>> out;
  {
    SharedLock lock(*store_mu_);
    out = PlanAggregateBatch(edge_series_, edges, key, kind, &present, &slot);
  }
  ScatterAggregateBatch(series_, interval, kind, present, slot, &out);
  return out;
}

Result<size_t> PolyglotStore::VertexSeriesCountInRange(
    graph::VertexId v, const std::string& key, const Interval& interval,
    double min_value, double max_value) const {
  auto sid = ResolveLocked(/*vertex=*/true, v, key);
  if (!sid.ok()) return size_t{0};  // missing series counts like an empty one
  return series_.CountMatching(*sid, interval,
                               ts::ScanPredicate{min_value, max_value});
}

Result<size_t> PolyglotStore::EdgeSeriesCountInRange(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    double min_value, double max_value) const {
  auto sid = ResolveLocked(/*vertex=*/false, e, key);
  if (!sid.ok()) return size_t{0};
  return series_.CountMatching(*sid, interval,
                               ts::ScanPredicate{min_value, max_value});
}

Result<ts::Series> PolyglotStore::VertexSeriesWindowAggregate(
    graph::VertexId v, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto sid = ResolveLocked(/*vertex=*/true, v, key);
  if (!sid.ok()) return ts::Series(key);
  return series_.WindowAggregate(*sid, interval, width, kind);
}

Result<ts::Series> PolyglotStore::EdgeSeriesWindowAggregate(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto sid = ResolveLocked(/*vertex=*/false, e, key);
  if (!sid.ok()) return ts::Series(key);
  return series_.WindowAggregate(*sid, interval, width, kind);
}

}  // namespace hygraph::storage
