#ifndef HYGRAPH_STORAGE_ENV_H_
#define HYGRAPH_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace hygraph::storage {

/// A sequential output file. Append buffers into the OS, Sync makes the
/// appended bytes durable (fsync), Close flushes and releases the handle.
/// Data that was appended but never synced may be lost on a crash — the
/// FaultInjectionEnv models exactly that window.
///
/// Concurrency contract: implementations must tolerate ONE Sync() running
/// concurrently with Append() calls (the group-commit leader fsyncs the
/// WAL while other writers keep appending — DurableStore::SyncWal).
/// Bytes appended while such a Sync is in flight are not covered by it.
/// Close() is never concurrent with either (rotation drains the in-flight
/// sync first).
class WritableFile {
 public:
  virtual ~WritableFile();

  virtual Status Append(const std::string& data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The filesystem abstraction the durability layer runs on (RocksDB-style).
/// Production code uses Env::Default() (POSIX); crash-consistency tests
/// substitute a FaultInjectionEnv that can fail or truncate at a chosen
/// operation count. Every durable artifact — WAL, snapshots — goes through
/// this interface so the fault matrix covers all of them.
class Env {
 public:
  virtual ~Env();

  /// The process-wide POSIX environment (never deleted).
  static Env* Default();

  /// Creates (or truncates) `path` for sequential writing.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) = 0;
  /// Reads the entire file into `*out`. NotFound when absent.
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;
  /// Reads `length` bytes at `offset` into `*out`. OutOfRange when the file
  /// ends before `offset + length` (a torn or truncated record). The default
  /// implementation reads the whole file through ReadFileToString and
  /// slices, so fault-injection wrappers inherit correct crash semantics;
  /// Env::Default() overrides it with a positioned read.
  virtual Status ReadFileRange(const std::string& path, uint64_t offset,
                               uint64_t length, std::string* out);
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Truncates `path` to `size` bytes (used by WAL tail repair).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Status CreateDirIfMissing(const std::string& path) = 0;
  /// Plain entry names (no "."/".."), unsorted.
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* out) = 0;
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_ENV_H_
