#ifndef HYGRAPH_STORAGE_ALL_IN_GRAPH_H_
#define HYGRAPH_STORAGE_ALL_IN_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "query/backend.h"

namespace hygraph::storage {

/// The "All-in-graph Storage" architecture of Figure 1 (the red path) —
/// a simulation of the paper's Neo4j configuration, where "each timestamp
/// and its corresponding value are stored as separate properties" of the
/// owning vertex or edge.
///
/// A sample (key, t, v) becomes the property entry
///
///   "__ts__<key>__<zero-padded t>" -> v
///
/// in the entity's ordinary property map. Because the property map is a
/// generic key→value dictionary, every series read must enumerate the
/// entity's *entire* property map, string-match the prefix, and parse the
/// timestamp out of each key — exactly the access pattern that makes the
/// paper's Neo4j baseline collapse on aggregation-heavy queries (Table 1,
/// Q4–Q8) and that inflates write amplification (one property write per
/// sample into an ever-growing map).
///
/// The store intentionally does NOT exploit the lexicographic ordering of
/// the zero-padded encoding: a generic property store has no schema
/// knowledge that this key family encodes a time axis. This mirrors how the
/// paper's Neo4j queries had to "manually handle time series data stored as
/// properties".
///
/// Thread safety (DESIGN.md §10): the whole store sits behind one
/// reader-writer guard. Series reads and BeginSnapshot() take it shared;
/// Append*Sample and MutateTopology take it exclusive and copy-on-write
/// detach the graph when a snapshot has it pinned, so pinned views stay
/// immutable. topology() and mutable_topology() hand out references that
/// outlive the guard — they are safe only single-threaded or against a
/// pinned snapshot; concurrent code must use BeginSnapshot()/
/// MutateTopology().
class AllInGraphStore final : public query::QueryBackend {
 public:
  AllInGraphStore();

  std::string name() const override { return "all-in-graph"; }
  const graph::PropertyGraph& topology() const override;

  /// Single-threaded bulk-load escape hatch: detaches any pinned snapshot,
  /// then returns the live graph. The returned pointer is used outside the
  /// store's guard — do not call concurrently with anything else.
  graph::PropertyGraph* mutable_topology() override;

  /// Runs `fn` under the store's exclusive guard after a copy-on-write
  /// detach — the concurrency-safe mutation path.
  Status MutateTopology(
      const std::function<Status(graph::PropertyGraph*)>& fn) override;

  /// Pins the current graph as an immutable read view (O(1): bumps a
  /// refcount). Mutators afterwards detach onto a fresh copy.
  std::shared_ptr<const query::QueryBackend> BeginSnapshot() const override;

  /// "allingraph.*" work counters: properties examined and samples parsed
  /// by the full-property-map scans — the cost Table 1 measures.
  obs::MetricsRegistry* metrics() const override { return metrics_.get(); }
  query::BackendWork Work() const override;

  Status AppendVertexSample(graph::VertexId v, const std::string& key,
                            Timestamp t, double value) override;
  Status AppendEdgeSample(graph::EdgeId e, const std::string& key,
                          Timestamp t, double value) override;

  Result<ts::Series> VertexSeriesRange(graph::VertexId v,
                                       const std::string& key,
                                       const Interval& interval) const override;
  Result<ts::Series> EdgeSeriesRange(graph::EdgeId e, const std::string& key,
                                     const Interval& interval) const override;

  /// Series keys reconstructed by scanning the property map for the sample
  /// prefix — the only way a generic property store can know them.
  std::vector<std::string> VertexSeriesKeys(graph::VertexId v) const override;
  std::vector<std::string> EdgeSeriesKeys(graph::EdgeId e) const override;

  /// Samples ARE properties here: persisting the topology persists them.
  bool SeriesEmbeddedInTopology() const override { return true; }

  /// Encodes / decodes the property-key representation of one sample
  /// (exposed for tests).
  static std::string EncodeSampleKey(const std::string& key, Timestamp t);
  static bool DecodeSampleKey(const std::string& property_key,
                              const std::string& key, Timestamp* t);

 private:
  /// Copy-on-write detach; call under exclusive topo_mu_. When a snapshot
  /// has the graph pinned, replaces it with a private copy so the pinned
  /// view keeps the pre-mutation state.
  graph::PropertyGraph* Detach() HYGRAPH_REQUIRES(*topo_mu_);

  std::shared_ptr<graph::PropertyGraph> graph_ HYGRAPH_GUARDED_BY(*topo_mu_);
  // Heap-held so the cached counter pointers survive moves of the store.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* properties_scanned_ = nullptr;
  obs::Counter* samples_parsed_ = nullptr;
  obs::Counter* snapshot_pins_ = nullptr;
  obs::Counter* topology_cow_copies_ = nullptr;
  SyncInstruments sync_;
  // Heap-held: SharedMutex is not movable, the store is. Rank kStoreCoarse.
  std::unique_ptr<SharedMutex> topo_mu_;
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_ALL_IN_GRAPH_H_
