#include "storage/env.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace hygraph::storage {

WritableFile::~WritableFile() = default;
Env::~Env() = default;

Status Env::ReadFileRange(const std::string& path, uint64_t offset,
                          uint64_t length, std::string* out) {
  std::string whole;
  Status s = ReadFileToString(path, &whole);
  if (!s.ok()) return s;
  if (offset > whole.size() || whole.size() - offset < length) {
    return Status::OutOfRange("short read " + path + ": file has " +
                              std::to_string(whole.size()) + " bytes");
  }
  out->assign(whole, offset, length);
  return Status::OK();
}

namespace {

Status ErrnoStatus(const std::string& context, int err) {
  return Status::IOError(context + ": " + std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const std::string& data) override {
    if (file_ == nullptr) return Status::IOError(path_ + ": file is closed");
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write " + path_, errno);
    }
    // The contract says appended bytes live in the OS (visible to any
    // reader, lost only on power failure) — stdio's userspace buffer
    // would hide a just-spilled segment frame from a positioned read
    // until the next Sync, so hand the bytes to the kernel here.
    if (std::fflush(file_) != 0) return ErrnoStatus("flush " + path_, errno);
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::IOError(path_ + ": file is closed");
    if (std::fflush(file_) != 0) return ErrnoStatus("flush " + path_, errno);
    if (::fsync(::fileno(file_)) != 0) {
      return ErrnoStatus("fsync " + path_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* file = file_;
    file_ = nullptr;
    if (std::fclose(file) != 0) return ErrnoStatus("close " + path_, errno);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return ErrnoStatus("open " + path, errno);
    *file = std::make_unique<PosixWritableFile>(f, path);
    return Status::OK();
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("open " + path, errno);
    }
    out->clear();
    char buffer[1 << 16];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      out->append(buffer, n);
    }
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) return Status::IOError("read " + path + " failed");
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status ReadFileRange(const std::string& path, uint64_t offset,
                       uint64_t length, std::string* out) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("open " + path, errno);
    }
    out->clear();
    out->resize(length);
    size_t got = 0;
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
      got = std::fread(out->data(), 1, length, f);
    }
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) return Status::IOError("read " + path + " failed");
    if (got != length) {
      return Status::OutOfRange("short read " + path + " at offset " +
                                std::to_string(offset));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return ErrnoStatus("remove " + path, errno);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate " + path, errno);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return ErrnoStatus("mkdir " + path, errno);
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* out) override {
    out->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir " + dir, errno);
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      out->push_back(name);
    }
    ::closedir(d);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env =
      new PosixEnv();  // NOLINT(hygraph-naked-new): leaked singleton
  return env;
}

}  // namespace hygraph::storage
