#ifndef HYGRAPH_STORAGE_POLYGLOT_H_
#define HYGRAPH_STORAGE_POLYGLOT_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "common/sync.h"
#include "query/backend.h"
#include "ts/hypertable.h"

namespace hygraph::storage {

/// The "Polyglot persistence" architecture of Figure 1 (the green path) —
/// a simulation of the paper's TimeTravelDB prototype (Neo4j +
/// TimescaleDB): topology, labels and static properties live in a property
/// graph; every series lives in a chunked hypertable, joined to its owning
/// vertex/edge by an internal (entity, key) → SeriesId mapping.
///
/// Series reads prune to the chunks overlapping the requested range, and
/// range aggregates combine cached per-chunk partials — which is why this
/// engine wins Table 1's aggregation-heavy queries by orders of magnitude.
/// The small per-query cost of resolving the cross-store mapping is the
/// polyglot glue overhead that makes TTDB slightly *slower* than Neo4j on
/// the trivial Q1.
///
/// Thread safety (DESIGN.md §10): the graph and the (entity, key) maps sit
/// behind one coarse reader-writer guard, held only while touching them —
/// sample data is read and written through the hypertable's own per-series
/// locks, so ingest on one series never blocks scans of another. Series
/// creation requires the exclusive guard; BeginSnapshot() therefore pins a
/// consistent (graph, maps, hypertable fork) triple under the shared
/// guard. topology()/mutable_topology() hand out references that outlive
/// the guard — single-threaded use only; concurrent code goes through
/// BeginSnapshot()/MutateTopology().
class PolyglotStore final : public query::QueryBackend {
 public:
  explicit PolyglotStore(ts::HypertableOptions ts_options = {});

  std::string name() const override { return "polyglot"; }
  const graph::PropertyGraph& topology() const override;

  /// Single-threaded bulk-load escape hatch; see AllInGraphStore.
  graph::PropertyGraph* mutable_topology() override;

  /// Runs `fn` under the store's exclusive guard after a copy-on-write
  /// detach — the concurrency-safe mutation path.
  Status MutateTopology(
      const std::function<Status(graph::PropertyGraph*)>& fn) override;

  /// Pins graph + series maps + an O(series) hypertable fork as one
  /// consistent immutable view.
  std::shared_ptr<const query::QueryBackend> BeginSnapshot() const override;

  /// One registry for the whole backend; the embedded hypertable's
  /// "hypertable.*" instruments live in it too (unless the caller injected
  /// a registry of their own via HypertableOptions::metrics).
  obs::MetricsRegistry* metrics() const override { return series_.metrics(); }
  query::BackendWork Work() const override;

  Status AppendVertexSample(graph::VertexId v, const std::string& key,
                            Timestamp t, double value) override;
  Status AppendEdgeSample(graph::EdgeId e, const std::string& key,
                          Timestamp t, double value) override;

  Result<ts::Series> VertexSeriesRange(graph::VertexId v,
                                       const std::string& key,
                                       const Interval& interval) const override;
  Result<ts::Series> EdgeSeriesRange(graph::EdgeId e, const std::string& key,
                                     const Interval& interval) const override;

  /// Native aggregation: answered by the hypertable's chunk-pruned,
  /// cache-assisted aggregate instead of materializing the range.
  Result<double> VertexSeriesAggregate(graph::VertexId v,
                                       const std::string& key,
                                       const Interval& interval,
                                       ts::AggKind kind) const override;
  Result<double> EdgeSeriesAggregate(graph::EdgeId e, const std::string& key,
                                     const Interval& interval,
                                     ts::AggKind kind) const override;

  /// Batch aggregates fan out across the worker pool — one morsel per
  /// series via HypertableStore::AggregateMany (the multi-entity Table 1
  /// query shape: one aggregate per matched station/account).
  std::vector<Result<double>> VertexSeriesAggregateBatch(
      const std::vector<graph::VertexId>& vertices, const std::string& key,
      const Interval& interval, ts::AggKind kind) const override;
  std::vector<Result<double>> EdgeSeriesAggregateBatch(
      const std::vector<graph::EdgeId>& edges, const std::string& key,
      const Interval& interval, ts::AggKind kind) const override;

  /// Native tumbling windows: the hypertable's single-pass time_bucket,
  /// chunk-cache assisted when windows align with chunks.
  Result<ts::Series> VertexSeriesWindowAggregate(
      graph::VertexId v, const std::string& key, const Interval& interval,
      Duration width, ts::AggKind kind) const override;
  Result<ts::Series> EdgeSeriesWindowAggregate(
      graph::EdgeId e, const std::string& key, const Interval& interval,
      Duration width, ts::AggKind kind) const override;

  /// Pushed-down series predicate: answered by the hypertable's
  /// zone-map-assisted CountMatching, which skips (or counts) whole
  /// compressed chunks without decoding them.
  Result<size_t> VertexSeriesCountInRange(graph::VertexId v,
                                          const std::string& key,
                                          const Interval& interval,
                                          double min_value,
                                          double max_value) const override;
  Result<size_t> EdgeSeriesCountInRange(graph::EdgeId e,
                                        const std::string& key,
                                        const Interval& interval,
                                        double min_value,
                                        double max_value) const override;

  /// Series keys come straight from the (entity, key) → SeriesId mapping —
  /// the polyglot glue knows its schema, unlike the all-in-graph layout.
  std::vector<std::string> VertexSeriesKeys(graph::VertexId v) const override;
  std::vector<std::string> EdgeSeriesKeys(graph::EdgeId e) const override;

  /// Sample-data footprint of the underlying hypertable (hot vectors vs
  /// sealed compressed bytes).
  ts::HypertableMemory SeriesMemoryUsage() const {
    return series_.MemoryUsage();
  }

  /// The underlying time-series store (work counters for tests/benches).
  const ts::HypertableStore& series_store() const { return series_; }
  ts::HypertableStore* mutable_series_store() { return &series_; }

  /// Storage tiering hooks (see query/backend.h): the durability layer
  /// spills this hypertable's sealed chunks cold at checkpoint and
  /// re-binds catalogued chunks through EnsureSeries on recovery.
  ts::HypertableStore* series_hypertable() override { return &series_; }
  Result<SeriesId> EnsureSeries(bool vertex, uint64_t entity,
                                const std::string& key) override;

  // Cross-store glue types. Internal, but public so the pinned snapshot
  // implementation (file-local in polyglot.cc) can hold map copies.
  struct EntityKey {
    uint64_t id;
    std::string key;
    bool operator==(const EntityKey&) const = default;
  };
  struct EntityKeyHash {
    size_t operator()(const EntityKey& k) const {
      return std::hash<uint64_t>()(k.id) * 1315423911u ^
             std::hash<std::string>()(k.key);
    }
  };
  using SeriesMap = std::unordered_map<EntityKey, SeriesId, EntityKeyHash>;

 private:
  /// Looks (id, key) up in the vertex or edge series map under a shared
  /// hold of the guard (a selector rather than a map reference so callers
  /// never touch the guarded maps outside the lock).
  Result<SeriesId> ResolveLocked(bool vertex, uint64_t id,
                                 const std::string& key) const;
  /// Creates the hypertable series on first use; call under the exclusive
  /// guard.
  SeriesId ResolveOrCreate(SeriesMap* map, uint64_t id, const std::string& key,
                           const char* scope) HYGRAPH_REQUIRES(*store_mu_);
  /// Copy-on-write detach of the graph; call under the exclusive guard.
  graph::PropertyGraph* Detach() HYGRAPH_REQUIRES(*store_mu_);

  std::shared_ptr<graph::PropertyGraph> graph_ HYGRAPH_GUARDED_BY(*store_mu_);
  // Declared before series_ so the hypertable can adopt it at
  // construction (when the caller did not inject a registry of their own).
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  ts::HypertableStore series_;
  SeriesMap vertex_series_ HYGRAPH_GUARDED_BY(*store_mu_);
  SeriesMap edge_series_ HYGRAPH_GUARDED_BY(*store_mu_);
  // "concurrency.snapshot_pins" is incremented by series_.Fork() on the
  // shared registry — one pin event per snapshot, not counted twice here.
  obs::Counter* topology_cow_copies_ = nullptr;
  SyncInstruments sync_;
  // Heap-held: SharedMutex is not movable, the store is. Rank kStoreCoarse.
  std::unique_ptr<SharedMutex> store_mu_;
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_POLYGLOT_H_
