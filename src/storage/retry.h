#ifndef HYGRAPH_STORAGE_RETRY_H_
#define HYGRAPH_STORAGE_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace hygraph::storage {

/// Knobs for RetryPolicy. The defaults (4 attempts, 1 ms base doubling to a
/// 50 ms cap) bound the worst-case stall of one mutation to well under a
/// second while still riding out short I/O hiccups.
struct RetryOptions {
  /// Total attempts including the first one. 1 disables retrying.
  int max_attempts = 4;
  /// Backoff before the first retry; doubles per subsequent retry.
  uint64_t base_backoff_nanos = 1'000'000;  // 1 ms
  /// Upper bound applied after doubling.
  uint64_t max_backoff_nanos = 50'000'000;  // 50 ms
  /// When true, each backoff is half fixed + half uniform-random, which
  /// de-synchronizes callers that fail together ("thundering herd").
  bool jitter = true;
  /// Seed for the jitter stream; fixed seed => fully deterministic delays.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Capped exponential backoff around transient I/O failures. The ONLY
/// sanctioned retry loop around Env / WritableFile calls — the
/// hygraph-raw-sleep lint rule rejects hand-rolled sleeps elsewhere, so all
/// backoff behavior stays tunable and testable in one place.
///
/// Determinism: delays are computed from a seeded common/rng stream, and
/// the sleep itself is injectable. Tests pass a SleepFn that advances an
/// obs::ManualClock (or just records the delay) instead of stalling the
/// process, making retry schedules exactly reproducible.
///
/// What is retryable: kIOError only — the Env contract says the operation
/// did not take effect durably but may succeed later. Corruption, invalid
/// arguments, and the governance codes are terminal for the wrapped op.
class RetryPolicy {
 public:
  /// Receives the backoff duration before each retry. The default sleeps
  /// for real (the lint-sanctioned home of the only raw sleep in src/).
  using SleepFn = std::function<void(uint64_t nanos)>;

  explicit RetryPolicy(RetryOptions options, SleepFn sleep = nullptr);

  /// Runs `op` up to max_attempts times, sleeping BackoffNanos(i) between
  /// attempts while the failure is retryable. Returns the first success or
  /// the LAST error observed (so callers see what actually went wrong, not
  /// a generic "retries exhausted"). Each retry increments `retries` when
  /// one is supplied.
  Status Run(const std::function<Status()>& op,
             obs::Counter* retries = nullptr);

  /// True when `s` is worth retrying (currently: kIOError).
  static bool IsRetryable(const Status& s) {
    return s.code() == StatusCode::kIOError;
  }

  /// The delay before retry number `retry` (0-based): min(cap, base << retry),
  /// jittered to [d/2, d) when enabled. Exposed for tests and benches.
  uint64_t BackoffNanos(int retry);

 private:
  RetryOptions options_;
  SleepFn sleep_;
  Rng rng_;
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_RETRY_H_
