#include "storage/all_in_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>

namespace hygraph::storage {

namespace {
constexpr char kPrefix[] = "__ts__";
// The sign-offset value spans the full uint64 range, whose decimal form
// needs up to 20 digits.
constexpr size_t kTimestampDigits = 20;
}  // namespace

AllInGraphStore::AllInGraphStore()
    : metrics_(std::make_unique<obs::MetricsRegistry>()),
      properties_scanned_(metrics_->counter("allingraph.properties_scanned")),
      samples_parsed_(metrics_->counter("allingraph.samples_parsed")) {}

query::BackendWork AllInGraphStore::Work() const {
  query::BackendWork w;
  w.properties_scanned = properties_scanned_->value();
  w.series_points_scanned = samples_parsed_->value();
  return w;
}

std::string AllInGraphStore::EncodeSampleKey(const std::string& key,
                                             Timestamp t) {
  char digits[kTimestampDigits + 1];
  // Negative timestamps are offset so the textual form stays fixed-width;
  // generators use the Unix epoch onwards, so this is a corner-case guard.
  unsigned long long shifted =
      static_cast<unsigned long long>(t) + (1ULL << 63);
  std::snprintf(digits, sizeof(digits), "%020llu", shifted);
  return std::string(kPrefix) + key + "__" + digits;
}

bool AllInGraphStore::DecodeSampleKey(const std::string& property_key,
                                      const std::string& key, Timestamp* t) {
  const std::string expected = std::string(kPrefix) + key + "__";
  if (property_key.size() != expected.size() + kTimestampDigits) return false;
  if (property_key.compare(0, expected.size(), expected) != 0) return false;
  const char* digits = property_key.c_str() + expected.size();
  char* end = nullptr;
  const unsigned long long shifted = std::strtoull(digits, &end, 10);
  if (end != digits + kTimestampDigits) return false;
  *t = static_cast<Timestamp>(shifted - (1ULL << 63));
  return true;
}

Status AllInGraphStore::AppendVertexSample(graph::VertexId v,
                                           const std::string& key,
                                           Timestamp t, double value) {
  return graph_.SetVertexProperty(v, EncodeSampleKey(key, t), Value(value));
}

Status AllInGraphStore::AppendEdgeSample(graph::EdgeId e,
                                         const std::string& key, Timestamp t,
                                         double value) {
  return graph_.SetEdgeProperty(e, EncodeSampleKey(key, t), Value(value));
}

Result<ts::Series> AllInGraphStore::ScanProperties(
    const graph::PropertyMap& props, const std::string& key,
    const Interval& interval) const {
  // The generic-property-store access path: enumerate every property of the
  // entity, match the prefix textually, parse the timestamp, filter. No
  // index, no ordering assumption — this is what Table 1 measures.
  std::vector<ts::Sample> samples;
  properties_scanned_->Add(props.size());
  for (const auto& [property_key, value] : props) {
    Timestamp t = 0;
    if (!DecodeSampleKey(property_key, key, &t)) continue;
    if (!interval.Contains(t)) continue;
    auto d = value.ToDouble();
    if (!d.ok()) {
      return Status::Corruption("sample property '" + property_key +
                                "' is not numeric");
    }
    samples.push_back(ts::Sample{t, *d});
  }
  samples_parsed_->Add(samples.size());
  std::sort(samples.begin(), samples.end(),
            [](const ts::Sample& a, const ts::Sample& b) { return a.t < b.t; });
  ts::Series out(key);
  for (const ts::Sample& s : samples) {
    HYGRAPH_RETURN_IF_ERROR(out.Append(s.t, s.value));
  }
  return out;
}

namespace {

// Extracts the distinct series keys embedded in sample property names:
// "__ts__<key>__<20 digits>" → <key>. Keys containing "__<digit>" can make
// different keys' samples interleave in the sorted map, so dedup goes
// through a set rather than relying on adjacency.
std::vector<std::string> ScanSeriesKeys(const graph::PropertyMap& props) {
  std::set<std::string> keys;
  const size_t prefix_len = sizeof(kPrefix) - 1;
  for (const auto& [property_key, value] : props) {
    (void)value;
    if (property_key.size() < prefix_len + 2 + kTimestampDigits) continue;
    if (property_key.compare(0, prefix_len, kPrefix) != 0) continue;
    const size_t key_end = property_key.size() - kTimestampDigits - 2;
    if (property_key.compare(key_end, 2, "__") != 0) continue;
    std::string key = property_key.substr(prefix_len, key_end - prefix_len);
    Timestamp t = 0;
    if (!AllInGraphStore::DecodeSampleKey(property_key, key, &t)) continue;
    keys.insert(std::move(key));
  }
  return std::vector<std::string>(keys.begin(), keys.end());
}

}  // namespace

std::vector<std::string> AllInGraphStore::VertexSeriesKeys(
    graph::VertexId v) const {
  auto vertex = graph_.GetVertex(v);
  if (!vertex.ok()) return {};
  return ScanSeriesKeys((*vertex)->properties);
}

std::vector<std::string> AllInGraphStore::EdgeSeriesKeys(
    graph::EdgeId e) const {
  auto edge = graph_.GetEdge(e);
  if (!edge.ok()) return {};
  return ScanSeriesKeys((*edge)->properties);
}

Result<ts::Series> AllInGraphStore::VertexSeriesRange(
    graph::VertexId v, const std::string& key,
    const Interval& interval) const {
  auto vertex = graph_.GetVertex(v);
  if (!vertex.ok()) return vertex.status();
  return ScanProperties((*vertex)->properties, key, interval);
}

Result<ts::Series> AllInGraphStore::EdgeSeriesRange(
    graph::EdgeId e, const std::string& key, const Interval& interval) const {
  auto edge = graph_.GetEdge(e);
  if (!edge.ok()) return edge.status();
  return ScanProperties((*edge)->properties, key, interval);
}

}  // namespace hygraph::storage
