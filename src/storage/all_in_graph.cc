#include "storage/all_in_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <utility>

#include "common/context.h"

namespace hygraph::storage {

namespace {
constexpr char kPrefix[] = "__ts__";
// The sign-offset value spans the full uint64 range, whose decimal form
// needs up to 20 digits.
constexpr size_t kTimestampDigits = 20;

// The generic-property-store access path: enumerate every property of the
// entity, match the prefix textually, parse the timestamp, filter. No
// index, no ordering assumption — this is what Table 1 measures. Free
// function so the live store and pinned snapshots share one definition;
// work attributes to whichever counters the caller resolves.
Result<ts::Series> ScanSampleProperties(const graph::PropertyMap& props,
                                        const std::string& key,
                                        const Interval& interval,
                                        obs::Counter* properties_scanned,
                                        obs::Counter* samples_parsed) {
  std::vector<ts::Sample> samples;
  properties_scanned->Add(props.size());
  // Governance checkpoint: the property sweep is this architecture's scan
  // loop, so a deadline/cancel cuts here (mirrors the hypertable decode
  // loop on the polyglot side).
  if (QueryContext* ctx = QueryContext::Current()) {
    HYGRAPH_RETURN_IF_ERROR(ctx->Charge(props.size()));
  }
  for (const auto& [property_key, value] : props) {
    Timestamp t = 0;
    if (!AllInGraphStore::DecodeSampleKey(property_key, key, &t)) continue;
    if (!interval.Contains(t)) continue;
    auto d = value.ToDouble();
    if (!d.ok()) {
      return Status::Corruption("sample property '" + property_key +
                                "' is not numeric");
    }
    samples.push_back(ts::Sample{t, *d});
  }
  samples_parsed->Add(samples.size());
  std::sort(samples.begin(), samples.end(),
            [](const ts::Sample& a, const ts::Sample& b) { return a.t < b.t; });
  ts::Series out(key);
  for (const ts::Sample& s : samples) {
    HYGRAPH_RETURN_IF_ERROR(out.Append(s.t, s.value));
  }
  return out;
}

// Extracts the distinct series keys embedded in sample property names:
// "__ts__<key>__<20 digits>" → <key>. Keys containing "__<digit>" can make
// different keys' samples interleave in the sorted map, so dedup goes
// through a set rather than relying on adjacency.
std::vector<std::string> ScanSeriesKeys(const graph::PropertyMap& props) {
  std::set<std::string> keys;
  const size_t prefix_len = sizeof(kPrefix) - 1;
  for (const auto& [property_key, value] : props) {
    (void)value;
    if (property_key.size() < prefix_len + 2 + kTimestampDigits) continue;
    if (property_key.compare(0, prefix_len, kPrefix) != 0) continue;
    const size_t key_end = property_key.size() - kTimestampDigits - 2;
    if (property_key.compare(key_end, 2, "__") != 0) continue;
    std::string key = property_key.substr(prefix_len, key_end - prefix_len);
    Timestamp t = 0;
    if (!AllInGraphStore::DecodeSampleKey(property_key, key, &t)) continue;
    keys.insert(std::move(key));
  }
  return std::vector<std::string>(keys.begin(), keys.end());
}

std::vector<std::string> SeriesKeysOfVertex(const graph::PropertyGraph& g,
                                            graph::VertexId v) {
  auto vertex = g.GetVertex(v);
  if (!vertex.ok()) return {};
  return ScanSeriesKeys((*vertex)->properties);
}

std::vector<std::string> SeriesKeysOfEdge(const graph::PropertyGraph& g,
                                          graph::EdgeId e) {
  auto edge = g.GetEdge(e);
  if (!edge.ok()) return {};
  return ScanSeriesKeys((*edge)->properties);
}

/// A pinned read view: holds the graph alive by refcount and answers every
/// read from it, byte-identical no matter what the origin store does
/// concurrently. Work still attributes to the origin's registry so
/// PROFILE's before/after differencing keeps working across a snapshot.
class AllInGraphSnapshot final : public query::QueryBackend {
 public:
  AllInGraphSnapshot(std::shared_ptr<const graph::PropertyGraph> graph,
                     obs::MetricsRegistry* metrics,
                     obs::Counter* properties_scanned,
                     obs::Counter* samples_parsed)
      : graph_(std::move(graph)),
        metrics_(metrics),
        properties_scanned_(properties_scanned),
        samples_parsed_(samples_parsed) {}

  std::string name() const override { return "all-in-graph"; }
  const graph::PropertyGraph& topology() const override { return *graph_; }
  graph::PropertyGraph* mutable_topology() override { return nullptr; }

  obs::MetricsRegistry* metrics() const override { return metrics_; }
  query::BackendWork Work() const override {
    query::BackendWork w;
    w.properties_scanned = properties_scanned_->value();
    w.series_points_scanned = samples_parsed_->value();
    return w;
  }

  Status AppendVertexSample(graph::VertexId, const std::string&, Timestamp,
                            double) override {
    return Status::FailedPrecondition("snapshot is read-only");
  }
  Status AppendEdgeSample(graph::EdgeId, const std::string&, Timestamp,
                          double) override {
    return Status::FailedPrecondition("snapshot is read-only");
  }

  Result<ts::Series> VertexSeriesRange(
      graph::VertexId v, const std::string& key,
      const Interval& interval) const override {
    auto vertex = graph_->GetVertex(v);
    if (!vertex.ok()) return vertex.status();
    return ScanSampleProperties((*vertex)->properties, key, interval,
                                properties_scanned_, samples_parsed_);
  }
  Result<ts::Series> EdgeSeriesRange(graph::EdgeId e, const std::string& key,
                                     const Interval& interval) const override {
    auto edge = graph_->GetEdge(e);
    if (!edge.ok()) return edge.status();
    return ScanSampleProperties((*edge)->properties, key, interval,
                                properties_scanned_, samples_parsed_);
  }

  std::vector<std::string> VertexSeriesKeys(graph::VertexId v) const override {
    return SeriesKeysOfVertex(*graph_, v);
  }
  std::vector<std::string> EdgeSeriesKeys(graph::EdgeId e) const override {
    return SeriesKeysOfEdge(*graph_, e);
  }

  bool SeriesEmbeddedInTopology() const override { return true; }

 private:
  std::shared_ptr<const graph::PropertyGraph> graph_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* properties_scanned_;
  obs::Counter* samples_parsed_;
};

}  // namespace

AllInGraphStore::AllInGraphStore()
    : graph_(std::make_shared<graph::PropertyGraph>()),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      properties_scanned_(metrics_->counter("allingraph.properties_scanned")),
      samples_parsed_(metrics_->counter("allingraph.samples_parsed")),
      snapshot_pins_(metrics_->counter("concurrency.snapshot_pins")),
      topology_cow_copies_(
          metrics_->counter("concurrency.topology_cow_copies")),
      sync_(SyncInstruments::ForRegistry(metrics_.get())),
      topo_mu_(std::make_unique<SharedMutex>(LockRank::kStoreCoarse, sync_)) {}

query::BackendWork AllInGraphStore::Work() const {
  query::BackendWork w;
  w.properties_scanned = properties_scanned_->value();
  w.series_points_scanned = samples_parsed_->value();
  return w;
}

const graph::PropertyGraph& AllInGraphStore::topology() const {
  SharedLock lock(*topo_mu_);
  return *graph_;  // reference outlives the guard; see header contract
}

graph::PropertyGraph* AllInGraphStore::Detach() {
  if (graph_.use_count() > 1) {
    graph_ = std::make_shared<graph::PropertyGraph>(*graph_);
    topology_cow_copies_->Increment();
  }
  return graph_.get();
}

graph::PropertyGraph* AllInGraphStore::mutable_topology() {
  ExclusiveLock lock(*topo_mu_);
  return Detach();
}

Status AllInGraphStore::MutateTopology(
    const std::function<Status(graph::PropertyGraph*)>& fn) {
  ExclusiveLock lock(*topo_mu_);
  return fn(Detach());
}

std::shared_ptr<const query::QueryBackend> AllInGraphStore::BeginSnapshot()
    const {
  SharedLock lock(*topo_mu_);
  snapshot_pins_->Increment();
  return std::make_shared<AllInGraphSnapshot>(graph_, metrics_.get(),
                                              properties_scanned_,
                                              samples_parsed_);
}

std::string AllInGraphStore::EncodeSampleKey(const std::string& key,
                                             Timestamp t) {
  char digits[kTimestampDigits + 1];
  // Negative timestamps are offset so the textual form stays fixed-width;
  // generators use the Unix epoch onwards, so this is a corner-case guard.
  unsigned long long shifted =
      static_cast<unsigned long long>(t) + (1ULL << 63);
  std::snprintf(digits, sizeof(digits), "%020llu", shifted);
  return std::string(kPrefix) + key + "__" + digits;
}

bool AllInGraphStore::DecodeSampleKey(const std::string& property_key,
                                      const std::string& key, Timestamp* t) {
  const std::string expected = std::string(kPrefix) + key + "__";
  if (property_key.size() != expected.size() + kTimestampDigits) return false;
  if (property_key.compare(0, expected.size(), expected) != 0) return false;
  const char* digits = property_key.c_str() + expected.size();
  char* end = nullptr;
  const unsigned long long shifted = std::strtoull(digits, &end, 10);
  if (end != digits + kTimestampDigits) return false;
  *t = static_cast<Timestamp>(shifted - (1ULL << 63));
  return true;
}

Status AllInGraphStore::AppendVertexSample(graph::VertexId v,
                                           const std::string& key,
                                           Timestamp t, double value) {
  ExclusiveLock lock(*topo_mu_);
  return Detach()->SetVertexProperty(v, EncodeSampleKey(key, t), Value(value));
}

Status AllInGraphStore::AppendEdgeSample(graph::EdgeId e,
                                         const std::string& key, Timestamp t,
                                         double value) {
  ExclusiveLock lock(*topo_mu_);
  return Detach()->SetEdgeProperty(e, EncodeSampleKey(key, t), Value(value));
}

std::vector<std::string> AllInGraphStore::VertexSeriesKeys(
    graph::VertexId v) const {
  SharedLock lock(*topo_mu_);
  return SeriesKeysOfVertex(*graph_, v);
}

std::vector<std::string> AllInGraphStore::EdgeSeriesKeys(
    graph::EdgeId e) const {
  SharedLock lock(*topo_mu_);
  return SeriesKeysOfEdge(*graph_, e);
}

Result<ts::Series> AllInGraphStore::VertexSeriesRange(
    graph::VertexId v, const std::string& key,
    const Interval& interval) const {
  SharedLock lock(*topo_mu_);
  auto vertex = graph_->GetVertex(v);
  if (!vertex.ok()) return vertex.status();
  return ScanSampleProperties((*vertex)->properties, key, interval,
                              properties_scanned_, samples_parsed_);
}

Result<ts::Series> AllInGraphStore::EdgeSeriesRange(
    graph::EdgeId e, const std::string& key, const Interval& interval) const {
  SharedLock lock(*topo_mu_);
  auto edge = graph_->GetEdge(e);
  if (!edge.ok()) return edge.status();
  return ScanSampleProperties((*edge)->properties, key, interval,
                              properties_scanned_, samples_parsed_);
}

}  // namespace hygraph::storage
