#ifndef HYGRAPH_STORAGE_WAL_H_
#define HYGRAPH_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/env.h"

namespace hygraph::storage {

/// Binary write-ahead log. Each record is framed as
///
///   [u32 payload length, LE] [u32 CRC-32 of payload, LE] [payload bytes]
///
/// A record is durable once a Sync that covers it returned OK. The reader
/// never fails on a torn tail: a crash mid-append leaves a partial frame
/// (or a frame whose CRC does not match), which is detected, reported, and
/// truncated away — exactly the semantics a recovering store needs.

/// Hard ceiling on one record; larger length fields are treated as
/// corruption rather than attempted as allocations.
inline constexpr uint32_t kWalMaxRecordSize = 1u << 26;  // 64 MiB

class WalWriter {
 public:
  /// Creates (truncating) the log file at `path`. The writer's "wal.*"
  /// instruments (appends, bytes_appended, syncs, sync_nanos) register in
  /// `metrics`; null means the process-global registry.
  static Result<std::unique_ptr<WalWriter>> Create(
      Env* env, const std::string& path,
      obs::MetricsRegistry* metrics = nullptr);

  /// Appends one framed record. With `sync`, the record is fsynced before
  /// returning — the write is acknowledged as durable. Without, it sits in
  /// the un-synced window until the next Sync() (group commit).
  Status Append(const std::string& payload, bool sync);

  /// Makes everything appended so far durable.
  Status Sync();
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, obs::MetricsRegistry* metrics);

  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;
  obs::Counter* appends_ = nullptr;
  obs::Counter* bytes_appended_ = nullptr;
  obs::Counter* syncs_ = nullptr;
  obs::Histogram* sync_nanos_ = nullptr;
};

/// Result of scanning a WAL file.
struct WalReadResult {
  std::vector<std::string> records;  ///< intact payloads, in append order
  uint64_t valid_bytes = 0;          ///< prefix covered by intact records
  uint64_t dropped_bytes = 0;        ///< torn / corrupt tail discarded
  bool torn_tail = false;            ///< true when anything was discarded
};

/// Reads every intact record of `path`. A missing file reads as an empty
/// log. Torn or corrupt tails are reported through the result, never as an
/// error: the only error statuses are real I/O failures.
Result<WalReadResult> ReadWal(Env* env, const std::string& path);

/// Truncates `path` down to the valid prefix found by ReadWal, removing a
/// torn tail so later appends start from a clean record boundary.
Status TruncateWalToValidPrefix(Env* env, const std::string& path,
                                const WalReadResult& scan);

/// Frames one payload as it would appear in the log (exposed for tests).
std::string EncodeWalFrame(const std::string& payload);

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_WAL_H_
