#include "storage/retry.h"

#include <chrono>
#include <thread>
#include <utility>

namespace hygraph::storage {

RetryPolicy::RetryPolicy(RetryOptions options, SleepFn sleep)
    : options_(options), sleep_(std::move(sleep)), rng_(options.seed) {
  if (!sleep_) {
    sleep_ = [](uint64_t nanos) {
      // The one sanctioned real sleep in src/ (see the hygraph-raw-sleep
      // lint rule); everything else injects a SleepFn through here.
      std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
    };
  }
}

uint64_t RetryPolicy::BackoffNanos(int retry) {
  uint64_t delay = options_.base_backoff_nanos;
  // Shift with an overflow guard: past 63 doublings the cap always wins.
  if (retry >= 63 || (delay << retry) >> retry != delay) {
    delay = options_.max_backoff_nanos;
  } else {
    delay <<= retry;
    if (delay > options_.max_backoff_nanos) delay = options_.max_backoff_nanos;
  }
  if (options_.jitter && delay > 1) {
    delay = delay / 2 + rng_.NextBounded(delay / 2);
  }
  return delay;
}

Status RetryPolicy::Run(const std::function<Status()>& op,
                        obs::Counter* retries) {
  Status last = Status::OK();
  const int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      sleep_(BackoffNanos(attempt - 1));
      if (retries != nullptr) retries->Increment();
    }
    last = op();
    if (last.ok() || !IsRetryable(last)) return last;
  }
  return last;
}

}  // namespace hygraph::storage
