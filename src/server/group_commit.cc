#include "server/group_commit.h"

namespace hygraph::server {

GroupCommitter::GroupCommitter(storage::DurableStore* durable,
                               obs::MetricsRegistry* registry)
    : durable_(durable) {
  if (registry != nullptr) {
    commit_batches_ = registry->counter("server.commit_batches");
    batch_size_ = registry->histogram("server.commit_batch_size");
    commits_ = registry->counter("server.commits");
  }
}

Status GroupCommitter::CommitNoSync(const std::function<Status()>& append) {
  if (commits_ != nullptr) commits_->Increment();
  return append();
}

Status GroupCommitter::Commit(const std::function<Status()>& append) {
  if (commits_ != nullptr) commits_->Increment();
  // Step 1: the append itself, serialized by the store's append mutex.
  // A failed append never enters the ticket protocol — there is nothing
  // durable to wait for.
  HYGRAPH_RETURN_IF_ERROR(append());

  // Step 2: take a ticket. The append above finished before the ticket
  // exists, so any sync started after this point covers it.
  uint64_t my = 0;
  {
    MutexLock lock(mu_);
    my = ++appended_;
  }

  // Step 3: park until a sync covers the ticket; lead when nobody else is.
  // The leader runs SyncWal() with the ticket mutex RELEASED, so followers
  // keep appending and taking tickets while the fsync is in flight — the
  // next leader's batch is exactly those stragglers.
  for (;;) {
    uint64_t target = 0;
    {
      MutexLock lock(mu_);
      while (synced_ < my && failed_through_ < my && sync_inflight_) {
        cv_.wait(mu_);
      }
      if (synced_ >= my) return Status::OK();
      if (failed_through_ >= my) return fail_status_;
      sync_inflight_ = true;  // this thread leads the next round
      target = appended_;
    }
    const Status sync = durable_->SyncWal();
    MutexLock lock(mu_);
    sync_inflight_ = false;
    if (sync.ok()) {
      if (commit_batches_ != nullptr) commit_batches_->Increment();
      if (batch_size_ != nullptr) batch_size_->Record(target - synced_);
      ++batches_;
      synced_ = target;
    } else {
      // Tickets the failed sync was meant to cover must not ack; they may
      // or may not be on disk. Later tickets elect a new leader and retry.
      failed_through_ = target;
      fail_status_ = sync;
    }
    cv_.notify_all();
  }
}

uint64_t GroupCommitter::batches() const {
  MutexLock lock(mu_);
  return batches_;
}

}  // namespace hygraph::server
