#include "server/client.h"

namespace hygraph::server {

Result<HgqlClient> HgqlClient::Connect(const std::string& host, uint16_t port,
                                       const std::string& client_name) {
  auto sock = net::Socket::Connect(host, port);
  if (!sock.ok()) return sock.status();
  HgqlClient client;
  client.sock_ = std::move(*sock);

  HelloRequest hello;
  hello.client_name = client_name;
  auto resp = client.RoundTrip(EncodeHelloFrame(hello));
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return StatusFromWire(resp->code, resp->message);
  }
  for (size_t i = 0; i < resp->table.rows.size(); ++i) {
    if (resp->table.rows[i].size() == 2 &&
        resp->table.rows[i][0] == Value("session_id")) {
      client.session_id_ =
          static_cast<uint64_t>(resp->table.rows[i][1].AsInt());
    }
  }
  return client;
}

Result<WireResponse> HgqlClient::RoundTrip(const std::string& frame) {
  if (!sock_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  HYGRAPH_RETURN_IF_ERROR(sock_.WriteAll(frame.data(), frame.size()));

  uint8_t header[kWireHeaderSize];
  HYGRAPH_RETURN_IF_ERROR(sock_.ReadFull(header, sizeof(header)));
  DecodeResult scan = DecodeFrame(header, sizeof(header));
  if (scan.progress == DecodeProgress::kError) return scan.error;
  std::string buf(reinterpret_cast<const char*>(header), sizeof(header));
  if (scan.need > buf.size()) {
    buf.resize(scan.need);
    HYGRAPH_RETURN_IF_ERROR(
        sock_.ReadFull(buf.data() + kWireHeaderSize,
                       buf.size() - kWireHeaderSize));
  }
  DecodeResult full = DecodeFrame(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  if (full.progress != DecodeProgress::kFrame) {
    return full.progress == DecodeProgress::kError
               ? full.error
               : Status::Internal("client: short frame after full read");
  }
  return DecodeResponse(full.frame);
}

Result<query::QueryResult> HgqlClient::Query(const std::string& text,
                                             uint64_t timeout_ms) {
  QueryRequest req;
  req.text = text;
  req.timeout_ms = timeout_ms;
  auto resp = RoundTrip(EncodeQueryFrame(req));
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return StatusFromWire(resp->code, resp->message);
  }
  return std::move(resp->table);
}

Status HgqlClient::Append(const std::vector<SampleUpdate>& samples,
                          bool no_sync) {
  AppendRequest req;
  req.no_sync = no_sync;
  req.samples = samples;
  auto resp = RoundTrip(EncodeAppendFrame(req));
  if (!resp.ok()) return resp.status();
  return StatusFromWire(resp->code, resp->message);
}

Result<query::QueryResult> HgqlClient::Admin(const std::string& command) {
  AdminRequest req;
  req.command = command;
  auto resp = RoundTrip(EncodeAdminFrame(req));
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return StatusFromWire(resp->code, resp->message);
  }
  return std::move(resp->table);
}

void HgqlClient::Close() {
  if (!sock_.valid()) return;
  HYGRAPH_IGNORE_RESULT(RoundTrip(EncodeGoodbyeFrame()));
  sock_.Close();
}

}  // namespace hygraph::server
