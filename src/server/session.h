#ifndef HYGRAPH_SERVER_SESSION_H_
#define HYGRAPH_SERVER_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "query/backend.h"

namespace hygraph::server {

/// Per-connection session state. A session is owned by exactly one
/// connection thread — nothing here needs a lock; the server's registry
/// (creation, teardown, counting) carries its own mutex.
///
/// Read views (DESIGN.md §8 snapshot semantics, lifted to the wire):
///   * Default: every QUERY pins a FRESH snapshot via BeginSnapshot(), so
///     one request sees one immutable state while concurrent appends
///     proceed — snapshot-per-request isolation.
///   * Pinned: `snapshot.begin` parks one snapshot on the session; every
///     later query reuses it (a client-controlled repeatable-read scope,
///     e.g. a dashboard rendering many panels from one instant) until
///     `snapshot.release` lets it go.
/// Backends whose BeginSnapshot() returns null (no snapshot support) fall
/// back to the live backend, preserving the pre-snapshot behavior.
class Session {
 public:
  Session(uint64_t id, const query::QueryBackend* backend)
      : id_(id), backend_(backend) {}

  uint64_t id() const { return id_; }

  const std::string& client_name() const { return client_name_; }
  void set_client_name(std::string name) { client_name_ = std::move(name); }

  /// The read view for one request: the session-pinned snapshot if one is
  /// active, else a fresh per-request snapshot, else the live backend.
  const query::QueryBackend& ViewForRequest(
      std::shared_ptr<const query::QueryBackend>* hold) const {
    if (pinned_ != nullptr) {
      *hold = pinned_;
    } else {
      *hold = backend_->BeginSnapshot();
    }
    return *hold != nullptr ? **hold : *backend_;
  }

  /// Pins the current state as the session snapshot (replacing any prior
  /// pin). Fails when the backend cannot snapshot.
  Status PinSnapshot() {
    auto snap = backend_->BeginSnapshot();
    if (snap == nullptr) {
      return Status::Unimplemented(
          "session: backend does not support snapshots");
    }
    pinned_ = std::move(snap);
    return Status::OK();
  }

  /// Releases the session snapshot; queries see fresh state again.
  void ReleaseSnapshot() { pinned_.reset(); }

  bool has_pinned_snapshot() const { return pinned_ != nullptr; }

  // Per-session request tallies (reported by the `stats` admin command).
  uint64_t queries = 0;
  uint64_t appends = 0;
  uint64_t errors = 0;

 private:
  uint64_t id_;
  const query::QueryBackend* backend_;
  std::shared_ptr<const query::QueryBackend> pinned_;
  std::string client_name_;
};

}  // namespace hygraph::server

#endif  // HYGRAPH_SERVER_SESSION_H_
