#include "server/server.h"

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/clock.h"
#include "obs/slow_query.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/planner.h"

namespace hygraph::server {

namespace {

uint64_t NowNanos() { return obs::SystemClock::Instance()->NowNanos(); }

WireResponse ErrorResponse(const Status& status) {
  WireResponse resp;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

WireResponse OkResponse(std::string message = {}) {
  WireResponse resp;
  resp.message = std::move(message);
  return resp;
}

/// Two-column key/value table used by the introspection admin verbs.
class KvTable {
 public:
  KvTable() {
    resp_.has_table = true;
    resp_.table.columns = {"key", "value"};
  }
  void Add(const std::string& key, Value value) {
    resp_.table.rows.push_back({Value(key), std::move(value)});
  }
  WireResponse Take() && { return std::move(resp_); }

 private:
  WireResponse resp_;
};

}  // namespace

HgqlServer::HgqlServer(const query::QueryBackend* backend,
                       storage::DurableStore* durable, ServerOptions options)
    : backend_(backend), durable_(durable), options_(std::move(options)) {
  if (durable_ != nullptr) {
    committer_ = std::make_unique<GroupCommitter>(durable_, &metrics_);
  }
  connections_accepted_ = metrics_.counter("server.connections_accepted");
  connections_rejected_ = metrics_.counter("server.connections_rejected");
  connections_active_gauge_ = metrics_.gauge("server.connections_active");
  requests_ = metrics_.counter("server.requests");
  requests_shed_ = metrics_.counter("server.requests_shed");
  request_errors_ = metrics_.counter("server.request_errors");
  inflight_gauge_ = metrics_.gauge("server.requests_inflight");
  request_nanos_ = metrics_.histogram("server.request_nanos");
  queries_ = metrics_.counter("server.queries");
  appends_ = metrics_.counter("server.appends");
  samples_appended_ = metrics_.counter("server.samples_appended");
  admin_requests_ = metrics_.counter("server.admin_requests");
  frames_rejected_ = metrics_.counter("server.frames_rejected");
  bytes_read_ = metrics_.counter("server.bytes_read");
  bytes_written_ = metrics_.counter("server.bytes_written");
  snapshots_pinned_ = metrics_.counter("server.snapshots_pinned");
}

HgqlServer::~HgqlServer() { Stop(); }

Status HgqlServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  auto listener = net::Listener::Listen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();

  if (options_.enable_metrics_http) {
    auto mlistener =
        net::Listener::Listen(options_.host, options_.metrics_port);
    if (!mlistener.ok()) {
      listener_.Close();
      return mlistener.status();
    }
    metrics_listener_ = std::move(*mlistener);
    metrics_port_ = metrics_listener_.port();
  }

  if (options_.slow_query_threshold_ms > 0) {
    obs::SlowQueryLog::Global().set_threshold_nanos(
        options_.slow_query_threshold_ms * 1'000'000ull);
  }

  started_ = true;
  stopped_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });  // NOLINT(hygraph-raw-thread)
  if (options_.enable_metrics_http) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });  // NOLINT(hygraph-raw-thread)
  }
  return Status::OK();
}

void HgqlServer::Stop() {
  if (!started_ || stopped_.exchange(true)) return;
  // 1. No new connections: the accept thread sees the closed listener (or
  //    its next poll timeout) and exits.
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Nudge every live connection: half-close the read side so a blocked
  //    recv wakes with EOF. A request already executing completes and its
  //    response is written before the connection thread re-reads.
  {
    MutexLock lock(state_mu_);
    for (auto& conn : conns_) conn->sock.ShutdownRead();
  }
  // 3. Join everything.
  ReapConnections(/*all=*/true);
  metrics_listener_.Close();
  if (metrics_thread_.joinable()) metrics_thread_.join();
}

obs::MetricsSnapshot HgqlServer::MergedMetrics() const {
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  if (durable_ != nullptr) {
    if (durable_->metrics() != nullptr) {
      snap.Merge(durable_->metrics()->Snapshot());
    }
    const query::QueryBackend* inner = durable_->inner();
    if (inner != nullptr && inner->metrics() != nullptr) {
      snap.Merge(inner->metrics()->Snapshot());
    }
  } else if (backend_->metrics() != nullptr) {
    snap.Merge(backend_->metrics()->Snapshot());
  }
  snap.Merge(obs::MetricsRegistry::Global().Snapshot());
  return snap;
}

uint64_t HgqlServer::sessions_opened() const {
  MutexLock lock(state_mu_);
  return sessions_opened_;
}

size_t HgqlServer::connections_active() const {
  return active_conns_.load(std::memory_order_relaxed);
}

void HgqlServer::ReapConnections(bool all) {
  std::vector<std::unique_ptr<Conn>> dead;
  {
    MutexLock lock(state_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : dead) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void HgqlServer::AcceptLoop() {
  while (!stopped_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.AcceptWithTimeout(/*timeout_ms=*/50);
    ReapConnections(/*all=*/false);
    if (!accepted.ok()) break;  // listener closed: Stop() is running
    if (!accepted->valid()) continue;  // poll timeout: re-check stop flag

    connections_accepted_->Increment();
    if (options_.max_connections != 0 &&
        active_conns_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      connections_rejected_->Increment();
      const std::string frame = EncodeResultFrame(ErrorResponse(
          Status::ResourceExhausted("server at connection limit")));
      HYGRAPH_IGNORE_RESULT(accepted->WriteAll(frame.data(), frame.size()));
      continue;  // Socket destructor closes the connection
    }

    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(*accepted);
    Conn* raw = conn.get();
    const size_t active = active_conns_.fetch_add(1) + 1;
    connections_active_gauge_->Set(static_cast<double>(active));
    {
      MutexLock lock(state_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {  // NOLINT(hygraph-raw-thread)
      ServeConnection(raw);
      const size_t now_active = active_conns_.fetch_sub(1) - 1;
      connections_active_gauge_->Set(static_cast<double>(now_active));
      raw->done.store(true, std::memory_order_release);
    });
  }
}

HgqlServer::ReadFrameResult HgqlServer::ReadFrame(net::Socket& sock) {
  ReadFrameResult out;
  uint8_t header[kWireHeaderSize];
  {
    // Between frames an orderly close is the normal end of a session.
    auto first = sock.ReadSome(header, 1);
    if (!first.ok()) {
      out.status = first.status();
      return out;
    }
    if (*first == 0) {
      out.status = Status::OK();
      return out;  // has_frame = false: EOF
    }
  }
  out.status = sock.ReadFull(header + 1, kWireHeaderSize - 1);
  if (!out.status.ok()) return out;

  DecodeResult header_scan =
      DecodeFrame(header, kWireHeaderSize, options_.max_frame_bytes);
  if (header_scan.progress == DecodeProgress::kError) {
    out.status = header_scan.error;
    return out;
  }
  std::string buf(reinterpret_cast<const char*>(header), kWireHeaderSize);
  if (header_scan.progress == DecodeProgress::kNeedMore &&
      header_scan.need > kWireHeaderSize) {
    buf.resize(header_scan.need);
    out.status =
        sock.ReadFull(buf.data() + kWireHeaderSize, buf.size() - kWireHeaderSize);
    if (!out.status.ok()) return out;
  }
  DecodeResult full =
      DecodeFrame(reinterpret_cast<const uint8_t*>(buf.data()), buf.size(),
                  options_.max_frame_bytes);
  if (full.progress != DecodeProgress::kFrame) {
    out.status = full.progress == DecodeProgress::kError
                     ? full.error
                     : Status::Internal("wire: short frame after full read");
    return out;
  }
  bytes_read_->Add(buf.size());
  out.has_frame = true;
  out.frame = std::move(full.frame);
  out.status = Status::OK();
  return out;
}

void HgqlServer::ServeConnection(Conn* conn) {
  Session session = [this] {
    MutexLock lock(state_mu_);
    ++sessions_opened_;
    return Session(next_session_id_++, backend_);
  }();

  for (;;) {
    ReadFrameResult read = ReadFrame(conn->sock);
    if (!read.status.ok()) {
      // A framing violation gets a best-effort error response; the stream
      // is not trustworthy afterwards, so the connection closes either way.
      if (!read.status.IsUnavailable()) {
        frames_rejected_->Increment();
        const std::string frame =
            EncodeResultFrame(ErrorResponse(read.status));
        HYGRAPH_IGNORE_RESULT(
            conn->sock.WriteAll(frame.data(), frame.size()));
      }
      return;
    }
    if (!read.has_frame) return;  // orderly EOF

    auto request = DecodeRequest(read.frame);
    WireResponse resp;
    bool goodbye = false;
    if (!request.ok()) {
      frames_rejected_->Increment();
      resp = ErrorResponse(request.status());
      goodbye = true;  // payload-level garbage: drop the connection too
    } else {
      goodbye = request->type == FrameType::kGoodbye;
      resp = HandleRequest(session, *request);
    }

    const std::string frame = EncodeResultFrame(resp);
    if (!conn->sock.WriteAll(frame.data(), frame.size()).ok()) return;
    bytes_written_->Add(frame.size());
    if (goodbye) return;
  }
}

WireResponse HgqlServer::HandleRequest(Session& session, const Request& req) {
  requests_->Increment();

  // Hello and goodbye are session control, not work: they bypass admission
  // so a saturated server still answers handshakes cheaply.
  if (req.type == FrameType::kHello) {
    session.set_client_name(req.hello.client_name);
    if (req.hello.protocol_version != kWireVersion) {
      session.errors++;
      request_errors_->Increment();
      return ErrorResponse(Status::InvalidArgument(
          "unsupported protocol version " +
          std::to_string(req.hello.protocol_version)));
    }
    KvTable table;
    table.Add("session_id", Value(static_cast<int64_t>(session.id())));
    table.Add("server", Value("hygraph"));
    table.Add("backend", Value(backend_->name()));
    WireResponse resp = std::move(table).Take();
    resp.message = "welcome";
    return resp;
  }
  if (req.type == FrameType::kGoodbye) return OkResponse("bye");

  // Admission gate: shed instead of queue once max_inflight is reached.
  const size_t inflight = in_flight_.fetch_add(1) + 1;
  inflight_gauge_->Set(static_cast<double>(inflight));
  if (options_.max_inflight != 0 && inflight > options_.max_inflight) {
    in_flight_.fetch_sub(1);
    requests_shed_->Increment();
    session.errors++;
    return ErrorResponse(Status::ResourceExhausted(
        "server overloaded: " + std::to_string(inflight - 1) +
        " requests in flight"));
  }

  const uint64_t start = NowNanos();
  WireResponse resp;
  switch (req.type) {
    case FrameType::kQuery:
      resp = HandleQuery(session, req.query);
      break;
    case FrameType::kAppend:
      resp = HandleAppend(session, req.append);
      break;
    case FrameType::kAdmin:
      resp = HandleAdmin(session, req.admin);
      break;
    default:
      resp = ErrorResponse(Status::Internal("unroutable request type"));
      break;
  }
  request_nanos_->Record(NowNanos() - start);
  if (resp.code != StatusCode::kOk) {
    session.errors++;
    request_errors_->Increment();
  }
  in_flight_.fetch_sub(1);
  inflight_gauge_->Set(
      static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
  return resp;
}

WireResponse HgqlServer::HandleQuery(Session& session,
                                     const QueryRequest& req) {
  queries_->Increment();
  session.queries++;

  auto ast = query::Parse(req.text);
  if (!ast.ok()) return ErrorResponse(ast.status());
  auto plan = query::CompileQuery(*ast, {});
  if (!plan.ok()) return ErrorResponse(plan.status());

  std::shared_ptr<const query::QueryBackend> hold;
  const query::QueryBackend& view = session.ViewForRequest(&hold);

  Result<query::QueryResult> result = Status::OK();
  if (plan->mode != query::QueryMode::kNormal) {
    // EXPLAIN / PROFILE render through the executor's own dispatch.
    result = query::ExecutePlan(view, *plan);
  } else {
    QueryContext ctx;
    // Deadline priority: wire timeout, then the query's own TIMEOUT
    // clause, then the server default.
    const uint64_t timeout_ms = req.timeout_ms != 0      ? req.timeout_ms
                                : plan->timeout_ms != 0 ? plan->timeout_ms
                                                        : options_.default_timeout_ms;
    if (timeout_ms != 0) ctx.SetTimeout(timeout_ms, NowNanos);
    if (options_.points_budget != 0) {
      ctx.SetPointsBudget(options_.points_budget);
    }
    obs::SlowQueryLog& slow = obs::SlowQueryLog::Global();
    const uint64_t start = slow.enabled() ? NowNanos() : 0;
    result = query::RunPlan(view, *plan, nullptr, &ctx);
    if (slow.enabled()) {
      slow.MaybeRecord(req.text, view.name(), NowNanos() - start);
    }
  }
  if (!result.ok()) return ErrorResponse(result.status());

  WireResponse resp;
  resp.has_table = true;
  resp.table = std::move(*result);
  return resp;
}

WireResponse HgqlServer::HandleAppend(Session& session,
                                      const AppendRequest& req) {
  appends_->Increment();
  session.appends++;
  if (durable_ == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "server is read-only: no durable store attached"));
  }
  const auto apply = [this, &req]() -> Status {
    for (const SampleUpdate& s : req.samples) {
      if (s.kind == SampleUpdate::kVertex) {
        HYGRAPH_RETURN_IF_ERROR(
            durable_->AppendVertexSample(s.id, s.key, s.timestamp, s.value));
      } else {
        HYGRAPH_RETURN_IF_ERROR(
            durable_->AppendEdgeSample(s.id, s.key, s.timestamp, s.value));
      }
    }
    return Status::OK();
  };
  const Status status = req.no_sync ? committer_->CommitNoSync(apply)
                                    : committer_->Commit(apply);
  if (!status.ok()) return ErrorResponse(status);
  samples_appended_->Add(req.samples.size());
  WireResponse resp;
  resp.has_table = true;
  resp.table.columns = {"appended"};
  resp.table.rows.push_back(
      {Value(static_cast<int64_t>(req.samples.size()))});
  return resp;
}

WireResponse HgqlServer::HandleAdmin(Session& session,
                                     const AdminRequest& req) {
  admin_requests_->Increment();
  const std::string& cmd = req.command;

  if (cmd == "ping") return OkResponse("pong");

  if (cmd == "server.info") {
    KvTable table;
    table.Add("backend", Value(backend_->name()));
    table.Add("protocol_version", Value(static_cast<int64_t>(kWireVersion)));
    table.Add("port", Value(static_cast<int64_t>(port_)));
    table.Add("writable", Value(durable_ != nullptr));
    return std::move(table).Take();
  }

  if (cmd == "stats") {
    KvTable table;
    table.Add("session.id", Value(static_cast<int64_t>(session.id())));
    table.Add("session.queries",
              Value(static_cast<int64_t>(session.queries)));
    table.Add("session.appends",
              Value(static_cast<int64_t>(session.appends)));
    table.Add("session.errors", Value(static_cast<int64_t>(session.errors)));
    table.Add("session.snapshot_pinned",
              Value(session.has_pinned_snapshot()));
    table.Add("server.sessions_opened",
              Value(static_cast<int64_t>(sessions_opened())));
    table.Add("server.connections_active",
              Value(static_cast<int64_t>(connections_active())));
    table.Add("server.requests",
              Value(static_cast<int64_t>(requests_->value())));
    table.Add("server.requests_shed",
              Value(static_cast<int64_t>(requests_shed_->value())));
    return std::move(table).Take();
  }

  if (cmd == "metrics.json") {
    WireResponse resp;
    resp.has_table = true;
    resp.table.columns = {"json"};
    resp.table.rows.push_back({Value(MergedMetrics().ToJson())});
    return resp;
  }

  if (cmd == "slowlog") {
    WireResponse resp;
    resp.has_table = true;
    resp.table.columns = {"query", "backend", "nanos"};
    for (const obs::SlowQueryEntry& e :
         obs::SlowQueryLog::Global().Entries()) {
      resp.table.rows.push_back({Value(e.query), Value(e.backend),
                                 Value(static_cast<int64_t>(e.nanos))});
    }
    return resp;
  }

  if (cmd == "slowlog.clear") {
    obs::SlowQueryLog::Global().Clear();
    return OkResponse("slow-query log cleared");
  }

  if (cmd == "snapshot.begin") {
    const Status status = session.PinSnapshot();
    if (!status.ok()) return ErrorResponse(status);
    snapshots_pinned_->Increment();
    return OkResponse("session snapshot pinned");
  }

  if (cmd == "snapshot.release") {
    session.ReleaseSnapshot();
    return OkResponse("session snapshot released");
  }

  if (cmd == "sync") {
    if (durable_ == nullptr) {
      return ErrorResponse(
          Status::FailedPrecondition("no durable store attached"));
    }
    const Status status = durable_->SyncWal();
    if (!status.ok()) return ErrorResponse(status);
    return OkResponse("wal synced");
  }

  if (options_.enable_debug_commands && cmd.rfind("debug.spin ", 0) == 0) {
    // Holds an in-flight slot for the given milliseconds (admission and
    // shutdown tests). Busy-waits on the obs clock: src/ may not sleep.
    const uint64_t ms = std::strtoull(cmd.c_str() + 11, nullptr, 10);
    const uint64_t until = NowNanos() + ms * 1'000'000ull;
    while (NowNanos() < until) {
    }
    return OkResponse("spun");
  }

  return ErrorResponse(
      Status::InvalidArgument("unknown admin command: " + cmd));
}

// ---------------------------------------------------------------------------
// Metrics HTTP endpoint
// ---------------------------------------------------------------------------

void HgqlServer::MetricsLoop() {
  while (!stopped_.load(std::memory_order_relaxed)) {
    auto accepted = metrics_listener_.AcceptWithTimeout(/*timeout_ms=*/50);
    if (!accepted.ok()) break;
    if (!accepted->valid()) continue;
    ServeMetricsConnection(std::move(*accepted));
  }
}

void HgqlServer::ServeMetricsConnection(net::Socket sock) {
  // Minimal HTTP/1.0: read until the request line is complete, answer one
  // GET, close. Scrapers (Prometheus, curl, urllib) all speak this.
  std::string request;
  char chunk[512];
  while (request.find("\r\n") == std::string::npos &&
         request.size() < 4096) {
    auto got = sock.ReadSome(chunk, sizeof(chunk));
    if (!got.ok() || *got == 0) break;
    request.append(chunk, *got);
  }
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  std::string status_line = "HTTP/1.0 200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (line.rfind("GET /metrics.json", 0) == 0) {
    body = MergedMetrics().ToJson();
    content_type = "application/json";
  } else if (line.rfind("GET /metrics", 0) == 0) {
    body = MergedMetrics().ToPrometheusText();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (line.rfind("GET /healthz", 0) == 0) {
    body = "ok\n";
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "not found\n";
  }
  std::string out = status_line + "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n" + body;
  HYGRAPH_IGNORE_RESULT(sock.WriteAll(out.data(), out.size()));
}

}  // namespace hygraph::server
