#ifndef HYGRAPH_SERVER_WIRE_H_
#define HYGRAPH_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "common/value.h"
#include "query/executor.h"

namespace hygraph::server {

/// HGQL wire protocol v1 (docs/PROTOCOL.md is the normative spec).
///
/// Every message is one frame:
///
///   offset  size  field
///   0       2     magic "HG"
///   2       1     protocol version (kWireVersion)
///   3       1     frame type (FrameType)
///   4       4     payload length, u32 little-endian
///   8       4     CRC-32 (IEEE) of the payload bytes, u32 little-endian
///   12      len   payload
///
/// All integers are little-endian; strings are a u32 length prefix followed
/// by raw bytes; doubles travel as their IEEE-754 bit pattern in a u64.
/// The decoder is TOTAL over arbitrary bytes: any input either yields a
/// frame, asks for more bytes, or is rejected with a Status — it never
/// reads out of bounds, never allocates proportionally to a claimed count
/// it has not yet seen bytes for, and never crashes (fuzz_wire_frame).

inline constexpr uint8_t kWireMagic0 = 'H';
inline constexpr uint8_t kWireMagic1 = 'G';
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderSize = 12;
/// Hard ceiling on one frame's payload. Large enough for any sane result
/// table, small enough that a hostile length field cannot balloon memory.
inline constexpr uint32_t kWireMaxPayload = 8u << 20;

enum class FrameType : uint8_t {
  // Client -> server.
  kHello = 1,    ///< open a session: {u32 version, str client_name}
  kQuery = 2,    ///< run HGQL: {u64 timeout_ms, str text}
  kAppend = 3,   ///< batched samples: {u8 flags, u32 n, n * SampleUpdate}
  kAdmin = 4,    ///< admin verb: {str command}
  kGoodbye = 5,  ///< close the session: {}
  // Server -> client.
  kResult = 16,  ///< {u32 status, str message, u8 has_table, [table]}
};

/// True for the frame types a decoder accepts at all.
bool IsKnownFrameType(uint8_t type);

struct WireFrame {
  FrameType type = FrameType::kGoodbye;
  std::string payload;
};

/// Serializes a complete frame (header + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

enum class DecodeProgress {
  kFrame,     ///< a complete valid frame was consumed
  kNeedMore,  ///< the prefix is valid but the frame is incomplete
  kError,     ///< the bytes can never become a valid frame
};

struct DecodeResult {
  DecodeProgress progress = DecodeProgress::kError;
  WireFrame frame;      ///< valid when progress == kFrame
  size_t consumed = 0;  ///< bytes eaten when progress == kFrame
  /// Total frame size once the header is readable (kNeedMore with
  /// size >= kWireHeaderSize); kWireHeaderSize before that.
  size_t need = 0;
  Status error = Status::OK();  ///< non-OK when progress == kError
};

/// Decodes one frame from the front of `data`. `max_payload` lets servers
/// tighten the ceiling below kWireMaxPayload (ServerOptions::max_frame_bytes).
DecodeResult DecodeFrame(const uint8_t* data, size_t size,
                         uint32_t max_payload = kWireMaxPayload);

// ---------------------------------------------------------------------------
// Request payloads
// ---------------------------------------------------------------------------

struct HelloRequest {
  uint32_t protocol_version = kWireVersion;
  std::string client_name;
};

struct QueryRequest {
  /// 0 = server default. Milliseconds.
  uint64_t timeout_ms = 0;
  std::string text;
};

/// One logged sample append; kind selects the id space.
struct SampleUpdate {
  enum Kind : uint8_t { kVertex = 0, kEdge = 1 };
  uint8_t kind = kVertex;
  uint64_t id = 0;
  Timestamp timestamp = 0;
  double value = 0;
  std::string key;
};

struct AppendRequest {
  /// Ack without waiting for the group-commit fsync (flag bit 0).
  bool no_sync = false;
  std::vector<SampleUpdate> samples;
};

struct AdminRequest {
  std::string command;
};

/// A decoded client request; `type` selects which member is meaningful.
struct Request {
  FrameType type = FrameType::kGoodbye;
  HelloRequest hello;
  QueryRequest query;
  AppendRequest append;
  AdminRequest admin;
};

std::string EncodeHelloFrame(const HelloRequest& req);
std::string EncodeQueryFrame(const QueryRequest& req);
std::string EncodeAppendFrame(const AppendRequest& req);
std::string EncodeAdminFrame(const AdminRequest& req);
std::string EncodeGoodbyeFrame();

/// Parses a client frame's payload. Strict: unknown sample kinds, non-0/1
/// booleans, and trailing bytes are all rejected, so decode∘encode is the
/// identity on valid frames (the fuzz harness checks this round-trip).
Result<Request> DecodeRequest(const WireFrame& frame);

// ---------------------------------------------------------------------------
// Response payload
// ---------------------------------------------------------------------------

struct WireResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  bool has_table = false;
  query::QueryResult table;
};

std::string EncodeResultFrame(const WireResponse& resp);
Result<WireResponse> DecodeResponse(const WireFrame& frame);

/// Rebuilds a Status from its wire code + message ("OK" ignores message).
Status StatusFromWire(StatusCode code, const std::string& message);

// ---------------------------------------------------------------------------
// Bounds-checked primitive codecs (exposed for tests/fuzzers)
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Str(std::string_view s);

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  std::string out_;
};

/// Every getter returns false (leaving the cursor untouched) when the
/// remaining bytes cannot satisfy it; Str additionally bounds the length
/// prefix by the remaining byte count before allocating.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view s)
      : ByteReader(reinterpret_cast<const uint8_t*>(s.data()), s.size()) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  bool Str(std::string* v);

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace hygraph::server

#endif  // HYGRAPH_SERVER_WIRE_H_
