#include "server/net.h"

#include <atomic>

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hygraph::server::net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

Result<sockaddr_in> ParseAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: not a numeric IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  auto addr = ParseAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("net: socket");
  Socket sock(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("net: connect");
  const int one = 1;
  // Best effort: request-response traffic wants Nagle off.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<size_t> Socket::ReadSome(void* buf, size_t n) {
  if (!valid()) return Status::FailedPrecondition("net: socket closed");
  ssize_t rc;
  do {
    rc = ::recv(fd_, buf, n, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("net: recv");
  return static_cast<size_t>(rc);
}

Status Socket::ReadFull(void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    auto rc = ReadSome(p + got, n - got);
    if (!rc.ok()) return rc.status();
    if (*rc == 0) {
      return Status::Unavailable("net: connection closed by peer");
    }
    got += *rc;
  }
  return Status::OK();
}

Status Socket::WriteAll(const void* buf, size_t n) {
  if (!valid()) return Status::FailedPrecondition("net: socket closed");
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc;
    do {
      rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return Errno("net: send");
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

void Socket::ShutdownRead() {
  if (valid()) (void)::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
  if (valid()) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
  }
  return *this;
}

Result<Listener> Listener::Listen(const std::string& host, uint16_t port,
                                  int backlog) {
  auto addr = ParseAddr(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("net: socket");
  Listener lst;
  lst.fd_ = fd;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) !=
      0) {
    return Errno("net: bind");
  }
  if (::listen(fd, backlog) != 0) return Errno("net: listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Errno("net: getsockname");
  }
  lst.port_ = ntohs(bound.sin_port);
  return lst;
}

Result<Socket> Listener::AcceptWithTimeout(int timeout_ms) {
  // One load up front: a concurrent Close() (Stop() unblocking this loop)
  // makes the poll/accept below fail with EBADF, which is handled.
  const int lfd = fd_.load(std::memory_order_acquire);
  if (lfd < 0) return Status::FailedPrecondition("net: listener closed");
  pollfd pfd{};
  pfd.fd = lfd;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EBADF) return Status::Unavailable("net: listener closed");
    return Errno("net: poll");
  }
  if (rc == 0) return Socket();  // timeout: caller re-checks its stop flag
  int conn;
  do {
    conn = ::accept(lfd, nullptr, nullptr);
  } while (conn < 0 && errno == EINTR);
  if (conn < 0) {
    // The listener was closed under us (Stop()) or the connection vanished
    // between poll and accept; both are quiet "try again / shut down" cases.
    if (errno == EBADF || errno == EINVAL) {
      return Status::Unavailable("net: listener closed");
    }
    return Socket();
  }
  const int one = 1;
  (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(conn);
}

void Listener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) (void)::close(fd);
}

}  // namespace hygraph::server::net
