#include "server/wire.h"

#include <bit>
#include <cstring>

#include "common/crc32.h"

namespace hygraph::server {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kQuery:
    case FrameType::kAppend:
    case FrameType::kAdmin:
    case FrameType::kGoodbye:
    case FrameType::kResult:
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

void ByteWriter::U32(uint32_t v) { PutU32(&out_, v); }

void ByteWriter::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v & 0xffffffffu));
  U32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

bool ByteReader::U8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = data_[pos_++];
  return true;
}

bool ByteReader::U32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = GetU32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool ByteReader::U64(uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (remaining() < 8) return false;
  if (!U32(&lo) || !U32(&hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool ByteReader::I64(int64_t* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool ByteReader::F64(double* v) {
  uint64_t u = 0;
  if (!U64(&u)) return false;
  *v = std::bit_cast<double>(u);
  return true;
}

bool ByteReader::Str(std::string* v) {
  uint32_t len = 0;
  const size_t start = pos_;
  if (!U32(&len)) return false;
  if (len > remaining()) {
    pos_ = start;  // leave the cursor where it was
    return false;
  }
  v->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return true;
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kWireHeaderSize + payload.size());
  out.push_back(static_cast<char>(kWireMagic0));
  out.push_back(static_cast<char>(kWireMagic1));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload));
  out.append(payload.data(), payload.size());
  return out;
}

DecodeResult DecodeFrame(const uint8_t* data, size_t size,
                         uint32_t max_payload) {
  DecodeResult r;
  if (max_payload > kWireMaxPayload) max_payload = kWireMaxPayload;
  if (size < kWireHeaderSize) {
    // Reject garbage as soon as the bytes that have arrived prove it.
    if (size >= 1 && data[0] != kWireMagic0) {
      r.error = Status::InvalidArgument("wire: bad magic");
      return r;
    }
    if (size >= 2 && data[1] != kWireMagic1) {
      r.error = Status::InvalidArgument("wire: bad magic");
      return r;
    }
    if (size >= 3 && data[2] != kWireVersion) {
      r.error = Status::InvalidArgument("wire: unsupported version");
      return r;
    }
    if (size >= 4 && !IsKnownFrameType(data[3])) {
      r.error = Status::InvalidArgument("wire: unknown frame type");
      return r;
    }
    r.progress = DecodeProgress::kNeedMore;
    r.need = kWireHeaderSize;
    return r;
  }
  if (data[0] != kWireMagic0 || data[1] != kWireMagic1) {
    r.error = Status::InvalidArgument("wire: bad magic");
    return r;
  }
  if (data[2] != kWireVersion) {
    r.error = Status::InvalidArgument("wire: unsupported version");
    return r;
  }
  if (!IsKnownFrameType(data[3])) {
    r.error = Status::InvalidArgument("wire: unknown frame type");
    return r;
  }
  const uint32_t len = GetU32(data + 4);
  if (len > max_payload) {
    r.error = Status::ResourceExhausted("wire: frame payload exceeds limit");
    return r;
  }
  const size_t total = kWireHeaderSize + len;
  if (size < total) {
    r.progress = DecodeProgress::kNeedMore;
    r.need = total;
    return r;
  }
  const uint32_t want_crc = GetU32(data + 8);
  const std::string_view payload(
      reinterpret_cast<const char*>(data + kWireHeaderSize), len);
  if (Crc32(payload) != want_crc) {
    r.error = Status::Corruption("wire: payload CRC mismatch");
    return r;
  }
  r.progress = DecodeProgress::kFrame;
  r.frame.type = static_cast<FrameType>(data[3]);
  r.frame.payload.assign(payload);
  r.consumed = total;
  r.need = total;
  return r;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

std::string EncodeHelloFrame(const HelloRequest& req) {
  ByteWriter w;
  w.U32(req.protocol_version);
  w.Str(req.client_name);
  return EncodeFrame(FrameType::kHello, w.str());
}

std::string EncodeQueryFrame(const QueryRequest& req) {
  ByteWriter w;
  w.U64(req.timeout_ms);
  w.Str(req.text);
  return EncodeFrame(FrameType::kQuery, w.str());
}

std::string EncodeAppendFrame(const AppendRequest& req) {
  ByteWriter w;
  w.U8(req.no_sync ? 1 : 0);
  w.U32(static_cast<uint32_t>(req.samples.size()));
  for (const SampleUpdate& s : req.samples) {
    w.U8(s.kind);
    w.U64(s.id);
    w.I64(s.timestamp);
    w.F64(s.value);
    w.Str(s.key);
  }
  return EncodeFrame(FrameType::kAppend, w.str());
}

std::string EncodeAdminFrame(const AdminRequest& req) {
  ByteWriter w;
  w.Str(req.command);
  return EncodeFrame(FrameType::kAdmin, w.str());
}

std::string EncodeGoodbyeFrame() {
  return EncodeFrame(FrameType::kGoodbye, {});
}

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("wire: malformed ") + what);
}

Result<Request> DecodeHello(ByteReader& r) {
  Request req;
  req.type = FrameType::kHello;
  if (!r.U32(&req.hello.protocol_version) || !r.Str(&req.hello.client_name)) {
    return Malformed("hello payload");
  }
  return req;
}

Result<Request> DecodeQuery(ByteReader& r) {
  Request req;
  req.type = FrameType::kQuery;
  if (!r.U64(&req.query.timeout_ms) || !r.Str(&req.query.text)) {
    return Malformed("query payload");
  }
  return req;
}

Result<Request> DecodeAppend(ByteReader& r) {
  Request req;
  req.type = FrameType::kAppend;
  uint8_t no_sync = 0;
  uint32_t count = 0;
  if (!r.U8(&no_sync) || no_sync > 1 || !r.U32(&count)) {
    return Malformed("append header");
  }
  req.append.no_sync = no_sync == 1;
  // Parse entry by entry: the vector grows only as real bytes are consumed,
  // so a hostile count cannot drive a large allocation.
  for (uint32_t i = 0; i < count; ++i) {
    SampleUpdate s;
    if (!r.U8(&s.kind) || s.kind > SampleUpdate::kEdge || !r.U64(&s.id) ||
        !r.I64(&s.timestamp) || !r.F64(&s.value) || !r.Str(&s.key)) {
      return Malformed("append entry");
    }
    req.append.samples.push_back(std::move(s));
  }
  return req;
}

Result<Request> DecodeAdmin(ByteReader& r) {
  Request req;
  req.type = FrameType::kAdmin;
  if (!r.Str(&req.admin.command)) return Malformed("admin payload");
  return req;
}

}  // namespace

Result<Request> DecodeRequest(const WireFrame& frame) {
  ByteReader r(frame.payload);
  Result<Request> out = Status::InvalidArgument("wire: not a request frame");
  switch (frame.type) {
    case FrameType::kHello:
      out = DecodeHello(r);
      break;
    case FrameType::kQuery:
      out = DecodeQuery(r);
      break;
    case FrameType::kAppend:
      out = DecodeAppend(r);
      break;
    case FrameType::kAdmin:
      out = DecodeAdmin(r);
      break;
    case FrameType::kGoodbye: {
      Request req;
      req.type = FrameType::kGoodbye;
      out = req;
      break;
    }
    case FrameType::kResult:
      return out;
  }
  if (out.ok() && !r.done()) return Malformed("request (trailing bytes)");
  return out;
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

namespace {

void EncodeValue(ByteWriter& w, const Value& v) {
  w.U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w.U8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      w.I64(v.AsInt());
      break;
    case ValueType::kDouble:
      w.F64(v.AsDouble());
      break;
    case ValueType::kString:
      w.Str(v.AsString());
      break;
    case ValueType::kSeriesRef:
      w.U64(v.AsSeriesId());
      break;
  }
}

bool DecodeValue(ByteReader& r, Value* out) {
  uint8_t tag = 0;
  if (!r.U8(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value();
      return true;
    case ValueType::kBool: {
      uint8_t b = 0;
      if (!r.U8(&b) || b > 1) return false;
      *out = Value(b == 1);
      return true;
    }
    case ValueType::kInt: {
      int64_t i = 0;
      if (!r.I64(&i)) return false;
      *out = Value(i);
      return true;
    }
    case ValueType::kDouble: {
      double d = 0;
      if (!r.F64(&d)) return false;
      *out = Value(d);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!r.Str(&s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    case ValueType::kSeriesRef: {
      uint64_t id = 0;
      if (!r.U64(&id)) return false;
      *out = Value::SeriesRef(id);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string EncodeResultFrame(const WireResponse& resp) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(resp.code));
  w.Str(resp.message);
  w.U8(resp.has_table ? 1 : 0);
  if (resp.has_table) {
    w.U32(static_cast<uint32_t>(resp.table.columns.size()));
    for (const std::string& c : resp.table.columns) w.Str(c);
    w.U32(static_cast<uint32_t>(resp.table.rows.size()));
    for (const std::vector<Value>& row : resp.table.rows) {
      for (const Value& v : row) EncodeValue(w, v);
    }
  }
  return EncodeFrame(FrameType::kResult, std::move(w).str());
}

Result<WireResponse> DecodeResponse(const WireFrame& frame) {
  if (frame.type != FrameType::kResult) {
    return Status::InvalidArgument("wire: not a result frame");
  }
  ByteReader r(frame.payload);
  WireResponse resp;
  uint32_t code = 0;
  uint8_t has_table = 0;
  if (!r.U32(&code) ||
      code > static_cast<uint32_t>(StatusCode::kUnavailable) ||
      !r.Str(&resp.message) || !r.U8(&has_table) || has_table > 1) {
    return Malformed("result header");
  }
  resp.code = static_cast<StatusCode>(code);
  resp.has_table = has_table == 1;
  if (resp.has_table) {
    uint32_t ncols = 0;
    if (!r.U32(&ncols)) return Malformed("result columns");
    for (uint32_t i = 0; i < ncols; ++i) {
      std::string name;
      if (!r.Str(&name)) return Malformed("result column name");
      resp.table.columns.push_back(std::move(name));
    }
    uint32_t nrows = 0;
    if (!r.U32(&nrows)) return Malformed("result rows");
    for (uint32_t i = 0; i < nrows; ++i) {
      std::vector<Value> row;
      row.reserve(ncols);
      for (uint32_t j = 0; j < ncols; ++j) {
        Value v;
        if (!DecodeValue(r, &v)) return Malformed("result value");
        row.push_back(std::move(v));
      }
      resp.table.rows.push_back(std::move(row));
    }
  }
  if (!r.done()) return Malformed("result (trailing bytes)");
  return resp;
}

Status StatusFromWire(StatusCode code, const std::string& message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kCancelled:
      return Status::Cancelled(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
  }
  return Status::Internal("wire: unknown status code");
}

}  // namespace hygraph::server
