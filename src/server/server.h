#ifndef HYGRAPH_SERVER_SERVER_H_
#define HYGRAPH_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "query/backend.h"
#include "server/group_commit.h"
#include "server/net.h"
#include "server/session.h"
#include "server/wire.h"
#include "storage/durable.h"

namespace hygraph::server {

struct ServerOptions {
  /// Numeric IPv4 bind address.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; HgqlServer::port() reports the real one.
  uint16_t port = 0;

  /// Serve GET /metrics (Prometheus text), /metrics.json and /healthz on a
  /// second listener. Port 0 = ephemeral (metrics_port() reports it).
  bool enable_metrics_http = true;
  uint16_t metrics_port = 0;

  /// Accepted connections beyond this are turned away with
  /// kResourceExhausted before a session starts. 0 = unlimited.
  size_t max_connections = 64;

  /// Admission control: requests executing at once across all connections.
  /// Arrivals beyond the limit are SHED with kResourceExhausted rather than
  /// queued (open-loop clients would otherwise build an unbounded backlog —
  /// the client owns the retry policy). 0 = unlimited.
  size_t max_inflight = 32;

  /// Deadline applied to queries that do not carry their own TIMEOUT
  /// clause or wire timeout. 0 = none.
  uint64_t default_timeout_ms = 0;
  /// Points budget installed on every query context. 0 = unlimited.
  uint64_t points_budget = 0;

  /// > 0 arms the global obs::SlowQueryLog at this threshold when the
  /// server starts (the PR 4 log is otherwise unreachable from the wire);
  /// entries are served by the `slowlog` admin command.
  uint64_t slow_query_threshold_ms = 0;

  /// Per-frame payload ceiling for this server (clamped to kWireMaxPayload).
  uint32_t max_frame_bytes = kWireMaxPayload;

  /// Enables the `debug.*` admin commands tests use to hold an in-flight
  /// slot deterministically. Never enable in production.
  bool enable_debug_commands = false;
};

/// Multi-threaded TCP front door for one backend (DESIGN.md §14).
///
/// Threading model: one accept thread, one thread per live connection
/// (sessions are connection-scoped and single-threaded by construction),
/// plus one thread for the metrics HTTP listener. Cross-thread state is
/// confined to the connection registry (state_mu_, rank kServerState), the
/// atomic in-flight/stop counters, and the group committer's ticket lock.
///
/// Request flow: length-prefixed CRC frames (server/wire.h) carry HGQL
/// text in, tabular results out. Every query runs against a pinned
/// snapshot (server/session.h) under a governed QueryContext (deadline +
/// points budget); mutating APPEND frames ride the group committer so one
/// fsync acks many concurrent writers. Overload sheds with
/// kResourceExhausted at two gates: connection admission and request
/// admission.
///
/// Shutdown: Stop() closes the listener, half-closes every live
/// connection's read side (in-flight requests complete and their responses
/// flush before the connection thread observes EOF), then joins every
/// thread. Destruction stops implicitly.
class HgqlServer {
 public:
  /// `backend` must outlive the server. `durable` (nullable) enables the
  /// write path: APPEND frames and the group-commit protocol; typically
  /// `backend == durable`. Neither is owned.
  HgqlServer(const query::QueryBackend* backend,
             storage::DurableStore* durable, ServerOptions options = {});
  ~HgqlServer();

  HgqlServer(const HgqlServer&) = delete;
  HgqlServer& operator=(const HgqlServer&) = delete;

  /// Binds, listens, and launches the accept/metrics threads.
  Status Start();
  /// Clean shutdown (see class comment). Idempotent.
  void Stop();

  bool running() const { return started_ && !stopped_.load(); }
  uint16_t port() const { return port_; }
  uint16_t metrics_port() const { return metrics_port_; }

  /// The server's own registry ("server.*" instruments).
  obs::MetricsRegistry* metrics() { return &metrics_; }
  /// Server + durable + wrapped-backend + process-global registries merged
  /// (what /metrics exports).
  obs::MetricsSnapshot MergedMetrics() const;

  /// Sessions ever opened / currently live (tests + `stats` admin verb).
  uint64_t sessions_opened() const;
  size_t connections_active() const;

 private:
  struct Conn {
    net::Socket sock;
    std::thread thread;  // NOLINT(hygraph-raw-thread): joined by reaper/Stop
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void MetricsLoop();
  void ServeConnection(Conn* conn);
  void ServeMetricsConnection(net::Socket sock);

  /// Joins and erases finished connections; `all` waits for every one.
  void ReapConnections(bool all);

  /// Reads one frame (header, then payload) off the socket. OK with
  /// has_frame=false means orderly EOF before a new frame started.
  struct ReadFrameResult {
    Status status;
    bool has_frame = false;
    WireFrame frame;
  };
  ReadFrameResult ReadFrame(net::Socket& sock);

  WireResponse HandleRequest(Session& session, const Request& req);
  WireResponse HandleQuery(Session& session, const QueryRequest& req);
  WireResponse HandleAppend(Session& session, const AppendRequest& req);
  WireResponse HandleAdmin(Session& session, const AdminRequest& req);

  const query::QueryBackend* backend_;
  storage::DurableStore* durable_;
  ServerOptions options_;

  obs::MetricsRegistry metrics_;
  std::unique_ptr<GroupCommitter> committer_;

  net::Listener listener_;
  net::Listener metrics_listener_;
  uint16_t port_ = 0;
  uint16_t metrics_port_ = 0;

  bool started_ = false;
  std::atomic<bool> stopped_{false};
  std::thread accept_thread_;   // NOLINT(hygraph-raw-thread): joined in Stop
  std::thread metrics_thread_;  // NOLINT(hygraph-raw-thread): joined in Stop

  mutable Mutex state_mu_{LockRank::kServerState};
  std::vector<std::unique_ptr<Conn>> conns_ HYGRAPH_GUARDED_BY(state_mu_);
  uint64_t next_session_id_ HYGRAPH_GUARDED_BY(state_mu_) = 1;
  uint64_t sessions_opened_ HYGRAPH_GUARDED_BY(state_mu_) = 0;

  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> active_conns_{0};

  // Cached instruments (resolved once; see obs/metrics.h cost model).
  obs::Counter* connections_accepted_ = nullptr;
  obs::Counter* connections_rejected_ = nullptr;
  obs::Gauge* connections_active_gauge_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* requests_shed_ = nullptr;
  obs::Counter* request_errors_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Histogram* request_nanos_ = nullptr;
  obs::Counter* queries_ = nullptr;
  obs::Counter* appends_ = nullptr;
  obs::Counter* samples_appended_ = nullptr;
  obs::Counter* admin_requests_ = nullptr;
  obs::Counter* frames_rejected_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Counter* snapshots_pinned_ = nullptr;
};

}  // namespace hygraph::server

#endif  // HYGRAPH_SERVER_SERVER_H_
