#ifndef HYGRAPH_SERVER_GROUP_COMMIT_H_
#define HYGRAPH_SERVER_GROUP_COMMIT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/durable.h"

namespace hygraph::server {

/// Group commit over a DurableStore opened with sync_wal = false.
///
/// DESIGN.md §10 calls the WAL append path "group-commit friendly": every
/// logged mutation serializes on one append mutex, so any thread's
/// SyncWal() makes ALL earlier appends durable at once. This class turns
/// that property into a protocol. Each committing thread:
///
///   1. runs its append function OUTSIDE the ticket mutex (the appends
///      already serialize on the store's own append mutex — holding ours
///      there would collapse every batch to size 1),
///   2. takes a ticket `my = ++appended_` under the ticket mutex,
///   3. parks until `synced_ >= my`. The first parked thread to find no
///      sync in flight becomes the LEADER: it snapshots
///      `target = appended_`, releases the mutex, runs one SyncWal(), and
///      wakes everyone with `synced_ = target`.
///
/// Any ticket <= target finished its WAL append before the leader's sync
/// started (the ticket is taken after the append returns), so the single
/// fsync durably covers the whole batch: under N concurrent writers,
/// wal.syncs grows per BATCH while wal.appends grows per record. A failed
/// sync fails every ticket it was supposed to cover (no false acks); later
/// tickets elect a fresh leader and retry with a new sync.
///
/// Lock order: commit_mu (rank kServerCommit) is never held while calling
/// into the store, so it composes with the append mutex (kDurableAppend)
/// without nesting in the sync-covering direction.
class GroupCommitter {
 public:
  /// `durable` must outlive the committer. `registry` (optional) receives
  /// the server.commit_* instruments.
  explicit GroupCommitter(storage::DurableStore* durable,
                          obs::MetricsRegistry* registry = nullptr);

  /// Runs `append` (which must route its mutations through the store's
  /// logged API) and, when it succeeds, parks until a WAL sync covering it
  /// has completed. Returns the append's own error unchanged, or the
  /// covering sync's error if that sync failed.
  Status Commit(const std::function<Status()>& append);

  /// Appends without waiting for durability (fire-and-forget writes).
  Status CommitNoSync(const std::function<Status()>& append);

  /// Sync rounds completed so far (== wal.syncs this committer issued).
  uint64_t batches() const;

 private:
  storage::DurableStore* durable_;

  mutable Mutex mu_{LockRank::kServerCommit};
  std::condition_variable_any cv_;
  /// Tickets issued: count of appends that completed their WAL write.
  uint64_t appended_ HYGRAPH_GUARDED_BY(mu_) = 0;
  /// Highest ticket covered by a completed, successful sync.
  uint64_t synced_ HYGRAPH_GUARDED_BY(mu_) = 0;
  /// Highest ticket covered by a FAILED sync (those commits must not ack).
  uint64_t failed_through_ HYGRAPH_GUARDED_BY(mu_) = 0;
  Status fail_status_ HYGRAPH_GUARDED_BY(mu_);
  bool sync_inflight_ HYGRAPH_GUARDED_BY(mu_) = false;
  uint64_t batches_ HYGRAPH_GUARDED_BY(mu_) = 0;

  // Optional instruments (null when no registry was given).
  obs::Counter* commit_batches_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
  obs::Counter* commits_ = nullptr;
};

}  // namespace hygraph::server

#endif  // HYGRAPH_SERVER_GROUP_COMMIT_H_
