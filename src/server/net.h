#ifndef HYGRAPH_SERVER_NET_H_
#define HYGRAPH_SERVER_NET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace hygraph::server::net {

/// Thin RAII wrappers over blocking TCP sockets. This file (with net.cc)
/// is the ONLY place in src/ allowed to touch socket/poll syscalls — the
/// hygraph-raw-socket lint rule confines them here so transport concerns
/// (EINTR retries, partial reads, SIGPIPE suppression) cannot leak into
/// protocol or server logic.

/// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  /// One recv(); returns the byte count, 0 on orderly peer shutdown.
  Result<size_t> ReadSome(void* buf, size_t n);
  /// Reads exactly n bytes; kUnavailable if the peer closes early.
  Status ReadFull(void* buf, size_t n);
  /// Writes all n bytes (send with SIGPIPE suppressed).
  Status WriteAll(const void* buf, size_t n);

  /// Half-closes the read side: a blocked reader on this socket wakes up
  /// with EOF. Used by Stop() to nudge connection threads out of recv().
  void ShutdownRead();
  void ShutdownBoth();
  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to host:port (port 0 picks an ephemeral
/// port; port() reports the resolved one).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept
      : fd_(other.fd_.exchange(-1)), port_(other.port_) {}
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Result<Listener> Listen(const std::string& host, uint16_t port,
                                 int backlog = 64);

  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }
  uint16_t port() const { return port_; }

  /// Polls up to timeout_ms for a connection. Returns an invalid Socket on
  /// timeout (so accept loops can observe a stop flag), an error once the
  /// listener is closed.
  Result<Socket> AcceptWithTimeout(int timeout_ms);

  void Close();

 private:
  /// Atomic because Close() races with a concurrent AcceptWithTimeout() by
  /// design: Stop() closes the fd to make the accept thread's poll fail
  /// with EBADF and exit its loop.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace hygraph::server::net

#endif  // HYGRAPH_SERVER_NET_H_
