#ifndef HYGRAPH_SERVER_CLIENT_H_
#define HYGRAPH_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/executor.h"
#include "server/net.h"
#include "server/wire.h"

namespace hygraph::server {

/// Minimal blocking HGQL client: one TCP connection, one request in
/// flight. Used by examples/hgql_client (the REPL), bench_server's load
/// workers, and the CI loopback smoke. Not thread-safe — one HgqlClient
/// per thread.
class HgqlClient {
 public:
  HgqlClient() = default;

  /// Connects and performs the HELLO handshake.
  static Result<HgqlClient> Connect(const std::string& host, uint16_t port,
                                    const std::string& client_name = "cpp");

  bool connected() const { return sock_.valid(); }
  uint64_t session_id() const { return session_id_; }

  /// Runs one HGQL query; the result table, or the server's error status.
  Result<query::QueryResult> Query(const std::string& text,
                                   uint64_t timeout_ms = 0);

  /// Appends a batch of samples. With `no_sync` the server acks before the
  /// batch is fsynced (it is still WAL-appended and crash-recoverable up
  /// to the last sync).
  Status Append(const std::vector<SampleUpdate>& samples,
                bool no_sync = false);

  /// Runs an admin verb ("ping", "stats", "slowlog", "snapshot.begin",
  /// ...); returns the response table (possibly empty).
  Result<query::QueryResult> Admin(const std::string& command);

  /// Sends GOODBYE and closes. Safe on an already-closed client.
  void Close();

 private:
  /// One request/response round trip on the wire.
  Result<WireResponse> RoundTrip(const std::string& frame);

  net::Socket sock_;
  uint64_t session_id_ = 0;
};

}  // namespace hygraph::server

#endif  // HYGRAPH_SERVER_CLIENT_H_
