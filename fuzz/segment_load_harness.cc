#include <memory>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "fuzz/mem_env.h"
#include "storage/segment/segment_store.h"
#include "ts/chunk_codec.h"

namespace hygraph::fuzz {

/// Feeds arbitrary bytes to the cold-tier load path, the frontier a
/// recovering process crosses when it adopts spilled chunks from disk.
///
/// Three layers, each total over hostile input:
///   1. ParseColdCatalog — accept or kCorruption, never a crash or an
///      unbounded allocation, and accepted catalogs reach an
///      encode/parse fixed point bit-exactly (doubles travel as u64 hex).
///   2. SegmentStore::LoadCatalog — the same bytes behind a MemEnv file;
///      registration must mirror the standalone parse verdict.
///   3. Pin + DecodeChunk over segment files that hold the SAME hostile
///      bytes — a catalog entry pointing into garbage must surface as a
///      clean error (CRC/short-read) or decode totally, never crash.
void FuzzSegmentLoad(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  // Layer 1: the standalone catalog codec.
  auto parsed = storage::ParseColdCatalog(bytes);
  if (parsed.ok()) {
    // One catalog line per entry at minimum — a hostile header can never
    // fabricate more entries than the input could have spelled out.
    HYGRAPH_FUZZ_CHECK(parsed->size() <= size);
    const std::string encoded = storage::EncodeColdCatalog(*parsed);
    auto reparsed = storage::ParseColdCatalog(encoded);
    HYGRAPH_FUZZ_CHECK(reparsed.ok());
    HYGRAPH_FUZZ_CHECK(storage::EncodeColdCatalog(*reparsed) == encoded);
  } else {
    HYGRAPH_FUZZ_CHECK(parsed.status().code() == StatusCode::kCorruption);
  }

  // Layers 2 + 3: the same bytes as an on-disk catalog, with every
  // segment file it references also holding the raw fuzzer input.
  MemEnv env;
  env.SetFile("cold/catalog-1.cold", bytes);
  if (parsed.ok()) {
    for (const storage::ColdCatalogEntry& e : *parsed) {
      env.SetFile("cold/" + e.file, bytes);
    }
  }

  storage::SegmentStoreOptions options;
  options.env = &env;
  options.dir = "cold";
  options.cache_budget_bytes = 1u << 16;
  auto store = storage::SegmentStore::Open(options);
  HYGRAPH_FUZZ_CHECK(store.ok());

  auto loaded = (*store)->LoadCatalog(1);
  HYGRAPH_FUZZ_CHECK(loaded.ok() == parsed.ok());
  if (!loaded.ok()) return;

  // Pin every adopted record (bounded: entry count is bounded by the
  // input size via the check above). The frame check must reject any
  // offset/length aimed at bytes that are not a CRC-intact record, and a
  // payload that does survive the CRC must decode totally.
  for (const storage::ColdCatalogEntry& e : *loaded) {
    auto pinned = (*store)->Pin(e.id);
    if (!pinned.ok()) {
      HYGRAPH_FUZZ_CHECK(pinned.status().code() == StatusCode::kCorruption);
      continue;
    }
    HYGRAPH_FUZZ_CHECK((*pinned)->size() == e.length);
    auto decoded = ts::DecodeChunk(**pinned);
    if (decoded.ok()) {
      HYGRAPH_FUZZ_CHECK(decoded->size() <= (*pinned)->size());
    }
  }
}

}  // namespace hygraph::fuzz
