#include <string>

#include "fuzz/harness.h"
#include "server/wire.h"

namespace hygraph::fuzz {

namespace {

using server::DecodeFrame;
using server::DecodeProgress;
using server::DecodeResult;
using server::FrameType;

/// Re-encodes a decoded request through its typed encoder. Valid payloads
/// have exactly one encoding (little-endian integers, length-prefixed
/// strings, bit-pattern doubles, 0/1 booleans, no trailing bytes), so this
/// must reproduce the frame the request was decoded from.
std::string ReencodeRequest(const server::Request& req) {
  switch (req.type) {
    case FrameType::kHello:
      return server::EncodeHelloFrame(req.hello);
    case FrameType::kQuery:
      return server::EncodeQueryFrame(req.query);
    case FrameType::kAppend:
      return server::EncodeAppendFrame(req.append);
    case FrameType::kAdmin:
      return server::EncodeAdminFrame(req.admin);
    case FrameType::kGoodbye:
      return server::EncodeGoodbyeFrame();
    case FrameType::kResult:
      break;  // DecodeRequest never returns a kResult request
  }
  HYGRAPH_FUZZ_CHECK(false);
  return {};
}

}  // namespace

/// Feeds arbitrary bytes to the HGQL wire-frame decoder. The decoder's
/// contract: total over any input (frame, need-more, or a Status — never a
/// crash, hang, out-of-bounds read, or count-driven allocation), kNeedMore
/// always asks beyond what it was given, and every accepted frame reaches a
/// decode/encode fixed point bit-exactly. The payload parsers inherit the
/// same totality: an accepted request or response re-encodes to the very
/// frame it came from.
void FuzzWireFrame(const uint8_t* data, size_t size) {
  const DecodeResult r = DecodeFrame(data, size);
  switch (r.progress) {
    case DecodeProgress::kNeedMore:
      // The decoder must make progress: it may only ask for bytes it does
      // not have, and never more than one maximal frame's worth.
      HYGRAPH_FUZZ_CHECK(r.need > size);
      HYGRAPH_FUZZ_CHECK(r.need <=
                         server::kWireHeaderSize + server::kWireMaxPayload);
      return;
    case DecodeProgress::kError:
      HYGRAPH_FUZZ_CHECK(!r.error.ok());
      return;
    case DecodeProgress::kFrame:
      break;
  }

  // Framing fixed point: re-encoding the frame reproduces the consumed
  // prefix byte-for-byte (header, CRC, payload).
  HYGRAPH_FUZZ_CHECK(r.consumed >= server::kWireHeaderSize);
  HYGRAPH_FUZZ_CHECK(r.consumed <= size);
  const std::string reframed = server::EncodeFrame(r.frame.type,
                                                   r.frame.payload);
  HYGRAPH_FUZZ_CHECK(reframed.size() == r.consumed);
  HYGRAPH_FUZZ_CHECK(
      std::string_view(reframed) ==
      std::string_view(reinterpret_cast<const char*>(data), r.consumed));

  // Payload parsers are total too, and strict enough to be canonical.
  if (r.frame.type == FrameType::kResult) {
    auto resp = server::DecodeResponse(r.frame);
    if (resp.ok()) {
      const std::string reencoded = server::EncodeResultFrame(*resp);
      HYGRAPH_FUZZ_CHECK(reencoded == reframed);
    }
    return;
  }
  auto req = server::DecodeRequest(r.frame);
  if (req.ok()) {
    HYGRAPH_FUZZ_CHECK(req->type == r.frame.type);
    HYGRAPH_FUZZ_CHECK(ReencodeRequest(*req) == reframed);
  }

  // A tighter server-side ceiling must stay total as well and can only
  // tighten the verdict, never loosen it.
  const DecodeResult tight = DecodeFrame(data, size, /*max_payload=*/64);
  HYGRAPH_FUZZ_CHECK(tight.progress == DecodeProgress::kError ||
                     r.frame.payload.size() <= 64);
}

}  // namespace hygraph::fuzz
