#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  hygraph::fuzz::FuzzSegmentLoad(data, size);
  return 0;
}
