#include <bit>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "ts/chunk_codec.h"

namespace hygraph::fuzz {

namespace {

bool BitExactEqual(const std::vector<ts::Sample>& a,
                   const std::vector<ts::Sample>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].t != b[i].t) return false;
    if (std::bit_cast<uint64_t>(a[i].value) !=
        std::bit_cast<uint64_t>(b[i].value)) {
      return false;
    }
  }
  return true;
}

}  // namespace

/// Feeds arbitrary bytes to the sealed-chunk decoder. The decoder's
/// contract: total over any input (accept or kCorruption, never a crash or
/// sanitizer report), output bounded by the input size, the streaming
/// decoder agrees with the one-shot decoder, and accepted inputs reach an
/// encode/decode fixed point bit-exactly. (Re-encoding an accepted input
/// need not reproduce the original bytes — the decoder tolerates token
/// choices the encoder never emits, e.g. an explicit window for a zero
/// XOR — but the *samples* must be stable from the first decode onward.)
void FuzzChunkCodec(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  auto decoded = ts::DecodeChunk(bytes);
  if (!decoded.ok()) {
    HYGRAPH_FUZZ_CHECK(decoded.status().code() == StatusCode::kCorruption);
    return;
  }
  // A hostile header can never make the decoder produce more samples than
  // the input could have framed (one timestamp byte per sample minimum).
  HYGRAPH_FUZZ_CHECK(decoded->size() <= size);

  // The streaming decoder must agree with the one-shot decode.
  ts::ChunkDecoder streaming(bytes);
  HYGRAPH_FUZZ_CHECK(streaming.count() == decoded->size());
  ts::Sample s;
  size_t i = 0;
  while (streaming.Next(&s)) {
    HYGRAPH_FUZZ_CHECK(i < decoded->size());
    HYGRAPH_FUZZ_CHECK(s.t == (*decoded)[i].t);
    HYGRAPH_FUZZ_CHECK(std::bit_cast<uint64_t>(s.value) ==
                       std::bit_cast<uint64_t>((*decoded)[i].value));
    ++i;
  }
  HYGRAPH_FUZZ_CHECK(streaming.status().ok());
  HYGRAPH_FUZZ_CHECK(streaming.done());
  HYGRAPH_FUZZ_CHECK(i == decoded->size());

  // Fixed point: re-encoding the accepted samples and decoding again must
  // reproduce them bit-exactly.
  const std::string reencoded = ts::EncodeChunk(*decoded);
  auto redecoded = ts::DecodeChunk(reencoded);
  HYGRAPH_FUZZ_CHECK(redecoded.ok());
  HYGRAPH_FUZZ_CHECK(BitExactEqual(*decoded, *redecoded));
}

}  // namespace hygraph::fuzz
