#include <string>

#include "fuzz/harness.h"
#include "query/lexer.h"
#include "query/parser.h"

namespace hygraph::fuzz {

/// Feeds arbitrary bytes to the HGQL frontend: lexer, full-query parser,
/// and the standalone expression parser. All three must terminate without
/// crashing (the parser's depth limit exists because this harness found
/// stack overflows on deeply nested input) and agree on basic structure:
/// input the lexer rejects can never parse.
void FuzzHgqlParse(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  auto tokens = query::Tokenize(text);

  auto ast = query::Parse(text);
  if (ast.ok()) {
    HYGRAPH_FUZZ_CHECK(tokens.ok());
    // Walking the parsed AST (ToString of every RETURN item) must be safe.
    for (const auto& item : ast->returns) {
      HYGRAPH_FUZZ_CHECK(item.expr != nullptr);
      const std::string rendered = item.expr->ToString();
      HYGRAPH_FUZZ_CHECK(rendered.size() < static_cast<size_t>(-1));
    }
  }

  auto expr = query::ParseExpression(text);
  if (expr.ok()) {
    HYGRAPH_FUZZ_CHECK(tokens.ok());
    HYGRAPH_FUZZ_CHECK(*expr != nullptr);
  }
}

}  // namespace hygraph::fuzz
