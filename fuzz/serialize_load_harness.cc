#include <string>
#include <utility>

#include "core/serialize.h"
#include "fuzz/harness.h"

namespace hygraph::fuzz {

/// Feeds arbitrary bytes to core::Deserialize. Rejection must flow through
/// the Status channel. Accepted inputs must round-trip: re-serializing the
/// loaded instance and loading it again has to succeed and reach a textual
/// fixed point, otherwise saved snapshots would not be stable on disk.
void FuzzSerializeLoad(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  auto loaded = core::Deserialize(text);
  if (!loaded.ok()) return;

  auto first = core::Serialize(*loaded);
  HYGRAPH_FUZZ_CHECK(first.ok());
  auto reloaded = core::Deserialize(*first);
  HYGRAPH_FUZZ_CHECK(reloaded.ok());
  auto second = core::Serialize(*reloaded);
  HYGRAPH_FUZZ_CHECK(second.ok());
  HYGRAPH_FUZZ_CHECK(*first == *second);
}

}  // namespace hygraph::fuzz
