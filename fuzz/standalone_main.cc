// Standalone replay driver, linked into the fuzz_* executables when the
// toolchain has no libFuzzer (-fsanitize=fuzzer is Clang-only). Runs every
// file named on the command line through the harness once, so a corpus
// file or a crash reproducer can be replayed with any compiler:
//
//   ./fuzz_hgql_parse fuzz/corpus/hgql_parse/*
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  int executed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++executed;
  }
  std::printf("replayed %d input(s) without a crash\n", executed);
  return 0;
}
