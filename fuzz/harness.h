#ifndef HYGRAPH_FUZZ_HARNESS_H_
#define HYGRAPH_FUZZ_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace hygraph::fuzz {

/// The untrusted-byte frontiers of the system, one harness each.
/// Every function must be total over arbitrary bytes: it either accepts the
/// input or rejects it through the Status channel — any crash, hang,
/// sanitizer report, or failed HYGRAPH_FUZZ_CHECK is a bug.
///
/// The same functions back both the libFuzzer targets (fuzz_wal_reader,
/// fuzz_serialize_load, fuzz_hgql_parse, fuzz_chunk_codec, fuzz_wire_frame; built under
/// -DHYGRAPH_FUZZ=ON) and
/// the deterministic corpus replay in tests/fuzz_corpus_test.cc, so the
/// harnesses cannot rot independently of the test suite.

/// storage::ReadWal + TruncateWalToValidPrefix over an in-memory file.
void FuzzWalReader(const uint8_t* data, size_t size);

/// core::Deserialize, plus a Serialize/Deserialize fixed-point check on
/// accepted inputs.
void FuzzSerializeLoad(const uint8_t* data, size_t size);

/// query::Tokenize / Parse / ParseExpression.
void FuzzHgqlParse(const uint8_t* data, size_t size);

/// ts::DecodeChunk / ChunkDecoder over the sealed-chunk codec bytes, plus
/// an encode/decode fixed-point check on accepted inputs.
void FuzzChunkCodec(const uint8_t* data, size_t size);

/// server::DecodeFrame / DecodeRequest / DecodeResponse over the HGQL wire
/// protocol, plus a decode/encode fixed-point check on accepted frames.
void FuzzWireFrame(const uint8_t* data, size_t size);

/// storage::ParseColdCatalog over untrusted catalog bytes, then
/// SegmentStore::LoadCatalog + Pin + ts::DecodeChunk with the same bytes
/// planted as segment files — the full cold-chunk adoption frontier.
void FuzzSegmentLoad(const uint8_t* data, size_t size);

}  // namespace hygraph::fuzz

/// Invariant check that stays fatal in release builds (fuzzers run
/// optimized; a plain assert would compile away under NDEBUG).
#define HYGRAPH_FUZZ_CHECK(cond)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "fuzz invariant failed: %s at %s:%d\n",   \
                   #cond, __FILE__, __LINE__);                       \
      std::abort();                                                  \
    }                                                                \
  } while (false)

#endif  // HYGRAPH_FUZZ_HARNESS_H_
