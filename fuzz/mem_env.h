#ifndef HYGRAPH_FUZZ_MEM_ENV_H_
#define HYGRAPH_FUZZ_MEM_ENV_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/env.h"

namespace hygraph::fuzz {

/// A minimal in-memory storage::Env for fuzzing: no disk I/O, so harness
/// executions are hermetic and fast, and every byte the parser under test
/// sees comes straight from the fuzzer input. Not thread-safe; one instance
/// per harness invocation.
class MemEnv : public storage::Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<storage::WritableFile>* file) override {
    files_[path].clear();
    *file = std::make_unique<MemWritableFile>(&files_[path]);
    return Status::OK();
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound(path);
    *out = it->second;
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return files_.count(path) > 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    auto it = files_.find(path);
    if (it == files_.end()) return Status(Status::NotFound(path));
    return static_cast<uint64_t>(it->second.size());
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    auto it = files_.find(from);
    if (it == files_.end()) return Status::NotFound(from);
    files_[to] = std::move(it->second);
    files_.erase(from);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (files_.erase(path) == 0) return Status::NotFound(path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound(path);
    if (size < it->second.size()) it->second.resize(size);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& /*path*/) override {
    return Status::OK();
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* out) override {
    out->clear();
    const std::string prefix = dir.empty() || dir.back() == '/'
                                   ? dir
                                   : dir + "/";
    for (const auto& [path, bytes] : files_) {
      (void)bytes;
      if (path.rfind(prefix, 0) != 0) continue;
      const std::string rest = path.substr(prefix.size());
      if (!rest.empty() && rest.find('/') == std::string::npos) {
        out->push_back(rest);
      }
    }
    return Status::OK();
  }

  /// Seeds `path` with raw bytes (the fuzzer input).
  void SetFile(const std::string& path, std::string bytes) {
    files_[path] = std::move(bytes);
  }

 private:
  class MemWritableFile : public storage::WritableFile {
   public:
    explicit MemWritableFile(std::string* target) : target_(target) {}

    Status Append(const std::string& data) override {
      target_->append(data);
      return Status::OK();
    }
    Status Sync() override { return Status::OK(); }
    Status Close() override { return Status::OK(); }

   private:
    std::string* target_;
  };

  std::map<std::string, std::string> files_;
};

}  // namespace hygraph::fuzz

#endif  // HYGRAPH_FUZZ_MEM_ENV_H_
