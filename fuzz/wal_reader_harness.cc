#include <string>

#include "fuzz/harness.h"
#include "fuzz/mem_env.h"
#include "storage/wal.h"

namespace hygraph::fuzz {

/// Feeds arbitrary bytes to the WAL reader as a log file. The reader's
/// contract: it never errors on corruption (only on real I/O failures,
/// which MemEnv cannot produce), it partitions the file into a valid
/// prefix plus a dropped tail, and truncating to the valid prefix yields a
/// log that re-reads cleanly with the same records.
void FuzzWalReader(const uint8_t* data, size_t size) {
  MemEnv env;
  const std::string path = "fuzz.wal";
  env.SetFile(path, std::string(reinterpret_cast<const char*>(data), size));

  auto scan = storage::ReadWal(&env, path);
  HYGRAPH_FUZZ_CHECK(scan.ok());
  HYGRAPH_FUZZ_CHECK(scan->valid_bytes + scan->dropped_bytes == size);
  HYGRAPH_FUZZ_CHECK(scan->torn_tail == (scan->dropped_bytes > 0));

  // The valid prefix must be exactly the bytes of the intact records.
  uint64_t framed = 0;
  for (const std::string& record : scan->records) {
    framed += storage::EncodeWalFrame(record).size();
  }
  HYGRAPH_FUZZ_CHECK(framed == scan->valid_bytes);

  // Tail repair + re-read is the recovery path: it must converge in one
  // step to a clean log holding the same records.
  HYGRAPH_FUZZ_CHECK(
      storage::TruncateWalToValidPrefix(&env, path, *scan).ok());
  auto rescan = storage::ReadWal(&env, path);
  HYGRAPH_FUZZ_CHECK(rescan.ok());
  HYGRAPH_FUZZ_CHECK(!rescan->torn_tail);
  HYGRAPH_FUZZ_CHECK(rescan->records == scan->records);
}

}  // namespace hygraph::fuzz
