#include "ts/features.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

Series Line(size_t n, double slope_per_day, double intercept = 0.0) {
  Series s("line");
  for (size_t i = 0; i < n; ++i) {
    const Timestamp t = static_cast<Timestamp>(i) * kHour;
    EXPECT_TRUE(
        s.Append(t, intercept + slope_per_day * static_cast<double>(t) /
                                    static_cast<double>(kDay))
            .ok());
  }
  return s;
}

TEST(FeaturesTest, RequiresMinimumLength) {
  Series s("s");
  ASSERT_TRUE(s.Append(0, 1.0).ok());
  ASSERT_TRUE(s.Append(1, 2.0).ok());
  ASSERT_TRUE(s.Append(2, 3.0).ok());
  EXPECT_FALSE(ComputeFeatures(s).ok());
  ASSERT_TRUE(s.Append(3, 4.0).ok());
  EXPECT_TRUE(ComputeFeatures(s).ok());
}

TEST(FeaturesTest, BasicStatistics) {
  Series s("s");
  for (double v : {2.0, 4.0, 6.0, 8.0}) {
    ASSERT_TRUE(s.Append(static_cast<Timestamp>(v), v).ok());
  }
  auto f = ComputeFeatures(s);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->mean, 5.0);
  EXPECT_DOUBLE_EQ(f->min, 2.0);
  EXPECT_DOUBLE_EQ(f->max, 8.0);
  EXPECT_DOUBLE_EQ(f->median, 5.0);
  EXPECT_NEAR(f->energy, (4.0 + 16.0 + 36.0 + 64.0) / 4.0, 1e-12);
}

TEST(FeaturesTest, TrendSlopeInUnitsPerDay) {
  auto f = ComputeFeatures(Line(48, 12.0));
  ASSERT_TRUE(f.ok());
  EXPECT_NEAR(f->trend_slope, 12.0, 1e-6);
  auto flat = ComputeFeatures(Line(48, 0.0, 5.0));
  ASSERT_TRUE(flat.ok());
  EXPECT_NEAR(flat->trend_slope, 0.0, 1e-9);
}

TEST(FeaturesTest, SymmetricSeriesHasZeroSkew) {
  Series s("sym");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.Append(i, std::sin(i * 0.7)).ok());
  }
  auto f = ComputeFeatures(s);
  ASSERT_TRUE(f.ok());
  EXPECT_NEAR(f->skewness, 0.0, 0.2);
}

TEST(FeaturesTest, SpikeRaisesSpikinessAndSkew) {
  Series flat("flat");
  Series spiky("spiky");
  for (int i = 0; i < 100; ++i) {
    const double base = std::sin(i * 0.5);
    ASSERT_TRUE(flat.Append(i, base).ok());
    ASSERT_TRUE(spiky.Append(i, i == 50 ? base + 30.0 : base).ok());
  }
  auto ff = ComputeFeatures(flat);
  auto fs = ComputeFeatures(spiky);
  ASSERT_TRUE(ff.ok());
  ASSERT_TRUE(fs.ok());
  EXPECT_GT(fs->spikiness, ff->spikiness * 2);
  EXPECT_GT(fs->skewness, 1.0);
  EXPECT_GT(fs->kurtosis, 10.0);
}

TEST(FeaturesTest, SmoothSeriesHasHighAcf) {
  Series smooth("smooth");
  Series jumpy("jumpy");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(smooth.Append(i, std::sin(i * 0.05)).ok());
    ASSERT_TRUE(jumpy.Append(i, (i % 2 == 0) ? 1.0 : -1.0).ok());
  }
  auto fs = ComputeFeatures(smooth);
  auto fj = ComputeFeatures(jumpy);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE(fj.ok());
  EXPECT_GT(fs->acf1, 0.9);
  EXPECT_LT(fj->acf1, -0.9);
  EXPECT_GT(fj->crossing_rate, 0.9);
  EXPECT_LT(fs->crossing_rate, 0.1);
}

TEST(FeaturesTest, VectorMatchesFieldsAndNames) {
  auto f = ComputeFeatures(Line(24, 3.0, 1.0));
  ASSERT_TRUE(f.ok());
  const std::vector<double> v = f->ToVector();
  ASSERT_EQ(v.size(), SeriesFeatures::kDimension);
  ASSERT_EQ(SeriesFeatures::Names().size(), SeriesFeatures::kDimension);
  EXPECT_DOUBLE_EQ(v[0], f->mean);
  EXPECT_DOUBLE_EQ(v[1], f->stddev);
  EXPECT_DOUBLE_EQ(v[8], f->trend_slope);
  EXPECT_EQ(SeriesFeatures::Names()[8], "trend_slope");
}

TEST(AutocorrelationTest, KnownValues) {
  // Perfectly alternating series: acf1 = -1 (asymptotically).
  std::vector<double> alt;
  for (int i = 0; i < 1000; ++i) alt.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(Autocorrelation(alt, 1), -1.0, 0.01);
  EXPECT_NEAR(Autocorrelation(alt, 2), 1.0, 0.01);
  EXPECT_DOUBLE_EQ(Autocorrelation({1.0, 1.0}, 5), 0.0);
  EXPECT_DOUBLE_EQ(Autocorrelation({2.0, 2.0, 2.0}, 1), 0.0);  // constant
}

}  // namespace
}  // namespace hygraph::ts
