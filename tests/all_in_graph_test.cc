#include "storage/all_in_graph.h"

#include <gtest/gtest.h>

namespace hygraph::storage {
namespace {

TEST(SampleKeyTest, EncodeDecodeRoundTrip) {
  for (Timestamp t : {Timestamp{0}, Timestamp{1}, Timestamp{1700000000000},
                      Timestamp{-5}, kMaxTimestamp - 1}) {
    const std::string key = AllInGraphStore::EncodeSampleKey("bikes", t);
    Timestamp decoded = 0;
    ASSERT_TRUE(AllInGraphStore::DecodeSampleKey(key, "bikes", &decoded))
        << key;
    EXPECT_EQ(decoded, t);
  }
}

TEST(SampleKeyTest, DecodeRejectsForeignKeys) {
  Timestamp t = 0;
  EXPECT_FALSE(AllInGraphStore::DecodeSampleKey("name", "bikes", &t));
  EXPECT_FALSE(AllInGraphStore::DecodeSampleKey(
      AllInGraphStore::EncodeSampleKey("docks", 5), "bikes", &t));
  EXPECT_FALSE(AllInGraphStore::DecodeSampleKey("__ts__bikes__xx", "bikes",
                                                &t));
}

TEST(SampleKeyTest, LexicographicOrderMatchesTimeOrder) {
  // Not exploited by the engine, but the encoding should still be sane.
  EXPECT_LT(AllInGraphStore::EncodeSampleKey("b", 5),
            AllInGraphStore::EncodeSampleKey("b", 50));
  EXPECT_LT(AllInGraphStore::EncodeSampleKey("b", -1),
            AllInGraphStore::EncodeSampleKey("b", 0));
}

TEST(AllInGraphTest, SamplesBecomeProperties) {
  AllInGraphStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({"S"}, {});
  ASSERT_TRUE(store.AppendVertexSample(v, "bikes", 100, 1.5).ok());
  ASSERT_TRUE(store.AppendVertexSample(v, "bikes", 200, 2.5).ok());
  // The property map of the vertex physically holds the samples.
  EXPECT_EQ((*store.topology().GetVertex(v))->properties.size(), 2u);
}

TEST(AllInGraphTest, RangeScanFiltersAndSorts) {
  AllInGraphStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({"S"}, {});
  // Insert out of order: the scan must still come back time-sorted.
  ASSERT_TRUE(store.AppendVertexSample(v, "bikes", 300, 3.0).ok());
  ASSERT_TRUE(store.AppendVertexSample(v, "bikes", 100, 1.0).ok());
  ASSERT_TRUE(store.AppendVertexSample(v, "bikes", 200, 2.0).ok());
  auto series = store.VertexSeriesRange(v, "bikes", Interval{100, 300});
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 2u);
  EXPECT_EQ(series->at(0).t, 100);
  EXPECT_EQ(series->at(1).t, 200);
}

TEST(AllInGraphTest, MultipleSeriesKeysCoexist) {
  AllInGraphStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({"S"}, {});
  ASSERT_TRUE(store.AppendVertexSample(v, "bikes", 100, 1.0).ok());
  ASSERT_TRUE(store.AppendVertexSample(v, "docks", 100, 9.0).ok());
  auto bikes = store.VertexSeriesRange(v, "bikes", Interval::All());
  auto docks = store.VertexSeriesRange(v, "docks", Interval::All());
  ASSERT_TRUE(bikes.ok());
  ASSERT_TRUE(docks.ok());
  EXPECT_EQ(bikes->size(), 1u);
  EXPECT_DOUBLE_EQ(docks->at(0).value, 9.0);
}

TEST(AllInGraphTest, StaticPropertiesDoNotPolluteSeries) {
  AllInGraphStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex(
      {"S"}, {{"name", Value("S1")}, {"capacity", Value(30)}});
  ASSERT_TRUE(store.AppendVertexSample(v, "bikes", 100, 1.0).ok());
  auto series = store.VertexSeriesRange(v, "bikes", Interval::All());
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 1u);
  // And series properties do not break static reads.
  EXPECT_EQ(*store.topology().GetVertexProperty(v, "name"), Value("S1"));
}

TEST(AllInGraphTest, EdgeSeries) {
  AllInGraphStore store;
  graph::PropertyGraph* g = store.mutable_topology();
  const graph::VertexId a = g->AddVertex({}, {});
  const graph::VertexId b = g->AddVertex({}, {});
  const graph::EdgeId e = *g->AddEdge(a, b, "TRIP", {});
  ASSERT_TRUE(store.AppendEdgeSample(e, "trips", 50, 7.0).ok());
  auto series = store.EdgeSeriesRange(e, "trips", Interval::All());
  ASSERT_TRUE(series.ok());
  EXPECT_DOUBLE_EQ(series->at(0).value, 7.0);
}

TEST(AllInGraphTest, DuplicateTimestampOverwrites) {
  AllInGraphStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({}, {});
  ASSERT_TRUE(store.AppendVertexSample(v, "x", 100, 1.0).ok());
  ASSERT_TRUE(store.AppendVertexSample(v, "x", 100, 2.0).ok());
  auto series = store.VertexSeriesRange(v, "x", Interval::All());
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 1u);
  EXPECT_DOUBLE_EQ(series->at(0).value, 2.0);
}

TEST(AllInGraphTest, UnknownEntityFails) {
  AllInGraphStore store;
  EXPECT_FALSE(store.AppendVertexSample(7, "x", 1, 1.0).ok());
  EXPECT_FALSE(store.VertexSeriesRange(7, "x", Interval::All()).ok());
  EXPECT_FALSE(store.AppendEdgeSample(7, "x", 1, 1.0).ok());
}

TEST(AllInGraphTest, MissingSeriesIsEmptyNotError) {
  AllInGraphStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({}, {});
  auto series = store.VertexSeriesRange(v, "nothing", Interval::All());
  ASSERT_TRUE(series.ok());
  EXPECT_TRUE(series->empty());
}

TEST(AllInGraphTest, DefaultAggregateGoesThroughScan) {
  AllInGraphStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({}, {});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.AppendVertexSample(v, "x", i * 10, i).ok());
  }
  auto avg =
      store.VertexSeriesAggregate(v, "x", Interval{0, 100}, ts::AggKind::kAvg);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 4.5);
  auto count = store.VertexSeriesAggregate(v, "x", Interval{50, 100},
                                           ts::AggKind::kCount);
  EXPECT_DOUBLE_EQ(*count, 5.0);
}

}  // namespace
}  // namespace hygraph::storage
