#include "core/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "workloads/fraud_workload.h"

namespace hygraph::core {
namespace {

ts::MultiSeries TwoVar() {
  ts::MultiSeries ms("m x", {"a", "b c"});
  EXPECT_TRUE(ms.AppendRow(10, {1.5, -2.25}).ok());
  EXPECT_TRUE(ms.AppendRow(20, {3.0, 0.125}).ok());
  return ms;
}

HyGraph RichInstance() {
  HyGraph hg;
  const VertexId user = *hg.AddPgVertex(
      {"User", "VIP"},
      {{"name", Value("Alice Smith")},
       {"age", Value(30)},
       {"score", Value(0.1 + 0.2)},  // non-representable double
       {"active", Value(true)},
       {"nickname", Value("")},
       {"notes", Value()}},
      Interval{100, 100000});
  const VertexId card = *hg.AddTsVertex({"CreditCard"}, TwoVar());
  (void)*hg.SetVertexSeriesProperty(user, "activity", TwoVar());
  (void)*hg.AddPgEdge(user, card, "USES", {{"since", Value(2020)}},
                      Interval{200, 90000});
  (void)*hg.AddTsEdge(card, user, "FEEDBACK", TwoVar());
  const SubgraphId s = *hg.CreateSubgraph(
      {"Cluster"}, {{"kind", Value("test")}}, Interval{100, 50000});
  (void)hg.AddToSubgraph(s, ElementRef::OfVertex(user), Interval{200, 400});
  (void)hg.AddToSubgraph(s, ElementRef::OfEdge(0), Interval{300, 500});
  return hg;
}

TEST(EncodeFieldTest, RoundTripsAwkwardStrings) {
  for (const std::string& raw :
       {std::string("plain"), std::string("with space"),
        std::string("pct%sign"), std::string("tab\tand\nnewline"),
        std::string(""), std::string("%00")}) {
    auto decoded = DecodeField(EncodeField(raw));
    ASSERT_TRUE(decoded.ok()) << raw;
    EXPECT_EQ(*decoded, raw);
  }
}

TEST(EncodeFieldTest, EncodedFormHasNoSpaces) {
  const std::string encoded = EncodeField("a b\tc\nd");
  EXPECT_EQ(encoded.find(' '), std::string::npos);
  EXPECT_EQ(encoded.find('\t'), std::string::npos);
  EXPECT_EQ(encoded.find('\n'), std::string::npos);
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  HyGraph original = RichInstance();
  auto text = Serialize(original);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto restored = Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Validate().ok());

  EXPECT_EQ(restored->VertexCount(), original.VertexCount());
  EXPECT_EQ(restored->EdgeCount(), original.EdgeCount());
  EXPECT_EQ(restored->TsVertices(), original.TsVertices());
  EXPECT_EQ(restored->TsEdges(), original.TsEdges());
  EXPECT_EQ(restored->SeriesPoolSize(), original.SeriesPoolSize());

  // Vertex payloads.
  const VertexId user = 0;
  EXPECT_EQ(**restored->structure().GetVertex(user),
            **original.structure().GetVertex(user));
  EXPECT_EQ(*restored->VertexValidity(user), *original.VertexValidity(user));
  // δ series.
  EXPECT_EQ(**restored->VertexSeries(1), **original.VertexSeries(1));
  // Pooled series property resolves to identical content.
  EXPECT_EQ(**restored->GetVertexSeriesProperty(user, "activity"),
            **original.GetVertexSeriesProperty(user, "activity"));
  // Edges.
  EXPECT_EQ(*restored->EdgeValidity(0), *original.EdgeValidity(0));
  EXPECT_EQ(**restored->EdgeSeries(1), **original.EdgeSeries(1));
  // Subgraphs.
  EXPECT_EQ(restored->SubgraphIds(), original.SubgraphIds());
  EXPECT_EQ(*restored->SubgraphValidity(0), *original.SubgraphValidity(0));
  auto members = restored->SubgraphAt(0, 350);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->vertices.size(), 1u);
  EXPECT_EQ(members->edges.size(), 1u);
}

TEST(SerializeTest, CanonicalFormIsStable) {
  HyGraph original = RichInstance();
  auto text = Serialize(original);
  ASSERT_TRUE(text.ok());
  auto restored = Deserialize(*text);
  ASSERT_TRUE(restored.ok());
  auto text2 = Serialize(*restored);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(*text, *text2);
}

TEST(SerializeTest, VertexEquality) {
  // Sanity for the Vertex == used above.
  HyGraph hg = RichInstance();
  auto text = Serialize(hg);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("HYGRAPH 1"), std::string::npos);
  EXPECT_NE(text->find("\nV 0 PG "), std::string::npos);
  EXPECT_NE(text->find("\nE 0 PG "), std::string::npos);
  EXPECT_NE(text->find("\nP 0 "), std::string::npos);
  EXPECT_NE(text->find("\nS 0 "), std::string::npos);
  EXPECT_NE(text->find("\nM 0 V 0 "), std::string::npos);
}

TEST(SerializeTest, GeneratedWorldRoundTrips) {
  workloads::FraudConfig config;
  config.users = 25;
  config.merchants = 9;
  config.merchant_clusters = 3;
  config.days = 3;
  auto hg = workloads::GenerateFraudHyGraph(config);
  ASSERT_TRUE(hg.ok());
  auto text = Serialize(*hg);
  ASSERT_TRUE(text.ok());
  auto restored = Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Validate().ok());
  EXPECT_EQ(restored->VertexCount(), hg->VertexCount());
  EXPECT_EQ(restored->EdgeCount(), hg->EdgeCount());
  auto text2 = Serialize(*restored);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(*text, *text2);
}

TEST(DeserializeTest, RejectsMalformedInput) {
  EXPECT_FALSE(Deserialize("").ok());
  EXPECT_FALSE(Deserialize("NOPE 1\n").ok());
  EXPECT_FALSE(Deserialize("HYGRAPH 9\n").ok());
  EXPECT_FALSE(Deserialize("HYGRAPH 1\nV 0 XX\n").ok());
  EXPECT_FALSE(Deserialize("HYGRAPH 1\nV 5 PG 0 10 L 0 P 0\n").ok());
  EXPECT_FALSE(Deserialize("HYGRAPH 1\nZ nonsense\n").ok());
  // Edge referencing a vertex that does not exist.
  EXPECT_FALSE(
      Deserialize("HYGRAPH 1\nE 0 PG 0 1 x 0 10 P 0\n").ok());
  // Dangling pooled-series reference.
  EXPECT_FALSE(Deserialize("HYGRAPH 1\nV 0 PG 0 10 L 0 P 1 k ts:7\n").ok());
}

TEST(SerializeTest, FileRoundTrip) {
  HyGraph hg = RichInstance();
  const std::string path = "/tmp/hygraph_serialize_test.hg";
  ASSERT_TRUE(SaveToFile(hg, path).ok());
  auto restored = LoadFromFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->VertexCount(), hg.VertexCount());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadFromFile("/tmp/definitely_missing_glorp.hg").ok());
}

TEST(ChecksumTest, SerializeEndsWithChecksumTrailer) {
  auto text = Serialize(RichInstance());
  ASSERT_TRUE(text.ok());
  const size_t pos = text->rfind("CHECKSUM ");
  ASSERT_NE(pos, std::string::npos);
  // The trailer is the final line and nothing follows it.
  EXPECT_EQ(text->find('\n', pos), text->size() - 1);
}

TEST(ChecksumTest, ChecksumlessInputStillLoads) {
  auto text = Serialize(RichInstance());
  ASSERT_TRUE(text.ok());
  const size_t pos = text->rfind("CHECKSUM ");
  ASSERT_NE(pos, std::string::npos);
  auto restored = Deserialize(text->substr(0, pos));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Validate().ok());
}

TEST(ChecksumTest, SingleBitFlipIsCaught) {
  auto text = Serialize(RichInstance());
  ASSERT_TRUE(text.ok());
  // Corrupt a byte inside a string payload ("Alice" -> still parseable),
  // so only the checksum can notice.
  const size_t pos = text->find("Alice");
  ASSERT_NE(pos, std::string::npos);
  std::string corrupt = *text;
  corrupt[pos] ^= 0x01;
  auto restored = Deserialize(corrupt);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
  EXPECT_NE(restored.status().message().find("checksum"), std::string::npos);
}

TEST(ChecksumTest, DataAfterTrailerIsRejected) {
  auto text = Serialize(RichInstance());
  ASSERT_TRUE(text.ok());
  auto restored = Deserialize(*text + "V 99 PG 0 10 L 0 P 0\n");
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(ChecksumTest, WrongChecksumValueIsRejected) {
  auto restored = Deserialize("HYGRAPH 1\nCHECKSUM 00000000\n");
  // Either the value mismatches or it coincidentally matches nothing —
  // the point is a wrong digest never parses as OK.
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

// Table-driven corruption regression. Documents that are definitely
// inconsistent must fail with a clean Status; arbitrary truncations must
// never crash, and whatever does load must still validate (a consistent
// checksum-less prefix is allowed by the compatibility rule — which is
// exactly why snapshots additionally require the trailer).
TEST(CorruptionTest, MangledDocumentsFailCleanly) {
  auto text = Serialize(RichInstance());
  ASSERT_TRUE(text.ok());
  struct Case {
    std::string what;
    std::string doc;
  };
  std::vector<Case> must_fail;
  must_fail.push_back({"empty input", ""});
  must_fail.push_back({"whitespace only", "\n\n\n"});
  must_fail.push_back(
      {"truncated mid-trailer", text->substr(0, text->size() - 4)});
  // Duplicated id: repeat the first V record.
  {
    const size_t v = text->find("\nV 0 ");
    ASSERT_NE(v, std::string::npos);
    const size_t end = text->find('\n', v + 1);
    std::string doc = *text;
    doc.insert(end + 1, text->substr(v + 1, end - v));
    must_fail.push_back({"duplicated vertex id", doc});
  }
  for (const Case& c : must_fail) {
    auto restored = Deserialize(c.doc);
    EXPECT_FALSE(restored.ok()) << c.what;
  }

  // Truncation at every byte of the document: never a crash, and anything
  // that loads despite the damage still passes full validation.
  for (size_t cut = 0; cut < text->size(); ++cut) {
    auto restored = Deserialize(text->substr(0, cut));
    if (restored.ok()) {
      EXPECT_TRUE(restored->Validate().ok()) << "cut=" << cut;
    } else {
      EXPECT_FALSE(restored.status().message().empty()) << "cut=" << cut;
    }
  }
}

TEST(SaveToFileTest, WriteIsAtomicNoTempLeftBehind) {
  const std::string path = "/tmp/hygraph_serialize_atomic_test.hg";
  ASSERT_TRUE(SaveToFile(RichInstance(), path).ok());
  // The temp file must be gone after a successful save.
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(SaveToFileTest, UnwritableDirectoryReportsIOError) {
  Status s = SaveToFile(RichInstance(),
                        "/tmp/hygraph_no_such_dir_glorp/file.hg");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(SaveToFileTest, OnDiskBitFlipIsDetectedByLoad) {
  const std::string path = "/tmp/hygraph_serialize_bitflip_test.hg";
  ASSERT_TRUE(SaveToFile(RichInstance(), path).ok());
  // Flip one bit in place.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
  auto restored = LoadFromFile(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializeTest, DenseIdRequirement) {
  HyGraph hg = RichInstance();
  // Remove an edge via the escape hatch: ids are no longer dense.
  ASSERT_TRUE(hg.mutable_tpg()->mutable_graph()->RemoveEdge(0).ok());
  EXPECT_FALSE(Serialize(hg).ok());
}

}  // namespace
}  // namespace hygraph::core
