#include "core/builder.h"

#include <gtest/gtest.h>

namespace hygraph::core {
namespace {

ts::MultiSeries OneVar(std::initializer_list<double> values) {
  ts::MultiSeries ms("s", {"v"});
  Timestamp t = 0;
  for (double v : values) {
    EXPECT_TRUE(ms.AppendRow(t, {v}).ok());
    t += kMinute;
  }
  return ms;
}

TEST(BuilderTest, FluentConstruction) {
  HyGraphBuilder b;
  b.PgVertex("alice", {"User"}, {{"name", Value("Alice")}})
      .TsVertex("card", {"CreditCard"}, OneVar({100, 90}))
      .PgVertex("shop", {"Merchant"})
      .PgEdge("alice", "card", "USES")
      .TsEdge("card", "shop", "TX", OneVar({50}))
      .VertexSeriesProperty("alice", "activity", OneVar({1, 2, 3}));
  auto hg = b.Build();
  ASSERT_TRUE(hg.ok());
  EXPECT_EQ(hg->VertexCount(), 3u);
  EXPECT_EQ(hg->EdgeCount(), 2u);
  EXPECT_EQ(hg->TsVertices().size(), 1u);
  EXPECT_EQ(hg->TsEdges().size(), 1u);
  EXPECT_EQ(hg->SeriesPoolSize(), 1u);
  EXPECT_TRUE(hg->Validate().ok());
}

TEST(BuilderTest, DuplicateNameFails) {
  HyGraphBuilder b;
  b.PgVertex("x", {}).PgVertex("x", {});
  auto hg = b.Build();
  EXPECT_FALSE(hg.ok());
  EXPECT_EQ(hg.status().code(), StatusCode::kAlreadyExists);
}

TEST(BuilderTest, UnknownEndpointFails) {
  HyGraphBuilder b;
  b.PgVertex("a", {}).PgEdge("a", "ghost", "E");
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, FirstErrorWinsAndStopsWork) {
  HyGraphBuilder b;
  b.PgEdge("nope1", "nope2", "E")  // first error
      .PgVertex("a", {})           // skipped
      .PgEdge("a", "a", "E");      // would be a second error
  auto hg = b.Build();
  ASSERT_FALSE(hg.ok());
  EXPECT_NE(hg.status().message().find("nope1"), std::string::npos);
}

TEST(BuilderTest, IdOfResolvesBeforeBuild) {
  HyGraphBuilder b;
  b.PgVertex("a", {"X"});
  auto id = b.IdOf("a");
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(b.IdOf("b").ok());
}

TEST(BuilderTest, ValidityPropagates) {
  HyGraphBuilder b;
  b.PgVertex("a", {}, {}, Interval{0, 100})
      .PgVertex("b", {}, {}, Interval{0, 100})
      .PgEdge("a", "b", "E", {}, Interval{0, 200});  // violates containment
  EXPECT_FALSE(b.Build().ok());
}

}  // namespace
}  // namespace hygraph::core
