#include "temporal/snapshot.h"

#include <gtest/gtest.h>

namespace hygraph::temporal {
namespace {

// World: a exists [0,100), b [50,150), edge a-b [60,90).
TemporalPropertyGraph World(VertexId* a, VertexId* b, EdgeId* e) {
  TemporalPropertyGraph tpg;
  *a = *tpg.AddVertex({"A"}, {{"name", Value("a")}}, Interval{0, 100});
  *b = *tpg.AddVertex({"B"}, {}, Interval{50, 150});
  *e = *tpg.AddEdge(*a, *b, "E", {{"w", Value(1)}}, Interval{60, 90});
  return tpg;
}

TEST(SnapshotTest, MaterializesValidElements) {
  VertexId a, b;
  EdgeId e;
  TemporalPropertyGraph tpg = World(&a, &b, &e);
  const Snapshot snap = TakeSnapshot(tpg, 70);
  EXPECT_EQ(snap.at, 70);
  EXPECT_EQ(snap.graph.VertexCount(), 2u);
  EXPECT_EQ(snap.graph.EdgeCount(), 1u);
  // Labels and properties preserved.
  const VertexId sa = snap.tpg_to_snapshot.at(a);
  EXPECT_TRUE((*snap.graph.GetVertex(sa))->HasLabel("A"));
  EXPECT_EQ(*snap.graph.GetVertexProperty(sa, "name"), Value("a"));
  EXPECT_EQ(snap.snapshot_to_tpg.at(sa), a);
}

TEST(SnapshotTest, BeforeEdgeValidity) {
  VertexId a, b;
  EdgeId e;
  TemporalPropertyGraph tpg = World(&a, &b, &e);
  const Snapshot snap = TakeSnapshot(tpg, 55);
  EXPECT_EQ(snap.graph.VertexCount(), 2u);
  EXPECT_EQ(snap.graph.EdgeCount(), 0u);
}

TEST(SnapshotTest, OnlyOneVertexAlive) {
  VertexId a, b;
  EdgeId e;
  TemporalPropertyGraph tpg = World(&a, &b, &e);
  const Snapshot early = TakeSnapshot(tpg, 10);
  EXPECT_EQ(early.graph.VertexCount(), 1u);
  const Snapshot late = TakeSnapshot(tpg, 120);
  EXPECT_EQ(late.graph.VertexCount(), 1u);
  const Snapshot nothing = TakeSnapshot(tpg, 500);
  EXPECT_EQ(nothing.graph.VertexCount(), 0u);
}

TEST(DiffTest, AddedAndRemoved) {
  VertexId a, b;
  EdgeId e;
  TemporalPropertyGraph tpg = World(&a, &b, &e);
  const SnapshotDiff diff = DiffSnapshots(tpg, 10, 70);
  EXPECT_EQ(diff.added_vertices, (std::vector<VertexId>{b}));
  EXPECT_TRUE(diff.removed_vertices.empty());
  EXPECT_EQ(diff.added_edges, (std::vector<EdgeId>{e}));
  EXPECT_TRUE(diff.removed_edges.empty());
}

TEST(DiffTest, RemovalDirection) {
  VertexId a, b;
  EdgeId e;
  TemporalPropertyGraph tpg = World(&a, &b, &e);
  const SnapshotDiff diff = DiffSnapshots(tpg, 70, 120);
  EXPECT_EQ(diff.removed_vertices, (std::vector<VertexId>{a}));
  EXPECT_EQ(diff.removed_edges, (std::vector<EdgeId>{e}));
  EXPECT_TRUE(diff.added_vertices.empty());
}

TEST(DiffTest, EmptyWhenNothingChanges) {
  VertexId a, b;
  EdgeId e;
  TemporalPropertyGraph tpg = World(&a, &b, &e);
  const SnapshotDiff diff = DiffSnapshots(tpg, 70, 75);
  EXPECT_TRUE(diff.empty());
}

TEST(SnapshotTest, SnapshotIsDecoupledCopy) {
  VertexId a, b;
  EdgeId e;
  TemporalPropertyGraph tpg = World(&a, &b, &e);
  Snapshot snap = TakeSnapshot(tpg, 70);
  const VertexId sa = snap.tpg_to_snapshot.at(a);
  ASSERT_TRUE(
      snap.graph.SetVertexProperty(sa, "name", Value("mutated")).ok());
  EXPECT_EQ(*tpg.graph().GetVertexProperty(a, "name"), Value("a"));
}

}  // namespace
}  // namespace hygraph::temporal
