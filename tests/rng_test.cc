#include "common/rng.h"

#include <gtest/gtest.h>

namespace hygraph {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t x = rng.NextInRange(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    if (x == -2) saw_lo = true;
    if (x == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, PoissonMean) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(29);
  const int n = 50000;
  size_t rank0 = 0;
  size_t rank_high = 0;
  for (int i = 0; i < n; ++i) {
    const uint64_t r = rng.NextZipf(100, 1.2);
    EXPECT_LT(r, 100u);
    if (r == 0) ++rank0;
    if (r >= 50) ++rank_high;
  }
  EXPECT_GT(rank0, rank_high);  // heavy head
  EXPECT_GT(rank0, static_cast<size_t>(n / 20));
}

TEST(RngTest, ZipfBoundaryCases) {
  Rng rng(31);
  EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.NextZipf(2, 1.0), 2u);
}

}  // namespace
}  // namespace hygraph
