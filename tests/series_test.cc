#include "ts/series.h"

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

Series MakeSeries(std::initializer_list<std::pair<Timestamp, double>> points) {
  Series s("test");
  for (const auto& [t, v] : points) EXPECT_TRUE(s.Append(t, v).ok());
  return s;
}

TEST(SeriesTest, AppendMaintainsOrder) {
  Series s("x");
  EXPECT_TRUE(s.Append(10, 1.0).ok());
  EXPECT_TRUE(s.Append(20, 2.0).ok());
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.front().t, 10);
  EXPECT_EQ(s.back().t, 20);
}

TEST(SeriesTest, AppendRejectsOutOfOrder) {
  Series s("x");
  ASSERT_TRUE(s.Append(10, 1.0).ok());
  EXPECT_FALSE(s.Append(10, 2.0).ok());  // equal timestamp rejected
  EXPECT_FALSE(s.Append(5, 2.0).ok());
  EXPECT_EQ(s.size(), 1u);  // failed appends do not mutate
}

TEST(SeriesTest, InsertSortsAndReplaces) {
  Series s("x");
  s.Insert(20, 2.0);
  s.Insert(10, 1.0);
  s.Insert(30, 3.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.at(0).t, 10);
  EXPECT_EQ(s.at(2).t, 30);
  s.Insert(20, 9.0);  // replace
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.at(1).value, 9.0);
}

TEST(SeriesTest, FromVectorsValidates) {
  auto ok = Series::FromVectors("s", {1, 2, 3}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 3u);
  EXPECT_FALSE(Series::FromVectors("s", {1, 2}, {1.0}).ok());
  EXPECT_FALSE(Series::FromVectors("s", {2, 1}, {1.0, 2.0}).ok());
}

TEST(SeriesTest, TimeSpanHalfOpen) {
  Series s = MakeSeries({{10, 1.0}, {30, 3.0}});
  const Interval span = s.TimeSpan();
  EXPECT_EQ(span.start, 10);
  EXPECT_EQ(span.end, 31);
  EXPECT_TRUE(Series("e").TimeSpan().empty());
}

TEST(SeriesTest, RangeIndicesBinarySearch) {
  Series s = MakeSeries({{10, 1}, {20, 2}, {30, 3}, {40, 4}});
  auto [lo, hi] = s.RangeIndices(Interval{15, 35});
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 3u);
  auto [lo2, hi2] = s.RangeIndices(Interval{10, 41});
  EXPECT_EQ(lo2, 0u);
  EXPECT_EQ(hi2, 4u);
  auto [lo3, hi3] = s.RangeIndices(Interval{100, 200});
  EXPECT_EQ(lo3, hi3);
}

TEST(SeriesTest, SliceCopiesRange) {
  Series s = MakeSeries({{10, 1}, {20, 2}, {30, 3}});
  Series sub = s.Slice(Interval{15, 30});
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub.at(0).t, 20);
}

TEST(SeriesTest, ValueAtCarriesForward) {
  Series s = MakeSeries({{10, 1.0}, {20, 2.0}});
  EXPECT_DOUBLE_EQ(*s.ValueAt(10), 1.0);
  EXPECT_DOUBLE_EQ(*s.ValueAt(15), 1.0);
  EXPECT_DOUBLE_EQ(*s.ValueAt(25), 2.0);
  EXPECT_FALSE(s.ValueAt(9).ok());
}

TEST(SeriesTest, RetainDropsOutside) {
  Series s = MakeSeries({{10, 1}, {20, 2}, {30, 3}, {40, 4}});
  const size_t removed = s.Retain(Interval{20, 40});
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(0).t, 20);
  EXPECT_EQ(s.at(1).t, 30);
}

TEST(SeriesTest, ValuesAndTimestamps) {
  Series s = MakeSeries({{1, 10.0}, {2, 20.0}});
  EXPECT_EQ(s.Values(), (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(s.Timestamps(), (std::vector<Timestamp>{1, 2}));
}

TEST(SeriesTest, EqualityIgnoresName) {
  Series a = MakeSeries({{1, 1.0}});
  Series b("other");
  ASSERT_TRUE(b.Append(1, 1.0).ok());
  EXPECT_EQ(a, b);
}

// Property-style sweep: Append-only construction always yields a strictly
// increasing axis regardless of sampling step.
class SeriesAxisSweep : public ::testing::TestWithParam<Duration> {};

TEST_P(SeriesAxisSweep, AxisStrictlyIncreasing) {
  const Duration step = GetParam();
  Series s("sweep");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(s.Append(1000 + i * step, static_cast<double>(i)).ok());
  }
  const auto times = s.Timestamps();
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
  }
  EXPECT_EQ(s.Slice(s.TimeSpan()).size(), s.size());
}

INSTANTIATE_TEST_SUITE_P(Steps, SeriesAxisSweep,
                         ::testing::Values(1, 7, 1000, 60000, 3600000));

}  // namespace
}  // namespace hygraph::ts
