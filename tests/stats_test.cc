#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv_percent(), 0.0);
  // No samples means no extremum; both are pinned to 0, never stale.
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleElement) {
  RunningStats s;
  s.Add(-7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), -7.5);
  EXPECT_DOUBLE_EQ(s.min(), -7.5);  // min == max == the sole sample,
  EXPECT_DOUBLE_EQ(s.max(), -7.5);  // even when it is negative
  EXPECT_DOUBLE_EQ(s.sum(), -7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // n-1 denominator needs 2 samples
  EXPECT_DOUBLE_EQ(s.cv_percent(), 0.0);
}

TEST(RunningStatsTest, NegativeSamplesDoNotConfuseExtrema) {
  // Regression guard: min_/max_ start at 0.0; the first Add must seed both
  // rather than folding against the initial zeros.
  RunningStats s;
  s.Add(-3.0);
  s.Add(-1.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -1.0);
  RunningStats t;
  t.Add(5.0);
  t.Add(8.0);
  EXPECT_DOUBLE_EQ(t.min(), 5.0);
  EXPECT_DOUBLE_EQ(t.max(), 8.0);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, CvPercent) {
  RunningStats s;
  s.Add(10.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.cv_percent(), 0.0);
  RunningStats t;
  t.Add(5.0);
  t.Add(15.0);
  // mean 10, sample sd = sqrt(50) ≈ 7.071 → CV ≈ 70.71%.
  EXPECT_NEAR(t.cv_percent(), 70.710678, 1e-4);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StdDevTest, Basics) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(QuantileTest, InterpolatesLinearly) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 1.75);
}

TEST(QuantileTest, UnsortedInputAndClamping) {
  std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 2.0), 9.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, SingleElementIsThatElementForAnyQ) {
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(Quantile({42.0}, q), 42.0) << "q=" << q;
  }
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({6.0}), 6.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(PearsonTest, UncorrelatedNearZero) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 1, 2}, {5, 5, 9, 9}), 0.0, 1e-12);
}

}  // namespace
}  // namespace hygraph
