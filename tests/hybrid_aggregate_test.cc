#include "analytics/hybrid_aggregate.h"

#include <gtest/gtest.h>

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

// Four stations in two districts; each has a 4-hour "history" series
// sampled every 30 minutes with a district-specific constant value.
class HybridAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      const int district = i / 2;
      const VertexId v = *hg_.AddPgVertex(
          {"Station"},
          {{"district", Value(district)}, {"name", Value("S" + std::to_string(i))}});
      ts::MultiSeries ms("h", {"v"});
      for (int s = 0; s < 8; ++s) {
        ASSERT_TRUE(
            ms.AppendRow(s * 30 * kMinute, {10.0 * (district + 1)}).ok());
      }
      ASSERT_TRUE(hg_.SetVertexSeriesProperty(v, "history", std::move(ms))
                      .ok());
      stations_.push_back(v);
    }
    // Trips: within district 0, and one across districts.
    ASSERT_TRUE(hg_.AddPgEdge(stations_[0], stations_[1], "TRIP", {}).ok());
    ASSERT_TRUE(hg_.AddPgEdge(stations_[1], stations_[2], "TRIP", {}).ok());
    ASSERT_TRUE(hg_.AddPgEdge(stations_[2], stations_[3], "TRIP", {}).ok());
  }

  HybridAggregateOptions DefaultOptions() {
    HybridAggregateOptions options;
    options.group_key = "district";
    options.granularity = kHour;
    return options;
  }

  HyGraph hg_;
  std::vector<VertexId> stations_;
};

TEST_F(HybridAggregateTest, CollapsesStructureAndSeries) {
  auto result = HybridAggregate(hg_, DefaultOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->summary.VertexCount(), 2u);
  // Super-vertices are TS vertices (first-class series entities).
  for (VertexId v : result->summary.TsVertices()) {
    auto series = result->summary.VertexSeries(v);
    ASSERT_TRUE(series.ok());
    EXPECT_GT((*series)->size(), 0u);
  }
  EXPECT_EQ(result->summary.TsVertices().size(), 2u);
  EXPECT_EQ(result->vertex_to_super.size(), 4u);
}

TEST_F(HybridAggregateTest, MergedSeriesValuesCorrect) {
  auto result = HybridAggregate(hg_, DefaultOptions());
  ASSERT_TRUE(result.ok());
  // District 0 members are constant 10 -> merged avg must be 10 per bucket;
  // the 4-hour span at 1h granularity yields 4 buckets.
  const VertexId super0 = result->vertex_to_super.at(stations_[0]);
  auto series = result->summary.VertexSeries(super0);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ((*series)->size(), 4u);
  for (size_t r = 0; r < (*series)->size(); ++r) {
    EXPECT_DOUBLE_EQ((*series)->at(r, 0), 10.0);
  }
  const VertexId super1 = result->vertex_to_super.at(stations_[2]);
  auto series1 = result->summary.VertexSeries(super1);
  EXPECT_DOUBLE_EQ((*series1)->at(0, 0), 20.0);
}

TEST_F(HybridAggregateTest, SumMergeAddsMembers) {
  HybridAggregateOptions options = DefaultOptions();
  options.merge = ts::AggKind::kSum;
  auto result = HybridAggregate(hg_, options);
  ASSERT_TRUE(result.ok());
  const VertexId super0 = result->vertex_to_super.at(stations_[0]);
  auto series = result->summary.VertexSeries(super0);
  // Two members, each contributing 10 per bucket -> 20.
  EXPECT_DOUBLE_EQ((*series)->at(0, 0), 20.0);
}

TEST_F(HybridAggregateTest, SuperEdgesCollapse) {
  auto result = HybridAggregate(hg_, DefaultOptions());
  ASSERT_TRUE(result.ok());
  // Edges: d0->d0 (intra), d0->d1, d1->d1 -> 3 super-edges.
  EXPECT_EQ(result->summary.EdgeCount(), 3u);
  for (graph::EdgeId e : result->summary.PgEdges()) {
    auto count = result->summary.GetEdgeProperty(e, "count");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, Value(1));
  }
}

TEST_F(HybridAggregateTest, GroupPropertiesKept) {
  auto result = HybridAggregate(hg_, DefaultOptions());
  ASSERT_TRUE(result.ok());
  const VertexId super0 = result->vertex_to_super.at(stations_[0]);
  EXPECT_EQ(*result->summary.GetVertexProperty(super0, "district"),
            Value(0));
  EXPECT_EQ(*result->summary.GetVertexProperty(super0, "count"), Value(2));
}

TEST_F(HybridAggregateTest, Validation) {
  HybridAggregateOptions no_key;
  EXPECT_FALSE(HybridAggregate(hg_, no_key).ok());
  HybridAggregateOptions bad_gran = DefaultOptions();
  bad_gran.granularity = 0;
  EXPECT_FALSE(HybridAggregate(hg_, bad_gran).ok());
}

TEST_F(HybridAggregateTest, MembersWithoutSeriesTolerated) {
  const VertexId bare =
      *hg_.AddPgVertex({"Station"}, {{"district", Value(0)}});
  (void)bare;
  auto result = HybridAggregate(hg_, DefaultOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->summary.VertexCount(), 2u);
  // Merged series still reflects only the two series-bearing members.
  const VertexId super0 = result->vertex_to_super.at(stations_[0]);
  auto series = result->summary.VertexSeries(super0);
  EXPECT_DOUBLE_EQ((*series)->at(0, 0), 10.0);
}

TEST_F(HybridAggregateTest, TsVertexMembersUseOwnSeries) {
  core::HyGraph hg;
  ts::MultiSeries a("a", {"v"});
  ts::MultiSeries b("b", {"v"});
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(a.AppendRow(s * kHour, {4.0}).ok());
    ASSERT_TRUE(b.AppendRow(s * kHour, {8.0}).ok());
  }
  const VertexId va = *hg.AddTsVertex({"Sensor"}, std::move(a));
  const VertexId vb = *hg.AddTsVertex({"Sensor"}, std::move(b));
  ASSERT_TRUE(hg.SetVertexProperty(va, "zone", Value(1)).ok());
  ASSERT_TRUE(hg.SetVertexProperty(vb, "zone", Value(1)).ok());
  HybridAggregateOptions options;
  options.group_key = "zone";
  options.granularity = kHour;
  auto result = HybridAggregate(hg, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->summary.VertexCount(), 1u);
  auto series =
      result->summary.VertexSeries(result->vertex_to_super.at(va));
  ASSERT_TRUE(series.ok());
  EXPECT_DOUBLE_EQ((*series)->at(0, 0), 6.0);  // avg(4, 8)
}

}  // namespace
}  // namespace hygraph::analytics
