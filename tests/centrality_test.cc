#include "graph/centrality.h"

#include <gtest/gtest.h>

namespace hygraph::graph {
namespace {

// Path graph 0-1-2-3-4.
PropertyGraph Path5(std::vector<VertexId>* ids) {
  PropertyGraph g;
  for (int i = 0; i < 5; ++i) ids->push_back(g.AddVertex({}, {}));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(g.AddEdge((*ids)[i], (*ids)[i + 1], "E", {}).ok());
  }
  return g;
}

TEST(BetweennessTest, PathGraphKnownValues) {
  std::vector<VertexId> v;
  PropertyGraph g = Path5(&v);
  auto centrality = BetweennessCentrality(g);
  // Path of 5: center lies on 2*... pairs through v2: (0,3),(0,4),(1,3),
  // (1,4),(0,2)? No — betweenness counts strictly-between pairs:
  // v2 is between (0,3),(0,4),(1,3),(1,4) -> 4.
  EXPECT_DOUBLE_EQ(centrality[v[2]], 4.0);
  // v1 between (0,2),(0,3),(0,4) -> 3.
  EXPECT_DOUBLE_EQ(centrality[v[1]], 3.0);
  EXPECT_DOUBLE_EQ(centrality[v[0]], 0.0);
  EXPECT_DOUBLE_EQ(centrality[v[4]], 0.0);
}

TEST(BetweennessTest, StarCenterTakesAll) {
  PropertyGraph g;
  const VertexId hub = g.AddVertex({}, {});
  std::vector<VertexId> leaves;
  for (int i = 0; i < 4; ++i) {
    const VertexId leaf = g.AddVertex({}, {});
    leaves.push_back(leaf);
    ASSERT_TRUE(g.AddEdge(hub, leaf, "E", {}).ok());
  }
  auto centrality = BetweennessCentrality(g);
  // 4 leaves -> C(4,2) = 6 pairs, all through the hub.
  EXPECT_DOUBLE_EQ(centrality[hub], 6.0);
  for (VertexId leaf : leaves) {
    EXPECT_DOUBLE_EQ(centrality[leaf], 0.0);
  }
}

TEST(BetweennessTest, MultipleShortestPathsSplitCredit) {
  // Square 0-1, 1-3, 0-2, 2-3: two shortest 0->3 paths; each middle vertex
  // gets 0.5.
  PropertyGraph g;
  std::vector<VertexId> v;
  for (int i = 0; i < 4; ++i) v.push_back(g.AddVertex({}, {}));
  ASSERT_TRUE(g.AddEdge(v[0], v[1], "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(v[1], v[3], "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(v[0], v[2], "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(v[2], v[3], "E", {}).ok());
  auto centrality = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(centrality[v[1]], 0.5);
  EXPECT_DOUBLE_EQ(centrality[v[2]], 0.5);
}

TEST(ClosenessTest, PathGraph) {
  std::vector<VertexId> v;
  PropertyGraph g = Path5(&v);
  auto closeness = ClosenessCentrality(g);
  // Center: distances 2+1+1+2 = 6 -> 4/6.
  EXPECT_NEAR(closeness[v[2]], 4.0 / 6.0, 1e-12);
  // End: 1+2+3+4 = 10 -> 4/10.
  EXPECT_NEAR(closeness[v[0]], 0.4, 1e-12);
  EXPECT_GT(closeness[v[2]], closeness[v[0]]);
}

TEST(ClosenessTest, IsolatedVertexIsZero) {
  PropertyGraph g;
  const VertexId island = g.AddVertex({}, {});
  auto closeness = ClosenessCentrality(g);
  EXPECT_DOUBLE_EQ(closeness[island], 0.0);
}

TEST(CoreNumbersTest, CliquePlusTail) {
  // 4-clique with a pendant path: clique vertices are 3-core, the path 1.
  PropertyGraph g;
  std::vector<VertexId> clique;
  for (int i = 0; i < 4; ++i) clique.push_back(g.AddVertex({}, {}));
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      ASSERT_TRUE(g.AddEdge(clique[i], clique[j], "E", {}).ok());
    }
  }
  const VertexId tail1 = g.AddVertex({}, {});
  const VertexId tail2 = g.AddVertex({}, {});
  ASSERT_TRUE(g.AddEdge(clique[0], tail1, "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(tail1, tail2, "E", {}).ok());
  auto cores = CoreNumbers(g);
  for (VertexId v : clique) {
    EXPECT_EQ(cores[v], 3u);
  }
  EXPECT_EQ(cores[tail1], 1u);
  EXPECT_EQ(cores[tail2], 1u);
}

TEST(CoreNumbersTest, CycleIsTwoCore) {
  PropertyGraph g;
  std::vector<VertexId> v;
  for (int i = 0; i < 5; ++i) v.push_back(g.AddVertex({}, {}));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(g.AddEdge(v[i], v[(i + 1) % 5], "E", {}).ok());
  }
  auto cores = CoreNumbers(g);
  for (VertexId u : v) {
    EXPECT_EQ(cores[u], 2u);
  }
}

TEST(CoreNumbersTest, EmptyAndSingleton) {
  PropertyGraph g;
  EXPECT_TRUE(CoreNumbers(g).empty());
  const VertexId v = g.AddVertex({}, {});
  auto cores = CoreNumbers(g);
  EXPECT_EQ(cores[v], 0u);
}

}  // namespace
}  // namespace hygraph::graph
