#ifndef HYGRAPH_TESTS_SLOW_SYNC_ENV_H_
#define HYGRAPH_TESTS_SLOW_SYNC_ENV_H_

// An Env wrapper whose file Sync() takes a fixed couple of milliseconds.
// Group-commit tests use it to make writer overlap deterministic: while
// the leader sits inside its (slow) fsync, every other writer has ample
// time to finish its WAL append and park on the committer, so each batch
// provably covers multiple appends. Without it the tests are at the mercy
// of the scheduler — on a fast tmpfs an fsync is near-instant, and a
// loaded machine (parallel ctest) can serialize the writer threads,
// collapsing every batch to size 1.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/env.h"

namespace hygraph::storage {

class SlowSyncEnv final : public Env {
 public:
  explicit SlowSyncEnv(Env* base, int sync_delay_ms = 2)
      : base_(base), sync_delay_ms_(sync_delay_ms) {}

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override {
    std::unique_ptr<WritableFile> inner;
    const Status status = base_->NewWritableFile(path, &inner);
    if (!status.ok()) return status;
    *file = std::make_unique<SlowFile>(std::move(inner), sync_delay_ms_);
    return Status::OK();
  }
  Status ReadFileToString(const std::string& path, std::string* out) override {
    return base_->ReadFileToString(path, out);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }
  Status CreateDirIfMissing(const std::string& path) override {
    return base_->CreateDirIfMissing(path);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* out) override {
    return base_->GetChildren(dir, out);
  }

 private:
  class SlowFile final : public WritableFile {
   public:
    SlowFile(std::unique_ptr<WritableFile> inner, int delay_ms)
        : inner_(std::move(inner)), delay_ms_(delay_ms) {}
    Status Append(const std::string& data) override {
      return inner_->Append(data);
    }
    Status Sync() override {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
      return inner_->Sync();
    }
    Status Close() override { return inner_->Close(); }

   private:
    std::unique_ptr<WritableFile> inner_;
    int delay_ms_;
  };

  Env* base_;
  int sync_delay_ms_;
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_TESTS_SLOW_SYNC_ENV_H_
