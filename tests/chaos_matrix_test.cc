// Chaos matrix for the fault-tolerance layer: sweep transient-I/O fault
// schedules (bounded bursts, every-Nth, probabilistic) against the durable
// store over both storage architectures and require one of exactly two
// outcomes for every schedule:
//
//   * the workload eventually completes — the retry layer absorbed every
//     hiccup (durable.retries observable, store never degraded, final
//     state equals the full oracle), or
//   * the store enters degraded read-only mode — mutations fail fast with
//     kUnavailable, reads and pinned snapshots keep serving a consistent
//     acked-prefix state, and clearing the faults + TryExitDegraded()
//     restores a writable store whose directory reopens cleanly.
//
// Never a crash, never data loss, never a third outcome. Complements
// fault_injection_test.cc, which covers the crash/recovery (terminal
// fault) half of the same matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/all_in_graph.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/fault_injection_env.h"
#include "storage/polyglot.h"

namespace hygraph::storage {
namespace {

using BackendFactory = std::function<std::unique_ptr<query::QueryBackend>()>;

std::unique_ptr<query::QueryBackend> MakeAllInGraph() {
  return std::make_unique<AllInGraphStore>();
}
std::unique_ptr<query::QueryBackend> MakePolyglot() {
  return std::make_unique<PolyglotStore>();
}

// Same workload script as the crash matrix: no removals, so ids stay dense
// and BuildSnapshotText is usable as the state signature throughout.
struct Op {
  enum Kind { kAddVertex, kAddEdge, kSetVertexProp, kAppendVertexSample,
              kAppendEdgeSample } kind;
  uint64_t a = 0, b = 0;
  int64_t t = 0;
  double value = 0.0;
};

std::vector<Op> Workload() {
  std::vector<Op> ops;
  ops.push_back({Op::kAddVertex});
  ops.push_back({Op::kAddVertex});
  ops.push_back({Op::kAddEdge, 0, 1});
  ops.push_back({Op::kSetVertexProp, 0});
  for (int i = 0; i < 4; ++i) {
    ops.push_back({Op::kAppendVertexSample, 0, 0, 100 + i, 1.5 * i});
    ops.push_back({Op::kAppendEdgeSample, 0, 0, 200 + i, 2.5 * i});
  }
  ops.push_back({Op::kAddVertex});
  ops.push_back({Op::kAddEdge, 2, 0});
  ops.push_back({Op::kAppendVertexSample, 2, 0, 300, 7.0});
  return ops;
}

Status ApplyDurable(DurableStore* store, const Op& op) {
  switch (op.kind) {
    case Op::kAddVertex:
      return store->AddVertex({"L"}, {{"n", Value(int64_t{7})}}).status();
    case Op::kAddEdge:
      return store->AddEdge(op.a, op.b, "rel", {}).status();
    case Op::kSetVertexProp:
      return store->SetVertexProperty(op.a, "flag", Value(true));
    case Op::kAppendVertexSample:
      return store->AppendVertexSample(op.a, "temp", op.t, op.value);
    case Op::kAppendEdgeSample:
      return store->AppendEdgeSample(op.a, "load", op.t, op.value);
  }
  return Status::Internal("unreachable");
}

Status ApplyOracle(query::QueryBackend* backend, const Op& op) {
  switch (op.kind) {
    case Op::kAddVertex:
      backend->mutable_topology()->AddVertex({"L"}, {{"n", Value(int64_t{7})}});
      return Status::OK();
    case Op::kAddEdge:
      return backend->mutable_topology()->AddEdge(op.a, op.b, "rel", {})
          .status();
    case Op::kSetVertexProp:
      return backend->mutable_topology()->SetVertexProperty(op.a, "flag",
                                                            Value(true));
    case Op::kAppendVertexSample:
      return backend->AppendVertexSample(op.a, "temp", op.t, op.value);
    case Op::kAppendEdgeSample:
      return backend->AppendEdgeSample(op.a, "load", op.t, op.value);
  }
  return Status::Internal("unreachable");
}

std::string OracleSignature(const BackendFactory& make, size_t acked) {
  auto oracle = make();
  const std::vector<Op> ops = Workload();
  for (size_t i = 0; i < acked; ++i) {
    EXPECT_TRUE(ApplyOracle(oracle.get(), ops[i]).ok());
  }
  auto text = BuildSnapshotText(*oracle);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return text.value_or("<oracle error>");
}

// The durable store applies to memory before logging, so when a mutation
// dies in the WAL the in-memory state may legitimately sit one op ahead of
// the acknowledged prefix. Every consistency check in this file accepts
// exactly {acked, acked + 1} and nothing else.
::testing::AssertionResult MatchesAckedPrefix(const BackendFactory& make,
                                              const std::string& signature,
                                              size_t acked, size_t total) {
  const std::string exact = OracleSignature(make, acked);
  if (signature == exact) return ::testing::AssertionSuccess();
  if (acked < total && signature == OracleSignature(make, acked + 1)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "state matches neither acked=" << acked << " nor acked+1";
}

// State signature of a live backend, tolerant to snapshot failure (the
// expectation fires; the sentinel keeps later comparisons meaningful).
std::string SignatureOf(const query::QueryBackend& backend) {
  auto text = BuildSnapshotText(backend);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return text.value_or("<snapshot error>");
}

// Retries must not sleep in tests; the schedule stays observable through
// the durable.retries counter instead.
DurableOptions FastRetryOptions() {
  DurableOptions options;
  options.retry_sleep = [](uint64_t) {};
  return options;
}

struct MatrixCase {
  const char* name;
  BackendFactory make;
};

class ChaosMatrixTest : public ::testing::TestWithParam<MatrixCase> {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hygraph_chaos_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    std::system(("rm -rf " + root_).c_str());
  }

  std::string root_;
};

// What actually happened under one fault schedule.
struct ChaosOutcome {
  size_t acked = 0;       ///< ops acknowledged before the run ended
  bool completed = false; ///< every workload op acknowledged
  bool degraded = false;  ///< store flipped to read-only
};

// Runs the workload under `schedule` (applied to the env after Open) and
// checks the shared invariants: exactly one of the two legal outcomes, a
// consistent state either way, and — when degraded — fail-fast mutations,
// pinned snapshots, recoverability, and a clean reopen.
ChaosOutcome RunSchedule(
    const MatrixCase& param, const std::string& dir,
    const std::function<void(FaultInjectionEnv*)>& schedule) {
  const std::vector<Op> ops = Workload();
  ChaosOutcome outcome;

  FaultInjectionEnv fenv(Env::Default());
  DurableStore store(&fenv, dir, param.make(), FastRetryOptions());
  EXPECT_TRUE(store.Open().ok());
  schedule(&fenv);

  for (const Op& op : ops) {
    if (!ApplyDurable(&store, op).ok()) break;
    ++outcome.acked;
  }
  outcome.completed = outcome.acked == ops.size();
  outcome.degraded = store.degraded();

  // Outcome dichotomy: a workload that did not complete must have ended in
  // degraded mode — retries either absorb a fault or poison the store;
  // nothing in between.
  EXPECT_EQ(outcome.completed, !outcome.degraded)
      << "acked " << outcome.acked << " of " << ops.size();
  EXPECT_EQ(store.metrics()->gauge("durable.degraded")->value(),
            outcome.degraded ? 1.0 : 0.0);

  if (outcome.completed) {
    // The retry layer absorbed everything: full state, still writable.
    EXPECT_EQ(SignatureOf(*store.inner()),
              OracleSignature(param.make, ops.size()));
    return outcome;
  }

  // Degraded path. Reads keep serving a consistent acked-prefix state.
  const std::string live = SignatureOf(*store.inner());
  EXPECT_TRUE(
      MatchesAckedPrefix(param.make, live, outcome.acked, ops.size()));

  // A snapshot pinned now must stay bit-identical across later rejected
  // mutation attempts.
  std::shared_ptr<const query::QueryBackend> pinned = store.BeginSnapshot();
  EXPECT_TRUE(pinned != nullptr) << "backend lost snapshot support";
  const std::string pinned_before =
      pinned != nullptr ? SignatureOf(*pinned) : "<no snapshot>";

  // Every mutation now fails fast with kUnavailable — no retry loop, no
  // partial application.
  Status rejected = store.AppendVertexSample(0, "temp", 9'999, 3.5);
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected.ToString();
  EXPECT_TRUE(store.AddVertex({"L"}, {}).status().IsUnavailable());

  if (pinned != nullptr) {
    EXPECT_EQ(pinned_before, SignatureOf(*pinned));
  }
  EXPECT_EQ(live, SignatureOf(*store.inner()))
      << "rejected mutations leaked state";

  // The hiccup clears; the operator asks the store to rejoin.
  fenv.ClearTransientFaults();
  Status exit = store.TryExitDegraded();
  EXPECT_TRUE(exit.ok()) << exit.ToString();
  EXPECT_FALSE(store.degraded());
  EXPECT_EQ(store.metrics()->gauge("durable.degraded")->value(), 0.0);
  EXPECT_TRUE(store.AppendVertexSample(0, "temp", 10'000, 4.5).ok());

  // The directory the degraded store left behind reopens cleanly and
  // agrees with the live store — no data loss across the whole episode.
  const std::string final_text = SignatureOf(*store.inner());
  DurableStore reopened(&fenv, dir, param.make(), FastRetryOptions());
  Status open = reopened.Open();
  EXPECT_TRUE(open.ok()) << open.ToString();
  if (open.ok()) {
    EXPECT_EQ(SignatureOf(*reopened.inner()), final_text);
  }
  return outcome;
}

// A burst shorter than the retry budget is invisible to the workload: it
// completes, and the only trace is the durable.retries counter.
TEST_P(ChaosMatrixTest, BoundedBurstsAreAbsorbedByRetries) {
  const MatrixCase& param = GetParam();
  for (uint64_t burst = 1; burst <= 3; ++burst) {
    SCOPED_TRACE("burst of " + std::to_string(burst));
    const std::string dir = root_ + "/burst" + std::to_string(burst);
    FaultInjectionEnv fenv(Env::Default());
    DurableStore store(&fenv, dir, param.make(), FastRetryOptions());
    ASSERT_TRUE(store.Open().ok());
    fenv.SetTransientFailNext(burst);

    for (const Op& op : Workload()) {
      ASSERT_TRUE(ApplyDurable(&store, op).ok());
    }
    EXPECT_FALSE(store.degraded());
    EXPECT_EQ(fenv.transient_faults(), burst);
    EXPECT_GE(store.metrics()->counter("durable.retries")->value(), burst);
    EXPECT_EQ(SignatureOf(*store.inner()),
              OracleSignature(param.make, Workload().size()));
  }
}

// A fault that outlasts every retry poisons the store: degraded read-only
// mode with the full invariant suite checked by RunSchedule.
TEST_P(ChaosMatrixTest, UnboundedFaultsEnterDegradedReadOnlyMode) {
  const ChaosOutcome outcome =
      RunSchedule(GetParam(), root_ + "/unbounded", [](FaultInjectionEnv* e) {
        e->SetTransientFailNext(1'000'000);
      });
  EXPECT_TRUE(outcome.degraded);
  EXPECT_FALSE(outcome.completed);
  // The very first logged mutation hits the wall.
  EXPECT_EQ(outcome.acked, 0u);
}

// Every-Nth-op faults: whether a given N lands as absorbed hiccups or
// retry exhaustion depends on how many fs ops each mutation issues — the
// test pins no prediction, only that the outcome is one of the two legal
// ones (RunSchedule enforces that plus all degraded-mode invariants).
TEST_P(ChaosMatrixTest, PeriodicFaultsResolveToExactlyOneLegalOutcome) {
  const MatrixCase& param = GetParam();
  for (uint64_t n = 2; n <= 6; ++n) {
    SCOPED_TRACE("fail every " + std::to_string(n));
    RunSchedule(param, root_ + "/every" + std::to_string(n),
                [n](FaultInjectionEnv* e) { e->SetTransientEveryN(n); });
  }
}

// Probabilistic faults across seeds and intensities: deterministic per
// seed, unpredictable by hand — exactly what the dichotomy check is for.
TEST_P(ChaosMatrixTest, ProbabilisticFaultsNeverProduceAThirdOutcome) {
  const MatrixCase& param = GetParam();
  int degraded_runs = 0;
  int completed_runs = 0;
  int run = 0;
  for (const double p : {0.05, 0.35, 0.75}) {
    for (const uint64_t seed : {7u, 23u, 61u}) {
      SCOPED_TRACE("p=" + std::to_string(p) +
                   " seed=" + std::to_string(seed));
      const ChaosOutcome outcome = RunSchedule(
          param, root_ + "/prob" + std::to_string(run++),
          [p, seed](FaultInjectionEnv* e) {
            e->SetTransientProbability(p, seed);
          });
      (outcome.degraded ? degraded_runs : completed_runs) += 1;
    }
  }
  // The sweep must exercise both halves of the matrix, or it proves
  // nothing about one of them.
  EXPECT_GT(degraded_runs, 0);
  EXPECT_GT(completed_runs, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ChaosMatrixTest,
    ::testing::Values(MatrixCase{"all_in_graph", MakeAllInGraph},
                      MatrixCase{"polyglot", MakePolyglot}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace hygraph::storage
