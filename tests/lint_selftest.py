#!/usr/bin/env python3
"""Self-test for scripts/hygraph_lint.py.

Runs the linter over tests/lint_fixtures/ — a miniature repo tree holding,
for every rule, one file that violates it and one clean counterpart (the
clean file for the location-scoped rules lives in the exempt directory, so
the exemption is tested too). The linter must report EXACTLY the expected
(path, line, check) triples: a missing finding means a rule regressed, an
extra one means a rule now fires on clean code.

Registered as the `lint_selftest` ctest case (tests/CMakeLists.txt).
"""
from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINTER = REPO / "scripts" / "hygraph_lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures"

EXPECTED = {
    ("src/common/ccinclude_bad.cc", 1, "cc-include"),
    ("src/common/clock_bad.cc", 3, "raw-clock"),
    ("src/common/cout_bad.cc", 2, "no-cout"),
    ("src/common/delete_bad.cc", 2, "naked-delete"),
    ("src/common/guard_bad.h", 1, "include-guard"),
    ("src/common/mutex_bad.cc", 2, "raw-mutex"),
    ("src/common/new_bad.cc", 1, "naked-new"),
    ("src/common/rand_bad.cc", 2, "raw-rand"),
    ("src/common/sleep_bad.cc", 4, "raw-sleep"),
    ("src/common/thread_bad.cc", 3, "raw-thread"),
    ("src/obs/layering_bad.h", 4, "layering"),
    ("src/server/socket_bad.cc", 3, "raw-socket"),
    ("src/storage/unranked_bad.h", 10, "unranked-lock"),
}

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<check>[a-z-]+)\]")


def main() -> int:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--root", str(FIXTURES)],
        capture_output=True, text=True)

    got = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            got.add((m.group("path"), int(m.group("line")), m.group("check")))

    failures = []
    if proc.returncode != 1:
        failures.append(
            f"expected exit status 1 on a dirty tree, got {proc.returncode}")
    for missing in sorted(EXPECTED - got):
        failures.append(f"missing finding: {missing}")
    for extra in sorted(got - EXPECTED):
        failures.append(f"unexpected finding: {extra}")

    # Every registered rule must be exercised by exactly one fixture.
    listed = subprocess.run(
        [sys.executable, str(LINTER), "--list"], capture_output=True,
        text=True)
    rules = {line.split()[0] for line in listed.stdout.splitlines() if line}
    covered = {check for _, _, check in EXPECTED}
    for rule in sorted(rules - covered):
        failures.append(f"rule {rule!r} has no violating fixture")
    for rule in sorted(covered - rules):
        failures.append(f"fixture expects unknown rule {rule!r}")

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\nlint_selftest: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"lint_selftest: {len(EXPECTED)} findings matched, "
          f"{len(rules)} rules covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
