#include "analytics/fraud.h"

#include <set>

#include <gtest/gtest.h>

#include "workloads/fraud_workload.h"

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

// Shared generated world (generation is the expensive part).
class FraudTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::FraudConfig config;
    config.users = 120;
    config.merchants = 24;
    config.merchant_clusters = 4;
    config.days = 7;
    config.seed = 4242;
    auto hg = workloads::GenerateFraudHyGraph(config);
    ASSERT_TRUE(hg.ok()) << hg.status().ToString();
    hg_ = new HyGraph(std::move(*hg));
  }

  static std::vector<VertexId> UsersWithRole(const std::string& role) {
    std::vector<VertexId> out;
    for (VertexId u : hg_->structure().VerticesWithLabel("User")) {
      auto r = hg_->GetVertexProperty(u, "gt_role");
      if (r.ok() && *r == Value(role)) out.push_back(u);
    }
    return out;
  }

  static HyGraph* hg_;
};

HyGraph* FraudTest::hg_ = nullptr;

TEST_F(FraudTest, WorldHasAllRoles) {
  EXPECT_FALSE(UsersWithRole("ring").empty());
  EXPECT_FALSE(UsersWithRole("heavy").empty());
  EXPECT_FALSE(UsersWithRole("burst").empty());
  EXPECT_FALSE(UsersWithRole("normal").empty());
}

TEST_F(FraudTest, GraphOnlyFlagsRingsAndBurstShoppers) {
  auto verdict = DetectFraudGraphOnly(*hg_);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  std::set<VertexId> flagged(verdict->flagged_users.begin(),
                             verdict->flagged_users.end());
  for (VertexId u : UsersWithRole("ring")) {
    EXPECT_TRUE(flagged.count(u)) << "ring user missed";
  }
  for (VertexId u : UsersWithRole("burst")) {
    EXPECT_TRUE(flagged.count(u)) << "burst decoy should fool graph-only";
  }
  for (VertexId u : UsersWithRole("heavy")) {
    EXPECT_FALSE(flagged.count(u));
  }
  for (VertexId u : UsersWithRole("normal")) {
    EXPECT_FALSE(flagged.count(u));
  }
}

TEST_F(FraudTest, TsOnlyFlagsRingsAndHeavySpenders) {
  auto verdict = DetectFraudTsOnly(*hg_);
  ASSERT_TRUE(verdict.ok());
  std::set<VertexId> flagged(verdict->flagged_users.begin(),
                             verdict->flagged_users.end());
  for (VertexId u : UsersWithRole("ring")) {
    EXPECT_TRUE(flagged.count(u)) << "ring user missed by TS";
  }
  for (VertexId u : UsersWithRole("heavy")) {
    EXPECT_TRUE(flagged.count(u)) << "heavy spender should fool TS-only";
  }
  for (VertexId u : UsersWithRole("burst")) {
    EXPECT_FALSE(flagged.count(u));
  }
}

TEST_F(FraudTest, HybridIsExactOnThisWorld) {
  auto verdict = DetectFraudHybrid(*hg_);
  ASSERT_TRUE(verdict.ok());
  auto metrics = EvaluateVerdict(*hg_, *verdict);
  ASSERT_TRUE(metrics.ok());
  EXPECT_DOUBLE_EQ(metrics->precision(), 1.0);
  EXPECT_DOUBLE_EQ(metrics->recall(), 1.0);
}

TEST_F(FraudTest, HybridBeatsBothSinglePaths) {
  auto graph_only = DetectFraudGraphOnly(*hg_);
  auto ts_only = DetectFraudTsOnly(*hg_);
  auto hybrid = DetectFraudHybrid(*hg_);
  ASSERT_TRUE(graph_only.ok());
  ASSERT_TRUE(ts_only.ok());
  ASSERT_TRUE(hybrid.ok());
  const double f1_graph = EvaluateVerdict(*hg_, *graph_only)->f1();
  const double f1_ts = EvaluateVerdict(*hg_, *ts_only)->f1();
  const double f1_hybrid = EvaluateVerdict(*hg_, *hybrid)->f1();
  EXPECT_GT(f1_hybrid, f1_graph);
  EXPECT_GT(f1_hybrid, f1_ts);
}

TEST_F(FraudTest, AnnotationMarksSuspiciousUsers) {
  HyGraph annotated = *hg_;  // work on a copy
  auto verdict = DetectFraudHybrid(annotated, {}, &annotated);
  ASSERT_TRUE(verdict.ok());
  for (VertexId u : verdict->flagged_users) {
    auto flag = annotated.GetVertexProperty(u, "suspicious");
    ASSERT_TRUE(flag.ok());
    EXPECT_EQ(*flag, Value(true));
  }
  // A "Suspicious" subgraph collects them.
  ASSERT_EQ(annotated.SubgraphIds().size(), 1u);
  auto members = annotated.SubgraphAt(annotated.SubgraphIds()[0], 0);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->vertices.size(), verdict->flagged_users.size());
}

TEST_F(FraudTest, ThresholdSensitivity) {
  // A sky-high amount threshold blinds the graph detector entirely.
  GraphDetectorOptions blind;
  blind.amount_threshold = 1e9;
  auto verdict = DetectFraudGraphOnly(*hg_, blind);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->flagged_users.empty());
  // A huge z threshold blinds the TS detector.
  TsDetectorOptions deaf;
  deaf.threshold = 1e9;
  auto ts_verdict = DetectFraudTsOnly(*hg_, deaf);
  ASSERT_TRUE(ts_verdict.ok());
  EXPECT_TRUE(ts_verdict->flagged_users.empty());
}

TEST_F(FraudTest, EvaluateRequiresGroundTruth) {
  HyGraph empty;
  (void)*empty.AddPgVertex({"User"}, {});
  FraudVerdict verdict;
  EXPECT_FALSE(EvaluateVerdict(empty, verdict).ok());
}

}  // namespace
}  // namespace hygraph::analytics
