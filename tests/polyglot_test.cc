#include "storage/polyglot.h"

#include <gtest/gtest.h>

namespace hygraph::storage {
namespace {

TEST(PolyglotTest, SeriesLiveInHypertableNotProperties) {
  PolyglotStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({"S"}, {});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.AppendVertexSample(v, "bikes", i * kMinute, i).ok());
  }
  // Topology properties stay clean — the green path's whole point.
  EXPECT_TRUE((*store.topology().GetVertex(v))->properties.empty());
  EXPECT_EQ(store.series_store().series_count(), 1u);
  auto series = store.VertexSeriesRange(v, "bikes", Interval::All());
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 10u);
}

TEST(PolyglotTest, NativeAggregateUsesChunks) {
  ts::HypertableOptions ts_options;
  ts_options.chunk_duration = kHour;
  PolyglotStore store(ts_options);
  const graph::VertexId v = store.mutable_topology()->AddVertex({"S"}, {});
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(store.AppendVertexSample(v, "bikes", i * kMinute, 1.0).ok());
  }
  store.mutable_series_store()->ResetStats();
  auto sum = store.VertexSeriesAggregate(v, "bikes", Interval{0, 600 * kMinute},
                                         ts::AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 600.0);
  // Fully-covered chunks answered from the cache, zero samples touched.
  EXPECT_EQ(store.series_store().stats().chunks_from_cache, 10u);
  EXPECT_EQ(store.series_store().stats().samples_scanned, 0u);
}

TEST(PolyglotTest, PerKeySeriesSeparation) {
  PolyglotStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({}, {});
  ASSERT_TRUE(store.AppendVertexSample(v, "a", 1, 1.0).ok());
  ASSERT_TRUE(store.AppendVertexSample(v, "b", 1, 2.0).ok());
  EXPECT_EQ(store.series_store().series_count(), 2u);
  auto a = store.VertexSeriesRange(v, "a", Interval::All());
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->at(0).value, 1.0);
}

TEST(PolyglotTest, EdgeSeries) {
  PolyglotStore store;
  graph::PropertyGraph* g = store.mutable_topology();
  const graph::VertexId a = g->AddVertex({}, {});
  const graph::VertexId b = g->AddVertex({}, {});
  const graph::EdgeId e = *g->AddEdge(a, b, "TRIP", {});
  ASSERT_TRUE(store.AppendEdgeSample(e, "trips", 10, 3.0).ok());
  auto agg =
      store.EdgeSeriesAggregate(e, "trips", Interval::All(), ts::AggKind::kSum);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(*agg, 3.0);
}

TEST(PolyglotTest, MissingSeriesBehavesLikeEmpty) {
  PolyglotStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({}, {});
  auto series = store.VertexSeriesRange(v, "nothing", Interval::All());
  ASSERT_TRUE(series.ok());
  EXPECT_TRUE(series->empty());
  auto count = store.VertexSeriesAggregate(v, "nothing", Interval::All(),
                                           ts::AggKind::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 0.0);
  EXPECT_FALSE(store.VertexSeriesAggregate(v, "nothing", Interval::All(),
                                           ts::AggKind::kAvg)
                   .ok());
}

TEST(PolyglotTest, UnknownEntityFails) {
  PolyglotStore store;
  EXPECT_FALSE(store.AppendVertexSample(5, "x", 1, 1.0).ok());
  EXPECT_FALSE(store.AppendEdgeSample(5, "x", 1, 1.0).ok());
}

TEST(PolyglotTest, OutOfOrderIngestion) {
  PolyglotStore store;
  const graph::VertexId v = store.mutable_topology()->AddVertex({}, {});
  ASSERT_TRUE(store.AppendVertexSample(v, "x", 300, 3.0).ok());
  ASSERT_TRUE(store.AppendVertexSample(v, "x", 100, 1.0).ok());
  auto series = store.VertexSeriesRange(v, "x", Interval::All());
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->at(0).t, 100);
  EXPECT_EQ(series->at(1).t, 300);
}

TEST(PolyglotTest, NameReflectsArchitecture) {
  PolyglotStore polyglot;
  EXPECT_EQ(polyglot.name(), "polyglot");
}

}  // namespace
}  // namespace hygraph::storage
