#include "analytics/classify.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hygraph::analytics {
namespace {

// Two well-separated Gaussian blobs.
std::vector<LabeledExample> Blobs(size_t per_class, double separation,
                                  uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<LabeledExample> examples;
  for (size_t i = 0; i < per_class; ++i) {
    examples.push_back(
        {{rng.NextGaussian(), rng.NextGaussian()}, 0});
    examples.push_back(
        {{separation + rng.NextGaussian(), rng.NextGaussian()}, 1});
  }
  return examples;
}

TEST(KnnTest, PredictsNearestBlob) {
  KnnClassifier knn(3);
  knn.Train(Blobs(20, 10.0));
  EXPECT_EQ(*knn.Predict({0.0, 0.0}), 0);
  EXPECT_EQ(*knn.Predict({10.0, 0.0}), 1);
}

TEST(KnnTest, UntrainedFails) {
  KnnClassifier knn(3);
  EXPECT_FALSE(knn.Predict({1.0}).ok());
}

TEST(KnnTest, KLargerThanTrainingSet) {
  KnnClassifier knn(100);
  knn.Train(Blobs(2, 10.0));
  EXPECT_TRUE(knn.Predict({0.0, 0.0}).ok());
}

TEST(KnnTest, KZeroCoercedToOne) {
  KnnClassifier knn(0);
  knn.Train(Blobs(5, 10.0));
  EXPECT_EQ(*knn.Predict({-1.0, 0.0}), 0);
}

TEST(KnnTest, MajorityVote) {
  // Surround a point with 2 far same-label and 3 near other-label points.
  KnnClassifier knn(5);
  knn.Train({{{0.0, 0.1}, 1},
             {{0.1, 0.0}, 1},
             {{0.0, -0.1}, 1},
             {{5.0, 0.0}, 0},
             {{-5.0, 0.0}, 0}});
  EXPECT_EQ(*knn.Predict({0.0, 0.0}), 1);
}

TEST(MetricsTest, Formulas) {
  ClassificationMetrics m;
  m.true_positives = 8;
  m.false_positives = 2;
  m.false_negatives = 4;
  m.true_negatives = 86;
  EXPECT_DOUBLE_EQ(m.precision(), 0.8);
  EXPECT_NEAR(m.recall(), 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(m.f1(), 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.94);
}

TEST(MetricsTest, DegenerateCases) {
  ClassificationMetrics empty;
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);
  EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);
}

TEST(MetricsTest, AddOutcomeRouting) {
  ClassificationMetrics m;
  AddOutcome(&m, true, true);
  AddOutcome(&m, false, true);
  AddOutcome(&m, true, false);
  AddOutcome(&m, false, false);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_EQ(m.true_negatives, 1u);
}

TEST(LeaveOneOutTest, SeparableDataScoresHigh) {
  auto metrics = LeaveOneOutEvaluate(Blobs(15, 12.0), 3);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->accuracy(), 0.95);
  EXPECT_GT(metrics->f1(), 0.95);
}

TEST(LeaveOneOutTest, OverlappingDataScoresLower) {
  auto separable = LeaveOneOutEvaluate(Blobs(15, 12.0), 3);
  auto overlapping = LeaveOneOutEvaluate(Blobs(15, 0.3), 3);
  ASSERT_TRUE(separable.ok());
  ASSERT_TRUE(overlapping.ok());
  EXPECT_GT(separable->accuracy(), overlapping->accuracy());
}

TEST(LeaveOneOutTest, Validation) {
  EXPECT_FALSE(LeaveOneOutEvaluate({}, 3).ok());
  EXPECT_FALSE(LeaveOneOutEvaluate({{{1.0}, 0}}, 3).ok());
}

}  // namespace
}  // namespace hygraph::analytics
