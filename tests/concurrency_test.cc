// Concurrency stress tests for the locking layer (DESIGN.md §10).
//
// Two styles of case:
//
//   * Barrier-phased schedules: writer(s) and readers advance in lockstep
//     rounds (std::barrier). Between barriers the store is quiescent, so
//     every reader asserts the EXACT expected state — 128 rounds per case
//     means 128 distinct interleavings of the in-round racing section.
//   * Free-running stress: threads race without coordination and readers
//     check invariants that must hold under ANY interleaving — timestamps
//     sorted, counts monotone, and every value equal to a deterministic
//     function of its timestamp (a torn or half-published sample would
//     break that equality).
//
// All cases are deterministic in their data (hygraph::Rng seeds, pure
// value function); only the thread schedule varies. ThreadSanitizer
// (scripts/tier1.sh pass 4, HYGRAPH_SANITIZE=thread) watches every
// interleaving these drive.

#include <atomic>
#include <barrier>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/time.h"
#include "query/executor.h"
#include "storage/all_in_graph.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"
#include "ts/hypertable.h"

namespace hygraph {
namespace {

using query::Execute;
using storage::AllInGraphStore;
using storage::DurableStore;
using storage::PolyglotStore;
using ts::HypertableOptions;
using ts::HypertableStore;
using ts::Sample;

// Pure value function: a reader that observes timestamp t with any other
// value has seen a torn write.
double ExpectedValue(Timestamp t) {
  return std::sin(static_cast<double>(t) * 1e-3) * 100.0 +
         static_cast<double>(t % 97);
}

// Asserts the scan result is sorted, duplicate-free, and untorn.
void CheckSamples(const std::vector<Sample>& samples) {
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) {
      ASSERT_LT(samples[i - 1].t, samples[i].t);
    }
    ASSERT_EQ(samples[i].value, ExpectedValue(samples[i].t))
        << "torn sample at t=" << samples[i].t;
  }
}

// ---------------------------------------------------------------------------
// Hypertable: barrier-phased single writer vs. readers, with seal/unseal
// churn (tiny chunks + out-of-order writes inside every round).
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, HypertablePhasedWriterReadersSealUnseal) {
  HypertableOptions options;
  options.chunk_duration = 100;  // 10 samples per chunk at step=10
  HypertableStore store(options);
  const SeriesId id = store.Create("phased");

  constexpr int kRounds = 128;
  constexpr int kPerRound = 16;
  constexpr Timestamp kStep = 10;
  constexpr int kReaders = 3;

  std::barrier sync(kReaders + 1);
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (int round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();  // round open: race with readers below
      const Timestamp base = static_cast<Timestamp>(round) * kPerRound * kStep;
      // Evens first, then odds: the odd pass lands behind the newest chunk,
      // forcing unseal/merge/reseal of chunks sealed moments earlier.
      for (int pass = 0; pass < 2; ++pass) {
        for (int i = pass; i < kPerRound; i += 2) {
          const Timestamp t = base + static_cast<Timestamp>(i) * kStep;
          if (!store.Insert(id, t, ExpectedValue(t)).ok()) {
            failures.fetch_add(1);
          }
        }
      }
      sync.arrive_and_wait();  // round closed: store quiescent
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        sync.arrive_and_wait();
        // Racing section: writer is inserting round `round` right now.
        // Invariant checks only — sortedness and untorn values.
        auto racing = store.Scan(id, Interval{});
        ASSERT_TRUE(racing.ok()) << racing.status().ToString();
        CheckSamples(*racing);
        sync.arrive_and_wait();
        // Quiescent section: exact count, exact contents.
        auto settled = store.Scan(id, Interval{});
        ASSERT_TRUE(settled.ok()) << settled.status().ToString();
        ASSERT_EQ(settled->size(),
                  static_cast<size_t>((round + 1) * kPerRound));
        CheckSamples(*settled);
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = store.stats();
  EXPECT_GT(stats.chunks_sealed, 0u);
  EXPECT_GT(stats.chunks_unsealed, 0u);  // the odd passes really unsealed
}

// ---------------------------------------------------------------------------
// Hypertable: one writer per series (shard locks), free-running reader.
// Ingest into one series must never block or corrupt scans of another.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, HypertableShardedWritersIndependentSeries) {
  HypertableOptions options;
  options.chunk_duration = 200;
  HypertableStore store(options);

  constexpr int kWriters = 4;
  constexpr int kSamples = 1500;
  constexpr Timestamp kStep = 7;

  std::vector<SeriesId> ids;
  ids.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    ids.push_back(store.Create("shard-" + std::to_string(w)));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kSamples; ++i) {
        const Timestamp t = static_cast<Timestamp>(i) * kStep;
        if (!store.Insert(ids[w], t, ExpectedValue(t)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }

  std::thread reader([&] {
    std::vector<size_t> last_count(kWriters, 0);
    while (!stop.load(std::memory_order_acquire)) {
      for (int w = 0; w < kWriters; ++w) {
        auto samples = store.Scan(ids[w], Interval{});
        ASSERT_TRUE(samples.ok()) << samples.status().ToString();
        CheckSamples(*samples);
        // In-order single-writer ingest: counts are monotone per series.
        ASSERT_GE(samples->size(), last_count[w]);
        last_count[w] = samples->size();
      }
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  for (int w = 0; w < kWriters; ++w) {
    auto count = store.SampleCount(ids[w]);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, static_cast<size_t>(kSamples));
  }
}

// ---------------------------------------------------------------------------
// Hypertable: Retain (staleness eviction) racing scans, barrier-phased so
// every round also asserts the exact post-eviction contents.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, HypertableRetainVersusScanPhased) {
  HypertableOptions options;
  options.chunk_duration = 100;
  HypertableStore store(options);
  const SeriesId id = store.Create("retained");

  constexpr int kRounds = 128;
  constexpr int kPerRound = 12;
  constexpr Timestamp kStep = 10;

  std::barrier sync(3);  // writer + retainer + reader
  std::atomic<Timestamp> cutoff{0};

  std::thread writer([&] {
    for (int round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();
      for (int i = 0; i < kPerRound; ++i) {
        const Timestamp t =
            (static_cast<Timestamp>(round) * kPerRound + i) * kStep;
        ASSERT_TRUE(store.Insert(id, t, ExpectedValue(t)).ok());
      }
      sync.arrive_and_wait();
    }
  });

  std::thread retainer([&] {
    for (int round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();
      // Keep roughly the newest half of what existed at round start; races
      // with the writer's inserts for this round.
      const Timestamp keep_from =
          (static_cast<Timestamp>(round) * kPerRound / 2) * kStep;
      auto dropped = store.Retain(id, Interval{keep_from, kMaxTimestamp});
      ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
      cutoff.store(keep_from, std::memory_order_release);
      sync.arrive_and_wait();
    }
  });

  std::thread reader([&] {
    for (int round = 0; round < kRounds; ++round) {
      sync.arrive_and_wait();
      // Racing section: only schedule-independent invariants.
      auto racing = store.Scan(id, Interval{});
      ASSERT_TRUE(racing.ok());
      CheckSamples(*racing);
      sync.arrive_and_wait();
      // Quiescent: exactly the samples in [cutoff, next_t) survive.
      const Timestamp keep_from = cutoff.load(std::memory_order_acquire);
      const Timestamp written_end =
          static_cast<Timestamp>(round + 1) * kPerRound * kStep;
      auto settled = store.Scan(id, Interval{});
      ASSERT_TRUE(settled.ok());
      CheckSamples(*settled);
      size_t expected = 0;
      for (Timestamp t = 0; t < written_end; t += kStep) {
        if (t >= keep_from) ++expected;
      }
      ASSERT_EQ(settled->size(), expected);
      if (!settled->empty()) {
        ASSERT_GE(settled->front().t, keep_from);
      }
    }
  });

  writer.join();
  retainer.join();
  reader.join();
}

// ---------------------------------------------------------------------------
// Hypertable: Fork() taken mid-stress stays frozen while the origin churns
// (inserts, retains) — and the origin's writers detach copy-on-write.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, HypertableForkFrozenDuringStress) {
  HypertableOptions options;
  options.chunk_duration = 100;
  HypertableStore store(options);
  const SeriesId id = store.Create("forked");

  constexpr int kInitial = 300;
  constexpr Timestamp kStep = 10;
  for (int i = 0; i < kInitial; ++i) {
    const Timestamp t = static_cast<Timestamp>(i) * kStep;
    ASSERT_TRUE(store.Insert(id, t, ExpectedValue(t)).ok());
  }

  std::shared_ptr<const HypertableStore> fork = store.Fork();
  auto baseline = fork->Scan(id, Interval{});
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->size(), static_cast<size_t>(kInitial));

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    Timestamp t = static_cast<Timestamp>(kInitial) * kStep;
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(store.Insert(id, t, ExpectedValue(t)).ok());
      t += kStep;
      if (++i % 64 == 0) {
        ASSERT_TRUE(store.Retain(id, Interval{t / 2, kMaxTimestamp}).ok());
      }
    }
  });

  for (int i = 0; i < 200; ++i) {
    auto frozen = fork->Scan(id, Interval{});
    ASSERT_TRUE(frozen.ok());
    ASSERT_EQ(*frozen, *baseline) << "fork drifted at iteration " << i;
  }
  stop.store(true, std::memory_order_release);
  mutator.join();

  // The first origin write after the fork detaches the series. On the
  // single-core reference machine the mutator may not have been scheduled
  // at all, so force one deterministic write while the fork is still
  // pinned (a same-value duplicate: invisible to every other assertion).
  ASSERT_TRUE(store.Insert(id, 1, ExpectedValue(1)).ok());
  const uint64_t cow =
      store.metrics()->counter("concurrency.series_cow_copies")->value();
  EXPECT_GT(cow, 0u);
  EXPECT_GT(store.metrics()->counter("concurrency.snapshot_pins")->value(),
            0u);
}

// ---------------------------------------------------------------------------
// PolyglotStore: concurrent sample ingest + whole HGQL statements. Every
// Execute pins a BeginSnapshot() view, so statements see a consistent
// (graph, maps, hypertable) triple no matter what the writers do.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, PolyglotConcurrentAppendAndQuery) {
  ts::HypertableOptions ts_options;
  ts_options.chunk_duration = 500;
  PolyglotStore store(ts_options);

  constexpr int kStations = 6;
  std::vector<graph::VertexId> vertices;
  ASSERT_TRUE(store
                  .MutateTopology([&](graph::PropertyGraph* g) {
                    for (int i = 0; i < kStations; ++i) {
                      vertices.push_back(g->AddVertex(
                          {"Station"},
                          {{"name", Value("S" + std::to_string(i))}}));
                    }
                    return Status::OK();
                  })
                  .ok());

  constexpr int kWriters = 2;
  constexpr int kSamplesPerWriter = 600;
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Each writer owns a disjoint set of stations (no same-series races;
      // the per-series shard locks are exercised by the hypertable cases).
      for (int i = 0; i < kSamplesPerWriter; ++i) {
        const auto v = vertices[static_cast<size_t>(
            (w * kStations / kWriters) + i % (kStations / kWriters))];
        const Timestamp t = static_cast<Timestamp>(i) * 11;
        if (!store.AppendVertexSample(v, "bikes", t, ExpectedValue(t)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }

  std::thread querier([&] {
    for (int i = 0; i < 120; ++i) {
      auto result = Execute(
          store,
          "MATCH (s:Station) RETURN s.name, ts_count(s.bikes, 0, 100000)");
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->row_count(), static_cast<size_t>(kStations));
    }
  });

  for (auto& t : writers) t.join();
  querier.join();
  EXPECT_EQ(failures.load(), 0);

  // Every appended sample landed exactly once.
  for (int i = 0; i < kStations; ++i) {
    auto series = store.VertexSeriesRange(vertices[static_cast<size_t>(i)],
                                          "bikes", Interval{});
    ASSERT_TRUE(series.ok());
    for (const Sample& s : series->samples()) {
      ASSERT_EQ(s.value, ExpectedValue(s.t));
    }
  }
}

// ---------------------------------------------------------------------------
// AllInGraphStore: topology mutation through MutateTopology racing pinned
// snapshots and live statements. Snapshots must stay bit-frozen while the
// live store grows (copy-on-write detach).
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, AllInGraphMutateTopologyVersusSnapshots) {
  AllInGraphStore store;
  ASSERT_TRUE(store
                  .MutateTopology([](graph::PropertyGraph* g) {
                    for (int i = 0; i < 4; ++i) {
                      g->AddVertex({"Station"},
                                   {{"name", Value("S" + std::to_string(i))}});
                    }
                    return Status::OK();
                  })
                  .ok());
  const graph::VertexId v0 = store.topology().VertexIds().front();
  for (int i = 0; i < 50; ++i) {
    const Timestamp t = static_cast<Timestamp>(i) * 10;
    ASSERT_TRUE(store.AppendVertexSample(v0, "bikes", t, ExpectedValue(t)).ok());
  }

  // Bounded mutation stream (a free-running mutator on the single-core
  // reference machine would grow the graph — and the cost of every
  // copy-on-write detach — without limit while the reader loop runs).
  constexpr int kMutations = 150;
  std::thread mutator([&] {
    for (int i = 0; i < kMutations; ++i) {
      ASSERT_TRUE(store
                      .MutateTopology([&](graph::PropertyGraph* g) {
                        g->AddVertex({"Extra"}, {});
                        return Status::OK();
                      })
                      .ok());
      const Timestamp t = static_cast<Timestamp>(500 + i) * 10;
      ASSERT_TRUE(
          store.AppendVertexSample(v0, "bikes", t, ExpectedValue(t)).ok());
    }
  });

  for (int i = 0; i < 60; ++i) {
    auto snapshot = store.BeginSnapshot();
    ASSERT_NE(snapshot, nullptr);
    const size_t vertices = snapshot->topology().VertexCount();
    auto series = snapshot->VertexSeriesRange(v0, "bikes", Interval{});
    ASSERT_TRUE(series.ok());
    const size_t samples = series->size();
    // Re-reads of the same pinned view observe the identical state even
    // though the live store keeps growing underneath.
    ASSERT_EQ(snapshot->topology().VertexCount(), vertices);
    auto again = snapshot->VertexSeriesRange(v0, "bikes", Interval{});
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->size(), samples);
    // Live statements stay well-formed throughout.
    auto result = Execute(store, "MATCH (s:Station) RETURN s.name");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->row_count(), 4u);
  }
  mutator.join();

  // Deterministic copy-on-write check (the racing loop above may not have
  // overlapped a pin with a mutation on the single-core machine): mutating
  // while a snapshot pins the graph MUST detach onto a fresh copy.
  std::shared_ptr<const query::QueryBackend> pin = store.BeginSnapshot();
  ASSERT_NE(pin, nullptr);
  ASSERT_TRUE(store
                  .MutateTopology([](graph::PropertyGraph* g) {
                    g->AddVertex({"Extra"}, {});
                    return Status::OK();
                  })
                  .ok());
  EXPECT_GT(
      store.metrics()->counter("concurrency.topology_cow_copies")->value(),
      0u);
}

// ---------------------------------------------------------------------------
// DurableStore: concurrent logged writers serialize on the append mutex —
// the WAL stays gap-free and replayable, proven by reopening the directory.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, DurableConcurrentWritersThenReopen) {
  char tmpl[] = "/tmp/hygraph_concurrency_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string root = tmpl;
  const std::string dir = root + "/store";
  storage::Env* env = storage::Env::Default();

  constexpr int kWriters = 3;
  constexpr int kPerWriter = 120;

  {
    storage::DurableOptions options;
    options.sync_wal = false;  // group commit; SyncWal below makes all durable
    DurableStore store(env, dir, std::make_unique<PolyglotStore>(), options);
    ASSERT_TRUE(store.Open().ok());

    std::vector<graph::VertexId> vertices;
    for (int w = 0; w < kWriters; ++w) {
      auto v = store.AddVertex({"Writer"}, {{"idx", Value(int64_t{w})}});
      ASSERT_TRUE(v.ok());
      vertices.push_back(*v);
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kPerWriter; ++i) {
          const Timestamp t = static_cast<Timestamp>(i) * 13;
          if (!store
                   .AppendVertexSample(vertices[static_cast<size_t>(w)],
                                       "load", t, ExpectedValue(t))
                   .ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : writers) t.join();
    ASSERT_EQ(failures.load(), 0);
    ASSERT_TRUE(store.SyncWal().ok());
    // Every record got a distinct, gap-free sequence number.
    EXPECT_EQ(store.next_seq(),
              1u + kWriters /*AddVertex*/ + kWriters * kPerWriter);
  }

  // Reopen: WAL replay rebuilds every sample from the serialized log.
  DurableStore reopened(env, dir, std::make_unique<PolyglotStore>());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovery().wal_records_salvaged,
            static_cast<size_t>(kWriters + kWriters * kPerWriter));
  EXPECT_EQ(reopened.topology().VertexCount(), static_cast<size_t>(kWriters));
  for (graph::VertexId v : reopened.topology().VertexIds()) {
    auto series = reopened.VertexSeriesRange(v, "load", Interval{});
    ASSERT_TRUE(series.ok());
    EXPECT_EQ(series->size(), static_cast<size_t>(kPerWriter));
    for (const Sample& s : series->samples()) {
      ASSERT_EQ(s.value, ExpectedValue(s.t));
    }
  }
  std::system(("rm -rf " + root).c_str());
}

// ---------------------------------------------------------------------------
// Sealed-chunk reads are lock-free after the pin: a full scan of a sealed
// series costs exactly one shared acquisition (the pin) and zero exclusive
// acquisitions — the acceptance criterion the bench also checks.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, SealedScanTakesOneSharedAcquisition) {
  HypertableOptions options;
  options.chunk_duration = 100;
  HypertableStore store(options);
  const SeriesId id = store.Create("locking");
  for (int i = 0; i < 100; ++i) {
    const Timestamp t = static_cast<Timestamp>(i) * 10;
    ASSERT_TRUE(store.Insert(id, t, ExpectedValue(t)).ok());
  }

  obs::Counter* shared = store.metrics()->counter("concurrency.lock_shared");
  obs::Counter* exclusive =
      store.metrics()->counter("concurrency.lock_exclusive");
  const uint64_t shared_before = shared->value();
  const uint64_t exclusive_before = exclusive->value();
  const uint64_t pins_before =
      store.metrics()->counter("concurrency.chunk_pins")->value();

  auto samples = store.Scan(id, Interval{});
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 100u);

  // One shared hold on the series map (FindSeries) + one on the shard lock
  // (PinView); decoding ran outside any lock.
  EXPECT_EQ(shared->value() - shared_before, 2u);
  EXPECT_EQ(exclusive->value(), exclusive_before);
  // All chunks but the hot newest one were pinned sealed.
  EXPECT_GT(store.metrics()->counter("concurrency.chunk_pins")->value(),
            pins_before);
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel reads are bit-identical to the serial schedule —
// on every read path (Scan, Aggregate, WindowAggregate, CountMatching),
// under seal/unseal churn from concurrent writers. Two stores ingest the
// same deterministic stream; the only difference is parallel_scan, so any
// divergence (including floating-point merge-order drift) is a bug in the
// parallel path. The worker pool is forced to 4 workers so the parallel
// branch really fans out even on a single-core machine.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, ParallelReadsBitIdenticalToSerialUnderChurn) {
  ThreadPool::Instance()->SetWorkerCount(4);

  HypertableOptions serial_options;
  serial_options.chunk_duration = 100;
  serial_options.parallel_scan = false;
  HypertableStore serial_store(serial_options);

  HypertableOptions parallel_options;
  parallel_options.chunk_duration = 100;
  ASSERT_TRUE(parallel_options.parallel_scan);  // the shipping default
  HypertableStore parallel_store(parallel_options);

  const SeriesId sid = serial_store.Create("churn");
  const SeriesId pid = parallel_store.Create("churn");

  constexpr int kRounds = 48;
  constexpr int kPerRound = 24;
  constexpr Timestamp kStep = 10;
  constexpr ts::AggKind kKinds[] = {
      ts::AggKind::kAvg,   ts::AggKind::kSum,    ts::AggKind::kMin,
      ts::AggKind::kMax,   ts::AggKind::kCount,  ts::AggKind::kStdDev,
      ts::AggKind::kFirst, ts::AggKind::kLast,
  };

  std::barrier sync(3);  // two writers + the comparing main thread

  auto spawn_writer = [&](HypertableStore* store, SeriesId id) {
    return std::thread([&sync, store, id] {
      for (int round = 0; round < kRounds; ++round) {
        sync.arrive_and_wait();
        const Timestamp base =
            static_cast<Timestamp>(round) * kPerRound * kStep;
        // Evens then odds: the odd pass lands behind the newest chunk,
        // forcing unseal/merge/reseal while parallel readers race.
        for (int pass = 0; pass < 2; ++pass) {
          for (int i = pass; i < kPerRound; i += 2) {
            const Timestamp t = base + static_cast<Timestamp>(i) * kStep;
            ASSERT_TRUE(store->Insert(id, t, ExpectedValue(t)).ok());
          }
        }
        sync.arrive_and_wait();
      }
    });
  };
  std::thread serial_writer = spawn_writer(&serial_store, sid);
  std::thread parallel_writer = spawn_writer(&parallel_store, pid);

  for (int round = 0; round < kRounds; ++round) {
    sync.arrive_and_wait();
    // Racing section: parallel scans against the in-flight writer hold the
    // schedule-independent invariants (sorted, untorn).
    auto racing = parallel_store.Scan(pid, Interval{});
    ASSERT_TRUE(racing.ok()) << racing.status().ToString();
    CheckSamples(*racing);
    sync.arrive_and_wait();

    // Quiescent section: both stores hold identical data, so every read
    // path must agree bit for bit between the serial and parallel plans.
    auto serial_scan = serial_store.Scan(sid, Interval{});
    auto parallel_scan = parallel_store.Scan(pid, Interval{});
    ASSERT_TRUE(serial_scan.ok());
    ASSERT_TRUE(parallel_scan.ok());
    ASSERT_EQ(parallel_scan->size(), serial_scan->size());
    for (size_t i = 0; i < serial_scan->size(); ++i) {
      ASSERT_EQ((*parallel_scan)[i].t, (*serial_scan)[i].t);
      ASSERT_EQ(std::bit_cast<uint64_t>((*parallel_scan)[i].value),
                std::bit_cast<uint64_t>((*serial_scan)[i].value));
    }

    const Interval window{
        0, static_cast<Timestamp>(round + 1) * kPerRound * kStep};
    for (ts::AggKind kind : kKinds) {
      auto serial_agg = serial_store.Aggregate(sid, window, kind);
      auto parallel_agg = parallel_store.Aggregate(pid, window, kind);
      ASSERT_EQ(serial_agg.ok(), parallel_agg.ok());
      if (serial_agg.ok()) {
        ASSERT_EQ(std::bit_cast<uint64_t>(*parallel_agg),
                  std::bit_cast<uint64_t>(*serial_agg))
            << "agg kind " << static_cast<int>(kind) << " round " << round;
      }
    }

    auto serial_win =
        serial_store.WindowAggregate(sid, window, 250, ts::AggKind::kAvg);
    auto parallel_win =
        parallel_store.WindowAggregate(pid, window, 250, ts::AggKind::kAvg);
    ASSERT_TRUE(serial_win.ok());
    ASSERT_TRUE(parallel_win.ok());
    ASSERT_EQ(parallel_win->size(), serial_win->size());
    for (size_t i = 0; i < serial_win->size(); ++i) {
      ASSERT_EQ(parallel_win->samples()[i].t, serial_win->samples()[i].t);
      ASSERT_EQ(std::bit_cast<uint64_t>(parallel_win->samples()[i].value),
                std::bit_cast<uint64_t>(serial_win->samples()[i].value));
    }

    auto serial_count = serial_store.CountMatching(
        sid, window, ts::ScanPredicate{-50.0, 150.0});
    auto parallel_count = parallel_store.CountMatching(
        pid, window, ts::ScanPredicate{-50.0, 150.0});
    ASSERT_TRUE(serial_count.ok());
    ASSERT_TRUE(parallel_count.ok());
    ASSERT_EQ(*parallel_count, *serial_count);
  }
  serial_writer.join();
  parallel_writer.join();

  // The parallel store really fanned out; the serial store never did.
  EXPECT_GT(parallel_store.stats().morsels_dispatched, 0u);
  EXPECT_EQ(serial_store.stats().morsels_dispatched, 0u);
}

}  // namespace
}  // namespace hygraph
