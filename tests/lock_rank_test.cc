// Tests for the runtime lock-rank checker and the instrumented sync layer
// (common/sync.h): ordered acquisition is counted and allowed, out-of-order
// acquisition dies with both lock names, and a deliberately mis-ranked test
// lock held across a real ts::HypertableStore call proves the checker guards
// production paths, not just toy mutexes. Also covers the injectable
// contention clock (SyncInstruments::clock).
//
// The helpers below lock and unlock manually — they exercise the raw
// capability API (including deliberately unbalanced sequences that must
// die) — so they opt out of the compile-time analysis the rest of the tree
// is checked under.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/sync.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "ts/hypertable.h"

namespace hygraph {
namespace {

void LockBoth(Mutex& first, Mutex& second) HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
  first.lock();
  second.lock();
}

void UnlockBoth(Mutex& first,
                Mutex& second) HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
  second.unlock();
  first.unlock();
}

void LockUnlock(Mutex& mu) HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
  mu.lock();
  mu.unlock();
}

TEST(LockRankTest, InOrderAcquisitionIsCountedAndAllowed) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  obs::MetricsRegistry reg;
  const SyncInstruments in = SyncInstruments::ForRegistry(&reg);
  Mutex low(LockRank::kDurableAppend, in);
  Mutex high(LockRank::kAggCache, in);
  LockBoth(low, high);  // 50 after 10: strictly increasing, fine
  UnlockBoth(low, high);
  EXPECT_EQ(reg.counter("concurrency.lock_rank_checks")->value(), 2u);
}

TEST(LockRankTest, ReleaseUnwindsTheHeldStack) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  Mutex high(LockRank::kAggCache);
  Mutex low(LockRank::kDurableAppend);
  // Taking low AFTER releasing high must be legal — the checker compares
  // against locks still held, not the high-water mark.
  LockUnlock(high);
  LockUnlock(low);
  EXPECT_EQ(sync_internal::HeldRankedLocks(), 0u);
}

bool TryLockHeldCount(Mutex& mu,
                      size_t* held) HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
  if (!mu.try_lock()) return false;
  *held = sync_internal::HeldRankedLocks();
  mu.unlock();
  return true;
}

TEST(LockRankTest, TryLockRegistersTheRankOnSuccess) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  Mutex high(LockRank::kAggCache);
  size_t held_while_locked = 0;
  ASSERT_TRUE(TryLockHeldCount(high, &held_while_locked));
  EXPECT_EQ(held_while_locked, 1u);
  EXPECT_EQ(sync_internal::HeldRankedLocks(), 0u);
}

void SharedThenExclusive(SharedMutex& low,
                         SharedMutex& high) HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
  low.lock_shared();
  high.lock();
  high.unlock();
  low.unlock_shared();
}

TEST(LockRankTest, SharedAndExclusiveModesBothCheck) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  obs::MetricsRegistry reg;
  const SyncInstruments in = SyncInstruments::ForRegistry(&reg);
  SharedMutex low(LockRank::kStoreCoarse, in);
  SharedMutex high(LockRank::kSeriesShard, in);
  SharedThenExclusive(low, high);
  EXPECT_EQ(reg.counter("concurrency.lock_rank_checks")->value(), 2u);
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionDiesNamingBothLocks) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex high(LockRank::kSeriesShard);
  Mutex low(LockRank::kStoreCoarse);
  EXPECT_DEATH(
      LockBoth(high, low),  // 20 after 40: inversion
      "lock-rank inversion: acquiring store\\.coarse_guard \\(rank 20\\) "
      "while holding hypertable\\.series_shard_mu \\(rank 40\\)");
}

TEST(LockRankDeathTest, EqualRankReacquisitionDies) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a(LockRank::kSeriesMap);
  Mutex b(LockRank::kSeriesMap);
  // Same rank: the hierarchy demands STRICTLY increasing ranks.
  EXPECT_DEATH(LockBoth(a, b), "lock-rank inversion");
}

void HoldAndInsert(Mutex& poison, ts::HypertableStore& store,
                   SeriesId id) HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
  poison.lock();
  const Status st = store.Insert(id, 0, 1.0);
  (void)st;
  poison.unlock();
}

TEST(LockRankDeathTest, ChecksGuardRealProductionPaths) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A seeded inversion against real engine code: hold a lock ranked ABOVE
  // the hypertable hierarchy, then call into ts::HypertableStore — its series
  // map lock (kSeriesMap = 30) must refuse to nest under rank 50.
  ts::HypertableStore store;
  const SeriesId id = store.Create("sensor");
  Mutex poison(LockRank::kAggCache);
  EXPECT_DEATH(HoldAndInsert(poison, store, id),
               "lock-rank inversion: acquiring hypertable\\.series_map_mu");
}

TEST(SyncInstrumentsTest, ContentionHistogramUsesInjectedClock) {
  obs::MetricsRegistry reg;
  obs::ManualClock clock;
  clock.set_auto_advance(500);
  const SyncInstruments in = SyncInstruments::ForRegistry(&reg, &clock);
  // Drive the slow path directly with fakes: try_lock fails (forcing the
  // contended branch), the blocking lock is a no-op, and the two clock
  // reads around it land exactly one auto-advance apart.
  sync_internal::AcquireTimed(
      in, in.exclusive_acquisitions, []() {}, []() { return false; });
  EXPECT_EQ(reg.counter("concurrency.lock_exclusive")->value(), 1u);
  EXPECT_EQ(reg.counter("concurrency.lock_contentions")->value(), 1u);
  const obs::HistogramSnapshot h =
      reg.histogram("concurrency.lock_contention_nanos")->Snapshot();
  ASSERT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum, 500u);
}

TEST(SyncInstrumentsTest, UncontendedAcquireRecordsNoContention) {
  obs::MetricsRegistry reg;
  obs::ManualClock clock;
  const SyncInstruments in = SyncInstruments::ForRegistry(&reg, &clock);
  sync_internal::AcquireTimed(
      in, in.exclusive_acquisitions, []() {}, []() { return true; });
  EXPECT_EQ(reg.counter("concurrency.lock_exclusive")->value(), 1u);
  EXPECT_EQ(reg.counter("concurrency.lock_contentions")->value(), 0u);
  EXPECT_EQ(reg.histogram("concurrency.lock_contention_nanos")->count(), 0u);
}

void HoldUntilContended(Mutex& mu, obs::MetricsRegistry& reg,
                        std::atomic<bool>& locked)
    HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
  mu.lock();
  std::thread waiter([&mu, &locked]() HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
    mu.lock();
    locked.store(true);
    mu.unlock();
  });
  // Spin until the waiter has hit the contended slow path, then release.
  while (reg.counter("concurrency.lock_contentions")->value() == 0) {
  }
  mu.unlock();
  waiter.join();
}

TEST(SyncInstrumentsTest, MutexContentionTimedWithManualClock) {
  // End-to-end through hygraph::Mutex: a second thread holds the lock so
  // the main thread takes the contended branch; the injected ManualClock
  // keeps the contention timing deterministic in source (no raw
  // steady_clock reads) even though the wait itself is real.
  obs::MetricsRegistry reg;
  obs::ManualClock clock;
  clock.set_auto_advance(1);
  const SyncInstruments in = SyncInstruments::ForRegistry(&reg, &clock);
  Mutex mu(LockRank::kDurableAppend, in);
  std::atomic<bool> locked{false};
  HoldUntilContended(mu, reg, locked);
  EXPECT_TRUE(locked.load());
  EXPECT_EQ(reg.counter("concurrency.lock_contentions")->value(), 1u);
  EXPECT_EQ(reg.histogram("concurrency.lock_contention_nanos")->count(), 1u);
}

}  // namespace
}  // namespace hygraph
