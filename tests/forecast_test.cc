#include "ts/forecast.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

TEST(EwmaTest, AlphaOneIsIdentity) {
  Series s("s");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.Append(i, std::sin(i * 0.5)).ok());
  }
  auto smoothed = EwmaSmooth(s, 1.0);
  ASSERT_TRUE(smoothed.ok());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_DOUBLE_EQ(smoothed->at(i).value, s.at(i).value);
  }
}

TEST(EwmaTest, SmoothsNoise) {
  Series s("s");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.Append(i, 10.0 + ((i % 2 == 0) ? 1.0 : -1.0)).ok());
  }
  auto smoothed = EwmaSmooth(s, 0.1);
  ASSERT_TRUE(smoothed.ok());
  // Late samples should hover near the true level 10 with tiny ripple.
  for (size_t i = 50; i < smoothed->size(); ++i) {
    EXPECT_NEAR(smoothed->at(i).value, 10.0, 0.2);
  }
}

TEST(EwmaTest, RejectsBadAlpha) {
  Series s("s");
  ASSERT_TRUE(s.Append(0, 1.0).ok());
  EXPECT_FALSE(EwmaSmooth(s, 0.0).ok());
  EXPECT_FALSE(EwmaSmooth(s, 1.5).ok());
}

TEST(HoltTest, ExtrapolatesLinearTrend) {
  Series s("line");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(s.Append(i * kHour, 5.0 + 2.0 * i).ok());
  }
  auto forecast = HoltForecast(s, 0.5, 0.5, 5, kHour);
  ASSERT_TRUE(forecast.ok());
  ASSERT_EQ(forecast->size(), 5u);
  // Perfect line: forecast continues it exactly.
  for (size_t h = 0; h < 5; ++h) {
    EXPECT_NEAR(forecast->at(h).value, 5.0 + 2.0 * (50 + h), 1e-6);
    EXPECT_EQ(forecast->at(h).t,
              49 * kHour + static_cast<Duration>(h + 1) * kHour);
  }
}

TEST(HoltTest, Validation) {
  Series s("s");
  ASSERT_TRUE(s.Append(0, 1.0).ok());
  EXPECT_FALSE(HoltForecast(s, 0.5, 0.5, 3, kHour).ok());  // too short
  ASSERT_TRUE(s.Append(1, 2.0).ok());
  EXPECT_FALSE(HoltForecast(s, 0.0, 0.5, 3, kHour).ok());
  EXPECT_FALSE(HoltForecast(s, 0.5, 1.5, 3, kHour).ok());
  EXPECT_FALSE(HoltForecast(s, 0.5, 0.5, 3, 0).ok());
}

TEST(SeasonalNaiveTest, RepeatsLastSeason) {
  Series s("seasonal");
  const double pattern[] = {1.0, 5.0, 9.0, 5.0};
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(s.Append(i * kHour, pattern[i % 4]).ok());
  }
  auto forecast = SeasonalNaiveForecast(s, 4, 8, kHour);
  ASSERT_TRUE(forecast.ok());
  ASSERT_EQ(forecast->size(), 8u);
  for (size_t h = 0; h < 8; ++h) {
    EXPECT_DOUBLE_EQ(forecast->at(h).value, pattern[h % 4]);
  }
}

TEST(SeasonalNaiveTest, Validation) {
  Series s("s");
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(s.Append(i, 1.0).ok());
  EXPECT_FALSE(SeasonalNaiveForecast(s, 0, 2, kHour).ok());
  EXPECT_FALSE(SeasonalNaiveForecast(s, 4, 2, kHour).ok());  // too short
  EXPECT_FALSE(SeasonalNaiveForecast(s, 2, 2, 0).ok());
}

TEST(MaeTest, AlignedError) {
  Series actual("a");
  Series forecast("f");
  ASSERT_TRUE(actual.Append(1, 10.0).ok());
  ASSERT_TRUE(actual.Append(2, 20.0).ok());
  ASSERT_TRUE(forecast.Append(1, 12.0).ok());
  ASSERT_TRUE(forecast.Append(2, 17.0).ok());
  auto mae = MeanAbsoluteError(actual, forecast);
  ASSERT_TRUE(mae.ok());
  EXPECT_DOUBLE_EQ(*mae, 2.5);
}

TEST(MaeTest, NoOverlapFails) {
  Series actual("a");
  Series forecast("f");
  ASSERT_TRUE(actual.Append(1, 10.0).ok());
  ASSERT_TRUE(forecast.Append(2, 12.0).ok());
  EXPECT_FALSE(MeanAbsoluteError(actual, forecast).ok());
}

TEST(ForecastQualityTest, HoltBeatsNaiveOnTrendedData) {
  // Trended data with noise: Holt's MAE over a held-out tail should beat
  // the seasonal-naive forecast with a bogus season.
  Series train("train");
  Series test("test");
  for (int i = 0; i < 100; ++i) {
    const double v = 3.0 * i + 4.0 * std::sin(i * 0.1);
    if (i < 80) {
      ASSERT_TRUE(train.Append(i * kHour, v).ok());
    } else {
      ASSERT_TRUE(test.Append(i * kHour, v).ok());
    }
  }
  auto holt = HoltForecast(train, 0.6, 0.3, 20, kHour);
  auto naive = SeasonalNaiveForecast(train, 10, 20, kHour);
  ASSERT_TRUE(holt.ok());
  ASSERT_TRUE(naive.ok());
  auto holt_mae = MeanAbsoluteError(test, *holt);
  auto naive_mae = MeanAbsoluteError(test, *naive);
  ASSERT_TRUE(holt_mae.ok());
  ASSERT_TRUE(naive_mae.ok());
  EXPECT_LT(*holt_mae, *naive_mae);
}

}  // namespace
}  // namespace hygraph::ts
