#include "ts/subsequence.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

// A noisy baseline with an exact copy of `shape` planted at `offset`.
Series WithPlantedShape(const std::vector<double>& shape, size_t offset,
                        size_t total) {
  Series s("haystack");
  for (size_t i = 0; i < total; ++i) {
    double v = std::sin(static_cast<double>(i) * 1.7) * 0.2;
    if (i >= offset && i < offset + shape.size()) {
      v = shape[i - offset];
    }
    EXPECT_TRUE(s.Append(static_cast<Timestamp>(i) * kMinute, v).ok());
  }
  return s;
}

const std::vector<double> kShape = {0.0, 5.0, 10.0, 5.0, 0.0, -5.0};

TEST(DistanceProfileTest, SizeAndExactHit) {
  Series s = WithPlantedShape(kShape, 40, 100);
  auto profile = DistanceProfile(s, kShape);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->size(), 100 - kShape.size() + 1);
  EXPECT_NEAR((*profile)[40], 0.0, 1e-9);
}

TEST(DistanceProfileTest, Validation) {
  Series s = WithPlantedShape(kShape, 0, 10);
  EXPECT_FALSE(DistanceProfile(s, {1.0}).ok());
  Series tiny("t");
  ASSERT_TRUE(tiny.Append(0, 1.0).ok());
  EXPECT_FALSE(DistanceProfile(tiny, kShape).ok());
}

TEST(MatchSubsequenceTest, FindsPlantedOccurrence) {
  Series s = WithPlantedShape(kShape, 60, 200);
  auto matches = MatchSubsequence(s, kShape, 1);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].offset, 60u);
  EXPECT_EQ((*matches)[0].start_time, 60 * kMinute);
  EXPECT_NEAR((*matches)[0].distance, 0.0, 1e-9);
}

TEST(MatchSubsequenceTest, ScaleInvariantMatch) {
  // Z-normalization makes a scaled+shifted copy match exactly.
  std::vector<double> scaled;
  for (double v : kShape) scaled.push_back(1000.0 + 3.0 * v);
  Series s = WithPlantedShape(scaled, 25, 120);
  auto matches = MatchSubsequence(s, kShape, 1);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].offset, 25u);
  EXPECT_NEAR((*matches)[0].distance, 0.0, 1e-9);
}

TEST(MatchSubsequenceTest, TopKNonOverlapping) {
  // Plant the shape twice, far apart.
  Series s("h");
  for (size_t i = 0; i < 300; ++i) {
    double v = std::sin(static_cast<double>(i) * 1.7) * 0.1;
    if (i >= 50 && i < 50 + kShape.size()) v = kShape[i - 50];
    if (i >= 200 && i < 200 + kShape.size()) v = kShape[i - 200];
    ASSERT_TRUE(s.Append(static_cast<Timestamp>(i), v).ok());
  }
  auto matches = MatchSubsequence(s, kShape, 2);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 2u);
  std::vector<size_t> offsets = {(*matches)[0].offset, (*matches)[1].offset};
  std::sort(offsets.begin(), offsets.end());
  EXPECT_EQ(offsets[0], 50u);
  EXPECT_EQ(offsets[1], 200u);
  // Non-overlap: gap of at least the query length.
  EXPECT_GE(offsets[1] - offsets[0], kShape.size());
}

TEST(MatchSubsequenceTest, KLargerThanPossible) {
  Series s = WithPlantedShape(kShape, 10, 40);
  auto matches = MatchSubsequence(s, kShape, 100);
  ASSERT_TRUE(matches.ok());
  // Overlap exclusion caps the number of results.
  EXPECT_LE(matches->size(), 40 / kShape.size() + 1);
  EXPECT_GE(matches->size(), 2u);
}

TEST(MatchThresholdTest, ReturnsAllWithinThreshold) {
  Series s = WithPlantedShape(kShape, 30, 100);
  auto matches = MatchSubsequenceThreshold(s, kShape, 0.001);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].offset, 30u);
  // With a huge threshold everything matches.
  auto all = MatchSubsequenceThreshold(s, kShape, 1e9);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 100 - kShape.size() + 1);
  // Results are offset-ordered.
  for (size_t i = 1; i < all->size(); ++i) {
    EXPECT_LT((*all)[i - 1].offset, (*all)[i].offset);
  }
}

TEST(DistanceProfileTest, ConstantWindowsHandled) {
  Series s("flat");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(s.Append(i, 5.0).ok());
  }
  auto profile = DistanceProfile(s, kShape);
  ASSERT_TRUE(profile.ok());
  // All windows constant: distance equals ||z-norm(query)|| everywhere.
  for (size_t i = 1; i < profile->size(); ++i) {
    EXPECT_DOUBLE_EQ((*profile)[i], (*profile)[0]);
  }
  EXPECT_GT((*profile)[0], 0.0);
}

}  // namespace
}  // namespace hygraph::ts
