#include "workloads/fraud_workload.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::workloads {
namespace {

using core::HyGraph;
using graph::VertexId;

FraudConfig SmallConfig() {
  FraudConfig config;
  config.users = 60;
  config.merchants = 12;
  config.merchant_clusters = 3;
  config.days = 5;
  config.seed = 7;
  return config;
}

TEST(FraudWorkloadTest, ModelConventionsHold) {
  auto hg = GenerateFraudHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok()) << hg.status().ToString();
  EXPECT_TRUE(hg->Validate().ok());
  const auto users = hg->structure().VerticesWithLabel("User");
  const auto cards = hg->structure().VerticesWithLabel("CreditCard");
  const auto merchants = hg->structure().VerticesWithLabel("Merchant");
  EXPECT_EQ(users.size(), 60u);
  EXPECT_EQ(cards.size(), 60u);
  EXPECT_EQ(merchants.size(), 12u);
  // Cards are TS vertices with a balance variable; users are PG.
  for (VertexId c : cards) {
    ASSERT_TRUE(hg->IsTsVertex(c));
    auto series = hg->VertexSeries(c);
    ASSERT_TRUE(series.ok());
    EXPECT_TRUE((*series)->VariableIndex("balance").ok());
    EXPECT_EQ((*series)->size(), 5u * 24u);
  }
  for (VertexId u : users) {
    EXPECT_FALSE(hg->IsTsVertex(u));
  }
}

TEST(FraudWorkloadTest, EveryUserHasExactlyOneCard) {
  auto hg = GenerateFraudHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok());
  for (VertexId u : hg->structure().VerticesWithLabel("User")) {
    size_t uses = 0;
    for (graph::EdgeId e : hg->structure().OutEdges(u)) {
      if ((*hg->structure().GetEdge(e))->label == "USES") ++uses;
    }
    EXPECT_EQ(uses, 1u);
  }
}

TEST(FraudWorkloadTest, TxEdgesAreTsWithAmounts) {
  auto hg = GenerateFraudHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok());
  size_t tx_edges = 0;
  for (graph::EdgeId e : hg->TsEdges()) {
    const graph::Edge& edge = **hg->structure().GetEdge(e);
    if (edge.label != "TX") continue;
    ++tx_edges;
    auto series = hg->EdgeSeries(e);
    ASSERT_TRUE(series.ok());
    EXPECT_TRUE((*series)->VariableIndex("amount").ok());
    EXPECT_GT((*series)->size(), 0u);
  }
  EXPECT_GT(tx_edges, 60u);  // at least one per user, usually 2-3
}

TEST(FraudWorkloadTest, GroundTruthConsistent) {
  auto hg = GenerateFraudHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok());
  size_t ring = 0;
  for (VertexId u : hg->structure().VerticesWithLabel("User")) {
    auto fraud = hg->GetVertexProperty(u, "gt_fraud");
    auto role = hg->GetVertexProperty(u, "gt_role");
    ASSERT_TRUE(fraud.ok());
    ASSERT_TRUE(role.ok());
    if (fraud->AsBool()) {
      EXPECT_EQ(*role, Value("ring"));
      ++ring;
    } else {
      EXPECT_NE(*role, Value("ring"));
    }
  }
  EXPECT_GT(ring, 0u);
}

TEST(FraudWorkloadTest, MerchantsHaveClusteredCoordinates) {
  auto hg = GenerateFraudHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok());
  // Same-cluster merchants sit close; cross-cluster far apart.
  std::vector<std::pair<double, double>> cluster0;
  std::vector<std::pair<double, double>> cluster1;
  for (VertexId m : hg->structure().VerticesWithLabel("Merchant")) {
    const double x = hg->GetVertexProperty(m, "x")->AsDouble();
    const double y = hg->GetVertexProperty(m, "y")->AsDouble();
    const int64_t cluster = hg->GetVertexProperty(m, "cluster")->AsInt();
    if (cluster == 0) cluster0.emplace_back(x, y);
    if (cluster == 1) cluster1.emplace_back(x, y);
  }
  ASSERT_GE(cluster0.size(), 2u);
  ASSERT_GE(cluster1.size(), 1u);
  auto dist = [](std::pair<double, double> a, std::pair<double, double> b) {
    const double dx = a.first - b.first;
    const double dy = a.second - b.second;
    return std::sqrt(dx * dx + dy * dy);
  };
  EXPECT_LT(dist(cluster0[0], cluster0[1]), 1000.0);
  EXPECT_GT(dist(cluster0[0], cluster1[0]), 5000.0);
}

TEST(FraudWorkloadTest, DeterministicForSeed) {
  auto a = GenerateFraudHyGraph(SmallConfig());
  auto b = GenerateFraudHyGraph(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->VertexCount(), b->VertexCount());
  EXPECT_EQ(a->EdgeCount(), b->EdgeCount());
  const auto cards_a = a->TsVertices();
  const auto cards_b = b->TsVertices();
  ASSERT_EQ(cards_a.size(), cards_b.size());
  for (size_t i = 0; i < cards_a.size(); ++i) {
    EXPECT_EQ(**a->VertexSeries(cards_a[i]), **b->VertexSeries(cards_b[i]));
  }
}

TEST(FraudWorkloadTest, Validation) {
  FraudConfig bad = SmallConfig();
  bad.users = 0;
  EXPECT_FALSE(GenerateFraudHyGraph(bad).ok());
  bad = SmallConfig();
  bad.merchants = 5;  // fewer than 3 per cluster
  EXPECT_FALSE(GenerateFraudHyGraph(bad).ok());
}

}  // namespace
}  // namespace hygraph::workloads
