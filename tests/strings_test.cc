#include "common/strings.h"

#include <gtest/gtest.h>

namespace hygraph {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsWhitespaceBothEnds) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("\t x\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ToLowerTest, Basics) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToLower("123xY"), "123xy");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("__ts__bikes", "__ts__"));
  EXPECT_FALSE(StartsWith("ts__bikes", "__ts__"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("file.cc", ".h"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

}  // namespace
}  // namespace hygraph
