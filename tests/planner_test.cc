#include "query/planner.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace hygraph::query {
namespace {

Plan MustCompile(const std::string& text, PlannerOptions options = {}) {
  auto ast = Parse(text);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto plan = CompileQuery(*ast, options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(*plan);
}

TEST(PlannerTest, InlinePropertyMapsBecomePredicates) {
  Plan plan = MustCompile("MATCH (s:Station {district: 3}) RETURN s.name");
  ASSERT_EQ(plan.pattern.vertices.size(), 1u);
  const auto& vp = plan.pattern.vertices[0];
  EXPECT_EQ(vp.label, "Station");
  ASSERT_EQ(vp.predicates.size(), 1u);
  EXPECT_EQ(vp.predicates[0].key, "district");
  EXPECT_EQ(vp.predicates[0].op, graph::CmpOp::kEq);
}

TEST(PlannerTest, WherePushdown) {
  Plan plan = MustCompile(
      "MATCH (s:Station) WHERE s.capacity > 20 AND s.name = 'S1' "
      "RETURN s.name");
  EXPECT_EQ(plan.pattern.vertices[0].predicates.size(), 2u);
  EXPECT_EQ(plan.residual_where, nullptr);
}

TEST(PlannerTest, FlippedComparisonNormalized) {
  Plan plan =
      MustCompile("MATCH (s) WHERE 20 < s.capacity RETURN s.capacity");
  ASSERT_EQ(plan.pattern.vertices[0].predicates.size(), 1u);
  EXPECT_EQ(plan.pattern.vertices[0].predicates[0].op, graph::CmpOp::kGt);
  EXPECT_EQ(plan.pattern.vertices[0].predicates[0].value, Value(20));
}

TEST(PlannerTest, NonPushableStaysResidual) {
  Plan plan = MustCompile(
      "MATCH (a), (b) WHERE a.x > b.x AND a.y = 1 RETURN a.x");
  // a.y = 1 pushed; a.x > b.x residual.
  EXPECT_EQ(plan.pattern.vertices[0].predicates.size(), 1u);
  ASSERT_NE(plan.residual_where, nullptr);
  EXPECT_EQ(plan.residual_where->binary_op, BinaryOp::kGt);
}

TEST(PlannerTest, TsCallsNeverPushed) {
  Plan plan = MustCompile(
      "MATCH (s:Station) WHERE ts_avg(s.bikes, 0, 100) > 5 RETURN s.name");
  EXPECT_TRUE(plan.pattern.vertices[0].predicates.empty());
  ASSERT_NE(plan.residual_where, nullptr);
}

TEST(PlannerTest, NotEqualNeverPushed) {
  Plan plan = MustCompile("MATCH (s) WHERE s.x <> 1 RETURN s.x");
  EXPECT_TRUE(plan.pattern.vertices[0].predicates.empty());
  EXPECT_NE(plan.residual_where, nullptr);
}

TEST(PlannerTest, PushdownDisabled) {
  PlannerOptions options;
  options.enable_pushdown = false;
  Plan plan =
      MustCompile("MATCH (s) WHERE s.x = 1 RETURN s.x", options);
  EXPECT_TRUE(plan.pattern.vertices[0].predicates.empty());
  EXPECT_NE(plan.residual_where, nullptr);
}

TEST(PlannerTest, EdgePredicatePushdown) {
  Plan plan = MustCompile(
      "MATCH (a)-[t:TX]->(b) WHERE t.amount > 1000 RETURN a.name");
  ASSERT_EQ(plan.pattern.edges.size(), 1u);
  EXPECT_EQ(plan.pattern.edges[0].predicates.size(), 1u);
  EXPECT_EQ(plan.residual_where, nullptr);
  EXPECT_EQ(plan.edge_vars.at("t"), 0u);
}

TEST(PlannerTest, SharedVariableUnifiesAcrossPaths) {
  Plan plan = MustCompile(
      "MATCH (a:User)-[:USES]->(c), (a)-[:KNOWS]->(b:User) RETURN a.name");
  // "a" appears in both paths but is one pattern vertex.
  EXPECT_EQ(plan.pattern.vertices.size(), 3u);
  EXPECT_EQ(plan.pattern.edges.size(), 2u);
}

TEST(PlannerTest, ConflictingLabelsRejected) {
  auto ast = Parse("MATCH (a:User), (a:Merchant) RETURN a");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(CompileQuery(*ast).ok());
}

TEST(PlannerTest, LeftEdgeReversed) {
  Plan plan = MustCompile("MATCH (a)<-[:E]-(b) RETURN a");
  ASSERT_EQ(plan.pattern.edges.size(), 1u);
  EXPECT_EQ(plan.pattern.edges[0].src_var, "b");
  EXPECT_EQ(plan.pattern.edges[0].dst_var, "a");
  EXPECT_EQ(plan.pattern.edges[0].direction, graph::Direction::kOut);
}

TEST(PlannerTest, UndirectedEdgeAnyDirection) {
  Plan plan = MustCompile("MATCH (a)-[:E]-(b) RETURN a");
  EXPECT_EQ(plan.pattern.edges[0].direction, graph::Direction::kAny);
}

TEST(PlannerTest, AnonymousNodesGetFreshVars) {
  Plan plan = MustCompile("MATCH (:User)-[:E]->(), (:User) RETURN 1");
  EXPECT_EQ(plan.pattern.vertices.size(), 3u);
  // All variables distinct.
  EXPECT_NE(plan.pattern.vertices[0].var, plan.pattern.vertices[1].var);
  EXPECT_NE(plan.pattern.vertices[0].var, plan.pattern.vertices[2].var);
}

TEST(PlannerTest, DuplicateEdgeVariableRejected) {
  auto ast = Parse("MATCH (a)-[t:E]->(b)-[t:E]->(c) RETURN a");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(CompileQuery(*ast).ok());
}

TEST(PlannerTest, ToStringMentionsShape) {
  Plan plan = MustCompile(
      "MATCH (s:Station) WHERE ts_avg(s.b, 0, 1) > 2 RETURN s.name LIMIT 5");
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("s:Station"), std::string::npos);
  EXPECT_NE(text.find("limit=5"), std::string::npos);
  EXPECT_NE(text.find("ts_avg"), std::string::npos);
}

}  // namespace
}  // namespace hygraph::query
