#include "ts/aggregate.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

Series Ramp(size_t n, Duration step = kMinute) {
  Series s("ramp");
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        s.Append(static_cast<Timestamp>(i) * step, static_cast<double>(i))
            .ok());
  }
  return s;
}

TEST(AggKindTest, NamesRoundTrip) {
  for (AggKind kind :
       {AggKind::kCount, AggKind::kSum, AggKind::kAvg, AggKind::kMin,
        AggKind::kMax, AggKind::kStdDev, AggKind::kFirst, AggKind::kLast}) {
    auto parsed = ParseAggKind(AggKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseAggKind("MEAN").ok());  // alias, case-insensitive
  EXPECT_FALSE(ParseAggKind("median").ok());
}

TEST(AggStateTest, MergeEqualsSequential) {
  AggState left;
  AggState right;
  AggState all;
  for (int i = 0; i < 10; ++i) {
    const Sample s{i, static_cast<double>(i * i)};
    (i < 5 ? left : right).Add(s);
    all.Add(s);
  }
  AggState merged = left;
  merged.Merge(right);
  EXPECT_EQ(merged.count, all.count);
  EXPECT_DOUBLE_EQ(merged.sum, all.sum);
  EXPECT_DOUBLE_EQ(merged.sum_sq, all.sum_sq);
  EXPECT_DOUBLE_EQ(merged.min, all.min);
  EXPECT_DOUBLE_EQ(merged.max, all.max);
  EXPECT_EQ(merged.first.t, all.first.t);
  EXPECT_EQ(merged.last.t, all.last.t);
}

TEST(AggStateTest, MergeWithEmpty) {
  AggState a;
  a.Add(Sample{1, 5.0});
  AggState empty;
  AggState b = a;
  b.Merge(empty);
  EXPECT_EQ(b.count, 1u);
  AggState c = empty;
  c.Merge(a);
  EXPECT_EQ(c.count, 1u);
  EXPECT_DOUBLE_EQ(*c.Finalize(AggKind::kSum), 5.0);
}

TEST(AggStateTest, FinalizeEmpty) {
  AggState empty;
  EXPECT_DOUBLE_EQ(*empty.Finalize(AggKind::kCount), 0.0);
  EXPECT_FALSE(empty.Finalize(AggKind::kAvg).ok());
  EXPECT_FALSE(empty.Finalize(AggKind::kMin).ok());
}

TEST(AggregateTest, OverInterval) {
  Series s = Ramp(100);
  const Interval range{10 * kMinute, 20 * kMinute};
  EXPECT_DOUBLE_EQ(*Aggregate(s, range, AggKind::kCount), 10.0);
  EXPECT_DOUBLE_EQ(*Aggregate(s, range, AggKind::kSum), 145.0);
  EXPECT_DOUBLE_EQ(*Aggregate(s, range, AggKind::kAvg), 14.5);
  EXPECT_DOUBLE_EQ(*Aggregate(s, range, AggKind::kMin), 10.0);
  EXPECT_DOUBLE_EQ(*Aggregate(s, range, AggKind::kMax), 19.0);
}

TEST(WindowAggregateTest, TumblingWindows) {
  Series s = Ramp(60);  // one sample per minute, values 0..59
  auto windowed = WindowAggregate(s, s.TimeSpan(), 10 * kMinute,
                                  AggKind::kCount);
  ASSERT_TRUE(windowed.ok());
  ASSERT_EQ(windowed->size(), 6u);
  for (const Sample& w : windowed->samples()) {
    EXPECT_DOUBLE_EQ(w.value, 10.0);
  }
  auto sums =
      WindowAggregate(s, s.TimeSpan(), 10 * kMinute, AggKind::kSum);
  ASSERT_TRUE(sums.ok());
  EXPECT_DOUBLE_EQ(sums->at(0).value, 45.0);    // 0..9
  EXPECT_DOUBLE_EQ(sums->at(5).value, 545.0);   // 50..59
}

TEST(WindowAggregateTest, SkipsEmptyWindows) {
  Series s("gappy");
  ASSERT_TRUE(s.Append(0, 1.0).ok());
  ASSERT_TRUE(s.Append(10 * kMinute, 2.0).ok());
  auto windowed =
      WindowAggregate(s, s.TimeSpan(), kMinute, AggKind::kSum);
  ASSERT_TRUE(windowed.ok());
  EXPECT_EQ(windowed->size(), 2u);
}

TEST(WindowAggregateTest, RejectsBadWidth) {
  Series s = Ramp(10);
  EXPECT_FALSE(WindowAggregate(s, s.TimeSpan(), 0, AggKind::kSum).ok());
  EXPECT_FALSE(WindowAggregate(s, s.TimeSpan(), -5, AggKind::kSum).ok());
}

TEST(SlidingAggregateTest, OverlappingWindows) {
  Series s = Ramp(10);
  // Window 4 min, step 2 min: windows at 0,2,4,6,8 (clamped to span).
  auto sliding =
      SlidingAggregate(s, s.TimeSpan(), 4 * kMinute, 2 * kMinute,
                       AggKind::kCount);
  ASSERT_TRUE(sliding.ok());
  ASSERT_GE(sliding->size(), 4u);
  EXPECT_DOUBLE_EQ(sliding->at(0).value, 4.0);  // samples 0-3
  EXPECT_DOUBLE_EQ(sliding->at(1).value, 4.0);  // samples 2-5
}

TEST(SlidingAggregateTest, GapSteps) {
  Series s = Ramp(30);
  // Step larger than width leaves gaps between windows.
  auto sliding = SlidingAggregate(s, s.TimeSpan(), 2 * kMinute,
                                  10 * kMinute, AggKind::kSum);
  ASSERT_TRUE(sliding.ok());
  ASSERT_EQ(sliding->size(), 3u);
  EXPECT_DOUBLE_EQ(sliding->at(0).value, 0.0 + 1.0);
  EXPECT_DOUBLE_EQ(sliding->at(1).value, 10.0 + 11.0);
  EXPECT_DOUBLE_EQ(sliding->at(2).value, 20.0 + 21.0);
}

TEST(WindowAggregateTest, ClampsSentinelInterval) {
  Series s = Ramp(10);
  auto windowed =
      WindowAggregate(s, Interval::All(), 5 * kMinute, AggKind::kCount);
  ASSERT_TRUE(windowed.ok());
  EXPECT_EQ(windowed->size(), 2u);
}

TEST(WindowAggregateTest, EmptySeries) {
  Series s("empty");
  auto windowed =
      WindowAggregate(s, Interval::All(), kMinute, AggKind::kSum);
  ASSERT_TRUE(windowed.ok());
  EXPECT_TRUE(windowed->empty());
}

// Property sweep: for any window width, windowed counts sum to the total
// sample count and windowed sums add up to the total sum.
class WindowSweep : public ::testing::TestWithParam<Duration> {};

TEST_P(WindowSweep, PartitionsMass) {
  Series s("noise");
  double total = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double v = std::sin(i * 0.37) * 10.0;
    ASSERT_TRUE(s.Append(i * 90 * kSecond, v).ok());
    total += v;
  }
  auto counts = WindowAggregate(s, s.TimeSpan(), GetParam(), AggKind::kCount);
  auto sums = WindowAggregate(s, s.TimeSpan(), GetParam(), AggKind::kSum);
  ASSERT_TRUE(counts.ok());
  ASSERT_TRUE(sums.ok());
  double count_total = 0.0;
  for (const Sample& w : counts->samples()) count_total += w.value;
  double sum_total = 0.0;
  for (const Sample& w : sums->samples()) sum_total += w.value;
  EXPECT_DOUBLE_EQ(count_total, 500.0);
  EXPECT_NEAR(sum_total, total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, WindowSweep,
                         ::testing::Values(kMinute, 7 * kMinute, kHour,
                                           kDay));

}  // namespace
}  // namespace hygraph::ts
