#include "analytics/hybrid_match.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

ts::MultiSeries Signal(std::initializer_list<double> values) {
  ts::MultiSeries ms("sig", {"v"});
  Timestamp t = 0;
  for (double v : values) {
    EXPECT_TRUE(ms.AppendRow(t, {v}).ok());
    t += kHour;
  }
  return ms;
}

// Two sensors wired to a gateway: one shows a spike pattern, one is flat.
class HybridMatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gateway_ = *hg_.AddPgVertex({"Gateway"}, {});
    spiky_ = *hg_.AddTsVertex(
        {"Sensor"}, Signal({1, 1, 1, 9, 1, 1, 1, 1, 1, 1, 1, 1}));
    flat_ = *hg_.AddTsVertex(
        {"Sensor"}, Signal({2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}));
    ASSERT_TRUE(hg_.AddPgEdge(gateway_, spiky_, "LINKS", {}).ok());
    ASSERT_TRUE(hg_.AddPgEdge(gateway_, flat_, "LINKS", {}).ok());
  }

  HybridPatternQuery SpikeQuery(double max_distance = 0.5) {
    HybridPatternQuery q;
    q.structure.AddVertex("g", "Gateway");
    q.structure.AddVertex("s", "Sensor");
    q.structure.AddEdge("g", "s", "LINKS");
    SeriesShapeConstraint c;
    c.var = "s";
    c.shape = {1, 1, 9, 1, 1};  // the spike silhouette
    c.max_distance = max_distance;
    q.constraints.push_back(std::move(c));
    return q;
  }

  HyGraph hg_;
  VertexId gateway_, spiky_, flat_;
};

TEST_F(HybridMatchTest, StructureAndShapeMustBothHold) {
  auto matches = MatchHybridPattern(hg_, SpikeQuery());
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].match.vertices.at("s"), spiky_);
  ASSERT_EQ((*matches)[0].shape_hits.size(), 1u);
  EXPECT_EQ((*matches)[0].shape_hits[0].offset, 1u);  // spike at index 3
  EXPECT_NEAR((*matches)[0].shape_hits[0].distance, 0.0, 1e-9);
}

TEST_F(HybridMatchTest, NoConstraintIsPureStructural) {
  HybridPatternQuery q = SpikeQuery();
  q.constraints.clear();
  auto matches = MatchHybridPattern(hg_, q);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);  // both sensors
}

TEST_F(HybridMatchTest, TightThresholdExcludesAll) {
  // The flat sensor has a constant series; z-normalized distance to the
  // spike shape is large and constant, so a generous threshold lets it in.
  auto generous = MatchHybridPattern(hg_, SpikeQuery(1e9));
  ASSERT_TRUE(generous.ok());
  EXPECT_EQ(generous->size(), 2u);
  auto strict = MatchHybridPattern(hg_, SpikeQuery(1e-3));
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->size(), 1u);
}

TEST_F(HybridMatchTest, ConstraintOnPgVertexUsesSeriesProperty) {
  // Give the gateway a series property and constrain on it.
  ASSERT_TRUE(
      hg_.SetVertexSeriesProperty(gateway_, "load",
                                  Signal({1, 2, 3, 4, 5, 6, 7, 8}))
          .ok());
  HybridPatternQuery q;
  q.structure.AddVertex("g", "Gateway");
  SeriesShapeConstraint c;
  c.var = "g";
  c.series_key = "load";
  c.shape = {1, 2, 3, 4};  // a rising ramp, z-matches anywhere on the ramp
  c.max_distance = 0.1;
  q.constraints.push_back(std::move(c));
  auto matches = MatchHybridPattern(hg_, q);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST_F(HybridMatchTest, MissingSeriesPropertyFailsMatchNotQuery) {
  HybridPatternQuery q;
  q.structure.AddVertex("g", "Gateway");
  SeriesShapeConstraint c;
  c.var = "g";
  c.series_key = "nonexistent";
  c.shape = {1, 2, 3};
  q.constraints.push_back(std::move(c));
  auto matches = MatchHybridPattern(hg_, q);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(HybridMatchTest, Validation) {
  HybridPatternQuery q = SpikeQuery();
  q.constraints[0].shape = {1.0};  // too short
  EXPECT_FALSE(MatchHybridPattern(hg_, q).ok());
  HybridPatternQuery bad_var = SpikeQuery();
  bad_var.constraints[0].var = "zz";
  EXPECT_FALSE(MatchHybridPattern(hg_, bad_var).ok());
}

TEST_F(HybridMatchTest, LimitApplied) {
  HybridPatternQuery q = SpikeQuery(1e9);  // both sensors pass
  q.limit = 1;
  auto matches = MatchHybridPattern(hg_, q);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST_F(HybridMatchTest, SeriesShorterThanShapeSkipped) {
  const VertexId stub = *hg_.AddTsVertex({"Sensor"}, Signal({1, 2}));
  ASSERT_TRUE(hg_.AddPgEdge(gateway_, stub, "LINKS", {}).ok());
  auto matches = MatchHybridPattern(hg_, SpikeQuery(1e9));
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);  // stub excluded, others kept
}

}  // namespace
}  // namespace hygraph::analytics
