#include "ts/sax.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

Series Wave(size_t n, double freq = 0.2, double phase = 0.0) {
  Series s("wave");
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(s.Append(static_cast<Timestamp>(i) * kMinute,
                         std::sin(static_cast<double>(i) * freq + phase))
                    .ok());
  }
  return s;
}

TEST(PaaTest, EvenDivision) {
  auto frames = Paa({1, 1, 2, 2, 3, 3}, 3);
  ASSERT_TRUE(frames.ok());
  EXPECT_EQ(*frames, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(PaaTest, UnevenDivisionUsesFractionalOverlap) {
  // 5 values into 2 frames: frame 0 covers v0, v1 and half of v2.
  auto frames = Paa({2, 2, 4, 6, 6}, 2);
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->size(), 2u);
  EXPECT_NEAR((*frames)[0], (2 + 2 + 0.5 * 4) / 2.5, 1e-12);
  EXPECT_NEAR((*frames)[1], (0.5 * 4 + 6 + 6) / 2.5, 1e-12);
}

TEST(PaaTest, MassPreserved) {
  const std::vector<double> values = {1, 5, 2, 8, 3, 9, 4, 0, 7, 6, 2};
  auto frames = Paa(values, 4);
  ASSERT_TRUE(frames.ok());
  double total = 0.0;
  for (double v : values) total += v;
  double frame_total = 0.0;
  for (double f : *frames) {
    frame_total += f * static_cast<double>(values.size()) / 4.0;
  }
  EXPECT_NEAR(frame_total, total, 1e-9);
}

TEST(PaaTest, Validation) {
  EXPECT_FALSE(Paa({1, 2}, 3).ok());
  EXPECT_FALSE(Paa({1, 2}, 0).ok());
}

TEST(SaxWordTest, LengthAndAlphabetRange) {
  SaxOptions options;
  options.segments = 6;
  options.alphabet = 4;
  auto word = SaxWord(Wave(120), options);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(word->size(), 6u);
  for (char c : *word) {
    EXPECT_GE(c, 'a');
    EXPECT_LT(c, 'a' + 4);
  }
}

TEST(SaxWordTest, ShapeInvariantToScaleAndOffset) {
  SaxOptions options;
  options.segments = 8;
  options.alphabet = 5;
  Series base = Wave(160);
  Series scaled("scaled");
  for (const Sample& s : base.samples()) {
    ASSERT_TRUE(scaled.Append(s.t, 500.0 + 42.0 * s.value).ok());
  }
  EXPECT_EQ(*SaxWord(base, options), *SaxWord(scaled, options));
}

TEST(SaxWordTest, RisingVsFallingDiffer) {
  Series rising("r");
  Series falling("f");
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(rising.Append(i, i).ok());
    ASSERT_TRUE(falling.Append(i, -i).ok());
  }
  SaxOptions options;
  options.segments = 4;
  options.alphabet = 4;
  const std::string up = *SaxWord(rising, options);
  const std::string down = *SaxWord(falling, options);
  EXPECT_NE(up, down);
  // A linear ramp quantizes to a monotone word ("aabd"-like).
  EXPECT_LE(up.front(), up.back());
  EXPECT_GE(down.front(), down.back());
}

TEST(SaxWordTest, Validation) {
  SaxOptions bad;
  bad.alphabet = 1;
  EXPECT_FALSE(SaxWord(Wave(64), bad).ok());
  bad.alphabet = 20;
  EXPECT_FALSE(SaxWord(Wave(64), bad).ok());
  SaxOptions too_many;
  too_many.segments = 100;
  EXPECT_FALSE(SaxWord(Wave(10), too_many).ok());
}

TEST(SaxMinDistTest, LowerBoundsAndZeroForNeighbors) {
  SaxOptions options;
  options.segments = 4;
  options.alphabet = 4;
  // Adjacent symbols have distance 0 (MINDIST property).
  auto near = SaxMinDist("aabb", "bbcc", 64, options);
  ASSERT_TRUE(near.ok());
  EXPECT_DOUBLE_EQ(*near, 0.0);
  auto far = SaxMinDist("aaaa", "dddd", 64, options);
  ASSERT_TRUE(far.ok());
  EXPECT_GT(*far, 0.0);
  // Identical words -> 0.
  EXPECT_DOUBLE_EQ(*SaxMinDist("abcd", "abcd", 64, options), 0.0);
}

TEST(SaxMinDistTest, Validation) {
  SaxOptions options;
  options.segments = 4;
  EXPECT_FALSE(SaxMinDist("abc", "abcd", 64, options).ok());
  EXPECT_FALSE(SaxMinDist("abcd", "abcd", 2, options).ok());
}

TEST(SlidingSaxTest, CountAndPeriodicity) {
  SaxOptions options;
  options.segments = 4;
  options.alphabet = 4;
  // Period-20 wave: windows one period apart share a word.
  Series s = Wave(200, 2.0 * 3.14159265358979 / 20.0);
  auto words = SlidingSaxWords(s, 20, 5, options);
  ASSERT_TRUE(words.ok());
  EXPECT_EQ(words->size(), (200 - 20) / 5 + 1);
  EXPECT_EQ((*words)[0], (*words)[4]);  // offset 0 vs offset 20
}

TEST(SlidingSaxTest, Validation) {
  SaxOptions options;
  EXPECT_FALSE(SlidingSaxWords(Wave(50), 4, 0, options).ok());
  EXPECT_FALSE(SlidingSaxWords(Wave(5), 20, 1, options).ok());
  options.segments = 30;
  EXPECT_FALSE(SlidingSaxWords(Wave(50), 20, 1, options).ok());
}

TEST(BagOfPatternsTest, PeriodicSeriesHasDominantWord) {
  SaxOptions options;
  options.segments = 4;
  options.alphabet = 3;
  Series s = Wave(400, 2.0 * 3.14159265358979 / 40.0);
  auto bag = SaxBagOfPatterns(s, 40, 40, options);
  ASSERT_TRUE(bag.ok());
  ASSERT_FALSE(bag->empty());
  // Aligned whole-period windows all produce the same word.
  EXPECT_EQ((*bag)[0].count, 10u);
  EXPECT_EQ(bag->size(), 1u);
}

TEST(BagOfPatternsTest, CountsSumToWindows) {
  SaxOptions options;
  options.segments = 4;
  options.alphabet = 4;
  Series s = Wave(300, 0.37);
  auto bag = SaxBagOfPatterns(s, 30, 10, options);
  ASSERT_TRUE(bag.ok());
  size_t total = 0;
  for (const SaxPattern& p : *bag) total += p.count;
  EXPECT_EQ(total, (300 - 30) / 10 + 1);
  for (size_t i = 1; i < bag->size(); ++i) {
    EXPECT_GE((*bag)[i - 1].count, (*bag)[i].count);
  }
}

}  // namespace
}  // namespace hygraph::ts
