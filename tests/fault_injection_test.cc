#include "storage/fault_injection_env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/all_in_graph.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"

namespace hygraph::storage {
namespace {

using BackendFactory = std::function<std::unique_ptr<query::QueryBackend>()>;

std::unique_ptr<query::QueryBackend> MakeAllInGraph() {
  return std::make_unique<AllInGraphStore>();
}
std::unique_ptr<query::QueryBackend> MakePolyglot() {
  return std::make_unique<PolyglotStore>();
}

// The workload: a fixed script of logical operations, each applied through
// whatever interface the caller supplies. No removals — ids stay dense so
// BuildSnapshotText is usable as the state signature throughout.
struct Op {
  enum Kind { kAddVertex, kAddEdge, kSetVertexProp, kAppendVertexSample,
              kAppendEdgeSample } kind;
  uint64_t a = 0, b = 0;
  int64_t t = 0;
  double value = 0.0;
};

std::vector<Op> Workload() {
  std::vector<Op> ops;
  ops.push_back({Op::kAddVertex});
  ops.push_back({Op::kAddVertex});
  ops.push_back({Op::kAddEdge, 0, 1});
  ops.push_back({Op::kSetVertexProp, 0});
  for (int i = 0; i < 4; ++i) {
    ops.push_back({Op::kAppendVertexSample, 0, 0, 100 + i, 1.5 * i});
    ops.push_back({Op::kAppendEdgeSample, 0, 0, 200 + i, 2.5 * i});
  }
  ops.push_back({Op::kAddVertex});
  ops.push_back({Op::kAddEdge, 2, 0});
  ops.push_back({Op::kAppendVertexSample, 2, 0, 300, 7.0});
  return ops;
}

// Applies one op to a DurableStore (logged path).
Status ApplyDurable(DurableStore* store, const Op& op) {
  switch (op.kind) {
    case Op::kAddVertex:
      return store->AddVertex({"L"}, {{"n", Value(int64_t{7})}}).status();
    case Op::kAddEdge:
      return store->AddEdge(op.a, op.b, "rel", {}).status();
    case Op::kSetVertexProp:
      return store->SetVertexProperty(op.a, "flag", Value(true));
    case Op::kAppendVertexSample:
      return store->AppendVertexSample(op.a, "temp", op.t, op.value);
    case Op::kAppendEdgeSample:
      return store->AppendEdgeSample(op.a, "load", op.t, op.value);
  }
  return Status::Internal("unreachable");
}

// Applies one op directly to a plain backend (the oracle).
Status ApplyOracle(query::QueryBackend* backend, const Op& op) {
  switch (op.kind) {
    case Op::kAddVertex:
      backend->mutable_topology()->AddVertex({"L"}, {{"n", Value(int64_t{7})}});
      return Status::OK();
    case Op::kAddEdge:
      return backend->mutable_topology()->AddEdge(op.a, op.b, "rel", {})
          .status();
    case Op::kSetVertexProp:
      return backend->mutable_topology()->SetVertexProperty(op.a, "flag",
                                                            Value(true));
    case Op::kAppendVertexSample:
      return backend->AppendVertexSample(op.a, "temp", op.t, op.value);
    case Op::kAppendEdgeSample:
      return backend->AppendEdgeSample(op.a, "load", op.t, op.value);
  }
  return Status::Internal("unreachable");
}

// State signature of the first `acked` workload ops, built on a fresh
// oracle backend.
std::string OracleSignature(const BackendFactory& make, size_t acked) {
  auto oracle = make();
  const std::vector<Op> ops = Workload();
  for (size_t i = 0; i < acked; ++i) {
    EXPECT_TRUE(ApplyOracle(oracle.get(), ops[i]).ok());
  }
  auto text = BuildSnapshotText(*oracle);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return text.value_or("<oracle error>");
}

struct MatrixCase {
  const char* name;
  BackendFactory make;
  FaultInjectionEnv::UnsyncedLoss loss;
};

class FaultMatrixTest : public ::testing::TestWithParam<MatrixCase> {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hygraph_fault_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    std::system(("rm -rf " + root_).c_str());
  }
  std::string root_;
};

// The heart of the PR: crash after every possible k-th filesystem
// operation, drop un-synced data, recover, and require the recovered state
// to equal the oracle of acknowledged operations — never a crash, never a
// corrupt result.
TEST_P(FaultMatrixTest, RecoveredStateMatchesAckedPrefixForEveryCrashPoint) {
  const MatrixCase& param = GetParam();
  const std::vector<Op> ops = Workload();

  // First, an uninterrupted run to learn the total op budget.
  uint64_t total_fs_ops = 0;
  {
    FaultInjectionEnv fenv(Env::Default());
    DurableStore store(&fenv, root_ + "/probe", param.make());
    ASSERT_TRUE(store.Open().ok());
    for (const Op& op : ops) ASSERT_TRUE(ApplyDurable(&store, op).ok());
    total_fs_ops = fenv.op_count();
  }

  size_t torn_tails_seen = 0;
  for (uint64_t k = 0; k < total_fs_ops; ++k) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " fs ops");
    const std::string dir = root_ + "/run" + std::to_string(k);
    FaultInjectionEnv fenv(Env::Default());

    size_t acked = 0;
    {
      DurableStore store(&fenv, dir, param.make());
      fenv.SetCrashAfter(k);  // may land inside Open() itself
      if (store.Open().ok()) {
        for (const Op& op : ops) {
          if (!ApplyDurable(&store, op).ok()) break;
          ++acked;
        }
      }
    }

    ASSERT_TRUE(fenv.DropUnsyncedData(param.loss).ok());
    fenv.Revive();

    // Recovery must succeed and must never crash the process.
    DurableStore recovered(&fenv, dir, param.make());
    Status open = recovered.Open();
    ASSERT_TRUE(open.ok()) << open.ToString();
    if (recovered.recovery().wal_torn_tail) ++torn_tails_seen;

    auto text = BuildSnapshotText(*recovered.inner());
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    if (param.loss == FaultInjectionEnv::UnsyncedLoss::kDropAll) {
      // fsync barrier honored: an acknowledged op is durable, an
      // unacknowledged one leaves no trace.
      EXPECT_EQ(*text, OracleSignature(param.make, acked));
    } else {
      // A surviving un-synced prefix may complete the in-flight record, so
      // recovery may legitimately include one more op than was acked.
      const std::string exact = OracleSignature(param.make, acked);
      const std::string plus_one =
          acked < ops.size() ? OracleSignature(param.make, acked + 1) : exact;
      EXPECT_TRUE(*text == exact || *text == plus_one)
          << "recovered state matches neither acked=" << acked
          << " nor acked+1";
    }

    // The revived store must be writable again: recovery ends in a
    // functional epoch, not a read-only wreck.
    if (recovered.topology().VertexCount() >= 1) {
      EXPECT_TRUE(
          recovered.AppendVertexSample(0, "temp", 9000, 1.0).ok());
    }
  }
  // The matrix must actually exercise torn tails under kKeepPrefix.
  if (param.loss == FaultInjectionEnv::UnsyncedLoss::kKeepPrefix) {
    EXPECT_GT(torn_tails_seen, 0u);
  }
}

// With sync disabled, group commit trades the per-op guarantee for
// throughput: only SyncWal()-covered records must survive kDropAll.
TEST_P(FaultMatrixTest, GroupCommitPreservesSyncedPrefix) {
  const MatrixCase& param = GetParam();
  const std::vector<Op> ops = Workload();
  const std::string dir = root_ + "/group";
  FaultInjectionEnv fenv(Env::Default());
  DurableOptions options;
  options.sync_wal = false;

  size_t synced_ops = 0;
  {
    DurableStore store(&fenv, dir, param.make(), options);
    ASSERT_TRUE(store.Open().ok());
    for (size_t i = 0; i < ops.size(); ++i) {
      ASSERT_TRUE(ApplyDurable(&store, ops[i]).ok());
      if (i + 1 == ops.size() / 2) {
        ASSERT_TRUE(store.SyncWal().ok());
        synced_ops = i + 1;
      }
    }
    fenv.Crash();
  }
  ASSERT_TRUE(
      fenv.DropUnsyncedData(FaultInjectionEnv::UnsyncedLoss::kDropAll).ok());
  fenv.Revive();

  DurableStore recovered(&fenv, dir, param.make(), options);
  ASSERT_TRUE(recovered.Open().ok());
  auto text = BuildSnapshotText(*recovered.inner());
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, OracleSignature(param.make, synced_ops));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultMatrixTest,
    ::testing::Values(
        MatrixCase{"all_in_graph_drop_all", MakeAllInGraph,
                   FaultInjectionEnv::UnsyncedLoss::kDropAll},
        MatrixCase{"all_in_graph_keep_prefix", MakeAllInGraph,
                   FaultInjectionEnv::UnsyncedLoss::kKeepPrefix},
        MatrixCase{"polyglot_drop_all", MakePolyglot,
                   FaultInjectionEnv::UnsyncedLoss::kDropAll},
        MatrixCase{"polyglot_keep_prefix", MakePolyglot,
                   FaultInjectionEnv::UnsyncedLoss::kKeepPrefix}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hygraph::storage
