#include <gtest/gtest.h>

#include "core/hygraph.h"

namespace hygraph::core {
namespace {

ts::MultiSeries OneVar(std::initializer_list<double> values) {
  ts::MultiSeries ms("s", {"v"});
  Timestamp t = 0;
  for (double v : values) {
    EXPECT_TRUE(ms.AppendRow(t, {v}).ok());
    t += kMinute;
  }
  return ms;
}

struct World {
  HyGraph hg;
  VertexId user;
  VertexId card;
  EdgeId uses;
  SubgraphId subgraph;
};

World HealthyInstance() {
  World w;
  w.user = *w.hg.AddPgVertex({"User"}, {}, Interval{0, 1000});
  w.card = *w.hg.AddTsVertex({"Card"}, OneVar({1, 2, 3}));
  w.uses = *w.hg.AddPgEdge(w.user, w.card, "USES", {}, Interval{0, 1000});
  (void)*w.hg.SetVertexSeriesProperty(w.user, "activity", OneVar({4, 5}));
  w.subgraph = *w.hg.CreateSubgraph({"S"}, {}, Interval{0, 500});
  EXPECT_TRUE(w.hg
                  .AddToSubgraph(w.subgraph, ElementRef::OfVertex(w.user),
                                 Interval{0, 500})
                  .ok());
  return w;
}

TEST(ValidateTest, HealthyInstancePasses) {
  World w = HealthyInstance();
  EXPECT_TRUE(w.hg.Validate().ok());
}

// Failure injection through the mutable_tpg() escape hatch: every broken
// invariant must be caught by the full Validate() pass.

TEST(ValidateTest, CatchesVertexWithoutKind) {
  World w = HealthyInstance();
  // A vertex added behind the model's back has validity but no kind.
  ASSERT_TRUE(w.hg.mutable_tpg()->AddVertex({"Rogue"}, {}, Interval::All())
                  .ok());
  Status s = w.hg.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(ValidateTest, CatchesStructuralVertexWithoutValidity) {
  World w = HealthyInstance();
  // Even deeper bypass: straight into the structural graph.
  w.hg.mutable_tpg()->mutable_graph()->AddVertex({"Deep"}, {});
  EXPECT_FALSE(w.hg.Validate().ok());
}

TEST(ValidateTest, CatchesEdgeWithoutValidity) {
  World w = HealthyInstance();
  ASSERT_TRUE(w.hg.mutable_tpg()
                  ->mutable_graph()
                  ->AddEdge(w.user, w.card, "ROGUE", {})
                  .ok());
  Status s = w.hg.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(ValidateTest, CatchesDanglingSeriesRef) {
  World w = HealthyInstance();
  ASSERT_TRUE(w.hg.mutable_tpg()
                  ->mutable_graph()
                  ->SetVertexProperty(w.user, "bad", Value::SeriesRef(999))
                  .ok());
  Status s = w.hg.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("missing series"), std::string::npos);
}

TEST(ValidateTest, CatchesNonChronologicalSeriesProperty) {
  World w = HealthyInstance();
  // Mutators prevent this; simulate corruption by attaching a series ref
  // whose pooled series is fine, then breaking chronology is impossible
  // through the API — so instead verify the chronological check runs by
  // confirming a healthy instance passes and the series pool is covered.
  EXPECT_TRUE(w.hg.Validate().ok());
  EXPECT_EQ(w.hg.SeriesPoolSize(), 1u);
}

TEST(ValidateTest, MutatorsKeepInvariantsUnderChurn) {
  // Stress: many interleaved valid mutations must keep Validate() green.
  HyGraph hg;
  std::vector<VertexId> users;
  std::vector<VertexId> cards;
  for (int i = 0; i < 20; ++i) {
    users.push_back(*hg.AddPgVertex({"User"}, {}, Interval{0, 10000}));
    cards.push_back(*hg.AddTsVertex({"Card"}, OneVar({1.0 * i, 2.0 * i})));
    ASSERT_TRUE(
        hg.AddPgEdge(users[i], cards[i], "USES", {}, Interval{0, 10000})
            .ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(hg.AppendToVertexSeries(cards[i], kDay, {3.0}).ok());
    ASSERT_TRUE(
        hg.SetVertexProperty(users[i], "score", Value(i * 0.1)).ok());
  }
  const SubgraphId s = *hg.CreateSubgraph({"All"}, {}, Interval{0, 10000});
  for (int i = 0; i < 20; i += 2) {
    ASSERT_TRUE(hg.AddToSubgraph(s, ElementRef::OfVertex(users[i]),
                                 Interval{100, 200})
                    .ok());
  }
  EXPECT_TRUE(hg.Validate().ok());
  EXPECT_EQ(hg.SubgraphAt(s, 150)->vertices.size(), 10u);
}

}  // namespace
}  // namespace hygraph::core
