// Group commit (src/server/group_commit.h): under N concurrent writers a
// batch of WAL appends is covered by ONE fsync — wal.syncs grows per batch
// while wal.appends grows per record — and every acked write survives a
// crash-reopen. Runs under TSan in CI like every other test.

#include "server/group_commit.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/executor.h"
#include "slow_sync_env.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"

namespace hygraph::server {
namespace {

using storage::DurableOptions;
using storage::DurableStore;

class GroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hygraph_group_commit_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    env_ = storage::Env::Default();
  }

  std::unique_ptr<DurableStore> OpenStore(storage::Env* env = nullptr) {
    DurableOptions options;
    options.sync_wal = false;  // group-commit mode: sync only on SyncWal()
    auto store = std::make_unique<DurableStore>(
        env ? env : env_, dir_, std::make_unique<storage::PolyglotStore>(),
        options);
    if (!store->Open().ok()) return nullptr;
    return store;
  }

  uint64_t WalCounter(DurableStore& store, const std::string& name) {
    const auto snap = store.metrics()->Snapshot();
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  }

  std::string dir_;
  storage::Env* env_ = nullptr;
};

TEST_F(GroupCommitTest, SingleThreadCommitSyncsEachBatch) {
  auto store = OpenStore();
  ASSERT_NE(store, nullptr);
  auto v = store->AddVertex({"Sensor"}, {});
  ASSERT_TRUE(v.ok());

  GroupCommitter committer(store.get());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(committer
                    .Commit([&] {
                      return store->AppendVertexSample(*v, "load", 1000 * i,
                                                       double(i));
                    })
                    .ok());
  }
  // No concurrency, no batching opportunity: one sync per commit.
  EXPECT_EQ(committer.batches(), 10u);
}

TEST_F(GroupCommitTest, ConcurrentWritersShareSyncsAndSurviveReopen) {
  constexpr int kWriters = 8;
  constexpr int kAppendsPerWriter = 50;

  uint64_t appends_before = 0;
  uint64_t syncs_after = 0;
  uint64_t appends_after = 0;
  graph::VertexId vertex = 0;
  {
    // A slow fsync makes batching deterministic: while the leader syncs,
    // the other writers append and park, so one sync covers many tickets.
    // Without it, a loaded machine can serialize the writers and collapse
    // every batch to size 1 (the assertion below would then flake). 20ms
    // spans several scheduler timeslices even on a single busy core.
    storage::SlowSyncEnv slow_env(env_, 20);
    auto store = OpenStore(&slow_env);
    ASSERT_NE(store, nullptr);
    auto v = store->AddVertex({"Sensor"}, {});
    ASSERT_TRUE(v.ok());
    vertex = *v;
    appends_before = WalCounter(*store, "wal.appends");
    const uint64_t syncs_before = WalCounter(*store, "wal.syncs");

    GroupCommitter committer(store.get());
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kAppendsPerWriter; ++i) {
          const Timestamp t = (int64_t{w} * kAppendsPerWriter + i) * 100;
          const Status status = committer.Commit([&] {
            return store->AppendVertexSample(vertex, "load", t, double(w));
          });
          if (!status.ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& thread : writers) thread.join();
    ASSERT_EQ(failures.load(), 0);

    appends_after = WalCounter(*store, "wal.appends");
    syncs_after = WalCounter(*store, "wal.syncs");
    EXPECT_EQ(appends_after - appends_before,
              uint64_t{kWriters} * kAppendsPerWriter);
    // The point of group commit: one fsync covers many appends. With 8
    // writers parked on the committer the batching factor is far above 2
    // in practice; assert a conservative bound so slow CI cannot flake.
    EXPECT_LT(syncs_after - syncs_before,
              (appends_after - appends_before) / 2)
        << "wal.syncs=" << syncs_after - syncs_before << " wal.appends="
        << appends_after - appends_before;
    EXPECT_EQ(committer.batches(), syncs_after - syncs_before);
  }

  // Every acked write must be on disk: reopen the directory and count.
  auto reopened = OpenStore();
  ASSERT_NE(reopened, nullptr);
  auto result = query::Execute(
      *reopened,
      "MATCH (s:Sensor) RETURN ts_count(s.load, 0, 1000000000) AS n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->row_count(), 1u);
  auto n = result->At(0, "n");
  ASSERT_TRUE(n.ok());
  auto count = n->ToDouble();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, double(kWriters) * kAppendsPerWriter);
}

TEST_F(GroupCommitTest, FailedAppendDoesNotTicket) {
  auto store = OpenStore();
  ASSERT_NE(store, nullptr);
  GroupCommitter committer(store.get());
  const Status status =
      committer.Commit([&] { return Status::IOError("synthetic"); });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(committer.batches(), 0u);
}

TEST_F(GroupCommitTest, NoSyncCommitSkipsTheWait) {
  auto store = OpenStore();
  ASSERT_NE(store, nullptr);
  auto v = store->AddVertex({"Sensor"}, {});
  ASSERT_TRUE(v.ok());
  GroupCommitter committer(store.get());
  ASSERT_TRUE(committer
                  .CommitNoSync([&] {
                    return store->AppendVertexSample(*v, "load", 1, 1.0);
                  })
                  .ok());
  EXPECT_EQ(committer.batches(), 0u);
}

}  // namespace
}  // namespace hygraph::server
