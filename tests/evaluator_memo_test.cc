#include <string>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "storage/polyglot.h"

namespace hygraph {
namespace {

// Wraps a PolyglotStore and counts range materializations, making the
// evaluator's per-query SeriesRangeArg memo observable: repeated ts_*
// calls on the same (entity, key, range) within one query must hit the
// backend only once.
class CountingBackend final : public query::QueryBackend {
 public:
  std::string name() const override { return "counting"; }
  const graph::PropertyGraph& topology() const override {
    return inner_.topology();
  }
  graph::PropertyGraph* mutable_topology() override {
    return inner_.mutable_topology();
  }
  Status AppendVertexSample(graph::VertexId v, const std::string& key,
                            Timestamp t, double value) override {
    return inner_.AppendVertexSample(v, key, t, value);
  }
  Status AppendEdgeSample(graph::EdgeId e, const std::string& key, Timestamp t,
                          double value) override {
    return inner_.AppendEdgeSample(e, key, t, value);
  }
  Result<ts::Series> VertexSeriesRange(
      graph::VertexId v, const std::string& key,
      const Interval& interval) const override {
    ++vertex_range_calls;
    return inner_.VertexSeriesRange(v, key, interval);
  }
  Result<ts::Series> EdgeSeriesRange(graph::EdgeId e, const std::string& key,
                                     const Interval& interval) const override {
    ++edge_range_calls;
    return inner_.EdgeSeriesRange(e, key, interval);
  }

  mutable size_t vertex_range_calls = 0;
  mutable size_t edge_range_calls = 0;

 private:
  storage::PolyglotStore inner_;
};

class EvaluatorMemoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::PropertyGraph* g = backend_.mutable_topology();
    for (int s = 0; s < 6; ++s) {
      const graph::VertexId v = g->AddVertex(
          {"Station"}, {{"name", Value("S" + std::to_string(s))}});
      for (int i = 0; i < 48; ++i) {
        ASSERT_TRUE(backend_
                        .AppendVertexSample(v, "bikes", i * kHour,
                                            10.0 + s + (i % 5))
                        .ok());
      }
    }
  }

  CountingBackend backend_;
};

TEST_F(EvaluatorMemoTest, RepeatedRangeInOneRowMaterializesOnce) {
  backend_.vertex_range_calls = 0;
  // Two textually identical range reads in one RETURN: the memo collapses
  // them to a single backend materialization per row.
  auto table = query::Execute(
      backend_,
      "MATCH (s:Station {name: 'S0'}) RETURN ts_slope(s.bikes, 0, " +
          std::to_string(48 * kHour) + ") AS a, ts_slope(s.bikes, 0, " +
          std::to_string(48 * kHour) + ") AS b");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->row_count(), 1u);
  EXPECT_EQ(backend_.vertex_range_calls, 1u);
  EXPECT_EQ(table->rows[0][0], table->rows[0][1]);
}

TEST_F(EvaluatorMemoTest, PinnedEntityAcrossRowsMaterializesOnce) {
  backend_.vertex_range_calls = 0;
  // Correlation against a pinned station: a.bikes repeats on every row and
  // must be fetched once. Pattern matching is injective (b never rebinds
  // S0), so the 5 rows cost 1 + 5 = 6 distinct materializations.
  auto table = query::Execute(
      backend_,
      "MATCH (a:Station {name: 'S0'}), (b:Station) "
      "RETURN b.name AS n, ts_corr(a.bikes, b.bikes, 0, " +
          std::to_string(48 * kHour) + ") AS c ORDER BY n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->row_count(), 5u);
  EXPECT_EQ(backend_.vertex_range_calls, 6u);
}

TEST_F(EvaluatorMemoTest, DistinctRangesAreNotConflated) {
  backend_.vertex_range_calls = 0;
  // Same entity and key but different intervals: two real fetches, and the
  // answers must differ (the memo key includes the interval).
  auto table = query::Execute(
      backend_,
      "MATCH (s:Station {name: 'S1'}) RETURN ts_slope(s.bikes, 0, " +
          std::to_string(24 * kHour) + ") AS a, ts_slope(s.bikes, 0, " +
          std::to_string(48 * kHour) + ") AS b");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(backend_.vertex_range_calls, 2u);
}

}  // namespace
}  // namespace hygraph
