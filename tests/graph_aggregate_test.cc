#include "graph/aggregate.h"

#include <gtest/gtest.h>

namespace hygraph::graph {
namespace {

// Stations in two districts with trips between them.
PropertyGraph DistrictWorld() {
  PropertyGraph g;
  const VertexId s0 =
      g.AddVertex({"Station"}, {{"district", Value(0)}, {"cap", Value(10)}});
  const VertexId s1 =
      g.AddVertex({"Station"}, {{"district", Value(0)}, {"cap", Value(20)}});
  const VertexId s2 =
      g.AddVertex({"Station"}, {{"district", Value(1)}, {"cap", Value(30)}});
  EXPECT_TRUE(g.AddEdge(s0, s1, "TRIP", {{"n", Value(5)}}).ok());
  EXPECT_TRUE(g.AddEdge(s0, s2, "TRIP", {{"n", Value(7)}}).ok());
  EXPECT_TRUE(g.AddEdge(s1, s2, "TRIP", {{"n", Value(2)}}).ok());
  EXPECT_TRUE(g.AddEdge(s2, s0, "TRIP", {{"n", Value(1)}}).ok());
  return g;
}

TEST(GroupByTest, CollapsesByPropertyValue) {
  PropertyGraph g = DistrictWorld();
  GroupingSpec spec;
  spec.vertex_group_key = "district";
  spec.vertex_agg_keys = {"cap"};
  spec.edge_agg_keys = {"n"};
  auto grouped = GroupBy(g, spec);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->summary.VertexCount(), 2u);
  // Super-edges: 0->0 (intra), 0->1, 1->0.
  EXPECT_EQ(grouped->summary.EdgeCount(), 3u);
  EXPECT_EQ(grouped->vertex_to_super.size(), 3u);
}

TEST(GroupByTest, SuperVertexAggregates) {
  PropertyGraph g = DistrictWorld();
  GroupingSpec spec;
  spec.vertex_group_key = "district";
  spec.vertex_agg_keys = {"cap"};
  auto grouped = GroupBy(g, spec);
  ASSERT_TRUE(grouped.ok());
  bool found_d0 = false;
  for (VertexId v : grouped->summary.VertexIds()) {
    auto district = grouped->summary.GetVertexProperty(v, "district");
    ASSERT_TRUE(district.ok());
    if (*district == Value(0)) {
      found_d0 = true;
      EXPECT_EQ(*grouped->summary.GetVertexProperty(v, "count"), Value(2));
      EXPECT_EQ(*grouped->summary.GetVertexProperty(v, "sum_cap"),
                Value(30.0));
    }
  }
  EXPECT_TRUE(found_d0);
}

TEST(GroupByTest, SuperEdgeAggregates) {
  PropertyGraph g = DistrictWorld();
  GroupingSpec spec;
  spec.vertex_group_key = "district";
  spec.edge_agg_keys = {"n"};
  auto grouped = GroupBy(g, spec);
  ASSERT_TRUE(grouped.ok());
  // Find the 0 -> 1 super-edge: trips s0->s2 (7) and s1->s2 (2) -> sum 9.
  bool found = false;
  for (EdgeId e : grouped->summary.EdgeIds()) {
    const Edge& edge = **grouped->summary.GetEdge(e);
    auto src_d = grouped->summary.GetVertexProperty(edge.src, "district");
    auto dst_d = grouped->summary.GetVertexProperty(edge.dst, "district");
    if (*src_d == Value(0) && *dst_d == Value(1)) {
      found = true;
      EXPECT_EQ(*grouped->summary.GetEdgeProperty(e, "count"), Value(2));
      EXPECT_EQ(*grouped->summary.GetEdgeProperty(e, "sum_n"), Value(9.0));
    }
  }
  EXPECT_TRUE(found);
}

TEST(GroupByTest, MissingKeyGroupsUnderNull) {
  PropertyGraph g;
  g.AddVertex({}, {{"d", Value(1)}});
  g.AddVertex({}, {});  // no "d"
  g.AddVertex({}, {});  // no "d"
  GroupingSpec spec;
  spec.vertex_group_key = "d";
  auto grouped = GroupBy(g, spec);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->summary.VertexCount(), 2u);
}

TEST(GroupByTest, RequiresGroupKey) {
  EXPECT_FALSE(GroupBy(DistrictWorld(), GroupingSpec{}).ok());
}

TEST(GroupByAssignmentTest, ExternalAssignment) {
  PropertyGraph g = DistrictWorld();
  std::unordered_map<VertexId, size_t> assignment;
  const auto ids = g.VertexIds();
  assignment[ids[0]] = 0;
  assignment[ids[1]] = 1;
  assignment[ids[2]] = 1;
  GroupingSpec spec;
  auto grouped = GroupByAssignment(g, assignment, spec);
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->summary.VertexCount(), 2u);
  EXPECT_EQ(grouped->vertex_to_super.at(ids[1]),
            grouped->vertex_to_super.at(ids[2]));
  EXPECT_NE(grouped->vertex_to_super.at(ids[0]),
            grouped->vertex_to_super.at(ids[1]));
}

TEST(GroupByAssignmentTest, IncompleteAssignmentFails) {
  PropertyGraph g = DistrictWorld();
  std::unordered_map<VertexId, size_t> assignment;
  assignment[g.VertexIds()[0]] = 0;
  EXPECT_FALSE(GroupByAssignment(g, assignment, GroupingSpec{}).ok());
}

TEST(GroupByTest, SummaryVerticesLabeledGroup) {
  auto grouped = GroupByAssignment(
      DistrictWorld(),
      [] {
        std::unordered_map<VertexId, size_t> a;
        a[0] = 0;
        a[1] = 0;
        a[2] = 0;
        return a;
      }(),
      GroupingSpec{});
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->summary.VertexCount(), 1u);
  EXPECT_EQ(grouped->summary.VerticesWithLabel("Group").size(), 1u);
  // A single group keeps intra-edges as one self super-edge.
  EXPECT_EQ(grouped->summary.EdgeCount(), 1u);
}

}  // namespace
}  // namespace hygraph::graph
