#include "graph/pattern.h"

#include <gtest/gtest.h>

namespace hygraph::graph {
namespace {

// The Listing-1-style world: users, cards, merchants.
class PatternTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u1_ = g_.AddVertex({"User"}, {{"name", Value("u1")}});
    u2_ = g_.AddVertex({"User"}, {{"name", Value("u2")}});
    c1_ = g_.AddVertex({"Card"}, {{"limit", Value(5000)}});
    c2_ = g_.AddVertex({"Card"}, {{"limit", Value(1000)}});
    m1_ = g_.AddVertex({"Merchant"}, {});
    m2_ = g_.AddVertex({"Merchant"}, {});
    uses1_ = *g_.AddEdge(u1_, c1_, "USES", {});
    uses2_ = *g_.AddEdge(u2_, c2_, "USES", {});
    tx11_ = *g_.AddEdge(c1_, m1_, "TX", {{"amount", Value(1500)}});
    tx12_ = *g_.AddEdge(c1_, m2_, "TX", {{"amount", Value(50)}});
    tx22_ = *g_.AddEdge(c2_, m2_, "TX", {{"amount", Value(2000)}});
  }

  PropertyGraph g_;
  VertexId u1_, u2_, c1_, c2_, m1_, m2_;
  EdgeId uses1_, uses2_, tx11_, tx12_, tx22_;
};

TEST_F(PatternTest, SingleVertexByLabel) {
  Pattern p;
  p.AddVertex("u", "User");
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);
}

TEST_F(PatternTest, VertexPropertyPredicate) {
  Pattern p;
  p.AddVertex("c", "Card",
              {{"limit", CmpOp::kGt, Value(2000)}});
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].vertices.at("c"), c1_);
}

TEST_F(PatternTest, PathPattern) {
  Pattern p;
  p.AddVertex("u", "User");
  p.AddVertex("c", "Card");
  p.AddVertex("m", "Merchant");
  p.AddEdge("u", "c", "USES");
  p.AddEdge("c", "m", "TX");
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 3u);  // u1-c1-m1, u1-c1-m2, u2-c2-m2
}

TEST_F(PatternTest, EdgePredicateFilters) {
  Pattern p;
  p.AddVertex("c", "Card");
  p.AddVertex("m", "Merchant");
  p.AddEdge("c", "m", "TX", Direction::kOut,
            {{"amount", CmpOp::kGt, Value(1000)}});
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);  // tx11 and tx22
}

TEST_F(PatternTest, DirectionIn) {
  Pattern p;
  p.AddVertex("m", "Merchant");
  p.AddVertex("c", "Card");
  p.AddEdge("m", "c", "TX", Direction::kIn);  // TX flows card -> merchant
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 3u);
}

TEST_F(PatternTest, DirectionAny) {
  Pattern p;
  p.AddVertex("a", "Card");
  p.AddVertex("b");
  p.AddEdge("a", "b", "", Direction::kAny);
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  // c1: uses1(in) + tx11 + tx12; c2: uses2(in) + tx22 -> 5 matches.
  EXPECT_EQ(matches->size(), 5u);
}

TEST_F(PatternTest, TwoMerchantFanOut) {
  // Two distinct merchants reached from the same card. Edge distinctness
  // means (m1, m1) would need parallel edges, so only c1's fan-out counts.
  Pattern p;
  p.AddVertex("c", "Card");
  p.AddVertex("m1", "Merchant");
  p.AddVertex("m2", "Merchant");
  p.AddEdge("c", "m1", "TX");
  p.AddEdge("c", "m2", "TX");
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);  // (m1,m2) and (m2,m1) for c1
}

TEST_F(PatternTest, InjectivityToggle) {
  // Two unconnected merchant variables: injective -> ordered pairs of
  // distinct merchants; homomorphic -> full cartesian square.
  Pattern p;
  p.AddVertex("m1", "Merchant");
  p.AddVertex("m2", "Merchant");
  auto strict = MatchPattern(g_, p);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->size(), 2u);
  MatchOptions homomorphic;
  homomorphic.injective_vertices = false;
  auto loose = MatchPattern(g_, p, homomorphic);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->size(), 4u);
}

TEST_F(PatternTest, LimitStopsEarly) {
  Pattern p;
  p.AddVertex("v");
  MatchOptions options;
  options.limit = 3;
  auto matches = MatchPattern(g_, p, options);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 3u);
}

TEST_F(PatternTest, MatchRecordsEdges) {
  Pattern p;
  p.AddVertex("u", "User", {{"name", CmpOp::kEq, Value("u1")}});
  p.AddVertex("c", "Card");
  p.AddEdge("u", "c", "USES");
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  ASSERT_EQ((*matches)[0].edges.size(), 1u);
  EXPECT_EQ((*matches)[0].edges[0], uses1_);
}

TEST_F(PatternTest, NoMatchesForImpossiblePattern) {
  Pattern p;
  p.AddVertex("u", "User");
  p.AddVertex("m", "Merchant");
  p.AddEdge("u", "m", "TX");  // users never TX directly
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(PatternTest, ErrorsOnBadPatterns) {
  Pattern empty;
  EXPECT_FALSE(MatchPattern(g_, empty).ok());
  Pattern dup;
  dup.AddVertex("x");
  dup.AddVertex("x");
  EXPECT_FALSE(MatchPattern(g_, dup).ok());
  Pattern dangling;
  dangling.AddVertex("a");
  dangling.AddEdge("a", "missing");
  EXPECT_FALSE(MatchPattern(g_, dangling).ok());
}

TEST_F(PatternTest, ParallelEdgesBindDistinctly) {
  // Two parallel TX edges; a two-edge pattern between the same endpoints
  // must bind two distinct edges.
  const EdgeId extra = *g_.AddEdge(c1_, m1_, "TX", {{"amount", Value(10)}});
  Pattern p;
  p.AddVertex("c", "Card", {{"limit", CmpOp::kGt, Value(2000)}});
  p.AddVertex("m", "Merchant");
  p.AddEdge("c", "m", "TX");
  p.AddEdge("c", "m", "TX");
  auto matches = MatchPattern(g_, p);
  ASSERT_TRUE(matches.ok());
  // Only (c1, m1) has two parallel TX edges (one match per vertex binding).
  ASSERT_EQ(matches->size(), 1u);
  const auto& edges = (*matches)[0].edges;
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_NE(edges[0], edges[1]);
  EXPECT_TRUE((edges[0] == tx11_ && edges[1] == extra) ||
              (edges[0] == extra && edges[1] == tx11_));
}

TEST(EvalCmpTest, AllOperators) {
  EXPECT_TRUE(EvalCmp(Value(1), CmpOp::kEq, Value(1)));
  EXPECT_TRUE(EvalCmp(Value(1), CmpOp::kNe, Value(2)));
  EXPECT_TRUE(EvalCmp(Value(1), CmpOp::kLt, Value(2)));
  EXPECT_TRUE(EvalCmp(Value(2), CmpOp::kLe, Value(2)));
  EXPECT_TRUE(EvalCmp(Value(3), CmpOp::kGt, Value(2)));
  EXPECT_TRUE(EvalCmp(Value(2), CmpOp::kGe, Value(2)));
  EXPECT_FALSE(EvalCmp(Value(1), CmpOp::kGt, Value(2)));
}

TEST(PropertyPredicateTest, MissingKeyNeverMatches) {
  PropertyPredicate pred{"k", CmpOp::kNe, Value(1)};
  PropertyMap props;
  EXPECT_FALSE(pred.Matches(props));
  props["k"] = Value(2);
  EXPECT_TRUE(pred.Matches(props));
}

}  // namespace
}  // namespace hygraph::graph
