// Snapshot isolation: BeginSnapshot() pins an immutable read view that
// answers every const method with the pinned state, no matter what the
// live store does afterwards — concurrently or not. State identity is
// asserted through storage::BuildSnapshotText, the canonical full-state
// serialization (topology + every series), so "identical" means the whole
// logical store, not a sampled subset.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/time.h"
#include "query/backend.h"
#include "query/executor.h"
#include "storage/all_in_graph.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"
#include "ts/hypertable.h"
#include "workloads/bike_sharing.h"

namespace hygraph {
namespace {

using query::QueryBackend;
using storage::AllInGraphStore;
using storage::BuildSnapshotText;
using storage::PolyglotStore;
using ts::AggKind;

// Small but non-trivial dataset: 8 stations, 2 districts, 1 day of
// 30-minute samples, deterministic seed.
workloads::BikeSharingDataset Dataset() {
  workloads::BikeSharingConfig config;
  config.stations = 8;
  config.districts = 2;
  config.days = 1;
  config.sample_interval = 30 * kMinute;
  config.trips_per_station = 2;
  config.seed = 7;
  auto dataset = workloads::GenerateBikeSharing(config);
  EXPECT_TRUE(dataset.ok());
  return *dataset;
}

std::string Signature(const QueryBackend& backend) {
  auto text = BuildSnapshotText(backend);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return text.value_or("<error>");
}

// Appends fresh samples and a fresh vertex to the live store — enough
// mutation to change every layer a snapshot could leak from.
void MutateLive(QueryBackend* live, graph::VertexId station,
                Timestamp from) {
  ASSERT_TRUE(live->MutateTopology([](graph::PropertyGraph* g) {
                    g->AddVertex({"Depot"}, {});
                    return Status::OK();
                  })
                  .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(live->AppendVertexSample(station, "bikes",
                                         from + static_cast<Timestamp>(i) * 60,
                                         static_cast<double>(i))
                    .ok());
  }
}

// The shared scenario, run against either architecture: pin, mutate,
// assert the pinned view never moves while the live store does.
void RunPinnedViewStaysFrozen(QueryBackend* live) {
  const auto dataset = Dataset();
  auto stations = workloads::LoadIntoBackend(dataset, live);
  ASSERT_TRUE(stations.ok()) << stations.status().ToString();

  std::shared_ptr<const QueryBackend> snapshot = live->BeginSnapshot();
  ASSERT_NE(snapshot, nullptr);
  const std::string pinned = Signature(*snapshot);
  ASSERT_EQ(Signature(*live), pinned);  // freshly pinned: views agree

  MutateLive(live, stations->front(), dataset.end());

  EXPECT_EQ(Signature(*snapshot), pinned) << "snapshot drifted";
  EXPECT_NE(Signature(*live), pinned) << "live store failed to move";

  // A second snapshot picks up the new state; the first stays pinned.
  std::shared_ptr<const QueryBackend> later = live->BeginSnapshot();
  ASSERT_NE(later, nullptr);
  EXPECT_EQ(Signature(*later), Signature(*live));
  EXPECT_EQ(Signature(*snapshot), pinned);
}

TEST(SnapshotIsolationTest, AllInGraphPinnedViewStaysFrozen) {
  AllInGraphStore store;
  RunPinnedViewStaysFrozen(&store);
}

TEST(SnapshotIsolationTest, PolyglotPinnedViewStaysFrozen) {
  PolyglotStore store;
  RunPinnedViewStaysFrozen(&store);
}

// The same property while the mutation runs CONCURRENTLY with snapshot
// reads — the case copy-on-write exists for.
void RunPinnedViewFrozenUnderConcurrentMutation(QueryBackend* live) {
  const auto dataset = Dataset();
  auto stations = workloads::LoadIntoBackend(dataset, live);
  ASSERT_TRUE(stations.ok());

  std::shared_ptr<const QueryBackend> snapshot = live->BeginSnapshot();
  ASSERT_NE(snapshot, nullptr);
  const std::string pinned = Signature(*snapshot);
  const graph::VertexId station = stations->front();

  // Bounded mutation stream (a free-running mutator on the single-core
  // reference machine would grow the live graph without limit while the
  // signature loop runs, making the final live signature arbitrarily
  // expensive).
  constexpr int kMutations = 200;
  std::thread mutator([&] {
    Timestamp t = dataset.end();
    for (int i = 0; i < kMutations; ++i) {
      ASSERT_TRUE(live->MutateTopology([](graph::PropertyGraph* g) {
                        g->AddVertex({"Depot"}, {});
                        return Status::OK();
                      })
                      .ok());
      ASSERT_TRUE(
          live->AppendVertexSample(station, "bikes", t, 1.0).ok());
      t += 60;
    }
  });

  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(Signature(*snapshot), pinned)
        << "snapshot drifted at iteration " << i;
  }
  mutator.join();

  EXPECT_EQ(Signature(*snapshot), pinned);
  EXPECT_NE(Signature(*live), pinned);
}

TEST(SnapshotIsolationTest, AllInGraphFrozenUnderConcurrentMutation) {
  AllInGraphStore store;
  RunPinnedViewFrozenUnderConcurrentMutation(&store);
}

TEST(SnapshotIsolationTest, PolyglotFrozenUnderConcurrentMutation) {
  PolyglotStore store;
  RunPinnedViewFrozenUnderConcurrentMutation(&store);
}

// DurableStore forwards BeginSnapshot to the wrapped backend; the pinned
// view must ignore logged mutations too.
TEST(SnapshotIsolationTest, DurableForwardsPinnedView) {
  char tmpl[] = "/tmp/hygraph_snapshot_isolation_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string root = tmpl;
  storage::DurableStore store(storage::Env::Default(), root + "/store",
                              std::make_unique<PolyglotStore>());
  ASSERT_TRUE(store.Open().ok());

  auto v = store.AddVertex({"Station"}, {{"name", Value("S0")}});
  ASSERT_TRUE(v.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store
                    .AppendVertexSample(*v, "bikes",
                                        static_cast<Timestamp>(i) * 60,
                                        static_cast<double>(i))
                    .ok());
  }

  std::shared_ptr<const QueryBackend> snapshot = store.BeginSnapshot();
  ASSERT_NE(snapshot, nullptr);
  const std::string pinned = Signature(*snapshot);

  ASSERT_TRUE(store.AppendVertexSample(*v, "bikes", 6000, 99.0).ok());
  auto v2 = store.AddVertex({"Station"}, {{"name", Value("S1")}});
  ASSERT_TRUE(v2.ok());

  EXPECT_EQ(Signature(*snapshot), pinned);
  EXPECT_NE(Signature(store), pinned);
  std::system(("rm -rf " + root).c_str());
}

// Snapshots are read-only: their mutators fail FailedPrecondition and
// mutable_topology() yields nullptr (so even the default MutateTopology
// fails instead of handing out mutable state).
void RunSnapshotIsReadOnly(QueryBackend* live) {
  const auto dataset = Dataset();
  auto stations = workloads::LoadIntoBackend(dataset, live);
  ASSERT_TRUE(stations.ok());

  std::shared_ptr<const QueryBackend> snapshot = live->BeginSnapshot();
  ASSERT_NE(snapshot, nullptr);
  // The interface exposes snapshots as const; casting away constness is
  // exactly what a buggy caller could do, so the runtime guard must hold.
  auto* writable = const_cast<QueryBackend*>(snapshot.get());

  Status append = writable->AppendVertexSample(stations->front(), "bikes",
                                               dataset.end(), 1.0);
  EXPECT_EQ(append.code(), StatusCode::kFailedPrecondition)
      << append.ToString();
  Status edge_append = writable->AppendEdgeSample(0, "trips", 0, 1.0);
  EXPECT_EQ(edge_append.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(writable->mutable_topology(), nullptr);
  Status mutate = writable->MutateTopology([](graph::PropertyGraph*) {
    ADD_FAILURE() << "MutateTopology ran on a snapshot";
    return Status::OK();
  });
  EXPECT_EQ(mutate.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotIsolationTest, AllInGraphSnapshotIsReadOnly) {
  AllInGraphStore store;
  RunSnapshotIsReadOnly(&store);
}

TEST(SnapshotIsolationTest, PolyglotSnapshotIsReadOnly) {
  PolyglotStore store;
  RunSnapshotIsReadOnly(&store);
}

// HGQL statements on the live store pin their own snapshot per execution:
// results computed mid-mutation are internally consistent, and executing
// against an explicitly pinned snapshot returns pre-mutation results.
TEST(SnapshotIsolationTest, ExecuteAgainstPinnedSnapshot) {
  PolyglotStore store;
  const auto dataset = Dataset();
  auto stations = workloads::LoadIntoBackend(dataset, &store);
  ASSERT_TRUE(stations.ok());

  const std::string q =
      "MATCH (s:Station) RETURN s.name AS n, "
      "ts_count(s.bikes, 0, 99999999999999) AS c ORDER BY n";
  std::shared_ptr<const QueryBackend> snapshot = store.BeginSnapshot();
  ASSERT_NE(snapshot, nullptr);
  auto before = query::Execute(*snapshot, q);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  MutateLive(&store, stations->front(), dataset.end());

  auto pinned_after = query::Execute(*snapshot, q);
  ASSERT_TRUE(pinned_after.ok());
  EXPECT_EQ(pinned_after->ToString(100), before->ToString(100));

  auto live_after = query::Execute(store, q);
  ASSERT_TRUE(live_after.ok());
  EXPECT_NE(live_after->ToString(100), before->ToString(100));
}

// The hypertable's Fork() is the snapshot primitive underneath Polyglot
// snapshots: forked reads (scan + native aggregates) stay at the forked
// state across Insert and Retain on the origin.
TEST(SnapshotIsolationTest, HypertableForkIsolation) {
  ts::HypertableOptions options;
  options.chunk_duration = 100;
  ts::HypertableStore store(options);
  const SeriesId id = store.Create("forked");
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(
        store.Insert(id, static_cast<Timestamp>(i) * 10, std::sqrt(1.0 + i))
            .ok());
  }

  std::shared_ptr<const ts::HypertableStore> fork = store.Fork();
  auto base_scan = fork->Scan(id, Interval{});
  ASSERT_TRUE(base_scan.ok());
  auto base_sum = fork->Aggregate(id, Interval{}, AggKind::kSum);
  ASSERT_TRUE(base_sum.ok());
  auto base_windows = fork->WindowAggregate(id, Interval{0, 2500}, 500,
                                            AggKind::kAvg);
  ASSERT_TRUE(base_windows.ok());

  // Mutate the origin every way a series can change.
  for (int i = 250; i < 400; ++i) {
    ASSERT_TRUE(
        store.Insert(id, static_cast<Timestamp>(i) * 10, 0.5).ok());
  }
  ASSERT_TRUE(store.Insert(id, 55, -1.0).ok());  // out-of-order unseal
  ASSERT_TRUE(store.Retain(id, Interval{1000, kMaxTimestamp}).ok());

  auto fork_scan = fork->Scan(id, Interval{});
  ASSERT_TRUE(fork_scan.ok());
  EXPECT_EQ(*fork_scan, *base_scan);
  auto fork_sum = fork->Aggregate(id, Interval{}, AggKind::kSum);
  ASSERT_TRUE(fork_sum.ok());
  EXPECT_EQ(*fork_sum, *base_sum);
  auto fork_windows = fork->WindowAggregate(id, Interval{0, 2500}, 500,
                                            AggKind::kAvg);
  ASSERT_TRUE(fork_windows.ok());
  EXPECT_EQ(fork_windows->samples(), base_windows->samples());

  // And the origin really changed.
  auto origin_scan = store.Scan(id, Interval{});
  ASSERT_TRUE(origin_scan.ok());
  EXPECT_NE(*origin_scan, *base_scan);
}

}  // namespace
}  // namespace hygraph
