#include "obs/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hygraph::obs {
namespace {

TEST(CounterTest, AddIncrementValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetOverwrites) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

// -- bucket geometry ----------------------------------------------------------

TEST(HistogramBucketsTest, SmallValuesAreExact) {
  // Values below kHistogramSubBuckets each get a bucket of their own.
  for (uint64_t v = 0; v < kHistogramSubBuckets; ++v) {
    EXPECT_EQ(HistogramBucketIndex(v), v);
    EXPECT_EQ(HistogramBucketLowerBound(v), v);
    EXPECT_EQ(HistogramBucketUpperBound(v), v);
  }
}

TEST(HistogramBucketsTest, BoundsRoundTrip) {
  // Every bucket's own bounds map back to that bucket, and adjacent buckets
  // tile the axis without gap or overlap.
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    const uint64_t lo = HistogramBucketLowerBound(i);
    const uint64_t hi = HistogramBucketUpperBound(i);
    ASSERT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(HistogramBucketIndex(lo), i);
    EXPECT_EQ(HistogramBucketIndex(hi), i);
    if (i + 1 < kHistogramBuckets) {
      EXPECT_EQ(HistogramBucketLowerBound(i + 1), hi + 1)
          << "gap or overlap after bucket " << i;
    }
  }
}

TEST(HistogramBucketsTest, CoversFullRange) {
  EXPECT_EQ(HistogramBucketIndex(0), 0u);
  EXPECT_EQ(HistogramBucketIndex(UINT64_MAX), kHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketUpperBound(kHistogramBuckets - 1), UINT64_MAX);
}

TEST(HistogramBucketsTest, IndexIsMonotoneAcrossPowerOfTwoBoundaries) {
  for (int e = 2; e < 63; ++e) {
    const uint64_t p = uint64_t{1} << e;
    EXPECT_LE(HistogramBucketIndex(p - 1), HistogramBucketIndex(p));
    EXPECT_LE(HistogramBucketIndex(p), HistogramBucketIndex(p + 1));
  }
}

TEST(HistogramBucketsTest, RelativeWidthBoundedByQuarter) {
  // Above the exact region the sub-bucketing keeps bucket width <= 25% of
  // the lower bound — the quantile error bound documented in metrics.h.
  for (size_t i = kHistogramSubBuckets; i < kHistogramBuckets - 1; ++i) {
    const uint64_t lo = HistogramBucketLowerBound(i);
    const uint64_t width = HistogramBucketUpperBound(i) - lo + 1;
    EXPECT_LE(width * 4, lo)
        << "bucket " << i << " lo=" << lo << " width=" << width;
  }
}

// -- histogram recording and quantiles ---------------------------------------

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.Quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, SingleValueQuantiles) {
  Histogram h;
  h.Record(1000);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 1000u);
  EXPECT_EQ(s.max, 1000u);
  // Every quantile of a single observation is that observation.
  EXPECT_EQ(s.Quantile(0.0), 1000u);
  EXPECT_EQ(s.Quantile(0.5), 1000u);
  EXPECT_EQ(s.Quantile(1.0), 1000u);
}

TEST(HistogramTest, QuantileClampedToMinMaxEnvelope) {
  Histogram h;
  for (uint64_t v = 100; v <= 200; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 101u);
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const uint64_t est = s.Quantile(q);
    EXPECT_GE(est, s.min) << "q=" << q;
    EXPECT_LE(est, s.max) << "q=" << q;
  }
  EXPECT_EQ(s.Quantile(0.0), 100u);
  EXPECT_EQ(s.Quantile(1.0), 200u);
}

TEST(HistogramTest, QuantileErrorWithinBucketWidth) {
  // 1..1000 uniformly: the p50 estimate must land within the 25% relative
  // bucket error of the true median.
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const uint64_t p50 = h.Snapshot().Quantile(0.5);
  EXPECT_GE(p50, 375u);
  EXPECT_LE(p50, 625u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(7);
  h.Reset();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  h.Record(9);  // usable after Reset
  EXPECT_EQ(h.Snapshot().min, 9u);
}

// -- snapshot merge -----------------------------------------------------------

MetricsSnapshot SnapshotOf(uint64_t base) {
  MetricsRegistry r;
  r.counter("shared")->Add(base);
  r.counter("only_" + std::to_string(base))->Add(1);
  r.gauge("g")->Set(static_cast<double>(base));
  Histogram* h = r.histogram("lat");
  h->Record(base);
  h->Record(base * 3);
  return r.Snapshot();
}

bool SnapshotsEqual(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  if (a.counters != b.counters || a.gauges != b.gauges) return false;
  if (a.histograms.size() != b.histograms.size()) return false;
  for (const auto& [name, ha] : a.histograms) {
    auto it = b.histograms.find(name);
    if (it == b.histograms.end()) return false;
    const HistogramSnapshot& hb = it->second;
    if (ha.count != hb.count || ha.sum != hb.sum || ha.min != hb.min ||
        ha.max != hb.max || ha.buckets != hb.buckets) {
      return false;
    }
  }
  return true;
}

TEST(MetricsSnapshotTest, MergeAddsCountersAndHistograms) {
  MetricsSnapshot a = SnapshotOf(10);
  const MetricsSnapshot b = SnapshotOf(20);
  a.Merge(b);
  EXPECT_EQ(a.counters.at("shared"), 30u);
  EXPECT_EQ(a.counters.at("only_10"), 1u);
  EXPECT_EQ(a.counters.at("only_20"), 1u);
  EXPECT_DOUBLE_EQ(a.gauges.at("g"), 20.0);  // other snapshot wins
  const HistogramSnapshot& h = a.histograms.at("lat");
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 10u + 30u + 20u + 60u);
  EXPECT_EQ(h.min, 10u);
  EXPECT_EQ(h.max, 60u);
}

TEST(MetricsSnapshotTest, MergeIsAssociative) {
  const MetricsSnapshot a = SnapshotOf(1);
  const MetricsSnapshot b = SnapshotOf(5);
  const MetricsSnapshot c = SnapshotOf(9);

  MetricsSnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);

  MetricsSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  MetricsSnapshot right = a;
  right.Merge(bc);

  EXPECT_TRUE(SnapshotsEqual(left, right));
}

TEST(MetricsSnapshotTest, MergeWithEmptyIsIdentity) {
  const MetricsSnapshot a = SnapshotOf(4);
  MetricsSnapshot merged = a;
  merged.Merge(MetricsSnapshot{});
  EXPECT_TRUE(SnapshotsEqual(merged, a));
}

// -- registry -----------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry r;
  Counter* c1 = r.counter("x");
  Counter* c2 = r.counter("x");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(r.counter("y"), c1);
  EXPECT_EQ(r.histogram("h"), r.histogram("h"));
  EXPECT_EQ(r.gauge("g"), r.gauge("g"));
}

TEST(MetricsRegistryTest, ResetZeroesCountersAndHistogramsKeepsGauges) {
  MetricsRegistry r;
  r.counter("c")->Add(5);
  r.histogram("h")->Record(5);
  r.gauge("g")->Set(7.0);
  r.Reset();
  const MetricsSnapshot s = r.Snapshot();
  EXPECT_EQ(s.counters.at("c"), 0u);
  EXPECT_EQ(s.histograms.at("h").count, 0u);
  EXPECT_DOUBLE_EQ(s.gauges.at("g"), 7.0);
}

// -- exporters ----------------------------------------------------------------

TEST(ExportTest, PrometheusTextFormat) {
  MetricsRegistry r;
  r.counter("hypertable.chunks_scanned")->Add(12);
  r.gauge("recovery.snapshot_seq")->Set(3.0);
  Histogram* h = r.histogram("wal.sync_nanos");
  h->Record(1);
  h->Record(100);
  const std::string text = r.Snapshot().ToPrometheusText();

  // Names get the hygraph_ prefix and '.' becomes '_'.
  EXPECT_NE(text.find("hygraph_hypertable_chunks_scanned 12"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hygraph_hypertable_chunks_scanned counter"),
            std::string::npos);
  EXPECT_NE(text.find("hygraph_recovery_snapshot_seq 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hygraph_recovery_snapshot_seq gauge"),
            std::string::npos);
  // Histogram: cumulative buckets, +Inf bucket, _sum and _count series.
  EXPECT_NE(text.find("# TYPE hygraph_wal_sync_nanos histogram"),
            std::string::npos);
  EXPECT_NE(text.find("hygraph_wal_sync_nanos_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hygraph_wal_sync_nanos_sum 101"), std::string::npos);
  EXPECT_NE(text.find("hygraph_wal_sync_nanos_count 2"), std::string::npos);
  // le="1" must already include the first observation (inclusive bounds)
  // and the series must be cumulative: the le="1" count appears before the
  // +Inf line and is <= it.
  const size_t le1 = text.find("hygraph_wal_sync_nanos_bucket{le=\"1\"} 1");
  const size_t inf = text.find("hygraph_wal_sync_nanos_bucket{le=\"+Inf\"}");
  ASSERT_NE(le1, std::string::npos);
  ASSERT_NE(inf, std::string::npos);
  EXPECT_LT(le1, inf);
}

TEST(ExportTest, JsonContainsSections) {
  MetricsRegistry r;
  r.counter("a.b")->Add(2);
  r.gauge("g")->Set(1.5);
  r.histogram("h")->Record(10);
  const std::string json = r.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

// -- thread safety ------------------------------------------------------------

// Registration racing Snapshot()/ToJson() and concurrent increments: the
// registry mutex must keep the instrument maps coherent while observers
// export mid-registration (a TSan regression for the concurrency layer —
// stores register "concurrency.*" instruments while exporters run).
TEST(RegistryTest, ConcurrentRegistrationIncrementAndSnapshot) {
  MetricsRegistry r;
  constexpr int kWriters = 3;
  constexpr int kPerWriter = 200;

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&r, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        // Get-or-create on a mix of private and shared names, then bump.
        r.counter("race.shared")->Increment();
        r.counter("race.w" + std::to_string(w) + "." + std::to_string(i))
            ->Increment();
        r.histogram("race.lat")->Record(static_cast<uint64_t>(i));
        r.gauge("race.gauge")->Set(static_cast<double>(i));
      }
    });
  }
  std::thread observer([&r] {
    for (int i = 0; i < 50; ++i) {
      MetricsSnapshot snapshot = r.Snapshot();
      // Exported state is coherent: never more events than registered adds.
      auto shared = snapshot.counters.find("race.shared");
      if (shared != snapshot.counters.end()) {
        EXPECT_LE(shared->second,
                  static_cast<uint64_t>(kWriters * kPerWriter));
      }
      EXPECT_FALSE(snapshot.ToJson().empty());
    }
  });
  for (auto& t : writers) t.join();
  observer.join();

  const MetricsSnapshot final_snapshot = r.Snapshot();
  EXPECT_EQ(final_snapshot.counters.at("race.shared"),
            static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(final_snapshot.counters.size(),
            1u + static_cast<size_t>(kWriters) * kPerWriter);
  EXPECT_EQ(final_snapshot.histograms.at("race.lat").count,
            static_cast<uint64_t>(kWriters * kPerWriter));
}

}  // namespace
}  // namespace hygraph::obs
