#include "common/context.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "common/governor.h"

namespace hygraph {
namespace {

// A controllable time source: every call returns the current value and
// advances by `step`. Deterministic, no real clock anywhere.
struct FakeClock {
  uint64_t now = 0;
  uint64_t step = 0;
  std::function<uint64_t()> fn() {
    return [this] {
      const uint64_t t = now;
      now += step;
      return t;
    };
  }
};

TEST(QueryContextTest, ChargeWithoutLimitsAlwaysOk) {
  QueryContext ctx;
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(ctx.Charge().ok());
  }
  EXPECT_EQ(ctx.charged(), 10'000u);
}

TEST(QueryContextTest, DeadlineTripsAtTheNextClockCheck) {
  FakeClock clock;
  QueryContext ctx;
  ctx.SetTimeout(10, clock.fn());  // deadline at t = 10ms
  EXPECT_TRUE(ctx.has_deadline());

  // Still before the deadline: a full check interval passes cleanly.
  clock.now = 5'000'000;  // 5ms
  for (uint64_t i = 0; i < QueryContext::kCheckInterval; ++i) {
    ASSERT_TRUE(ctx.Charge().ok());
  }

  // Past the deadline: the violation surfaces at the next checkpoint, not
  // before (amortization contract).
  clock.now = 11'000'000;  // 11ms > 10ms
  Status s = Status::OK();
  for (uint64_t i = 0; i < QueryContext::kCheckInterval && s.ok(); ++i) {
    s = ctx.Charge();
  }
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_TRUE(s.IsInterruption());

  // Once tripped, it stays tripped.
  EXPECT_TRUE(ctx.CheckNow().IsDeadlineExceeded());
}

TEST(QueryContextTest, ZeroTimeoutIsIgnored) {
  FakeClock clock;
  QueryContext ctx;
  ctx.SetTimeout(0, clock.fn());
  EXPECT_FALSE(ctx.has_deadline());
  clock.now = ~uint64_t{0} / 2;
  EXPECT_TRUE(ctx.CheckNow().ok());
}

TEST(QueryContextTest, CancelIsObservedOnTheVeryNextCharge) {
  QueryContext ctx;
  ASSERT_TRUE(ctx.Charge().ok());
  ctx.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  // The fast path re-reads the cancel flag on every Charge, so a single
  // unit suffices — no waiting for the check interval.
  EXPECT_TRUE(ctx.Charge().IsCancelled());
  EXPECT_TRUE(ctx.CheckNow().IsCancelled());
}

TEST(QueryContextTest, PointsBudgetTripsWithResourceExhausted) {
  QueryContext ctx;
  ctx.SetPointsBudget(100);
  ASSERT_TRUE(ctx.Charge(100).ok());
  EXPECT_TRUE(ctx.Charge(1).IsResourceExhausted());
}

TEST(QueryContextTest, CancelWinsOverDeadlineAndBudget) {
  FakeClock clock;
  clock.now = 99'000'000;
  QueryContext ctx;
  ctx.SetTimeout(1, clock.fn());
  ctx.SetPointsBudget(1);
  ctx.Cancel();
  EXPECT_TRUE(ctx.Charge(10).IsCancelled());
}

TEST(QueryContextTest, CurrentScopeInstallsAndRestoresNested) {
  EXPECT_EQ(QueryContext::Current(), nullptr);
  QueryContext outer;
  {
    QueryContext::Scope outer_scope(&outer);
    EXPECT_EQ(QueryContext::Current(), &outer);
    QueryContext inner;
    {
      QueryContext::Scope inner_scope(&inner);
      EXPECT_EQ(QueryContext::Current(), &inner);
    }
    EXPECT_EQ(QueryContext::Current(), &outer);
  }
  EXPECT_EQ(QueryContext::Current(), nullptr);
}

TEST(QueryContextTest, ReserveMemoryWithoutGovernorIsANoOp) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.ReserveMemory(1 << 30).ok());
  EXPECT_EQ(ctx.reserved_bytes(), 0u);
}

TEST(QueryContextTest, ReservationsGoThroughTheGovernorAndReleaseOnDeath) {
  ResourceGovernor governor;
  governor.SetBudget(1000);
  {
    QueryContext ctx;
    ctx.AttachGovernor(&governor);
    ASSERT_TRUE(ctx.ReserveMemory(600).ok());
    EXPECT_EQ(ctx.reserved_bytes(), 600u);
    EXPECT_EQ(governor.reserved(), 600u);
    // Over budget: rejected, accounting unchanged.
    Status over = ctx.ReserveMemory(500);
    EXPECT_TRUE(over.IsResourceExhausted()) << over.ToString();
    EXPECT_EQ(governor.reserved(), 600u);
    ctx.ReleaseMemory(100);
    EXPECT_EQ(governor.reserved(), 500u);
    // The rest releases in the destructor.
  }
  EXPECT_EQ(governor.reserved(), 0u);
}

TEST(ResourceGovernorTest, UnconfiguredGovernorGrantsEverything) {
  ResourceGovernor governor;
  EXPECT_TRUE(governor.Reserve(~uint64_t{0} / 2).ok());
  EXPECT_TRUE(governor.Admit().ok());
  governor.Release(~uint64_t{0} / 2);
  EXPECT_EQ(governor.reserved(), 0u);
}

TEST(ResourceGovernorTest, BudgetRejectsAndReleaseClampsToZero) {
  ResourceGovernor governor;
  governor.SetBudget(100);
  EXPECT_TRUE(governor.Reserve(100).ok());
  EXPECT_TRUE(governor.Reserve(1).IsResourceExhausted());
  governor.Release(500);  // defensive clamp, never underflows
  EXPECT_EQ(governor.reserved(), 0u);
}

TEST(ResourceGovernorTest, AdmissionShedsAtTheHighWaterMark) {
  ResourceGovernor governor;
  governor.SetAdmissionHighWater(50);
  EXPECT_TRUE(governor.Admit().ok());
  ASSERT_TRUE(governor.Reserve(49).ok());
  EXPECT_TRUE(governor.Admit().ok());
  ASSERT_TRUE(governor.Reserve(1).ok());
  EXPECT_TRUE(governor.Admit().IsResourceExhausted());
  governor.Release(1);
  EXPECT_TRUE(governor.Admit().ok());
}

TEST(ResourceGovernorTest, GlobalIsASingleton) {
  EXPECT_NE(ResourceGovernor::Global(), nullptr);
  EXPECT_EQ(ResourceGovernor::Global(), ResourceGovernor::Global());
}

}  // namespace
}  // namespace hygraph
