#include "workloads/bike_sharing.h"

#include <gtest/gtest.h>

#include "storage/polyglot.h"
#include "ts/correlate.h"

namespace hygraph::workloads {
namespace {

BikeSharingConfig SmallConfig() {
  BikeSharingConfig config;
  config.stations = 16;
  config.districts = 4;
  config.days = 2;
  config.sample_interval = kHour;
  config.seed = 42;
  return config;
}

TEST(BikeSharingTest, GeneratesConfiguredShape) {
  auto dataset = GenerateBikeSharing(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->stations.size(), 16u);
  EXPECT_EQ(dataset->samples_per_station(), 48u);
  for (const StationRecord& s : dataset->stations) {
    EXPECT_EQ(s.bikes.size(), 48u);
    EXPECT_GE(s.capacity, 15);
    EXPECT_LE(s.capacity, 60);
    EXPECT_GE(s.district, 0);
    EXPECT_LT(s.district, 4);
  }
  EXPECT_EQ(dataset->trips.size(), 16u * 4u);
  for (const TripRecord& t : dataset->trips) {
    EXPECT_NE(t.src, t.dst);
    EXPECT_EQ(t.daily_trips.size(), 2u);
    EXPECT_GT(t.distance, 0.0);
  }
}

TEST(BikeSharingTest, ValuesWithinCapacity) {
  auto dataset = GenerateBikeSharing(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  for (const StationRecord& s : dataset->stations) {
    for (const ts::Sample& sample : s.bikes.samples()) {
      EXPECT_GE(sample.value, 0.0);
      EXPECT_LE(sample.value, static_cast<double>(s.capacity));
    }
  }
}

TEST(BikeSharingTest, DeterministicForSeed) {
  auto a = GenerateBikeSharing(SmallConfig());
  auto b = GenerateBikeSharing(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->stations.size(), b->stations.size());
  for (size_t i = 0; i < a->stations.size(); ++i) {
    EXPECT_EQ(a->stations[i].bikes, b->stations[i].bikes);
    EXPECT_DOUBLE_EQ(a->stations[i].x, b->stations[i].x);
  }
  BikeSharingConfig other = SmallConfig();
  other.seed = 43;
  auto c = GenerateBikeSharing(other);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->stations[0].bikes == c->stations[0].bikes);
}

TEST(BikeSharingTest, SameDistrictStationsCorrelate) {
  BikeSharingConfig config = SmallConfig();
  config.days = 5;
  auto dataset = GenerateBikeSharing(config);
  ASSERT_TRUE(dataset.ok());
  // Stations 0 and 4 share district 0; station 2 is district 2 (opposite
  // phase on the ring).
  auto same = ts::Correlation(dataset->stations[0].bikes,
                              dataset->stations[4].bikes);
  auto diff = ts::Correlation(dataset->stations[0].bikes,
                              dataset->stations[2].bikes);
  ASSERT_TRUE(same.ok());
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(*same, 0.5);
  EXPECT_LT(*diff, *same);
}

TEST(BikeSharingTest, LoadIntoBackend) {
  auto dataset = GenerateBikeSharing(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  storage::PolyglotStore store;
  auto stations = LoadIntoBackend(*dataset, &store);
  ASSERT_TRUE(stations.ok());
  EXPECT_EQ(stations->size(), 16u);
  EXPECT_EQ(store.topology().VertexCount(), 16u);
  EXPECT_EQ(store.topology().EdgeCount(), dataset->trips.size());
  auto series =
      store.VertexSeriesRange((*stations)[3], "bikes", Interval::All());
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 48u);
  EXPECT_EQ(*series, dataset->stations[3].bikes);
  // Static properties present.
  EXPECT_EQ(*store.topology().GetVertexProperty((*stations)[3], "name"),
            Value("S3"));
}

TEST(BikeSharingTest, ToHyGraph) {
  auto dataset = GenerateBikeSharing(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  auto hg = ToHyGraph(*dataset);
  ASSERT_TRUE(hg.ok());
  EXPECT_TRUE(hg->Validate().ok());
  EXPECT_EQ(hg->PgVertices().size(), 16u);
  EXPECT_EQ(hg->TsEdges().size(), dataset->trips.size());
  // Station series exposed as series property "history".
  const graph::VertexId v = hg->structure().VerticesWithLabel("Station")[0];
  auto history = hg->GetVertexSeriesProperty(v, "history");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ((*history)->size(), 48u);
}

TEST(BikeSharingTest, Validation) {
  BikeSharingConfig bad = SmallConfig();
  bad.stations = 0;
  EXPECT_FALSE(GenerateBikeSharing(bad).ok());
  bad = SmallConfig();
  bad.sample_interval = 0;
  EXPECT_FALSE(GenerateBikeSharing(bad).ok());
}

}  // namespace
}  // namespace hygraph::workloads
