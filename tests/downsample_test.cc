#include "ts/downsample.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

Series Wave(size_t n) {
  Series s("wave");
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(s.Append(static_cast<Timestamp>(i) * kMinute,
                         std::sin(static_cast<double>(i) * 0.1) * 10.0)
                    .ok());
  }
  return s;
}

TEST(DownsampleAverageTest, BucketsAverage) {
  Series s("s");
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(s.Append(i * kMinute, static_cast<double>(i)).ok());
  }
  auto down = DownsampleAverage(s, 3 * kMinute);
  ASSERT_TRUE(down.ok());
  ASSERT_EQ(down->size(), 2u);
  EXPECT_DOUBLE_EQ(down->at(0).value, 1.0);  // avg(0,1,2)
  EXPECT_DOUBLE_EQ(down->at(1).value, 4.0);  // avg(3,4,5)
}

TEST(DownsampleMinMaxTest, KeepsExtremes) {
  Series s("s");
  const double values[] = {5.0, 1.0, 9.0, 4.0, 2.0, 8.0};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(s.Append(i * kMinute, values[i]).ok());
  }
  auto down = DownsampleMinMax(s, 3 * kMinute);
  ASSERT_TRUE(down.ok());
  ASSERT_EQ(down->size(), 4u);
  // Bucket 1 keeps min 1.0 (t=1) then max 9.0 (t=2), original timestamps.
  EXPECT_DOUBLE_EQ(down->at(0).value, 1.0);
  EXPECT_EQ(down->at(0).t, 1 * kMinute);
  EXPECT_DOUBLE_EQ(down->at(1).value, 9.0);
  // Bucket 2: min 2.0 (t=4), max 8.0 (t=5).
  EXPECT_DOUBLE_EQ(down->at(2).value, 2.0);
  EXPECT_DOUBLE_EQ(down->at(3).value, 8.0);
}

TEST(DownsampleMinMaxTest, SingleExtremumPerBucket) {
  Series s("s");
  ASSERT_TRUE(s.Append(0, 5.0).ok());
  auto down = DownsampleMinMax(s, kMinute);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->size(), 1u);  // min == max -> emitted once
}

TEST(DownsampleMinMaxTest, RejectsBadBucket) {
  EXPECT_FALSE(DownsampleMinMax(Wave(10), 0).ok());
}

TEST(LttbTest, KeepsEndpointsAndTargetSize) {
  Series s = Wave(500);
  auto down = DownsampleLttb(s, 50);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->size(), 50u);
  EXPECT_EQ(down->front().t, s.front().t);
  EXPECT_DOUBLE_EQ(down->front().value, s.front().value);
  EXPECT_EQ(down->back().t, s.back().t);
}

TEST(LttbTest, PreservesPeaks) {
  // A flat series with one sharp spike: LTTB must keep the spike.
  Series s("spiky");
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(s.Append(i * kMinute, i == 150 ? 100.0 : 1.0).ok());
  }
  auto down = DownsampleLttb(s, 20);
  ASSERT_TRUE(down.ok());
  bool found_spike = false;
  for (const Sample& sample : down->samples()) {
    if (sample.value == 100.0) found_spike = true;
  }
  EXPECT_TRUE(found_spike);
}

TEST(LttbTest, SmallInputPassesThrough) {
  Series s = Wave(10);
  auto down = DownsampleLttb(s, 20);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(*down, s);
}

TEST(LttbTest, RejectsTinyTarget) {
  EXPECT_FALSE(DownsampleLttb(Wave(10), 1).ok());
  EXPECT_FALSE(DownsampleLttb(Wave(10), 0).ok());
}

TEST(LttbTest, OutputStrictlyOrdered) {
  Series s = Wave(1000);
  auto down = DownsampleLttb(s, 77);
  ASSERT_TRUE(down.ok());
  for (size_t i = 1; i < down->size(); ++i) {
    EXPECT_LT(down->at(i - 1).t, down->at(i).t);
  }
}

// Property sweep over target sizes.
class LttbSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LttbSweep, SizeAndBoundsHold) {
  Series s = Wave(400);
  auto down = DownsampleLttb(s, GetParam());
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->size(), GetParam());
  // Downsampled values are a subset of original values.
  for (const Sample& sample : down->samples()) {
    auto [lo, hi] = s.RangeIndices(Interval::At(sample.t));
    ASSERT_EQ(hi - lo, 1u);
    EXPECT_DOUBLE_EQ(s.at(lo).value, sample.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, LttbSweep,
                         ::testing::Values(2, 3, 10, 100, 399));

}  // namespace
}  // namespace hygraph::ts
