#include "temporal/metric_evolution.h"

#include <gtest/gtest.h>

namespace hygraph::temporal {
namespace {

// Degree of `a` grows then shrinks: edges to b [100,300), to c [200,400).
TemporalPropertyGraph World(VertexId* a) {
  TemporalPropertyGraph tpg;
  *a = *tpg.AddVertex({}, {}, Interval{0, 1000});
  const VertexId b = *tpg.AddVertex({}, {}, Interval{0, 1000});
  const VertexId c = *tpg.AddVertex({}, {}, Interval{0, 1000});
  EXPECT_TRUE(tpg.AddEdge(*a, b, "E", {}, Interval{100, 300}).ok());
  EXPECT_TRUE(tpg.AddEdge(c, *a, "E", {}, Interval{200, 400}).ok());
  return tpg;
}

TEST(DegreeEvolutionTest, TracksChanges) {
  VertexId a;
  TemporalPropertyGraph tpg = World(&a);
  auto series = DegreeEvolution(tpg, a, {50, 150, 250, 350, 450});
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 5u);
  EXPECT_DOUBLE_EQ(series->at(0).value, 0.0);
  EXPECT_DOUBLE_EQ(series->at(1).value, 1.0);
  EXPECT_DOUBLE_EQ(series->at(2).value, 2.0);
  EXPECT_DOUBLE_EQ(series->at(3).value, 1.0);
  EXPECT_DOUBLE_EQ(series->at(4).value, 0.0);
}

TEST(DegreeEvolutionTest, Validation) {
  VertexId a;
  TemporalPropertyGraph tpg = World(&a);
  EXPECT_FALSE(DegreeEvolution(tpg, 999, {1, 2}).ok());
  EXPECT_FALSE(DegreeEvolution(tpg, a, {2, 1}).ok());
  EXPECT_FALSE(DegreeEvolution(tpg, a, {1, 1}).ok());
}

TEST(AllDegreeEvolutionsTest, OnePerVertex) {
  VertexId a;
  TemporalPropertyGraph tpg = World(&a);
  auto all = AllDegreeEvolutions(tpg, {150, 250});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  EXPECT_DOUBLE_EQ(all->at(a).at(1).value, 2.0);
}

TEST(SizeEvolutionTest, CountsVerticesAndEdges) {
  VertexId a;
  TemporalPropertyGraph tpg = World(&a);
  auto evolution = SizeEvolution(tpg, {50, 250, 1500});
  ASSERT_TRUE(evolution.ok());
  EXPECT_DOUBLE_EQ(evolution->vertex_count.at(0).value, 3.0);
  EXPECT_DOUBLE_EQ(evolution->edge_count.at(0).value, 0.0);
  EXPECT_DOUBLE_EQ(evolution->edge_count.at(1).value, 2.0);
  EXPECT_DOUBLE_EQ(evolution->vertex_count.at(2).value, 0.0);
}

TEST(ComponentCountEvolutionTest, MergesWhenEdgesAppear) {
  VertexId a;
  TemporalPropertyGraph tpg = World(&a);
  auto evolution = ComponentCountEvolution(tpg, {50, 250, 500});
  ASSERT_TRUE(evolution.ok());
  EXPECT_DOUBLE_EQ(evolution->at(0).value, 3.0);  // three isolated
  EXPECT_DOUBLE_EQ(evolution->at(1).value, 1.0);  // fully connected via a
  EXPECT_DOUBLE_EQ(evolution->at(2).value, 3.0);  // edges expired
}

TEST(SampleTimesTest, EventsWhenFewerThanMax) {
  VertexId a;
  TemporalPropertyGraph tpg = World(&a);
  const std::vector<Timestamp> times = SampleTimes(tpg, 100);
  // Events: 0, 100, 200, 300, 400, 1000.
  EXPECT_EQ(times,
            (std::vector<Timestamp>{0, 100, 200, 300, 400, 1000}));
}

TEST(SampleTimesTest, SubsamplesLargeEventSets) {
  TemporalPropertyGraph tpg;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tpg.AddVertex({}, {}, Interval{i * 10, i * 10 + 5}).ok());
  }
  const std::vector<Timestamp> times = SampleTimes(tpg, 20);
  EXPECT_LE(times.size(), 20u);
  EXPECT_GE(times.size(), 2u);
  EXPECT_EQ(times.front(), 0);
  EXPECT_EQ(times.back(), 995);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
  }
}

TEST(SampleTimesTest, ZeroMaxMeansAllEvents) {
  VertexId a;
  TemporalPropertyGraph tpg = World(&a);
  EXPECT_EQ(SampleTimes(tpg, 0).size(), 6u);
}

}  // namespace
}  // namespace hygraph::temporal
