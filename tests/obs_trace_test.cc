#include "obs/trace.h"

#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "obs/clock.h"

namespace hygraph::obs {
namespace {

TEST(ScopedSpanTest, NullTracerIsANoOp) {
  // The disabled path: no tracer, no clock reads, no crash.
  ScopedSpan span(nullptr, "anything");
  span.AddCounter("rows", 10);
  EXPECT_FALSE(span.enabled());
}

TEST(TracerTest, SingleSpanTiming) {
  ManualClock clock;
  Tracer tracer(&clock);
  {
    ScopedSpan span(&tracer, "scan");
    clock.Advance(500);
  }
  EXPECT_EQ(tracer.open_spans(), 0u);
  const TraceNode& root = tracer.root();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "scan");
  EXPECT_EQ(root.children[0].count, 1u);
  EXPECT_EQ(root.children[0].total_nanos, 500u);
  // Root total accumulates top-level span time.
  EXPECT_EQ(root.total_nanos, 500u);
}

TEST(TracerTest, NestedSpansTelescope) {
  ManualClock clock;
  Tracer tracer(&clock);
  {
    ScopedSpan outer(&tracer, "execute");
    clock.Advance(100);
    {
      ScopedSpan inner(&tracer, "where");
      clock.Advance(30);
    }
    clock.Advance(70);
  }
  const TraceNode& execute = tracer.root().children[0];
  EXPECT_EQ(execute.total_nanos, 200u);
  ASSERT_EQ(execute.children.size(), 1u);
  EXPECT_EQ(execute.children[0].total_nanos, 30u);
  // Self time excludes the child; the tree reconciles exactly.
  EXPECT_EQ(execute.self_nanos(), 170u);
  EXPECT_EQ(execute.SumSelfNanos(), execute.total_nanos);
}

TEST(TracerTest, RepeatedSpansMergeByName) {
  // EXPLAIN ANALYZE-style aggregation: the per-row "where" span runs three
  // times but renders as one node with count=3.
  ManualClock clock;
  Tracer tracer(&clock);
  {
    ScopedSpan scan(&tracer, "scan");
    for (int i = 0; i < 3; ++i) {
      ScopedSpan where(&tracer, "where");
      clock.Advance(10);
      where.AddCounter("rows", 1);
    }
  }
  const TraceNode& scan = tracer.root().children[0];
  ASSERT_EQ(scan.children.size(), 1u);
  const TraceNode& where = scan.children[0];
  EXPECT_EQ(where.count, 3u);
  EXPECT_EQ(where.total_nanos, 30u);
  EXPECT_EQ(where.counters.at("rows"), 3u);
}

TEST(TracerTest, RecursiveNestingBuildsADeepTree) {
  // Same span name at different depths stays distinct (merging is
  // per-parent, not global) — the shape a recursive evaluator produces.
  ManualClock clock;
  Tracer tracer(&clock);
  std::function<void(int)> recurse = [&](int depth) {
    ScopedSpan span(&tracer, "eval");
    clock.Advance(1);
    if (depth > 0) recurse(depth - 1);
  };
  recurse(3);
  const TraceNode* node = &tracer.root();
  int levels = 0;
  while (!node->children.empty()) {
    ASSERT_EQ(node->children.size(), 1u);
    node = &node->children[0];
    EXPECT_EQ(node->name, "eval");
    EXPECT_EQ(node->count, 1u);
    ++levels;
  }
  EXPECT_EQ(levels, 4);
  EXPECT_EQ(tracer.root().SumSelfNanos(), tracer.root().total_nanos);
}

TEST(TracerTest, CounterOutsideAnySpanLandsOnRoot) {
  ManualClock clock;
  Tracer tracer(&clock);
  tracer.AddCounter("loose", 2);
  EXPECT_EQ(tracer.root().counters.at("loose"), 2u);
}

TEST(TracerTest, SiblingSpansShareTheParentTotal) {
  ManualClock clock;
  Tracer tracer(&clock);
  {
    ScopedSpan parent(&tracer, "execute");
    {
      ScopedSpan a(&tracer, "match");
      clock.Advance(40);
    }
    {
      ScopedSpan b(&tracer, "project");
      clock.Advance(60);
    }
  }
  const TraceNode& execute = tracer.root().children[0];
  EXPECT_EQ(execute.children.size(), 2u);
  EXPECT_EQ(execute.total_nanos, 100u);
  EXPECT_EQ(execute.self_nanos(), 0u);
  EXPECT_EQ(execute.SumSelfNanos(), 100u);
}

TEST(TraceNodeTest, FindChildAndToString) {
  ManualClock clock;
  Tracer tracer(&clock);
  {
    ScopedSpan outer(&tracer, "execute");
    ScopedSpan inner(&tracer, "sort");
    clock.Advance(5);
    inner.AddCounter("rows", 7);
  }
  const TraceNode& execute = tracer.root().children[0];
  ASSERT_NE(execute.FindChild("sort"), nullptr);
  EXPECT_EQ(execute.FindChild("nope"), nullptr);
  const std::string rendered = execute.ToString();
  EXPECT_NE(rendered.find("execute: count=1"), std::string::npos);
  EXPECT_NE(rendered.find("sort: count=1"), std::string::npos);
  EXPECT_NE(rendered.find("rows=7"), std::string::npos);
  // The child line is indented under the parent.
  EXPECT_NE(rendered.find("\n  sort"), std::string::npos);
}

TEST(TracerTest, AutoAdvanceClockGivesEveryNodeNonZeroTime) {
  // With auto_advance every Begin/End pair observes a distinct reading, so
  // deterministic tests can assert total_nanos > 0 on every node.
  ManualClock clock;
  clock.set_auto_advance(1);
  Tracer tracer(&clock);
  {
    ScopedSpan outer(&tracer, "a");
    ScopedSpan inner(&tracer, "b");
  }
  const TraceNode& a = tracer.root().children[0];
  EXPECT_GT(a.total_nanos, 0u);
  ASSERT_EQ(a.children.size(), 1u);
  EXPECT_GT(a.children[0].total_nanos, 0u);
  EXPECT_GE(a.total_nanos, a.children[0].total_nanos);
}

}  // namespace
}  // namespace hygraph::obs
