// Property-based round-trip coverage across the three workload generators:
// every generated world must validate, serialize, deserialize to an
// equivalent instance, and re-serialize to the identical canonical text.

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "workloads/bike_sharing.h"
#include "workloads/financial.h"
#include "workloads/fraud_workload.h"

namespace hygraph {
namespace {

void ExpectCanonicalRoundTrip(const core::HyGraph& hg) {
  ASSERT_TRUE(hg.Validate().ok());
  auto text = core::Serialize(hg);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto restored = core::Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->Validate().ok());
  EXPECT_EQ(restored->VertexCount(), hg.VertexCount());
  EXPECT_EQ(restored->EdgeCount(), hg.EdgeCount());
  EXPECT_EQ(restored->TsVertices(), hg.TsVertices());
  EXPECT_EQ(restored->TsEdges(), hg.TsEdges());
  EXPECT_EQ(restored->SeriesPoolSize(), hg.SeriesPoolSize());
  EXPECT_EQ(restored->SubgraphIds(), hg.SubgraphIds());
  // Structural payload equality, element by element.
  for (graph::VertexId v : hg.structure().VertexIds()) {
    EXPECT_EQ(**restored->structure().GetVertex(v),
              **hg.structure().GetVertex(v));
    EXPECT_EQ(*restored->VertexValidity(v), *hg.VertexValidity(v));
  }
  for (graph::EdgeId e : hg.structure().EdgeIds()) {
    EXPECT_EQ(**restored->structure().GetEdge(e),
              **hg.structure().GetEdge(e));
  }
  for (graph::VertexId v : hg.TsVertices()) {
    EXPECT_EQ(**restored->VertexSeries(v), **hg.VertexSeries(v));
  }
  for (graph::EdgeId e : hg.TsEdges()) {
    EXPECT_EQ(**restored->EdgeSeries(e), **hg.EdgeSeries(e));
  }
  auto text2 = core::Serialize(*restored);
  ASSERT_TRUE(text2.ok());
  EXPECT_EQ(*text, *text2) << "canonical form is not a fixed point";
}

class FraudRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FraudRoundTrip, SerializeIsLossless) {
  workloads::FraudConfig config;
  config.users = 30;
  config.merchants = 9;
  config.merchant_clusters = 3;
  config.days = 3;
  config.seed = GetParam();
  auto hg = workloads::GenerateFraudHyGraph(config);
  ASSERT_TRUE(hg.ok());
  ExpectCanonicalRoundTrip(*hg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FraudRoundTrip,
                         ::testing::Values(1, 17, 99, 424242));

class BikeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BikeRoundTrip, SerializeIsLossless) {
  workloads::BikeSharingConfig config;
  config.stations = 10;
  config.districts = 3;
  config.days = 2;
  config.sample_interval = kHour;
  config.seed = GetParam();
  auto dataset = workloads::GenerateBikeSharing(config);
  ASSERT_TRUE(dataset.ok());
  auto hg = workloads::ToHyGraph(*dataset);
  ASSERT_TRUE(hg.ok());
  ExpectCanonicalRoundTrip(*hg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BikeRoundTrip, ::testing::Values(2, 77, 2024));

class FinancialRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FinancialRoundTrip, SerializeIsLossless) {
  workloads::FinancialConfig config;
  config.companies = 20;
  config.years = 3;
  config.seed = GetParam();
  auto hg = workloads::GenerateFinancialHyGraph(config);
  ASSERT_TRUE(hg.ok());
  ExpectCanonicalRoundTrip(*hg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FinancialRoundTrip,
                         ::testing::Values(3, 11, 555));

}  // namespace
}  // namespace hygraph
