#include <cmath>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"
#include "workloads/bike_sharing.h"

namespace hygraph {
namespace {

// The architectural contract behind Table 1: both storage engines must
// return byte-identical answers to every HGQL query — they differ only in
// speed. Loads one deterministic dataset into both engines and runs the
// full Table-1-style query family against each.
class BackendConsistencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::BikeSharingConfig config;
    config.stations = 24;
    config.districts = 4;
    config.days = 3;
    config.sample_interval = 30 * kMinute;
    config.seed = 7;
    auto dataset = workloads::GenerateBikeSharing(config);
    ASSERT_TRUE(dataset.ok());
    dataset_ = new workloads::BikeSharingDataset(std::move(*dataset));
    all_in_graph_ = new storage::AllInGraphStore();
    polyglot_ = new storage::PolyglotStore();
    ASSERT_TRUE(workloads::LoadIntoBackend(*dataset_, all_in_graph_).ok());
    ASSERT_TRUE(workloads::LoadIntoBackend(*dataset_, polyglot_).ok());
  }

  // Doubles may differ in the last bits: the polyglot engine folds
  // chunk-level partial aggregates while the all-in-graph engine sums a
  // flat scan, and floating-point addition is not associative.
  static void ExpectCellEq(const Value& x, const Value& y,
                           const std::string& context) {
    if (x.is_double() && y.is_numeric()) {
      EXPECT_NEAR(x.AsDouble(), y.ToDouble().value(),
                  1e-9 * (1.0 + std::abs(x.AsDouble())))
          << context;
      return;
    }
    EXPECT_EQ(x, y) << context;
  }

  void ExpectSameAnswer(const std::string& query) {
    auto a = query::Execute(*all_in_graph_, query);
    auto b = query::Execute(*polyglot_, query);
    ASSERT_TRUE(a.ok()) << query << " -> " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << query << " -> " << b.status().ToString();
    EXPECT_EQ(a->columns, b->columns) << query;
    ASSERT_EQ(a->row_count(), b->row_count()) << query;
    for (size_t r = 0; r < a->row_count(); ++r) {
      for (size_t c = 0; c < a->columns.size(); ++c) {
        ExpectCellEq(a->rows[r][c], b->rows[r][c],
                     query + " row " + std::to_string(r) + " col " +
                         std::to_string(c));
      }
    }
  }

  static workloads::BikeSharingDataset* dataset_;
  static storage::AllInGraphStore* all_in_graph_;
  static storage::PolyglotStore* polyglot_;
};

workloads::BikeSharingDataset* BackendConsistencyTest::dataset_ = nullptr;
storage::AllInGraphStore* BackendConsistencyTest::all_in_graph_ = nullptr;
storage::PolyglotStore* BackendConsistencyTest::polyglot_ = nullptr;

TEST_F(BackendConsistencyTest, StaticProjection) {
  ExpectSameAnswer(
      "MATCH (s:Station) RETURN s.name, s.district, s.capacity "
      "ORDER BY s.name");
}

TEST_F(BackendConsistencyTest, TimeRangeCount) {
  const Timestamp t0 = dataset_->start();
  ExpectSameAnswer("MATCH (s:Station {name: 'S3'}) RETURN ts_count(s.bikes, " +
                   std::to_string(t0) + ", " +
                   std::to_string(t0 + kDay) + ")");
}

TEST_F(BackendConsistencyTest, SingleEntityAggregate) {
  const Timestamp t0 = dataset_->start();
  ExpectSameAnswer("MATCH (s:Station {name: 'S5'}) RETURN ts_avg(s.bikes, " +
                   std::to_string(t0) + ", " +
                   std::to_string(t0 + 2 * kDay) + ") AS a");
}

TEST_F(BackendConsistencyTest, FilteredMultiEntityAggregate) {
  const Timestamp t0 = dataset_->start();
  ExpectSameAnswer(
      "MATCH (s:Station) WHERE s.district = 1 RETURN s.name, "
      "ts_max(s.bikes, " +
      std::to_string(t0) + ", " + std::to_string(t0 + kDay) +
      ") AS m ORDER BY s.name");
}

TEST_F(BackendConsistencyTest, TopKByAggregate) {
  const Timestamp t0 = dataset_->start();
  const Timestamp t1 = dataset_->end();
  ExpectSameAnswer("MATCH (s:Station) RETURN s.name AS n, ts_avg(s.bikes, " +
                   std::to_string(t0) + ", " + std::to_string(t1) +
                   ") AS a ORDER BY a DESC, n LIMIT 5");
}

TEST_F(BackendConsistencyTest, CorrelationPair) {
  const Timestamp t0 = dataset_->start();
  const Timestamp t1 = dataset_->end();
  ExpectSameAnswer(
      "MATCH (a:Station {name: 'S0'}), (b:Station {name: 'S4'}) "
      "RETURN ts_corr(a.bikes, b.bikes, " +
      std::to_string(t0) + ", " + std::to_string(t1) + ") AS c");
}

TEST_F(BackendConsistencyTest, TraversalWithSeriesAggregate) {
  const Timestamp t0 = dataset_->start();
  ExpectSameAnswer(
      "MATCH (a:Station {name: 'S0'})-[t:TRIP]->(b:Station) "
      "RETURN b.name AS n, ts_avg(b.bikes, " +
      std::to_string(t0) + ", " + std::to_string(t0 + kDay) +
      ") AS a ORDER BY n");
}

TEST_F(BackendConsistencyTest, EdgeSeriesAggregate) {
  ExpectSameAnswer(
      "MATCH (a:Station {name: 'S0'})-[t:TRIP]->(b:Station) "
      "RETURN b.name AS n, ts_sum(t.trips, 0, 99999999999999) AS s "
      "ORDER BY n");
}

TEST_F(BackendConsistencyTest, HybridPredicate) {
  const Timestamp t0 = dataset_->start();
  const Timestamp t1 = dataset_->end();
  ExpectSameAnswer(
      "MATCH (a:Station)-[:TRIP]->(b:Station) WHERE ts_avg(a.bikes, " +
      std::to_string(t0) + ", " + std::to_string(t1) +
      ") > 15 RETURN a.name AS x, b.name AS y ORDER BY x, y LIMIT 25");
}

TEST_F(BackendConsistencyTest, CountBetweenPushdown) {
  // The Q8 shape: a pushed-down value-range predicate. The polyglot engine
  // answers it from compressed-chunk zone maps; the all-in-graph engine
  // materializes and counts. Answers must match exactly.
  const Timestamp t0 = dataset_->start();
  const Timestamp t1 = dataset_->end();
  ExpectSameAnswer(
      "MATCH (s:Station) RETURN s.name AS n, ts_count_between(s.bikes, " +
      std::to_string(t0) + ", " + std::to_string(t1) +
      ", 0, 5) AS empty_ish ORDER BY n");
  ExpectSameAnswer(
      "MATCH (s:Station) WHERE ts_count_between(s.bikes, " +
      std::to_string(t0) + ", " + std::to_string(t1) +
      ", 40, 100000) > 0 RETURN s.name AS n ORDER BY n");
}

TEST_F(BackendConsistencyTest, WindowAggregate) {
  const Timestamp t0 = dataset_->start();
  const Timestamp t1 = dataset_->end();
  ExpectSameAnswer("MATCH (s:Station {name: 'S7'}) RETURN ts_window_agg("
                   "s.bikes, " +
                   std::to_string(t0) + ", " + std::to_string(t1) + ", " +
                   std::to_string(kDay) + ", 'avg', 'max') AS peak");
}

}  // namespace
}  // namespace hygraph
