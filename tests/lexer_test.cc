#include "query/lexer.h"

#include <gtest/gtest.h>

namespace hygraph::query {
namespace {

std::vector<TokenKind> Kinds(const std::string& text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("match WHERE Return oRdEr by");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "MATCH");
  EXPECT_EQ((*tokens)[1].text, "WHERE");
  EXPECT_EQ((*tokens)[2].text, "RETURN");
  EXPECT_EQ((*tokens)[3].text, "ORDER");
  EXPECT_EQ((*tokens)[4].text, "BY");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kKeyword);
  }
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Tokenize("myVar ts_avg _x1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "myVar");
  EXPECT_EQ((*tokens)[1].text, "ts_avg");
  EXPECT_EQ((*tokens)[2].text, "_x1");
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("42 3.5 1700000000000");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 3.5);
  EXPECT_EQ((*tokens)[2].int_value, 1700000000000LL);
}

TEST(LexerTest, Strings) {
  auto tokens = Tokenize("'abc' \"def\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "abc");
  EXPECT_EQ((*tokens)[1].text, "def");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'abc").ok());
}

TEST(LexerTest, PatternPunctuation) {
  EXPECT_EQ(Kinds("(a:User)-[t:TX]->(b)"),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kIdent, TokenKind::kColon,
                TokenKind::kIdent, TokenKind::kRParen, TokenKind::kMinus,
                TokenKind::kLBracket, TokenKind::kIdent, TokenKind::kColon,
                TokenKind::kIdent, TokenKind::kRBracket,
                TokenKind::kArrowRight, TokenKind::kLParen, TokenKind::kIdent,
                TokenKind::kRParen, TokenKind::kEnd}));
}

TEST(LexerTest, LeftArrowAndComparisons) {
  EXPECT_EQ(Kinds("<- <= < <> >= > ="),
            (std::vector<TokenKind>{
                TokenKind::kArrowLeft, TokenKind::kLe, TokenKind::kLt,
                TokenKind::kNe, TokenKind::kGe, TokenKind::kGt,
                TokenKind::kEq, TokenKind::kEnd}));
}

TEST(LexerTest, ArithmeticOperators) {
  EXPECT_EQ(Kinds("+ - * /"),
            (std::vector<TokenKind>{TokenKind::kPlus, TokenKind::kMinus,
                                    TokenKind::kStar, TokenKind::kSlash,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, PropertyAccess) {
  EXPECT_EQ(Kinds("s.name"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kDot,
                                    TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(LexerTest, BracesForPropertyMaps) {
  EXPECT_EQ(Kinds("{k: 1, j: 'x'}"),
            (std::vector<TokenKind>{
                TokenKind::kLBrace, TokenKind::kIdent, TokenKind::kColon,
                TokenKind::kInt, TokenKind::kComma, TokenKind::kIdent,
                TokenKind::kColon, TokenKind::kString, TokenKind::kRBrace,
                TokenKind::kEnd}));
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto result = Tokenize("a ; b");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset 2"), std::string::npos);
}

TEST(LexerTest, BooleanAndNullKeywords) {
  auto tokens = Tokenize("true FALSE null");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "TRUE");
  EXPECT_EQ((*tokens)[1].text, "FALSE");
  EXPECT_EQ((*tokens)[2].text, "NULL");
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("   ");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, IntegerLiteralOverflowIsRejected) {
  // Fuzzer regression: strtoll used to saturate to LLONG_MAX silently, so
  // the query evaluated a different number than written. Out-of-range
  // integers are now a lex error (fuzz/corpus/hgql_parse/int_overflow).
  auto tokens = Tokenize("99999999999999999999999");
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(tokens.status().message().find("out of range"),
            std::string::npos);
}

TEST(LexerTest, MaxInt64StillLexes) {
  auto tokens = Tokenize("9223372036854775807");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 9223372036854775807LL);
}

}  // namespace
}  // namespace hygraph::query
