// Negative-compile probe for the thread-safety annotations: this file must
// NOT compile under Clang -Werror=thread-safety. tests/CMakeLists.txt
// registers it (only when HYGRAPH_THREAD_SAFETY is ON) as a ctest case with
// WILL_FAIL, invoking the compiler directly — if the capability annotations
// on hygraph::Mutex or HYGRAPH_GUARDED_BY ever stop expanding, the snippet
// starts compiling and the test turns red. It is never linked into
// anything.
#include <cstdint>

#include "common/sync.h"

namespace {

class Account {
 public:
  void Deposit(uint64_t amount) {
    hygraph::MutexLock lock(mu_);
    balance_ += amount;
  }

  // Reads the guarded field WITHOUT holding mu_: the whole point of this
  // file. Under -Wthread-safety this is an error; anywhere else it is a
  // garden-variety data race the compiler cannot see.
  uint64_t UnguardedRead() const { return balance_; }

 private:
  mutable hygraph::Mutex mu_;
  uint64_t balance_ HYGRAPH_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return static_cast<int>(account.UnguardedRead());
}
