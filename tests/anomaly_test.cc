#include "ts/anomaly.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

// Gaussian-ish noise with deterministic pseudo-random values plus planted
// point anomalies at the given indices.
Series NoisyWithSpikes(size_t n, std::vector<size_t> spike_at,
                       double spike = 50.0) {
  Series s("noisy");
  for (size_t i = 0; i < n; ++i) {
    double v = std::sin(static_cast<double>(i) * 0.9) +
               0.3 * std::cos(static_cast<double>(i) * 2.3);
    for (size_t idx : spike_at) {
      if (i == idx) v += spike;
    }
    EXPECT_TRUE(s.Append(static_cast<Timestamp>(i) * kMinute, v).ok());
  }
  return s;
}

TEST(ZScoreTest, FindsPlantedSpikes) {
  Series s = NoisyWithSpikes(200, {50, 120});
  auto anomalies = DetectZScore(s, 4.0);
  ASSERT_TRUE(anomalies.ok());
  ASSERT_EQ(anomalies->size(), 2u);
  EXPECT_EQ((*anomalies)[0].index, 50u);
  EXPECT_EQ((*anomalies)[1].index, 120u);
  EXPECT_GT((*anomalies)[0].score, 4.0);
}

TEST(ZScoreTest, CleanSeriesIsQuiet) {
  Series s = NoisyWithSpikes(200, {});
  auto anomalies = DetectZScore(s, 4.0);
  ASSERT_TRUE(anomalies.ok());
  EXPECT_TRUE(anomalies->empty());
}

TEST(ZScoreTest, ConstantSeriesIsQuiet) {
  Series s("c");
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(s.Append(i, 3.0).ok());
  auto anomalies = DetectZScore(s, 1.0);
  ASSERT_TRUE(anomalies.ok());
  EXPECT_TRUE(anomalies->empty());
}

TEST(ZScoreTest, Validation) {
  EXPECT_FALSE(DetectZScore(NoisyWithSpikes(10, {}), 0.0).ok());
  EXPECT_FALSE(DetectZScore(NoisyWithSpikes(10, {}), -1.0).ok());
  Series tiny("t");
  ASSERT_TRUE(tiny.Append(0, 1.0).ok());
  auto anomalies = DetectZScore(tiny, 3.0);
  ASSERT_TRUE(anomalies.ok());
  EXPECT_TRUE(anomalies->empty());
}

TEST(IqrTest, FindsOutliers) {
  Series s = NoisyWithSpikes(200, {77});
  auto anomalies = DetectIqr(s, 3.0);
  ASSERT_TRUE(anomalies.ok());
  ASSERT_GE(anomalies->size(), 1u);
  bool found = false;
  for (const Anomaly& a : *anomalies) {
    if (a.index == 77) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(IqrTest, StricterFenceFlagsFewer) {
  Series s = NoisyWithSpikes(300, {10, 100, 200}, 5.0);
  auto loose = DetectIqr(s, 1.0);
  auto strict = DetectIqr(s, 4.0);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_GE(loose->size(), strict->size());
}

TEST(SlidingWindowTest, CatchesBurstOnDriftingBaseline) {
  // Rising baseline makes the global z-score miss a local burst; the
  // sliding-window detector must catch it.
  Series s("drift");
  for (int i = 0; i < 300; ++i) {
    double v = static_cast<double>(i) * 2.0;  // strong drift
    if (i == 200) v += 400.0;                  // local burst
    ASSERT_TRUE(s.Append(i * kMinute, v).ok());
  }
  auto global = DetectZScore(s, 4.0);
  ASSERT_TRUE(global.ok());
  EXPECT_TRUE(global->empty());  // drift hides the burst globally
  auto local = DetectSlidingWindow(s, 24, 4.0);
  ASSERT_TRUE(local.ok());
  ASSERT_GE(local->size(), 1u);
  EXPECT_EQ((*local)[0].index, 200u);
}

TEST(SlidingWindowTest, Validation) {
  Series s = NoisyWithSpikes(50, {});
  EXPECT_FALSE(DetectSlidingWindow(s, 1, 3.0).ok());
  EXPECT_FALSE(DetectSlidingWindow(s, 10, 0.0).ok());
  Series tiny("t");
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(tiny.Append(i, 1.0).ok());
  auto anomalies = DetectSlidingWindow(tiny, 10, 3.0);
  ASSERT_TRUE(anomalies.ok());
  EXPECT_TRUE(anomalies->empty());
}

TEST(DiscordTest, FindsAnomalousSubsequence) {
  // A periodic series with one corrupted cycle: that cycle is the discord.
  Series s("periodic");
  for (int i = 0; i < 240; ++i) {
    double v = std::sin(i * 2.0 * 3.14159265 / 20.0);
    if (i >= 120 && i < 132) v = 1.5 - v;  // corrupt one cycle
    ASSERT_TRUE(s.Append(i * kMinute, v).ok());
  }
  auto discords = DetectDiscords(s, 20, 1);
  ASSERT_TRUE(discords.ok());
  ASSERT_EQ(discords->size(), 1u);
  // The discord window should cover part of the corrupted region.
  EXPECT_GE((*discords)[0].index + 20, 120u);
  EXPECT_LE((*discords)[0].index, 132u);
}

TEST(DiscordTest, RequiresEnoughData) {
  Series s = NoisyWithSpikes(10, {});
  EXPECT_FALSE(DetectDiscords(s, 8, 1).ok());
}

}  // namespace
}  // namespace hygraph::ts
