#include "ts/segmentation.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

// Piecewise series: flat at 0 for n1 points, then linear ramp for n2.
Series TwoRegimes(size_t n1, size_t n2) {
  Series s("regimes");
  Timestamp t = 0;
  for (size_t i = 0; i < n1; ++i, t += kMinute) {
    EXPECT_TRUE(s.Append(t, 0.0).ok());
  }
  for (size_t i = 0; i < n2; ++i, t += kMinute) {
    EXPECT_TRUE(s.Append(t, static_cast<double>(i) * 5.0).ok());
  }
  return s;
}

TEST(FitSegmentTest, PerfectLine) {
  Series s("line");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(s.Append(i * kMinute, 3.0 + 2.0 * i).ok());
  }
  const Segment seg = FitSegment(s, 0, s.size());
  EXPECT_NEAR(seg.error, 0.0, 1e-9);
  EXPECT_NEAR(seg.intercept, 3.0, 1e-9);
  EXPECT_NEAR(seg.slope * kMinute, 2.0, 1e-9);  // slope per ms -> per minute
  EXPECT_EQ(seg.length(), 10u);
}

TEST(FitSegmentTest, SinglePoint) {
  Series s("p");
  ASSERT_TRUE(s.Append(100, 7.0).ok());
  const Segment seg = FitSegment(s, 0, 1);
  EXPECT_DOUBLE_EQ(seg.intercept, 7.0);
  EXPECT_DOUBLE_EQ(seg.slope, 0.0);
  EXPECT_DOUBLE_EQ(seg.error, 0.0);
}

TEST(FitSegmentTest, ConstantSeriesZeroError) {
  Series s("c");
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(s.Append(i * kMinute, 4.0).ok());
  const Segment seg = FitSegment(s, 0, s.size());
  EXPECT_NEAR(seg.error, 0.0, 1e-9);
  EXPECT_NEAR(seg.slope, 0.0, 1e-15);
}

TEST(SegmentTopDownTest, FindsTheBreak) {
  Series s = TwoRegimes(50, 50);
  auto segments = SegmentTopDown(s, 1.0, 8);
  ASSERT_TRUE(segments.ok());
  ASSERT_GE(segments->size(), 2u);
  // One boundary must fall at (or next to) the regime change, sample 50.
  bool found = false;
  for (size_t i = 1; i < segments->size(); ++i) {
    const size_t b = (*segments)[i].begin;
    if (b >= 48 && b <= 52) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SegmentTopDownTest, SegmentsArePartition) {
  Series s = TwoRegimes(30, 40);
  auto segments = SegmentTopDown(s, 0.5, 6);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ((*segments)[0].begin, 0u);
  for (size_t i = 1; i < segments->size(); ++i) {
    EXPECT_EQ((*segments)[i].begin, (*segments)[i - 1].end);
  }
  EXPECT_EQ(segments->back().end, s.size());
}

TEST(SegmentTopDownTest, RespectsMaxSegments) {
  Series s("noise");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.Append(i * kMinute, std::sin(i * 1.3) * 50).ok());
  }
  auto segments = SegmentTopDown(s, 0.0001, 5);
  ASSERT_TRUE(segments.ok());
  EXPECT_LE(segments->size(), 5u);
}

TEST(SegmentTopDownTest, PerfectLineStaysOneSegment) {
  Series s("line");
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(s.Append(i * kMinute, 2.0 * i).ok());
  auto segments = SegmentTopDown(s, 0.5, 10);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(segments->size(), 1u);
}

TEST(SegmentTopDownTest, EmptyAndInvalid) {
  Series empty("e");
  auto segments = SegmentTopDown(empty, 1.0, 4);
  ASSERT_TRUE(segments.ok());
  EXPECT_TRUE(segments->empty());
  EXPECT_FALSE(SegmentTopDown(empty, 1.0, 0).ok());
}

TEST(SegmentBottomUpTest, MergesToFewSegments) {
  Series s = TwoRegimes(40, 40);
  auto segments = SegmentBottomUp(s, 100.0, 4);
  ASSERT_TRUE(segments.ok());
  EXPECT_LT(segments->size(), 20u);  // merged well below the 20 initial
  EXPECT_EQ((*segments)[0].begin, 0u);
  EXPECT_EQ(segments->back().end, s.size());
}

TEST(SegmentBottomUpTest, RejectsTinyInitialWidth) {
  EXPECT_FALSE(SegmentBottomUp(TwoRegimes(10, 10), 1.0, 1).ok());
}

TEST(ChangePointsTest, BoundariesOnly) {
  Series s = TwoRegimes(20, 20);
  auto segments = SegmentTopDown(s, 1.0, 4);
  ASSERT_TRUE(segments.ok());
  const std::vector<Timestamp> points = ChangePoints(*segments);
  EXPECT_EQ(points.size(), segments->size() - 1);
}

TEST(DetectMeanShiftsTest, FindsSingleShift) {
  Series s("shift");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(s.Append(i * kMinute, i < 20 ? 0.0 : 10.0).ok());
  }
  auto shifts = DetectMeanShifts(s, 5.0);
  ASSERT_TRUE(shifts.ok());
  ASSERT_EQ(shifts->size(), 1u);
  EXPECT_EQ((*shifts)[0], 20u);
}

TEST(DetectMeanShiftsTest, NoShiftInConstantSeries) {
  Series s("flat");
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(s.Append(i * kMinute, 5.0).ok());
  auto shifts = DetectMeanShifts(s, 1.0);
  ASSERT_TRUE(shifts.ok());
  EXPECT_TRUE(shifts->empty());
}

TEST(DetectMeanShiftsTest, PenaltyControlsSensitivity) {
  Series s("steps");
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(s.Append(i * kMinute, static_cast<double>(i / 20)).ok());
  }
  auto strict = DetectMeanShifts(s, 1000.0);
  auto loose = DetectMeanShifts(s, 0.5);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(strict->size(), loose->size());
  EXPECT_EQ(loose->size(), 2u);  // two step boundaries
}

TEST(DetectMeanShiftsTest, RejectsNegativePenalty) {
  EXPECT_FALSE(DetectMeanShifts(TwoRegimes(5, 5), -1.0).ok());
}

}  // namespace
}  // namespace hygraph::ts
