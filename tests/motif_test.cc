#include "ts/motif.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

// Noise with the same distinctive shape planted at two offsets.
Series WithTwinShapes(size_t offset1, size_t offset2, size_t total) {
  const std::vector<double> shape = {0, 8, -8, 8, -8, 0, 4, -4};
  Series s("twins");
  for (size_t i = 0; i < total; ++i) {
    double v = std::sin(static_cast<double>(i) * 1.3) * 0.5 +
               std::cos(static_cast<double>(i) * 0.7) * 0.3;
    if (i >= offset1 && i < offset1 + shape.size()) v = shape[i - offset1];
    if (i >= offset2 && i < offset2 + shape.size()) v = shape[i - offset2];
    EXPECT_TRUE(s.Append(static_cast<Timestamp>(i) * kMinute, v).ok());
  }
  return s;
}

TEST(MatrixProfileTest, ShapeAndSymmetry) {
  Series s = WithTwinShapes(20, 60, 120);
  auto profile = MatrixProfile(s, 8);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->m, 8u);
  EXPECT_EQ(profile->distances.size(), 120 - 8 + 1);
  EXPECT_EQ(profile->indices.size(), profile->distances.size());
  // The planted twins are each other's nearest neighbors.
  EXPECT_NEAR(profile->distances[20], 0.0, 1e-9);
  EXPECT_NEAR(profile->distances[60], 0.0, 1e-9);
  EXPECT_EQ(profile->indices[20], 60u);
  EXPECT_EQ(profile->indices[60], 20u);
}

TEST(MatrixProfileTest, TrivialMatchExclusion) {
  Series s = WithTwinShapes(20, 60, 120);
  auto profile = MatrixProfile(s, 8);
  ASSERT_TRUE(profile.ok());
  // No subsequence may claim a neighbor within the exclusion zone (m/2).
  for (size_t i = 0; i < profile->indices.size(); ++i) {
    const size_t j = profile->indices[i];
    const size_t gap = i > j ? i - j : j - i;
    EXPECT_GT(gap, 8u / 2);
  }
}

TEST(MatrixProfileTest, Validation) {
  Series s = WithTwinShapes(5, 20, 40);
  EXPECT_FALSE(MatrixProfile(s, 1).ok());
  EXPECT_FALSE(MatrixProfile(s, 25).ok());  // needs 2*m samples
}

TEST(FindMotifsTest, RecoversPlantedPair) {
  Series s = WithTwinShapes(30, 90, 160);
  auto motifs = FindMotifs(s, 8, 1);
  ASSERT_TRUE(motifs.ok());
  ASSERT_EQ(motifs->size(), 1u);
  EXPECT_EQ((*motifs)[0].first, 30u);
  EXPECT_EQ((*motifs)[0].second, 90u);
  EXPECT_EQ((*motifs)[0].first_time, 30 * kMinute);
  EXPECT_NEAR((*motifs)[0].distance, 0.0, 1e-9);
}

TEST(FindMotifsTest, TopKDoesNotRepeatOccurrences) {
  Series s = WithTwinShapes(30, 90, 200);
  auto motifs = FindMotifs(s, 8, 5);
  ASSERT_TRUE(motifs.ok());
  ASSERT_GE(motifs->size(), 1u);
  // Later motifs must not reuse the blocked regions of earlier ones.
  for (size_t i = 1; i < motifs->size(); ++i) {
    const auto& first = (*motifs)[0];
    const auto& other = (*motifs)[i];
    auto disjoint = [&](size_t a, size_t b) {
      return a + 8 <= b || b + 8 <= a;
    };
    EXPECT_TRUE(disjoint(other.first, first.first) &&
                disjoint(other.first, first.second));
  }
}

TEST(FindMotifsTest, BestMotifFirst) {
  Series s = WithTwinShapes(30, 90, 200);
  auto motifs = FindMotifs(s, 8, 3);
  ASSERT_TRUE(motifs.ok());
  for (size_t i = 1; i < motifs->size(); ++i) {
    EXPECT_LE((*motifs)[i - 1].distance, (*motifs)[i].distance);
  }
}

}  // namespace
}  // namespace hygraph::ts
