#include "workloads/financial.h"

#include <gtest/gtest.h>

#include "temporal/snapshot.h"

namespace hygraph::workloads {
namespace {

using core::HyGraph;
using graph::VertexId;

FinancialConfig SmallConfig() {
  FinancialConfig config;
  config.companies = 30;
  config.exchanges = 3;
  config.years = 4;
  config.seed = 11;
  return config;
}

TEST(FinancialTest, GeneratesValidTemporalWorld) {
  auto hg = GenerateFinancialHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok()) << hg.status().ToString();
  EXPECT_TRUE(hg->Validate().ok());
  EXPECT_EQ(hg->structure().VerticesWithLabel("Company").size(), 30u);
  EXPECT_EQ(hg->structure().VerticesWithLabel("Exchange").size(), 3u);
}

TEST(FinancialTest, PublicCompaniesHavePriceSeries) {
  auto hg = GenerateFinancialHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok());
  size_t with_price = 0;
  for (VertexId c : hg->structure().VerticesWithLabel("Company")) {
    auto price = hg->GetVertexSeriesProperty(c, "price");
    if (!price.ok()) continue;
    ++with_price;
    EXPECT_GT((*price)->size(), 10u);
    // Prices are positive.
    for (size_t r = 0; r < (*price)->size(); ++r) {
      EXPECT_GT((*price)->at(r, 0), 0.0);
    }
    // Price coverage starts at the recorded IPO date.
    auto ipo = hg->GetVertexProperty(c, "ipo_date");
    ASSERT_TRUE(ipo.ok());
    EXPECT_EQ((*price)->times().front(), ipo->AsInt());
  }
  EXPECT_GT(with_price, 10u);  // ipo_probability 0.8 over 30 companies
}

TEST(FinancialTest, ListingsRespectLifetimes) {
  auto hg = GenerateFinancialHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok());
  size_t listings = 0;
  for (graph::EdgeId e : hg->PgEdges()) {
    const graph::Edge& edge = **hg->structure().GetEdge(e);
    if (edge.label != "LISTED_ON") continue;
    ++listings;
    const Interval ev = *hg->EdgeValidity(e);
    const Interval cv = *hg->VertexValidity(edge.src);
    EXPECT_TRUE(cv.ContainsInterval(ev));
  }
  EXPECT_GT(listings, 5u);
}

TEST(FinancialTest, AcquisitionsLinkLiveCompanies) {
  auto hg = GenerateFinancialHyGraph(SmallConfig());
  ASSERT_TRUE(hg.ok());
  for (graph::EdgeId e : hg->PgEdges()) {
    const graph::Edge& edge = **hg->structure().GetEdge(e);
    if (edge.label != "ACQUIRED") continue;
    const Interval ev = *hg->EdgeValidity(e);
    EXPECT_TRUE(hg->VertexValidity(edge.src)->ContainsInterval(ev));
    EXPECT_TRUE(hg->VertexValidity(edge.dst)->ContainsInterval(ev));
  }
}

TEST(FinancialTest, TopologyEvolvesOverTime) {
  FinancialConfig config = SmallConfig();
  auto hg = GenerateFinancialHyGraph(config);
  ASSERT_TRUE(hg.ok());
  const Timestamp early = config.start_time + 30 * kDay;
  const Timestamp late =
      config.start_time + static_cast<Duration>(config.years) * 350 * kDay;
  const auto snap_early = temporal::TakeSnapshot(hg->tpg(), early);
  const auto snap_late = temporal::TakeSnapshot(hg->tpg(), late);
  // Companies appear over the first half of the horizon, so the late
  // snapshot must be at least as populated (bankruptcies may trim a bit,
  // but the config keeps them rare).
  EXPECT_GT(snap_late.graph.VertexCount(), snap_early.graph.VertexCount());
}

TEST(FinancialTest, DeterministicForSeed) {
  auto a = GenerateFinancialHyGraph(SmallConfig());
  auto b = GenerateFinancialHyGraph(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->VertexCount(), b->VertexCount());
  EXPECT_EQ(a->EdgeCount(), b->EdgeCount());
  EXPECT_EQ(a->SeriesPoolSize(), b->SeriesPoolSize());
}

TEST(FinancialTest, Validation) {
  FinancialConfig bad = SmallConfig();
  bad.companies = 0;
  EXPECT_FALSE(GenerateFinancialHyGraph(bad).ok());
}

}  // namespace
}  // namespace hygraph::workloads
