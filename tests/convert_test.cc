#include "core/convert.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::core {
namespace {

graph::PropertyGraph SmallLpg() {
  graph::PropertyGraph g;
  const graph::VertexId a =
      g.AddVertex({"User"}, {{"name", Value("a")}, {"age", Value(30)}});
  const graph::VertexId b = g.AddVertex({"Merchant"}, {{"name", Value("b")}});
  EXPECT_TRUE(g.AddEdge(a, b, "BUYS", {{"amount", Value(12.5)}}).ok());
  return g;
}

TEST(ConvertTest, LpgRoundTripIsLossless) {
  graph::PropertyGraph original = SmallLpg();
  auto hg = FromPropertyGraph(original);
  ASSERT_TRUE(hg.ok());
  EXPECT_TRUE(hg->Validate().ok());
  EXPECT_EQ(hg->VertexCount(), 2u);
  auto back = ToPropertyGraph(*hg, 0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->VertexCount(), original.VertexCount());
  EXPECT_EQ(back->EdgeCount(), original.EdgeCount());
  // Labels and properties survive (R1 expressiveness).
  const auto users = back->VerticesWithLabel("User");
  ASSERT_EQ(users.size(), 1u);
  EXPECT_EQ(*back->GetVertexProperty(users[0], "name"), Value("a"));
  EXPECT_EQ(*back->GetVertexProperty(users[0], "age"), Value(30));
  const auto edges = back->EdgeIds();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(*back->GetEdgeProperty(edges[0], "amount"), Value(12.5));
}

TEST(ConvertTest, TpgRoundTripPreservesValidity) {
  temporal::TemporalPropertyGraph tpg;
  const graph::VertexId a = *tpg.AddVertex({"C"}, {}, Interval{10, 100});
  const graph::VertexId b = *tpg.AddVertex({"C"}, {}, Interval{20, 200});
  ASSERT_TRUE(tpg.AddEdge(a, b, "E", {}, Interval{30, 90}).ok());
  auto hg = FromTemporalGraph(tpg);
  ASSERT_TRUE(hg.ok());
  EXPECT_TRUE(hg->Validate().ok());
  auto back = ToTemporalGraph(*hg);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->VertexCount(), 2u);
  const auto ids = back->graph().VertexIds();
  EXPECT_EQ(*back->VertexValidity(ids[0]), (Interval{10, 100}));
  const auto edges = back->graph().EdgeIds();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(*back->EdgeValidity(edges[0]), (Interval{30, 90}));
}

TEST(ConvertTest, SnapshotExtractionFiltersByTime) {
  temporal::TemporalPropertyGraph tpg;
  ASSERT_TRUE(tpg.AddVertex({"X"}, {}, Interval{0, 50}).ok());
  ASSERT_TRUE(tpg.AddVertex({"Y"}, {}, Interval{40, 100}).ok());
  auto hg = FromTemporalGraph(tpg);
  ASSERT_TRUE(hg.ok());
  auto early = ToPropertyGraph(*hg, 10);
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->VertexCount(), 1u);
  auto both = ToPropertyGraph(*hg, 45);
  EXPECT_EQ(both->VertexCount(), 2u);
}

TEST(ConvertTest, SeriesCollectionRoundTrip) {
  std::vector<ts::MultiSeries> collection;
  for (int i = 0; i < 3; ++i) {
    ts::MultiSeries ms("m" + std::to_string(i), {"v"});
    for (int j = 0; j < 5; ++j) {
      ASSERT_TRUE(ms.AppendRow(j * kMinute, {i * 10.0 + j}).ok());
    }
    collection.push_back(std::move(ms));
  }
  auto hg = FromSeriesCollection(collection, "Sensor");
  ASSERT_TRUE(hg.ok());
  EXPECT_EQ(hg->TsVertices().size(), 3u);
  EXPECT_EQ(hg->structure().VerticesWithLabel("Sensor").size(), 3u);
  const auto back = ToSeriesCollection(*hg);
  ASSERT_EQ(back.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back[i], collection[i]);
  }
}

TEST(ConvertTest, IdMapReturned) {
  auto hg = FromPropertyGraph(SmallLpg());
  ASSERT_TRUE(hg.ok());
  std::unordered_map<graph::VertexId, graph::VertexId> id_map;
  auto back = ToPropertyGraph(*hg, 0, &id_map);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(id_map.size(), 2u);
}

std::vector<ts::Series> PhaseFamily() {
  // a and b in phase, c in anti-phase.
  std::vector<ts::Series> out;
  for (int k = 0; k < 3; ++k) {
    ts::Series s("s" + std::to_string(k));
    for (int i = 0; i < 100; ++i) {
      const double phase = (k == 2) ? 3.14159265 : 0.02 * k;
      EXPECT_TRUE(
          s.Append(i * kMinute, std::sin(i * 0.2 + phase)).ok());
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(SimilarityGraphTest, ConnectsSimilarSeries) {
  SimilarityGraphOptions options;
  options.threshold = 0.95;
  auto hg = SeriesSimilarityGraph(PhaseFamily(), options);
  ASSERT_TRUE(hg.ok());
  EXPECT_EQ(hg->TsVertices().size(), 3u);
  // |corr(a,b)| ~ 1, |corr(a,c)| ~ 1 (anti-phase counts via abs),
  // |corr(b,c)| ~ 1 -> complete graph on 3 vertices.
  EXPECT_EQ(hg->EdgeCount(), 3u);
  // Static edges carry a correlation property.
  for (graph::EdgeId e : hg->PgEdges()) {
    auto corr = hg->GetEdgeProperty(e, "correlation");
    ASSERT_TRUE(corr.ok());
    EXPECT_GT(std::abs(corr->AsDouble()), 0.95);
  }
}

TEST(SimilarityGraphTest, SlidingWindowMakesTsEdges) {
  SimilarityGraphOptions options;
  options.threshold = 0.9;
  options.sliding_window = 20 * kMinute;
  auto hg = SeriesSimilarityGraph(PhaseFamily(), options);
  ASSERT_TRUE(hg.ok());
  EXPECT_GE(hg->TsEdges().size(), 1u);
  for (graph::EdgeId e : hg->TsEdges()) {
    auto series = hg->EdgeSeries(e);
    ASSERT_TRUE(series.ok());
    EXPECT_GT((*series)->size(), 0u);
    EXPECT_EQ((*series)->variables(),
              (std::vector<std::string>{"correlation"}));
  }
}

TEST(SimilarityGraphTest, HighThresholdPrunesEdges) {
  // Raise threshold beyond attainable correlation of the noisy pair.
  std::vector<ts::Series> series = PhaseFamily();
  SimilarityGraphOptions options;
  options.threshold = 1.0;  // only perfect correlation qualifies
  auto hg = SeriesSimilarityGraph(series, options);
  ASSERT_TRUE(hg.ok());
  EXPECT_LE(hg->EdgeCount(), 1u);
}

TEST(SimilarityGraphTest, Validation) {
  SimilarityGraphOptions options;
  options.threshold = 2.0;
  EXPECT_FALSE(SeriesSimilarityGraph(PhaseFamily(), options).ok());
}

}  // namespace
}  // namespace hygraph::core
