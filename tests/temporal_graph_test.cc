#include "temporal/temporal_graph.h"

#include <gtest/gtest.h>

namespace hygraph::temporal {
namespace {

TEST(TemporalGraphTest, AddVertexWithValidity) {
  TemporalPropertyGraph tpg;
  auto v = tpg.AddVertex({"Company"}, {}, Interval{100, 200});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*tpg.VertexValidity(*v), (Interval{100, 200}));
  EXPECT_TRUE(tpg.VertexValidAt(*v, 150));
  EXPECT_FALSE(tpg.VertexValidAt(*v, 200));
  EXPECT_FALSE(tpg.VertexValidAt(*v, 99));
}

TEST(TemporalGraphTest, RejectsEmptyValidity) {
  TemporalPropertyGraph tpg;
  EXPECT_FALSE(tpg.AddVertex({}, {}, Interval{5, 5}).ok());
}

TEST(TemporalGraphTest, EdgeValidityMustFitEndpoints) {
  TemporalPropertyGraph tpg;
  const VertexId a = *tpg.AddVertex({}, {}, Interval{0, 100});
  const VertexId b = *tpg.AddVertex({}, {}, Interval{50, 200});
  // Fits the intersection [50, 100).
  EXPECT_TRUE(tpg.AddEdge(a, b, "E", {}, Interval{50, 100}).ok());
  // Sticks out of a's validity.
  EXPECT_FALSE(tpg.AddEdge(a, b, "E", {}, Interval{50, 150}).ok());
  // Sticks out of b's validity.
  EXPECT_FALSE(tpg.AddEdge(a, b, "E", {}, Interval{10, 80}).ok());
  EXPECT_FALSE(tpg.AddEdge(a, 999, "E", {}, Interval{50, 60}).ok());
}

TEST(TemporalGraphTest, ExpireVertexClosesIncidentEdges) {
  TemporalPropertyGraph tpg;
  const VertexId a = *tpg.AddVertex({}, {}, Interval::All());
  const VertexId b = *tpg.AddVertex({}, {}, Interval::All());
  const EdgeId e = *tpg.AddEdge(a, b, "E", {}, Interval{0, kMaxTimestamp});
  ASSERT_TRUE(tpg.ExpireVertex(a, 500).ok());
  EXPECT_EQ(tpg.VertexValidity(a)->end, 500);
  EXPECT_EQ(tpg.EdgeValidity(e)->end, 500);
  EXPECT_TRUE(tpg.ValidateIntegrity().ok());
}

TEST(TemporalGraphTest, ExpireOutsideValidityFails) {
  TemporalPropertyGraph tpg;
  const VertexId a = *tpg.AddVertex({}, {}, Interval{100, 200});
  EXPECT_FALSE(tpg.ExpireVertex(a, 300).ok());
  EXPECT_FALSE(tpg.ExpireVertex(a, 50).ok());
  EXPECT_TRUE(tpg.ExpireVertex(a, 150).ok());
}

TEST(TemporalGraphTest, ExpireEdge) {
  TemporalPropertyGraph tpg;
  const VertexId a = *tpg.AddVertex({}, {}, Interval::All());
  const VertexId b = *tpg.AddVertex({}, {}, Interval::All());
  const EdgeId e = *tpg.AddEdge(a, b, "E", {}, Interval{0, kMaxTimestamp});
  ASSERT_TRUE(tpg.ExpireEdge(e, 42).ok());
  EXPECT_FALSE(tpg.EdgeValidAt(e, 42));
  EXPECT_TRUE(tpg.EdgeValidAt(e, 41));
  EXPECT_FALSE(tpg.ExpireEdge(999, 42).ok());
}

TEST(TemporalGraphTest, VerticesAndEdgesAt) {
  TemporalPropertyGraph tpg;
  const VertexId a = *tpg.AddVertex({}, {}, Interval{0, 100});
  const VertexId b = *tpg.AddVertex({}, {}, Interval{50, 150});
  const EdgeId e = *tpg.AddEdge(a, b, "E", {}, Interval{60, 90});
  EXPECT_EQ(tpg.VerticesAt(10), (std::vector<VertexId>{a}));
  EXPECT_EQ(tpg.VerticesAt(70), (std::vector<VertexId>{a, b}));
  EXPECT_EQ(tpg.VerticesAt(120), (std::vector<VertexId>{b}));
  EXPECT_TRUE(tpg.EdgesAt(50).empty());
  EXPECT_EQ(tpg.EdgesAt(70), (std::vector<EdgeId>{e}));
}

TEST(TemporalGraphTest, DegreeAt) {
  TemporalPropertyGraph tpg;
  const VertexId a = *tpg.AddVertex({}, {}, Interval{0, 1000});
  const VertexId b = *tpg.AddVertex({}, {}, Interval{0, 1000});
  const VertexId c = *tpg.AddVertex({}, {}, Interval{0, 1000});
  ASSERT_TRUE(tpg.AddEdge(a, b, "E", {}, Interval{0, 500}).ok());
  ASSERT_TRUE(tpg.AddEdge(c, a, "E", {}, Interval{250, 750}).ok());
  EXPECT_EQ(tpg.DegreeAt(a, 100), 1u);
  EXPECT_EQ(tpg.DegreeAt(a, 300), 2u);
  EXPECT_EQ(tpg.DegreeAt(a, 600), 1u);
  EXPECT_EQ(tpg.DegreeAt(a, 800), 0u);
  EXPECT_EQ(tpg.DegreeAt(a, 1500), 0u);  // vertex itself expired
}

TEST(TemporalGraphTest, EventTimestamps) {
  TemporalPropertyGraph tpg;
  const VertexId a = *tpg.AddVertex({}, {}, Interval{10, 100});
  const VertexId b = *tpg.AddVertex({}, {}, Interval{20, kMaxTimestamp});
  ASSERT_TRUE(tpg.AddEdge(a, b, "E", {}, Interval{30, 60}).ok());
  const std::vector<Timestamp> events = tpg.EventTimestamps();
  EXPECT_EQ(events, (std::vector<Timestamp>{10, 20, 30, 60, 100}));
}

TEST(TemporalGraphTest, IntegrityDetectsDirectMutation) {
  TemporalPropertyGraph tpg;
  const VertexId a = *tpg.AddVertex({}, {}, Interval{0, 100});
  const VertexId b = *tpg.AddVertex({}, {}, Interval{0, 100});
  ASSERT_TRUE(tpg.AddEdge(a, b, "E", {}, Interval{0, 50}).ok());
  EXPECT_TRUE(tpg.ValidateIntegrity().ok());
  // Bypass the TPG: an edge added directly has no validity record.
  ASSERT_TRUE(tpg.mutable_graph()->AddEdge(a, b, "ROGUE", {}).ok());
  EXPECT_FALSE(tpg.ValidateIntegrity().ok());
}

TEST(TemporalGraphTest, PropertiesFlowThrough) {
  TemporalPropertyGraph tpg;
  const VertexId v = *tpg.AddVertex({"X"}, {{"name", Value("n")}},
                                    Interval::All());
  EXPECT_EQ(*tpg.graph().GetVertexProperty(v, "name"), Value("n"));
}

}  // namespace
}  // namespace hygraph::temporal
