#include "analytics/embedding.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ts/features.h"

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::PropertyGraph;
using graph::VertexId;

// Two cliques joined by one bridge.
PropertyGraph TwoCliques(std::vector<VertexId>* left,
                         std::vector<VertexId>* right) {
  PropertyGraph g;
  for (int i = 0; i < 5; ++i) left->push_back(g.AddVertex({}, {}));
  for (int i = 0; i < 5; ++i) right->push_back(g.AddVertex({}, {}));
  auto clique = [&](const std::vector<VertexId>& vs) {
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        EXPECT_TRUE(g.AddEdge(vs[i], vs[j], "E", {}).ok());
      }
    }
  };
  clique(*left);
  clique(*right);
  EXPECT_TRUE(g.AddEdge((*left)[0], (*right)[0], "B", {}).ok());
  return g;
}

TEST(FastRpTest, DimensionsAndNormalization) {
  std::vector<VertexId> left, right;
  PropertyGraph g = TwoCliques(&left, &right);
  FastRpOptions options;
  options.dimensions = 16;
  auto embeddings = FastRp(g, options);
  ASSERT_TRUE(embeddings.ok());
  EXPECT_EQ(embeddings->size(), 10u);
  for (const auto& [_, e] : *embeddings) {
    ASSERT_EQ(e.size(), 16u);
    double norm = 0.0;
    for (double x : e) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-6);
  }
}

TEST(FastRpTest, CliqueMembersCloserThanCrossClique) {
  std::vector<VertexId> left, right;
  PropertyGraph g = TwoCliques(&left, &right);
  auto embeddings = FastRp(g);
  ASSERT_TRUE(embeddings.ok());
  // Compare non-bridge members to avoid the bridge's mixed neighborhood.
  const double same =
      CosineSimilarity((*embeddings)[left[1]], (*embeddings)[left[2]]);
  const double cross =
      CosineSimilarity((*embeddings)[left[1]], (*embeddings)[right[2]]);
  EXPECT_GT(same, cross);
}

TEST(FastRpTest, DeterministicForSeed) {
  std::vector<VertexId> left, right;
  PropertyGraph g = TwoCliques(&left, &right);
  auto a = FastRp(g);
  auto b = FastRp(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (const auto& [v, e] : *a) {
    EXPECT_EQ(e, (*b)[v]);
  }
  FastRpOptions other_seed;
  other_seed.seed = 99;
  auto c = FastRp(g, other_seed);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (const auto& [v, e] : *a) {
    if (e != (*c)[v]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FastRpTest, Validation) {
  PropertyGraph g;
  g.AddVertex({}, {});
  FastRpOptions zero_dim;
  zero_dim.dimensions = 0;
  EXPECT_FALSE(FastRp(g, zero_dim).ok());
  FastRpOptions bad_weights;
  bad_weights.iterations = 2;
  bad_weights.weights = {1.0};
  EXPECT_FALSE(FastRp(g, bad_weights).ok());
}

ts::MultiSeries Pattern(double base, double amplitude, size_t n = 48) {
  ts::MultiSeries ms("s", {"v"});
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        ms.AppendRow(static_cast<Timestamp>(i) * kHour,
                     {base + amplitude * std::sin(static_cast<double>(i))})
            .ok());
  }
  return ms;
}

TEST(TemporalEmbeddingTest, SeparatesBehaviours) {
  HyGraph hg;
  const VertexId calm1 = *hg.AddTsVertex({"S"}, Pattern(10, 0.1));
  const VertexId calm2 = *hg.AddTsVertex({"S"}, Pattern(10, 0.12));
  const VertexId wild = *hg.AddTsVertex({"S"}, Pattern(10, 25.0));
  auto embeddings = TemporalEmbeddings(hg);
  ASSERT_TRUE(embeddings.ok());
  EXPECT_EQ(embeddings->size(), 3u);
  const double calm_pair =
      EmbeddingDistance((*embeddings)[calm1], (*embeddings)[calm2]);
  const double calm_wild =
      EmbeddingDistance((*embeddings)[calm1], (*embeddings)[wild]);
  EXPECT_LT(calm_pair, calm_wild);
}

TEST(TemporalEmbeddingTest, PgVerticesNeedSeriesProperty) {
  HyGraph hg;
  const VertexId with = *hg.AddPgVertex({"X"}, {});
  ASSERT_TRUE(
      hg.SetVertexSeriesProperty(with, "history", Pattern(5, 1)).ok());
  (void)*hg.AddPgVertex({"X"}, {});  // without series
  auto embeddings = TemporalEmbeddings(hg);
  ASSERT_TRUE(embeddings.ok());
  EXPECT_EQ(embeddings->size(), 1u);
  EXPECT_TRUE(embeddings->count(with));
}

TEST(TemporalEmbeddingTest, FailsWhenNothingUsable) {
  HyGraph hg;
  (void)*hg.AddPgVertex({"X"}, {});
  EXPECT_FALSE(TemporalEmbeddings(hg).ok());
}

TEST(HybridEmbeddingTest, ConcatenatesBothParts) {
  HyGraph hg;
  const VertexId a = *hg.AddTsVertex({"S"}, Pattern(1, 1));
  const VertexId b = *hg.AddTsVertex({"S"}, Pattern(2, 2));
  ASSERT_TRUE(hg.AddPgEdge(a, b, "E", {}).ok());
  FastRpOptions structural;
  structural.dimensions = 8;
  auto embeddings = HybridEmbeddings(hg, structural, {}, 0.5);
  ASSERT_TRUE(embeddings.ok());
  EXPECT_EQ(embeddings->size(), 2u);
  EXPECT_EQ((*embeddings)[a].size(),
            8u + ts::SeriesFeatures::kDimension);
}

TEST(HybridEmbeddingTest, WeightExtremes) {
  HyGraph hg;
  const VertexId a = *hg.AddTsVertex({"S"}, Pattern(1, 1));
  const VertexId b = *hg.AddTsVertex({"S"}, Pattern(9, 4));
  ASSERT_TRUE(hg.AddPgEdge(a, b, "E", {}).ok());
  // weight 1 -> temporal half zeroed.
  auto structural_only = HybridEmbeddings(hg, {}, {}, 1.0);
  ASSERT_TRUE(structural_only.ok());
  const Embedding& e = (*structural_only)[a];
  for (size_t i = e.size() - ts::SeriesFeatures::kDimension; i < e.size();
       ++i) {
    EXPECT_DOUBLE_EQ(e[i], 0.0);
  }
  EXPECT_FALSE(HybridEmbeddings(hg, {}, {}, 1.5).ok());
}

TEST(SimilarityHelpersTest, CosineAndDistance) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {-1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EmbeddingDistance({0, 0}, {3, 4}), 5.0);
}

}  // namespace
}  // namespace hygraph::analytics
