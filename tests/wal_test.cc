#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "storage/env.h"

namespace hygraph::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hygraph_wal_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    env_ = Env::Default();
  }
  void TearDown() override {
    std::system(("rm -rf " + dir_).c_str());
  }
  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
  Env* env_ = nullptr;
};

TEST_F(WalTest, Crc32KnownAnswer) {
  // The IEEE 802.3 check value: CRC-32 of "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST_F(WalTest, Crc32IncrementalMatchesOneShot) {
  const std::string data = "hello, write-ahead world";
  uint32_t state = kCrc32Init;
  state = Crc32Update(state, data.data(), 5);
  state = Crc32Update(state, data.data() + 5, data.size() - 5);
  EXPECT_EQ(Crc32Finalize(state), Crc32(data));
}

TEST_F(WalTest, RoundTripsRecords) {
  const std::vector<std::string> payloads = {
      "1 NV 0 L 0 P 0", "2 AV 0 temp 100 3.5", std::string(10000, 'x'), ""};
  {
    auto writer = WalWriter::Create(env_, Path("wal.log"));
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& p : payloads) {
      ASSERT_TRUE((*writer)->Append(p, /*sync=*/false).ok());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto read = ReadWal(env_, Path("wal.log"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->records, payloads);
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(read->dropped_bytes, 0u);
}

TEST_F(WalTest, MissingFileReadsAsEmptyLog) {
  auto read = ReadWal(env_, Path("absent.log"));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->torn_tail);
}

std::string WriteFrames(const std::vector<std::string>& payloads) {
  std::string out;
  for (const std::string& p : payloads) out += EncodeWalFrame(p);
  return out;
}

void WriteRaw(Env* env, const std::string& path, const std::string& bytes) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append(bytes).ok());
  ASSERT_TRUE(file->Close().ok());
}

TEST_F(WalTest, TornTailIsSalvagedNotFatal) {
  const std::vector<std::string> payloads = {"first", "second", "third"};
  std::string bytes = WriteFrames(payloads);
  const std::string full = bytes;
  // Every truncation point after the intact prefix must salvage exactly the
  // complete records and report the rest as a torn tail.
  const size_t two = WriteFrames({"first", "second"}).size();
  for (size_t cut = two + 1; cut < full.size(); ++cut) {
    WriteRaw(env_, Path("wal.log"), full.substr(0, cut));
    auto read = ReadWal(env_, Path("wal.log"));
    ASSERT_TRUE(read.ok()) << "cut=" << cut << ": " << read.status().ToString();
    EXPECT_EQ(read->records,
              (std::vector<std::string>{"first", "second"}))
        << "cut=" << cut;
    EXPECT_TRUE(read->torn_tail) << "cut=" << cut;
    EXPECT_EQ(read->valid_bytes, two) << "cut=" << cut;
    EXPECT_EQ(read->dropped_bytes, cut - two) << "cut=" << cut;
  }
}

TEST_F(WalTest, CorruptCrcStopsAtLastGoodRecord) {
  std::string bytes = WriteFrames({"first", "second"});
  bytes.back() ^= 0x01;  // flip a bit in the last record's payload
  WriteRaw(env_, Path("wal.log"), bytes);
  auto read = ReadWal(env_, Path("wal.log"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, std::vector<std::string>{"first"});
  EXPECT_TRUE(read->torn_tail);
}

TEST_F(WalTest, OversizedLengthFieldIsTreatedAsCorruption) {
  std::string bytes = WriteFrames({"ok"});
  // Append a frame header claiming a payload far beyond kWalMaxRecordSize.
  bytes += std::string("\xff\xff\xff\xff", 4) + std::string(8, 'z');
  WriteRaw(env_, Path("wal.log"), bytes);
  auto read = ReadWal(env_, Path("wal.log"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, std::vector<std::string>{"ok"});
  EXPECT_TRUE(read->torn_tail);
}

TEST_F(WalTest, AppendRejectsOversizedPayload) {
  auto writer = WalWriter::Create(env_, Path("wal.log"));
  ASSERT_TRUE(writer.ok());
  std::string huge(kWalMaxRecordSize + 1, 'x');
  EXPECT_EQ((*writer)->Append(huge, false).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WalTest, TruncateWalToValidPrefixDropsTornTail) {
  std::string bytes = WriteFrames({"first", "second"}) + "torn-garbage";
  WriteRaw(env_, Path("wal.log"), bytes);
  auto read = ReadWal(env_, Path("wal.log"));
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read->torn_tail);
  ASSERT_TRUE(TruncateWalToValidPrefix(env_, Path("wal.log"), *read).ok());
  auto size = env_->GetFileSize(Path("wal.log"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, read->valid_bytes);
  auto reread = ReadWal(env_, Path("wal.log"));
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->records, read->records);
  EXPECT_FALSE(reread->torn_tail);
}

}  // namespace
}  // namespace hygraph::storage
