#include "ts/hypertable.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

HypertableStore MakeStoreWithSeries(SeriesId* id, size_t samples,
                                    Duration step = kMinute,
                                    Duration chunk = kHour) {
  HypertableOptions options;
  options.chunk_duration = chunk;
  HypertableStore store(options);
  *id = store.Create("s");
  for (size_t i = 0; i < samples; ++i) {
    EXPECT_TRUE(store
                    .Insert(*id, static_cast<Timestamp>(i) * step,
                            static_cast<double>(i))
                    .ok());
  }
  return store;
}

TEST(HypertableTest, CreateAndCount) {
  HypertableStore store;
  const SeriesId a = store.Create("a");
  const SeriesId b = store.Create("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(store.Exists(a));
  EXPECT_FALSE(store.Exists(999));
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(*store.Name(a), "a");
  EXPECT_EQ(store.Ids(), (std::vector<SeriesId>{a, b}));
}

TEST(HypertableTest, InsertUnknownSeriesFails) {
  HypertableStore store;
  EXPECT_FALSE(store.Insert(123, 0, 1.0).ok());
  EXPECT_FALSE(store.Scan(123, Interval::All()).ok());
  EXPECT_FALSE(store.Aggregate(123, Interval::All(), AggKind::kSum).ok());
}

TEST(HypertableTest, ScanReturnsOrderedRange) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 300);
  auto samples = store.Scan(id, Interval{30 * kMinute, 90 * kMinute});
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 60u);
  EXPECT_EQ(samples->front().t, 30 * kMinute);
  EXPECT_EQ(samples->back().t, 89 * kMinute);
  for (size_t i = 1; i < samples->size(); ++i) {
    EXPECT_LT((*samples)[i - 1].t, (*samples)[i].t);
  }
}

TEST(HypertableTest, OutOfOrderInsertIsSorted) {
  HypertableStore store;
  const SeriesId id = store.Create("s");
  EXPECT_TRUE(store.Insert(id, 500, 5.0).ok());
  EXPECT_TRUE(store.Insert(id, 100, 1.0).ok());
  EXPECT_TRUE(store.Insert(id, 300, 3.0).ok());
  auto samples = store.Scan(id, Interval::All());
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 3u);
  EXPECT_EQ((*samples)[0].t, 100);
  EXPECT_EQ((*samples)[2].t, 500);
}

TEST(HypertableTest, DuplicateTimestampReplaces) {
  HypertableStore store;
  const SeriesId id = store.Create("s");
  EXPECT_TRUE(store.Insert(id, 100, 1.0).ok());
  EXPECT_TRUE(store.Insert(id, 100, 9.0).ok());
  EXPECT_EQ(*store.SampleCount(id), 1u);
  auto samples = store.Scan(id, Interval::All());
  EXPECT_DOUBLE_EQ((*samples)[0].value, 9.0);
}

TEST(HypertableTest, AggregateMatchesScan) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 500);
  const Interval range{100 * kMinute, 400 * kMinute};
  // sum of i for i in [100, 400) = (100 + 399) * 300 / 2.
  auto sum = store.Aggregate(id, range, AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, (100.0 + 399.0) * 300.0 / 2.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kCount), 300.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kMin), 100.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kMax), 399.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kAvg), 249.5);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kFirst), 100.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kLast), 399.0);
}

TEST(HypertableTest, ChunkCacheAnswersFullyCoveredChunks) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);  // 10 chunks of 60
  store.ResetStats();
  auto sum = store.Aggregate(id, Interval{0, 600 * kMinute}, AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  const HypertableStats& stats = store.stats();
  EXPECT_EQ(stats.chunks_from_cache, 10u);
  EXPECT_EQ(stats.samples_scanned, 0u);
}

TEST(HypertableTest, PartialChunksAreScanned) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);
  store.ResetStats();
  // Misaligned range: 30 min into chunk 0 through 30 min into chunk 2.
  auto sum = store.Aggregate(id, Interval{30 * kMinute, 150 * kMinute},
                             AggKind::kCount);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 120.0);
  const HypertableStats& stats = store.stats();
  EXPECT_EQ(stats.chunks_from_cache, 1u);  // chunk 1 fully covered
  EXPECT_EQ(stats.chunks_scanned, 2u);     // boundary chunks
}

TEST(HypertableTest, CacheDisabledScansEverything) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  options.enable_chunk_cache = false;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(
        store.Insert(id, static_cast<Timestamp>(i) * kMinute, 1.0).ok());
  }
  store.ResetStats();
  ASSERT_TRUE(store.Aggregate(id, Interval::All(), AggKind::kSum).ok());
  EXPECT_EQ(store.stats().chunks_from_cache, 0u);
  EXPECT_EQ(store.stats().samples_scanned, 120u);
}

TEST(HypertableTest, ScanPrunesChunks) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);  // 10 chunks
  store.ResetStats();
  ASSERT_TRUE(store.Scan(id, Interval{5 * kHour, 6 * kHour}).ok());
  EXPECT_EQ(store.stats().chunks_scanned, 1u);
}

TEST(HypertableTest, AggregateOverEmptyRange) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 10);
  auto count =
      store.Aggregate(id, Interval{kDay, 2 * kDay}, AggKind::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 0.0);
  EXPECT_FALSE(store.Aggregate(id, Interval{kDay, 2 * kDay}, AggKind::kAvg)
                   .ok());
}

TEST(HypertableTest, RetainDropsWholeChunksAndTrimsBoundaries) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);
  auto removed = store.Retain(id, Interval{90 * kMinute, 400 * kMinute});
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 600u - 310u);
  EXPECT_EQ(*store.SampleCount(id), 310u);
  auto samples = store.Scan(id, Interval::All());
  EXPECT_EQ(samples->front().t, 90 * kMinute);
  EXPECT_EQ(samples->back().t, 399 * kMinute);
}

TEST(HypertableTest, MaterializeBuildsSeries) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 100);
  auto series = store.Materialize(id, Interval{0, 10 * kMinute});
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 10u);
  EXPECT_EQ(series->name(), "s");
}

TEST(HypertableTest, InsertAfterAggregateInvalidatesCache) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  ASSERT_TRUE(store.Insert(id, 0, 1.0).ok());
  ASSERT_TRUE(store.Insert(id, kMinute, 2.0).ok());
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, Interval::All(), AggKind::kSum), 3.0);
  ASSERT_TRUE(store.Insert(id, 2 * kMinute, 4.0).ok());
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, Interval::All(), AggKind::kSum), 7.0);
}

TEST(HypertableTest, StdDevAggregate) {
  HypertableStore store;
  const SeriesId id = store.Create("s");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Insert(id, i * kMinute, static_cast<double>(i)).ok());
  }
  // Sample stddev of {0,1,2,3} = sqrt(5/3).
  EXPECT_NEAR(*store.Aggregate(id, Interval::All(), AggKind::kStdDev),
              std::sqrt(5.0 / 3.0), 1e-9);
}

TEST(HypertableWindowTest, MatchesInMemoryWindowAggregate) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  Series reference("ref");
  for (int i = 0; i < 700; ++i) {
    const Timestamp t = 3 * kMinute + i * 7 * kMinute;  // misaligned grid
    const double v = std::sin(i * 0.11) * 5.0;
    ASSERT_TRUE(store.Insert(id, t, v).ok());
    ASSERT_TRUE(reference.Append(t, v).ok());
  }
  const Interval range{50 * kMinute, 4000 * kMinute};
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                       AggKind::kMin, AggKind::kMax}) {
    auto native = store.WindowAggregate(id, range, 45 * kMinute, kind);
    auto in_memory = WindowAggregate(reference, range, 45 * kMinute, kind);
    ASSERT_TRUE(native.ok());
    ASSERT_TRUE(in_memory.ok());
    ASSERT_EQ(native->size(), in_memory->size()) << AggKindName(kind);
    for (size_t i = 0; i < native->size(); ++i) {
      EXPECT_EQ(native->at(i).t, in_memory->at(i).t);
      EXPECT_NEAR(native->at(i).value, in_memory->at(i).value, 1e-9);
    }
  }
}

TEST(HypertableWindowTest, AlignedWindowsAnswerFromChunkCache) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(store.Insert(id, i * kMinute, 1.0).ok());  // 10 full chunks
  }
  store.ResetStats();
  // Hour-wide windows anchored at 0 coincide with the chunk grid: every
  // chunk is answered from its cached partial.
  auto windowed =
      store.WindowAggregate(id, Interval{0, 600 * kMinute}, kHour,
                            AggKind::kSum);
  ASSERT_TRUE(windowed.ok());
  ASSERT_EQ(windowed->size(), 10u);
  for (const Sample& w : windowed->samples()) {
    EXPECT_DOUBLE_EQ(w.value, 60.0);
  }
  EXPECT_EQ(store.stats().chunks_from_cache, 10u);
  EXPECT_EQ(store.stats().samples_scanned, 0u);
}

TEST(HypertableWindowTest, Validation) {
  HypertableStore store;
  const SeriesId id = store.Create("s");
  EXPECT_FALSE(store.WindowAggregate(id, Interval::All(), 0,
                                     AggKind::kSum)
                   .ok());
  EXPECT_FALSE(store.WindowAggregate(99, Interval::All(), kHour,
                                     AggKind::kSum)
                   .ok());
  auto empty = store.WindowAggregate(id, Interval::All(), kHour,
                                     AggKind::kSum);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// Property sweep: chunk size must never change query answers.
class ChunkSizeSweep : public ::testing::TestWithParam<Duration> {};

TEST_P(ChunkSizeSweep, AnswersIndependentOfChunking) {
  HypertableOptions options;
  options.chunk_duration = GetParam();
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (size_t i = 0; i < 777; ++i) {
    ASSERT_TRUE(store
                    .Insert(id, static_cast<Timestamp>(i) * 13 * kSecond,
                            std::sin(static_cast<double>(i)))
                    .ok());
  }
  const Interval range{100 * kSecond, 5000 * kSecond};
  auto scan = store.Scan(id, range);
  ASSERT_TRUE(scan.ok());
  double expected_sum = 0.0;
  for (const Sample& s : *scan) expected_sum += s.value;
  auto sum = store.Aggregate(id, range, AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, expected_sum, 1e-9);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kCount),
                   static_cast<double>(scan->size()));
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSizeSweep,
                         ::testing::Values(kMinute, kHour, 6 * kHour, kDay,
                                           30 * kDay));

}  // namespace
}  // namespace hygraph::ts
