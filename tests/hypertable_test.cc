#include "ts/hypertable.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hygraph::ts {
namespace {

HypertableStore MakeStoreWithSeries(SeriesId* id, size_t samples,
                                    Duration step = kMinute,
                                    Duration chunk = kHour) {
  HypertableOptions options;
  options.chunk_duration = chunk;
  HypertableStore store(options);
  *id = store.Create("s");
  for (size_t i = 0; i < samples; ++i) {
    EXPECT_TRUE(store
                    .Insert(*id, static_cast<Timestamp>(i) * step,
                            static_cast<double>(i))
                    .ok());
  }
  return store;
}

TEST(HypertableTest, CreateAndCount) {
  HypertableStore store;
  const SeriesId a = store.Create("a");
  const SeriesId b = store.Create("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(store.Exists(a));
  EXPECT_FALSE(store.Exists(999));
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(*store.Name(a), "a");
  EXPECT_EQ(store.Ids(), (std::vector<SeriesId>{a, b}));
}

TEST(HypertableTest, InsertUnknownSeriesFails) {
  HypertableStore store;
  EXPECT_FALSE(store.Insert(123, 0, 1.0).ok());
  EXPECT_FALSE(store.Scan(123, Interval::All()).ok());
  EXPECT_FALSE(store.Aggregate(123, Interval::All(), AggKind::kSum).ok());
}

TEST(HypertableTest, ScanReturnsOrderedRange) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 300);
  auto samples = store.Scan(id, Interval{30 * kMinute, 90 * kMinute});
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 60u);
  EXPECT_EQ(samples->front().t, 30 * kMinute);
  EXPECT_EQ(samples->back().t, 89 * kMinute);
  for (size_t i = 1; i < samples->size(); ++i) {
    EXPECT_LT((*samples)[i - 1].t, (*samples)[i].t);
  }
}

TEST(HypertableTest, OutOfOrderInsertIsSorted) {
  HypertableStore store;
  const SeriesId id = store.Create("s");
  EXPECT_TRUE(store.Insert(id, 500, 5.0).ok());
  EXPECT_TRUE(store.Insert(id, 100, 1.0).ok());
  EXPECT_TRUE(store.Insert(id, 300, 3.0).ok());
  auto samples = store.Scan(id, Interval::All());
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 3u);
  EXPECT_EQ((*samples)[0].t, 100);
  EXPECT_EQ((*samples)[2].t, 500);
}

TEST(HypertableTest, DuplicateTimestampReplaces) {
  HypertableStore store;
  const SeriesId id = store.Create("s");
  EXPECT_TRUE(store.Insert(id, 100, 1.0).ok());
  EXPECT_TRUE(store.Insert(id, 100, 9.0).ok());
  EXPECT_EQ(*store.SampleCount(id), 1u);
  auto samples = store.Scan(id, Interval::All());
  EXPECT_DOUBLE_EQ((*samples)[0].value, 9.0);
}

TEST(HypertableTest, AggregateMatchesScan) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 500);
  const Interval range{100 * kMinute, 400 * kMinute};
  // sum of i for i in [100, 400) = (100 + 399) * 300 / 2.
  auto sum = store.Aggregate(id, range, AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, (100.0 + 399.0) * 300.0 / 2.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kCount), 300.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kMin), 100.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kMax), 399.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kAvg), 249.5);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kFirst), 100.0);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kLast), 399.0);
}

TEST(HypertableTest, ChunkCacheAnswersFullyCoveredChunks) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);  // 10 chunks of 60
  store.ResetStats();
  auto sum = store.Aggregate(id, Interval{0, 600 * kMinute}, AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  const HypertableStats& stats = store.stats();
  EXPECT_EQ(stats.chunks_from_cache, 10u);
  EXPECT_EQ(stats.samples_scanned, 0u);
}

TEST(HypertableTest, PartialChunksAreScanned) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);
  store.ResetStats();
  // Misaligned range: 30 min into chunk 0 through 30 min into chunk 2.
  auto sum = store.Aggregate(id, Interval{30 * kMinute, 150 * kMinute},
                             AggKind::kCount);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 120.0);
  const HypertableStats& stats = store.stats();
  EXPECT_EQ(stats.chunks_from_cache, 1u);  // chunk 1 fully covered
  EXPECT_EQ(stats.chunks_scanned, 2u);     // boundary chunks
}

TEST(HypertableTest, CacheDisabledScansEverything) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  options.enable_chunk_cache = false;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(
        store.Insert(id, static_cast<Timestamp>(i) * kMinute, 1.0).ok());
  }
  store.ResetStats();
  ASSERT_TRUE(store.Aggregate(id, Interval::All(), AggKind::kSum).ok());
  EXPECT_EQ(store.stats().chunks_from_cache, 0u);
  EXPECT_EQ(store.stats().samples_scanned, 120u);
}

TEST(HypertableTest, ScanPrunesChunks) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);  // 10 chunks
  store.ResetStats();
  ASSERT_TRUE(store.Scan(id, Interval{5 * kHour, 6 * kHour}).ok());
  EXPECT_EQ(store.stats().chunks_scanned, 1u);
}

TEST(HypertableTest, AggregateOverEmptyRange) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 10);
  auto count =
      store.Aggregate(id, Interval{kDay, 2 * kDay}, AggKind::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 0.0);
  EXPECT_FALSE(store.Aggregate(id, Interval{kDay, 2 * kDay}, AggKind::kAvg)
                   .ok());
}

TEST(HypertableTest, RetainDropsWholeChunksAndTrimsBoundaries) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);
  auto removed = store.Retain(id, Interval{90 * kMinute, 400 * kMinute});
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 600u - 310u);
  EXPECT_EQ(*store.SampleCount(id), 310u);
  auto samples = store.Scan(id, Interval::All());
  EXPECT_EQ(samples->front().t, 90 * kMinute);
  EXPECT_EQ(samples->back().t, 399 * kMinute);
}

TEST(HypertableTest, MaterializeBuildsSeries) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 100);
  auto series = store.Materialize(id, Interval{0, 10 * kMinute});
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 10u);
  EXPECT_EQ(series->name(), "s");
}

TEST(HypertableTest, InsertAfterAggregateInvalidatesCache) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  ASSERT_TRUE(store.Insert(id, 0, 1.0).ok());
  ASSERT_TRUE(store.Insert(id, kMinute, 2.0).ok());
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, Interval::All(), AggKind::kSum), 3.0);
  ASSERT_TRUE(store.Insert(id, 2 * kMinute, 4.0).ok());
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, Interval::All(), AggKind::kSum), 7.0);
}

TEST(HypertableTest, StdDevAggregate) {
  HypertableStore store;
  const SeriesId id = store.Create("s");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Insert(id, i * kMinute, static_cast<double>(i)).ok());
  }
  // Sample stddev of {0,1,2,3} = sqrt(5/3).
  EXPECT_NEAR(*store.Aggregate(id, Interval::All(), AggKind::kStdDev),
              std::sqrt(5.0 / 3.0), 1e-9);
}

TEST(HypertableWindowTest, MatchesInMemoryWindowAggregate) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  Series reference("ref");
  for (int i = 0; i < 700; ++i) {
    const Timestamp t = 3 * kMinute + i * 7 * kMinute;  // misaligned grid
    const double v = std::sin(i * 0.11) * 5.0;
    ASSERT_TRUE(store.Insert(id, t, v).ok());
    ASSERT_TRUE(reference.Append(t, v).ok());
  }
  const Interval range{50 * kMinute, 4000 * kMinute};
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kAvg,
                       AggKind::kMin, AggKind::kMax}) {
    auto native = store.WindowAggregate(id, range, 45 * kMinute, kind);
    auto in_memory = WindowAggregate(reference, range, 45 * kMinute, kind);
    ASSERT_TRUE(native.ok());
    ASSERT_TRUE(in_memory.ok());
    ASSERT_EQ(native->size(), in_memory->size()) << AggKindName(kind);
    for (size_t i = 0; i < native->size(); ++i) {
      EXPECT_EQ(native->at(i).t, in_memory->at(i).t);
      EXPECT_NEAR(native->at(i).value, in_memory->at(i).value, 1e-9);
    }
  }
}

TEST(HypertableWindowTest, AlignedWindowsAnswerFromChunkCache) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(store.Insert(id, i * kMinute, 1.0).ok());  // 10 full chunks
  }
  store.ResetStats();
  // Hour-wide windows anchored at 0 coincide with the chunk grid: every
  // chunk is answered from its cached partial.
  auto windowed =
      store.WindowAggregate(id, Interval{0, 600 * kMinute}, kHour,
                            AggKind::kSum);
  ASSERT_TRUE(windowed.ok());
  ASSERT_EQ(windowed->size(), 10u);
  for (const Sample& w : windowed->samples()) {
    EXPECT_DOUBLE_EQ(w.value, 60.0);
  }
  EXPECT_EQ(store.stats().chunks_from_cache, 10u);
  EXPECT_EQ(store.stats().samples_scanned, 0u);
}

TEST(HypertableWindowTest, Validation) {
  HypertableStore store;
  const SeriesId id = store.Create("s");
  EXPECT_FALSE(store.WindowAggregate(id, Interval::All(), 0,
                                     AggKind::kSum)
                   .ok());
  EXPECT_FALSE(store.WindowAggregate(99, Interval::All(), kHour,
                                     AggKind::kSum)
                   .ok());
  auto empty = store.WindowAggregate(id, Interval::All(), kHour,
                                     AggKind::kSum);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// Property sweep: chunk size must never change query answers.
class ChunkSizeSweep : public ::testing::TestWithParam<Duration> {};

TEST_P(ChunkSizeSweep, AnswersIndependentOfChunking) {
  HypertableOptions options;
  options.chunk_duration = GetParam();
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (size_t i = 0; i < 777; ++i) {
    ASSERT_TRUE(store
                    .Insert(id, static_cast<Timestamp>(i) * 13 * kSecond,
                            std::sin(static_cast<double>(i)))
                    .ok());
  }
  const Interval range{100 * kSecond, 5000 * kSecond};
  auto scan = store.Scan(id, range);
  ASSERT_TRUE(scan.ok());
  double expected_sum = 0.0;
  for (const Sample& s : *scan) expected_sum += s.value;
  auto sum = store.Aggregate(id, range, AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, expected_sum, 1e-9);
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, range, AggKind::kCount),
                   static_cast<double>(scan->size()));
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSizeSweep,
                         ::testing::Values(kMinute, kHour, 6 * kHour, kDay,
                                           30 * kDay));

TEST(HypertableCompressionTest, ColdChunksAreSealed) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);  // 10 chunks
  EXPECT_GE(store.stats().chunks_sealed, 9u);
  const HypertableMemory mem = store.MemoryUsage();
  // Only the newest chunk stays hot.
  EXPECT_EQ(mem.hot_samples, 60u);
  EXPECT_EQ(mem.sealed_samples, 540u);
  EXPECT_GT(mem.sealed_bytes, 0u);
  // Regular grid + small integral values compress far below raw layout.
  EXPECT_LE(mem.sealed_bytes_per_sample(), 4.0);
  EXPECT_GT(store.stats().bytes_raw, store.stats().bytes_compressed);
}

TEST(HypertableCompressionTest, CompressionOffKeepsEverythingHot) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  options.compress_sealed_chunks = false;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (size_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(
        store.Insert(id, static_cast<Timestamp>(i) * kMinute, 1.0).ok());
  }
  EXPECT_EQ(store.stats().chunks_sealed, 0u);
  const HypertableMemory mem = store.MemoryUsage();
  EXPECT_EQ(mem.hot_samples, 600u);
  EXPECT_EQ(mem.sealed_samples, 0u);
}

TEST(HypertableCompressionTest, OnOffAnswerIdentically) {
  HypertableOptions on;
  on.chunk_duration = kHour;
  HypertableOptions off = on;
  off.compress_sealed_chunks = false;
  HypertableStore a(on);
  HypertableStore b(off);
  const SeriesId ida = a.Create("s");
  const SeriesId idb = b.Create("s");
  Rng rng(42);
  for (int i = 0; i < 777; ++i) {
    // Mostly in-order with occasional backfill into older chunks.
    Timestamp t = static_cast<Timestamp>(i) * 13 * kMinute;
    if (rng.NextBernoulli(0.1)) t -= 3 * kHour;
    const double v = rng.NextGaussian() * 10.0;
    ASSERT_TRUE(a.Insert(ida, t, v).ok());
    ASSERT_TRUE(b.Insert(idb, t, v).ok());
  }
  const Interval range{2 * kHour, 140 * kHour};
  auto scan_a = a.Scan(ida, range);
  auto scan_b = b.Scan(idb, range);
  ASSERT_TRUE(scan_a.ok());
  ASSERT_TRUE(scan_b.ok());
  EXPECT_EQ(*scan_a, *scan_b);
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                       AggKind::kMax, AggKind::kAvg}) {
    EXPECT_DOUBLE_EQ(*a.Aggregate(ida, range, kind),
                     *b.Aggregate(idb, range, kind))
        << AggKindName(kind);
  }
  auto win_a = a.WindowAggregate(ida, range, 45 * kMinute, AggKind::kAvg);
  auto win_b = b.WindowAggregate(idb, range, 45 * kMinute, AggKind::kAvg);
  ASSERT_TRUE(win_a.ok());
  ASSERT_TRUE(win_b.ok());
  EXPECT_EQ(*win_a, *win_b);
}

TEST(HypertableCompressionTest, OutOfOrderInsertUnsealsAndReseals) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 300);  // 5 chunks
  ASSERT_GE(store.stats().chunks_sealed, 4u);
  // Backfill into the (sealed) first chunk.
  ASSERT_TRUE(store.Insert(id, 30 * kMinute + 1, 999.0).ok());
  EXPECT_EQ(store.stats().chunks_unsealed, 1u);
  // The touched chunk was resealed immediately: still only one hot chunk.
  const HypertableMemory mem = store.MemoryUsage();
  EXPECT_EQ(mem.hot_samples, 60u);
  EXPECT_EQ(mem.sealed_samples, 241u);
  auto samples = store.Scan(id, Interval{30 * kMinute, 31 * kMinute});
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 2u);
  EXPECT_DOUBLE_EQ((*samples)[1].value, 999.0);
}

TEST(HypertableCompressionTest, DuplicateTimestampReplacesInSealedChunk) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 300);
  ASSERT_TRUE(store.Insert(id, 10 * kMinute, -5.0).ok());  // chunk 0, sealed
  EXPECT_EQ(*store.SampleCount(id), 300u);  // replaced, not added
  auto samples = store.Scan(id, Interval::At(10 * kMinute));
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 1u);
  EXPECT_DOUBLE_EQ((*samples)[0].value, -5.0);
  // The aggregate cache of the resealed chunk reflects the new value.
  EXPECT_DOUBLE_EQ(*store.Aggregate(id, Interval{0, kHour}, AggKind::kMin),
                   -5.0);
}

TEST(HypertableCompressionTest, RetainDropsSealedChunksWithoutDecoding) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 600);
  store.ResetStats();
  // Chunk-aligned retain: whole sealed chunks drop with no unseal.
  auto removed = store.Retain(id, Interval{2 * kHour, 8 * kHour});
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 240u);
  EXPECT_EQ(store.stats().chunks_unsealed, 0u);
  EXPECT_EQ(*store.SampleCount(id), 360u);
  // Misaligned retain: the boundary chunk must unseal, trim, reseal.
  auto trimmed = store.Retain(id, Interval{150 * kMinute, 8 * kHour});
  ASSERT_TRUE(trimmed.ok());
  EXPECT_EQ(*trimmed, 30u);
  EXPECT_GE(store.stats().chunks_unsealed, 1u);
  auto samples = store.Scan(id, Interval::All());
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->front().t, 150 * kMinute);
  EXPECT_EQ(samples->back().t, 479 * kMinute);
}

TEST(HypertableCompressionTest, ZoneMapSkipsChunksUnderValuePredicate) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  // Chunk k holds values in [100k, 100k + 59].
  for (int i = 0; i < 600; ++i) {
    const double v = (i / 60) * 100.0 + (i % 60);
    ASSERT_TRUE(
        store.Insert(id, static_cast<Timestamp>(i) * kMinute, v).ok());
  }
  store.ResetStats();
  // Values [320, 340] live only in chunk 3: the other eight sealed chunks
  // are skipped from their zone maps alone; only hot chunk 9 also scans.
  auto n = store.CountMatching(id, Interval::All(),
                               ScanPredicate{320.0, 340.0});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 21u);
  EXPECT_EQ(store.stats().chunks_zonemap_skipped, 8u);
  store.ResetStats();
  // A whole sealed chunk inside the bounds is counted without decoding
  // (interval excludes the hot newest chunk, which would always scan).
  auto whole = store.CountMatching(id, Interval{0, 9 * kHour},
                                   ScanPredicate{300.0, 359.0});
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(*whole, 60u);
  EXPECT_EQ(store.stats().chunks_from_cache, 1u);
  EXPECT_EQ(store.stats().samples_scanned, 0u);
}

TEST(HypertableCompressionTest, BoundedPredicateIgnoresNonFiniteValues) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 120; ++i) {
    const double v = (i % 10 == 0) ? nan : 5.0;
    ASSERT_TRUE(
        store.Insert(id, static_cast<Timestamp>(i) * kMinute, v).ok());
  }
  // Bounded predicate never selects NaN (SQL comparison semantics)...
  auto bounded =
      store.CountMatching(id, Interval::All(), ScanPredicate{0.0, 10.0});
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(*bounded, 108u);
  // ...while the unbounded scan still streams every sample, NaN included.
  size_t total = 0;
  ASSERT_TRUE(
      store.ScanVisit(id, Interval::All(), [&](const Sample&) { ++total; })
          .ok());
  EXPECT_EQ(total, 120u);
}

TEST(HypertableCompressionTest, ScanVisitStreamsSealedChunksInOrder) {
  SeriesId id;
  HypertableStore store = MakeStoreWithSeries(&id, 300);
  std::vector<Sample> streamed;
  ASSERT_TRUE(store
                  .ScanVisit(id, Interval{30 * kMinute, 250 * kMinute},
                             [&](const Sample& s) { streamed.push_back(s); })
                  .ok());
  auto scanned = store.Scan(id, Interval{30 * kMinute, 250 * kMinute});
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(streamed, *scanned);
  ASSERT_EQ(streamed.size(), 220u);
  EXPECT_EQ(streamed.front().t, 30 * kMinute);
}

TEST(HypertableCompressionTest, BulkLoadSealsOncePerChunk) {
  HypertableOptions options;
  options.chunk_duration = kHour;
  HypertableStore store(options);
  const SeriesId id = store.Create("s");
  Series bulk("bulk");
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(bulk.Append(static_cast<Timestamp>(i) * kMinute,
                            static_cast<double>(i % 40))
                    .ok());
  }
  ASSERT_TRUE(store.InsertSeries(id, bulk).ok());
  // Deferred sealing: exactly one seal per cold chunk, zero unseals.
  EXPECT_EQ(store.stats().chunks_sealed, 9u);
  EXPECT_EQ(store.stats().chunks_unsealed, 0u);
  EXPECT_EQ(*store.SampleCount(id), 600u);
}

}  // namespace
}  // namespace hygraph::ts
