#include "ts/distance.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

TEST(EuclideanTest, KnownDistance) {
  auto d = EuclideanDistance({0, 0, 0}, {1, 2, 2});
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 3.0);
}

TEST(EuclideanTest, LengthMismatchFails) {
  EXPECT_FALSE(EuclideanDistance({1, 2}, {1}).ok());
}

TEST(EuclideanTest, ZeroForIdentical) {
  EXPECT_DOUBLE_EQ(*EuclideanDistance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(ZNormalizeTest, MeanZeroUnitVariance) {
  std::vector<double> xs = {2.0, 4.0, 6.0, 8.0};
  ZNormalize(&xs);
  double mean = 0.0;
  double var = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(ZNormalizeTest, ConstantBecomesZeros) {
  std::vector<double> xs = {5.0, 5.0, 5.0};
  ZNormalize(&xs);
  for (double x : xs) EXPECT_DOUBLE_EQ(x, 0.0);
  std::vector<double> single = {9.0};
  ZNormalize(&single);
  EXPECT_DOUBLE_EQ(single[0], 0.0);
}

TEST(ZNormalizedDistanceTest, ScaleAndOffsetInvariant) {
  const std::vector<double> a = {1, 3, 2, 5, 4};
  std::vector<double> b;
  for (double x : a) b.push_back(100.0 + 7.0 * x);  // affine copy
  auto d = ZNormalizedDistance(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-12);
}

TEST(DtwTest, IdenticalSequencesZero) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  auto d = DtwDistance(a, a, 5);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.0);
}

TEST(DtwTest, AbsorbsTimeShift) {
  // A shifted copy has large Euclidean but small DTW distance.
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(std::sin(i * 0.3));
    b.push_back(std::sin((i - 3) * 0.3));  // shifted by 3 steps
  }
  auto euclid = EuclideanDistance(a, b);
  auto dtw = DtwDistance(a, b, 10);
  ASSERT_TRUE(euclid.ok());
  ASSERT_TRUE(dtw.ok());
  EXPECT_LT(*dtw, *euclid * 0.5);
}

TEST(DtwTest, BandZeroIsLockstep) {
  const std::vector<double> a = {0, 1, 2, 3};
  const std::vector<double> b = {1, 2, 3, 4};
  auto dtw = DtwDistance(a, b, 0);
  ASSERT_TRUE(dtw.ok());
  EXPECT_DOUBLE_EQ(*dtw, 2.0);  // sqrt(4 * 1^2)
}

TEST(DtwTest, DifferentLengths) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 1, 2, 2, 3, 3};
  auto dtw = DtwDistance(a, b, 1);  // band expands to cover length gap
  ASSERT_TRUE(dtw.ok());
  EXPECT_NEAR(*dtw, 0.0, 1e-12);
}

TEST(DtwTest, EmptyInputFails) {
  EXPECT_FALSE(DtwDistance(std::vector<double>{}, {1.0}, 1).ok());
  EXPECT_FALSE(DtwDistance({1.0}, std::vector<double>{}, 1).ok());
}

TEST(DtwTest, SeriesOverloadMatchesVector) {
  Series a("a");
  Series b("b");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.Append(i, std::sin(i * 0.5)).ok());
    ASSERT_TRUE(b.Append(i * 7, std::cos(i * 0.5)).ok());  // different axis
  }
  auto from_series = DtwDistance(a, b, 5);
  auto from_vectors = DtwDistance(a.Values(), b.Values(), 5);
  ASSERT_TRUE(from_series.ok());
  EXPECT_DOUBLE_EQ(*from_series, *from_vectors);
}

TEST(DtwTest, SymmetricForEqualLengths) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(std::sin(i * 0.4));
    b.push_back(std::cos(i * 0.25));
  }
  EXPECT_NEAR(*DtwDistance(a, b, 8), *DtwDistance(b, a, 8), 1e-12);
}

// Band sweep: widening the band can only lower (or keep) the distance.
class DtwBandSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(DtwBandSweep, MonotoneInBand) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(std::sin(i * 0.2));
    b.push_back(std::sin((i - 4) * 0.2) + 0.05);
  }
  const size_t band = GetParam();
  auto narrow = DtwDistance(a, b, band);
  auto wide = DtwDistance(a, b, band + 5);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_LE(*wide, *narrow + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Bands, DtwBandSweep, ::testing::Values(0, 1, 3, 10));

}  // namespace
}  // namespace hygraph::ts
