#include "query/profile.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/slow_query.h"
#include "query/executor.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"

namespace hygraph::query {
namespace {

// Same small bike-sharing world as executor_test, loaded into either
// backend through the shared QueryBackend mutation surface.
void Populate(QueryBackend* store) {
  graph::PropertyGraph* g = store->mutable_topology();
  const auto s1 = g->AddVertex(
      {"Station"}, {{"name", Value("S1")}, {"capacity", Value(10)}});
  const auto s2 = g->AddVertex(
      {"Station"}, {{"name", Value("S2")}, {"capacity", Value(20)}});
  const auto s3 = g->AddVertex(
      {"Station"}, {{"name", Value("S3")}, {"capacity", Value(30)}});
  ASSERT_TRUE(g->AddEdge(s1, s2, "TRIP", {}).ok());
  ASSERT_TRUE(g->AddEdge(s2, s3, "TRIP", {}).ok());
  for (int i = 0; i < 10; ++i) {
    const Timestamp t = i * kHour;
    ASSERT_TRUE(store->AppendVertexSample(s1, "bikes", t, 5.0).ok());
    ASSERT_TRUE(store->AppendVertexSample(s2, "bikes", t, i).ok());
    ASSERT_TRUE(store->AppendVertexSample(s3, "bikes", t, 2.0 * i).ok());
  }
}

// S1 avg=5, S2 avg=4.5, S3 avg=9 over the range: the filter keeps S1 and S3.
constexpr char kAggQuery[] =
    "MATCH (s:Station) WHERE ts_avg(s.bikes, 0, 36000000) > 4.6 "
    "RETURN s.name, ts_sum(s.bikes, 0, 36000000) AS total";

TEST(ExplainTest, ReturnsPlanWithoutExecuting) {
  storage::AllInGraphStore store;
  Populate(&store);
  auto r = Execute(store, std::string("EXPLAIN ") + kAggQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->columns, std::vector<std::string>{"plan"});
  ASSERT_GE(r->row_count(), 2u);
  EXPECT_EQ(r->rows[0][0].AsString(), "backend: all-in-graph");
  EXPECT_FALSE(r->rows[1][0].AsString().empty());
  // EXPLAIN must not touch the storage layer.
  EXPECT_EQ(store.Work().properties_scanned, 0u);
  EXPECT_EQ(store.Work().series_points_scanned, 0u);
}

TEST(ExplainTest, ExplainPlanMatchesExecuteSurface) {
  storage::PolyglotStore store;
  Populate(&store);
  auto via_execute = Execute(store, std::string("EXPLAIN ") + kAggQuery);
  auto via_api = Explain(store, kAggQuery);
  ASSERT_TRUE(via_execute.ok());
  ASSERT_TRUE(via_api.ok());
  ASSERT_EQ(via_execute->row_count(), via_api->row_count());
  for (size_t i = 0; i < via_api->row_count(); ++i) {
    EXPECT_EQ(via_execute->rows[i][0], via_api->rows[i][0]);
  }
}

TEST(ProfileTest, ExecuteReturnsOperatorColumn) {
  storage::AllInGraphStore store;
  Populate(&store);
  auto r = Execute(store, std::string("PROFILE ") + kAggQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->columns, std::vector<std::string>{"operator"});
  ASSERT_GE(r->row_count(), 2u);
  EXPECT_EQ(r->rows[0][0].AsString().rfind("PROFILE wall_ns=", 0), 0u);
  // The tree lists the executor's operators.
  const std::string all = [&] {
    std::string joined;
    for (const auto& row : r->rows) joined += row[0].AsString() + "\n";
    return joined;
  }();
  EXPECT_NE(all.find("execute:"), std::string::npos);
  EXPECT_NE(all.find("match:"), std::string::npos);
  EXPECT_NE(all.find("scan:"), std::string::npos);
  EXPECT_NE(all.find("where:"), std::string::npos);
  EXPECT_NE(all.find("return:total"), std::string::npos);
}

TEST(ProfileTest, RowsMatchNormalExecutionOnBothBackends) {
  storage::AllInGraphStore aig;
  storage::PolyglotStore poly;
  Populate(&aig);
  Populate(&poly);
  for (QueryBackend* store : {static_cast<QueryBackend*>(&aig),
                              static_cast<QueryBackend*>(&poly)}) {
    auto normal = Execute(*store, kAggQuery);
    auto profiled = Profile(*store, kAggQuery);
    ASSERT_TRUE(normal.ok()) << store->name();
    ASSERT_TRUE(profiled.ok()) << store->name();
    ASSERT_EQ(profiled->result.rows.size(), normal->rows.size())
        << store->name();
    for (size_t i = 0; i < normal->rows.size(); ++i) {
      EXPECT_EQ(profiled->result.rows[i], normal->rows[i]) << store->name();
    }
  }
}

TEST(ProfileTest, DeterministicTreeWithManualClock) {
  storage::AllInGraphStore store;
  Populate(&store);
  obs::ManualClock clock;
  clock.set_auto_advance(1);
  auto profiled = Profile(store, kAggQuery, {}, &clock);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();

  // Shape: query -> {compile, execute -> {match, scan -> ..., project}}.
  const obs::TraceNode& query = profiled->trace;
  EXPECT_EQ(query.name, "query");
  ASSERT_NE(query.FindChild("compile"), nullptr);
  const obs::TraceNode* execute = query.FindChild("execute");
  ASSERT_NE(execute, nullptr);
  EXPECT_NE(execute->FindChild("match"), nullptr);
  const obs::TraceNode* scan = execute->FindChild("scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_NE(scan->FindChild("where"), nullptr);
  EXPECT_NE(scan->FindChild("return:total"), nullptr);
  EXPECT_NE(execute->FindChild("project"), nullptr);

  // The WHERE predicate ran once per match; rows landed on the counters.
  EXPECT_EQ(scan->FindChild("where")->count, 3u);
  EXPECT_EQ(execute->counters.at("rows"), 2u);  // S2 fails avg > 4? S1=5,S3=9
  EXPECT_EQ(execute->FindChild("project")->counters.at("rows"), 2u);

  // Timings reconcile: self times telescope to the root total exactly, and
  // the wall clock bracket covers the whole tree.
  EXPECT_EQ(query.SumSelfNanos(), query.total_nanos);
  EXPECT_GE(profiled->wall_nanos, query.total_nanos);
  EXPECT_GT(query.total_nanos, 0u);
}

TEST(ProfileTest, BackendWorkIsAttributedToSpans) {
  storage::PolyglotStore store;
  Populate(&store);
  auto profiled = Profile(store, kAggQuery);
  ASSERT_TRUE(profiled.ok());
  const obs::TraceNode* execute = profiled->trace.FindChild("execute");
  ASSERT_NE(execute, nullptr);
  const obs::TraceNode* scan = execute->FindChild("scan");
  ASSERT_NE(scan, nullptr);
  // kAggQuery's ts_avg/ts_sum have literal bounds over several matched
  // stations, so the executor batches them up front: the storage work
  // lands on the "prefetch" span, and the per-row WHERE evaluations are
  // answered from the aggregate memo without touching the series store.
  const obs::TraceNode* prefetch = execute->FindChild("prefetch");
  ASSERT_NE(prefetch, nullptr);
  // Which counter moved depends on the path taken — a raw scan counts
  // points, a fully-covered chunk is answered from the aggregate cache —
  // but the delta lands on the span either way.
  uint64_t storage_work = 0;
  for (const char* name :
       {"points_scanned", "chunks_decoded", "chunks_cache_hits"}) {
    auto it = prefetch->counters.find(name);
    if (it != prefetch->counters.end()) storage_work += it->second;
  }
  EXPECT_GT(storage_work, 0u);
  EXPECT_EQ(prefetch->counters.at("sites"), 2u);  // ts_avg + ts_sum
}

TEST(ProfileTest, MemoHitsAppearInTraceCounters) {
  storage::PolyglotStore store;
  Populate(&store);
  // ts_corr materializes ranges through the evaluator memo; asking for the
  // same correlation twice makes the second fetch a guaranteed hit.
  auto profiled = Profile(
      store,
      "MATCH (a:Station {name: 'S2'}), (b:Station {name: 'S3'}) "
      "RETURN ts_corr(a.bikes, b.bikes, 0, 36000000) AS c1, "
      "ts_corr(a.bikes, b.bikes, 0, 36000000) AS c2");
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  const obs::TraceNode* execute = profiled->trace.FindChild("execute");
  ASSERT_NE(execute, nullptr);
  ASSERT_TRUE(execute->counters.count("memo_misses"));
  ASSERT_TRUE(execute->counters.count("memo_hits"));
  EXPECT_EQ(execute->counters.at("memo_misses"), 2u);  // a.bikes, b.bikes
  EXPECT_EQ(execute->counters.at("memo_hits"), 2u);    // reused by c2
}

TEST(ProfileTest, QueryCountersAccumulateOnBackendRegistry) {
  storage::PolyglotStore store;
  Populate(&store);
  ASSERT_TRUE(Execute(store, kAggQuery).ok());
  ASSERT_TRUE(Execute(store, kAggQuery).ok());
  const obs::MetricsSnapshot snap = store.metrics()->Snapshot();
  EXPECT_EQ(snap.counters.at("query.executions"), 2u);
  EXPECT_GE(snap.counters.at("query.rows"), 4u);
}

TEST(SlowQueryLogTest, DisabledByDefaultAndRecordsWhenEnabled) {
  storage::AllInGraphStore store;
  Populate(&store);
  obs::SlowQueryLog& log = obs::SlowQueryLog::Global();
  log.Clear();
  ASSERT_FALSE(log.enabled());

  ASSERT_TRUE(Execute(store, kAggQuery).ok());
  EXPECT_TRUE(log.Entries().empty());  // disabled -> nothing captured

  log.set_threshold_nanos(1);  // every query is "slow"
  ASSERT_TRUE(Execute(store, kAggQuery).ok());
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].query, kAggQuery);
  EXPECT_EQ(entries[0].backend, "all-in-graph");
  EXPECT_GT(entries[0].nanos, 0u);

  log.set_threshold_nanos(0);
  log.Clear();
}

TEST(SlowQueryLogTest, ThresholdFiltersFastQueries) {
  storage::AllInGraphStore store;
  Populate(&store);
  obs::SlowQueryLog& log = obs::SlowQueryLog::Global();
  log.Clear();
  log.set_threshold_nanos(uint64_t{3600} * 1000 * 1000 * 1000);  // one hour
  ASSERT_TRUE(Execute(store, kAggQuery).ok());
  EXPECT_TRUE(log.Entries().empty());
  log.set_threshold_nanos(0);
}

TEST(SlowQueryLogTest, RingBufferKeepsMostRecent) {
  obs::SlowQueryLog log;
  log.set_threshold_nanos(1);
  for (size_t i = 0; i < log.capacity() + 10; ++i) {
    log.MaybeRecord("q" + std::to_string(i), "b", 5);
  }
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), log.capacity());
  EXPECT_EQ(entries.front().query, "q10");
  EXPECT_EQ(entries.back().query,
            "q" + std::to_string(log.capacity() + 9));
}

}  // namespace
}  // namespace hygraph::query
