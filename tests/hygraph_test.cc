#include "core/hygraph.h"

#include <gtest/gtest.h>

namespace hygraph::core {
namespace {

ts::MultiSeries Balance(std::initializer_list<double> values) {
  ts::MultiSeries ms("balance", {"balance"});
  Timestamp t = 0;
  for (double v : values) {
    EXPECT_TRUE(ms.AppendRow(t, {v}).ok());
    t += kHour;
  }
  return ms;
}

TEST(HyGraphTest, PgAndTsVertexKinds) {
  HyGraph hg;
  const VertexId user = *hg.AddPgVertex({"User"}, {{"name", Value("u")}});
  const VertexId card = *hg.AddTsVertex({"CreditCard"}, Balance({1, 2, 3}));
  EXPECT_EQ(hg.VertexKind(user), ElementKind::kPg);
  EXPECT_EQ(hg.VertexKind(card), ElementKind::kTs);
  EXPECT_TRUE(hg.IsTsVertex(card));
  EXPECT_FALSE(hg.IsTsVertex(user));
  EXPECT_EQ(hg.PgVertices(), (std::vector<VertexId>{user}));
  EXPECT_EQ(hg.TsVertices(), (std::vector<VertexId>{card}));
}

TEST(HyGraphTest, DeltaMapsTsVertexToSeries) {
  HyGraph hg;
  const VertexId card = *hg.AddTsVertex({"CreditCard"}, Balance({5, 6}));
  auto series = hg.VertexSeries(card);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ((*series)->size(), 2u);
  EXPECT_DOUBLE_EQ((*series)->at(0, 0), 5.0);
  const VertexId user = *hg.AddPgVertex({"User"}, {});
  EXPECT_FALSE(hg.VertexSeries(user).ok());
}

TEST(HyGraphTest, TsEdgeCarriesSeries) {
  HyGraph hg;
  const VertexId card = *hg.AddTsVertex({"CreditCard"}, Balance({1}));
  const VertexId merchant = *hg.AddPgVertex({"Merchant"}, {});
  ts::MultiSeries amounts("tx", {"amount"});
  ASSERT_TRUE(amounts.AppendRow(10, {99.0}).ok());
  const EdgeId tx = *hg.AddTsEdge(card, merchant, "TX", std::move(amounts));
  EXPECT_TRUE(hg.IsTsEdge(tx));
  EXPECT_EQ(hg.TsEdges(), (std::vector<EdgeId>{tx}));
  auto series = hg.EdgeSeries(tx);
  ASSERT_TRUE(series.ok());
  EXPECT_DOUBLE_EQ((*series)->at(0, 0), 99.0);
}

TEST(HyGraphTest, AppendToSeriesElements) {
  HyGraph hg;
  const VertexId card = *hg.AddTsVertex({"C"}, Balance({1.0}));
  EXPECT_TRUE(hg.AppendToVertexSeries(card, 5 * kHour, {7.0}).ok());
  EXPECT_EQ((*hg.VertexSeries(card))->size(), 2u);
  // Out-of-order append rejected (chronological integrity).
  EXPECT_FALSE(hg.AppendToVertexSeries(card, kHour, {8.0}).ok());
  const VertexId pg = *hg.AddPgVertex({}, {});
  EXPECT_FALSE(hg.AppendToVertexSeries(pg, kHour, {1.0}).ok());
}

TEST(HyGraphTest, StaticAndSeriesProperties) {
  HyGraph hg;
  const VertexId v = *hg.AddPgVertex({"Station"}, {});
  EXPECT_TRUE(hg.SetVertexProperty(v, "capacity", Value(30)).ok());
  EXPECT_EQ(*hg.GetVertexProperty(v, "capacity"), Value(30));
  auto sid = hg.SetVertexSeriesProperty(v, "history", Balance({1, 2}));
  ASSERT_TRUE(sid.ok());
  auto prop = hg.GetVertexProperty(v, "history");
  ASSERT_TRUE(prop.ok());
  EXPECT_TRUE(prop->is_series_ref());
  auto series = hg.GetVertexSeriesProperty(v, "history");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ((*series)->size(), 2u);
  // Scalar property cannot be read as a series.
  EXPECT_FALSE(hg.GetVertexSeriesProperty(v, "capacity").ok());
  EXPECT_EQ(hg.SeriesPoolSize(), 1u);
}

TEST(HyGraphTest, RawSeriesRefRejected) {
  HyGraph hg;
  const VertexId v = *hg.AddPgVertex({}, {});
  EXPECT_FALSE(hg.SetVertexProperty(v, "x", Value::SeriesRef(0)).ok());
  EXPECT_FALSE(hg.AddPgVertex({}, {{"x", Value::SeriesRef(0)}}).ok());
}

TEST(HyGraphTest, EdgeSeriesProperty) {
  HyGraph hg;
  const VertexId a = *hg.AddPgVertex({}, {});
  const VertexId b = *hg.AddPgVertex({}, {});
  const EdgeId e = *hg.AddPgEdge(a, b, "E", {});
  auto sid = hg.SetEdgeSeriesProperty(e, "load", Balance({3}));
  ASSERT_TRUE(sid.ok());
  auto series = hg.GetEdgeSeriesProperty(e, "load");
  ASSERT_TRUE(series.ok());
  EXPECT_DOUBLE_EQ((*series)->at(0, 0), 3.0);
}

TEST(HyGraphTest, ValidityRespectedOnPgEdges) {
  HyGraph hg;
  const VertexId a = *hg.AddPgVertex({}, {}, Interval{0, 100});
  const VertexId b = *hg.AddPgVertex({}, {}, Interval{50, 200});
  EXPECT_TRUE(hg.AddPgEdge(a, b, "E", {}, Interval{50, 100}).ok());
  EXPECT_FALSE(hg.AddPgEdge(a, b, "E", {}, Interval{0, 200}).ok());
  EXPECT_EQ(*hg.VertexValidity(a), (Interval{0, 100}));
}

TEST(HyGraphTest, TsElementsAlwaysValid) {
  HyGraph hg;
  const VertexId card = *hg.AddTsVertex({"C"}, Balance({1, 2}));
  EXPECT_EQ(*hg.VertexValidity(card), Interval::All());
}

TEST(HyGraphTest, SubgraphMembershipGamma) {
  HyGraph hg;
  const VertexId a = *hg.AddPgVertex({}, {}, Interval{0, 1000});
  const VertexId b = *hg.AddPgVertex({}, {}, Interval{0, 1000});
  const SubgraphId s =
      *hg.CreateSubgraph({"Cluster"}, {{"kind", Value("test")}},
                         Interval{0, 1000});
  ASSERT_TRUE(
      hg.AddToSubgraph(s, ElementRef::OfVertex(a), Interval{0, 500}).ok());
  ASSERT_TRUE(
      hg.AddToSubgraph(s, ElementRef::OfVertex(b), Interval{250, 750}).ok());
  auto members_early = hg.SubgraphAt(s, 100);
  ASSERT_TRUE(members_early.ok());
  EXPECT_EQ(members_early->vertices, (std::vector<VertexId>{a}));
  auto members_mid = hg.SubgraphAt(s, 300);
  EXPECT_EQ(members_mid->vertices, (std::vector<VertexId>{a, b}));
  auto members_late = hg.SubgraphAt(s, 600);
  EXPECT_EQ(members_late->vertices, (std::vector<VertexId>{b}));
  auto members_after = hg.SubgraphAt(s, 2000);  // outside subgraph validity
  EXPECT_TRUE(members_after->vertices.empty());
}

TEST(HyGraphTest, SubgraphMembershipValidated) {
  HyGraph hg;
  const VertexId a = *hg.AddPgVertex({}, {}, Interval{100, 200});
  const SubgraphId s = *hg.CreateSubgraph({}, {}, Interval{0, 150});
  // Exceeds subgraph validity.
  EXPECT_FALSE(
      hg.AddToSubgraph(s, ElementRef::OfVertex(a), Interval{100, 200}).ok());
  // Exceeds element validity.
  EXPECT_FALSE(
      hg.AddToSubgraph(s, ElementRef::OfVertex(a), Interval{50, 140}).ok());
  // Fits both.
  EXPECT_TRUE(
      hg.AddToSubgraph(s, ElementRef::OfVertex(a), Interval{100, 140}).ok());
  // Unknown subgraph / element.
  EXPECT_FALSE(
      hg.AddToSubgraph(99, ElementRef::OfVertex(a), Interval{100, 140}).ok());
  EXPECT_FALSE(
      hg.AddToSubgraph(s, ElementRef::OfVertex(77), Interval{100, 140}).ok());
}

TEST(HyGraphTest, SubgraphLabelsAndProperties) {
  HyGraph hg;
  const SubgraphId s = *hg.CreateSubgraph({"Suspicious"}, {});
  EXPECT_EQ(**hg.SubgraphLabels(s), (std::vector<std::string>{"Suspicious"}));
  ASSERT_TRUE(hg.SetSubgraphProperty(s, "score", Value(0.9)).ok());
  EXPECT_EQ(*hg.GetSubgraphProperty(s, "score"), Value(0.9));
  EXPECT_FALSE(hg.GetSubgraphProperty(s, "missing").ok());
  EXPECT_EQ(hg.SubgraphIds(), (std::vector<SubgraphId>{s}));
}

TEST(HyGraphTest, SubgraphEdgesMembership) {
  HyGraph hg;
  const VertexId a = *hg.AddPgVertex({}, {});
  const VertexId b = *hg.AddPgVertex({}, {});
  const EdgeId e = *hg.AddPgEdge(a, b, "E", {});
  const SubgraphId s = *hg.CreateSubgraph({}, {});
  ASSERT_TRUE(
      hg.AddToSubgraph(s, ElementRef::OfEdge(e), Interval::All()).ok());
  auto members = hg.SubgraphAt(s, 12345);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->edges, (std::vector<EdgeId>{e}));
}

}  // namespace
}  // namespace hygraph::core
