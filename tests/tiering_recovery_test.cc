#include "storage/durable.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/all_in_graph.h"
#include "storage/env.h"
#include "storage/fault_injection_env.h"
#include "storage/polyglot.h"
#include "ts/hypertable.h"

namespace hygraph::storage {
namespace {

using BackendFactory = std::function<std::unique_ptr<query::QueryBackend>()>;

struct Arch {
  const char* name;
  BackendFactory make;
};

// Narrow chunks so a short ingest produces many sealed chunks for the
// tier to swallow: 4 samples per chunk at the stride used by Ingest().
ts::HypertableOptions NarrowChunks() {
  ts::HypertableOptions o;
  o.chunk_duration = 16;
  return o;
}

/// Crash-matrix and recovery tests for the cold tier (DESIGN.md §15).
/// Every store runs on a FaultInjectionEnv so individual tests can crash
/// the "machine" at arbitrary mutating-operation boundaries and model
/// what a real filesystem presents after power loss.
class TieringRecoveryTest : public ::testing::TestWithParam<Arch> {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hygraph_tiering_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    root_ = tmpl;
    dir_ = root_ + "/store";
    env_ = std::make_unique<FaultInjectionEnv>(Env::Default());
  }
  void TearDown() override {
    std::system(("rm -rf " + root_).c_str());
  }

  static DurableOptions Tiered(size_t cache_budget = 1u << 20) {
    DurableOptions options;
    options.tiering.enabled = true;
    options.tiering.cache_budget_bytes = cache_budget;
    return options;
  }

  std::unique_ptr<DurableStore> MakeStore(DurableOptions options = Tiered()) {
    return std::make_unique<DurableStore>(env_.get(), dir_, GetParam().make(),
                                          options);
  }

  // Canonical logical-state signature (topology + all series). On a tiered
  // store this pins every cold chunk's bytes, so signature equality means
  // the recovered samples are bit-identical, cold data included.
  static std::string Signature(const query::QueryBackend& backend) {
    auto text = BuildSnapshotText(backend);
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return text.value_or("<error>");
  }

  // Mixed workload whose series span many chunks: 48 samples at stride 4
  // against chunk_duration 16 is 12 chunks per series, 11 of them sealed
  // (and spillable) the moment the newest chunk opens.
  static void Ingest(DurableStore* store) {
    auto v0 = store->AddVertex({"Station"}, {{"city", Value("berlin")}});
    ASSERT_TRUE(v0.ok()) << v0.status().ToString();
    auto v1 = store->AddVertex({"Station"}, {{"city", Value("munich")}});
    ASSERT_TRUE(v1.ok());
    auto e0 = store->AddEdge(*v0, *v1, "route", {{"km", Value(int64_t{584})}});
    ASSERT_TRUE(e0.ok()) << e0.status().ToString();
    ASSERT_TRUE(store->SetVertexProperty(*v1, "open", Value(true)).ok());
    for (int i = 0; i < 48; ++i) {
      ASSERT_TRUE(
          store->AppendVertexSample(*v0, "temp", i * 4, 20.0 + 0.25 * i).ok());
      ASSERT_TRUE(
          store->AppendEdgeSample(*e0, "load", i * 4, 0.5 * i).ok());
    }
  }
  // All eight aggregate kinds over the full axis for v0."temp" — the
  // bit-identical cold-vs-resident comparison vector.
  static std::vector<double> AggVector(const DurableStore& store) {
    std::vector<double> out;
    for (int k = 0; k <= static_cast<int>(ts::AggKind::kLast); ++k) {
      auto r = store.VertexSeriesAggregate(0, "temp", Interval::All(),
                                           static_cast<ts::AggKind>(k));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(r.value_or(-1.0));
    }
    return out;
  }

  // The embedded hypertable, or null for architectures without one
  // (all-in-graph), where tiering is documented to no-op.
  static ts::HypertableStore* Hypertable(DurableStore* store) {
    return store->inner()->series_hypertable();
  }

  std::vector<std::string> ColdFiles(const std::string& substr) {
    std::vector<std::string> children;
    if (!env_->GetChildren(dir_ + "/cold", &children).ok()) return {};
    std::vector<std::string> out;
    for (const auto& name : children) {
      if (name.find(substr) != std::string::npos) out.push_back(name);
    }
    return out;
  }

  std::string root_;
  std::string dir_;
  std::unique_ptr<FaultInjectionEnv> env_;
};

// -- spill mechanics ---------------------------------------------------------

TEST_P(TieringRecoveryTest, CheckpointSpillsSealedChunksCold) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  Ingest(store.get());
  const std::string before = Signature(*store->inner());
  const auto aggs = AggVector(*store);
  ASSERT_TRUE(store->Checkpoint().ok());

  if (ts::HypertableStore* ht = Hypertable(store.get())) {
    ASSERT_NE(store->cold_tier(), nullptr);
    const auto stats = ht->stats();
    EXPECT_GE(stats.cold_chunks_spilled, 22u);  // 11 sealed chunks x 2 series
    EXPECT_GT(stats.cold_bytes_spilled, 0u);
    const auto mem = ht->MemoryUsage();
    EXPECT_EQ(mem.sealed_samples, 0u);  // every sealed chunk went cold
    EXPECT_GT(mem.cold_samples, 0u);
    EXPECT_GT(mem.hot_samples, 0u);  // the newest chunk stays hot
  } else {
    EXPECT_EQ(store->cold_tier(), nullptr);  // tiering no-ops gracefully
  }

  // Spilling is physically invasive but logically invisible: scans and
  // aggregates read back bit-identical through the tier.
  EXPECT_EQ(Signature(*store->inner()), before);
  EXPECT_EQ(AggVector(*store), aggs);
}

TEST_P(TieringRecoveryTest, ReopenAdoptsColdChunksWithoutReplayingThem) {
  std::string before;
  std::vector<double> aggs;
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
    before = Signature(*store->inner());
    aggs = AggVector(*store);
  }
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_TRUE(store->recovery().snapshot_loaded);
  // Recovery is O(hot data): the WAL was truncated at the checkpoint, so
  // nothing replays — cold chunks re-attach as catalog metadata only.
  EXPECT_EQ(store->recovery().wal_records_replayed, 0u);
  if (Hypertable(store.get()) != nullptr) {
    EXPECT_GE(store->recovery().cold_chunks_adopted, 22u);
    EXPECT_EQ(Hypertable(store.get())->stats().cold_chunks_adopted,
              store->recovery().cold_chunks_adopted);
  } else {
    EXPECT_EQ(store->recovery().cold_chunks_adopted, 0u);
  }
  EXPECT_EQ(Signature(*store->inner()), before);
  EXPECT_EQ(AggVector(*store), aggs);
}

TEST_P(TieringRecoveryTest, WalTailReplaysOntoAdoptedChunks) {
  std::string before;
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
    // Post-checkpoint tail: an in-order append plus an out-of-order write
    // that lands inside a chunk the checkpoint just spilled cold — replay
    // must pin + unseal the adopted chunk to merge it.
    ASSERT_TRUE(store->AppendVertexSample(0, "temp", 48 * 4, 99.0).ok());
    ASSERT_TRUE(store->AppendVertexSample(0, "temp", 2, -7.5).ok());
    before = Signature(*store->inner());
  }
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(store->recovery().wal_records_replayed, 2u);
  if (Hypertable(store.get()) != nullptr) {
    EXPECT_GT(store->recovery().cold_chunks_adopted, 0u);
    // The out-of-order replay unsealed exactly one adopted chunk.
    EXPECT_GE(Hypertable(store.get())->stats().chunks_unsealed, 1u);
  }
  EXPECT_EQ(Signature(*store->inner()), before);
}

TEST_P(TieringRecoveryTest, RepeatedCheckpointsKeepOneCatalog) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  Ingest(store.get());
  ASSERT_TRUE(store->Checkpoint().ok());
  const std::string before = Signature(*store->inner());
  // A checkpoint with nothing new to spill is a cheap no-op re-snapshot.
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->AppendVertexSample(0, "temp", 48 * 4, 99.0).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  if (Hypertable(store.get()) != nullptr) {
    // Catalog GC keeps exactly the one paired with the live snapshot.
    EXPECT_EQ(ColdFiles(".cold").size(), 1u);
    EXPECT_EQ(ColdFiles(".tmp").size(), 0u);
  }
  auto reopened = MakeStore();
  ASSERT_TRUE(reopened->Open().ok());
  auto range = reopened->VertexSeriesRange(0, "temp", Interval::All());
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->samples().size(), 49u);
  // The pre-tail signature is a strict prefix of the recovered state's
  // sample set; re-derive the full signature for the equality check.
  EXPECT_NE(Signature(*reopened->inner()), before);
}

// -- cache behavior ----------------------------------------------------------

TEST_P(TieringRecoveryTest, TinyCacheBudgetThrashesButStaysBitIdentical) {
  std::string before;
  std::vector<double> aggs;
  {
    auto store = MakeStore(Tiered(/*cache_budget=*/1));
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    before = Signature(*store->inner());
    aggs = AggVector(*store);
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  auto store = MakeStore(Tiered(/*cache_budget=*/1));
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(Signature(*store->inner()), before);
  EXPECT_EQ(AggVector(*store), aggs);
  if (Hypertable(store.get()) != nullptr) {
    const auto cache = store->cold_tier()->cache_stats();
    // A 1-byte budget can never hold a chunk: every pin is a miss and the
    // inserted entry is evicted immediately.
    EXPECT_GT(cache.misses, 0u);
    EXPECT_GT(cache.evictions, 0u);
    EXPECT_EQ(cache.cached_bytes, 0u);
  }
}

TEST_P(TieringRecoveryTest, WarmCacheServesRepeatScansFromRam) {
  {
    auto store = MakeStore(Tiered(/*cache_budget=*/64u << 20));
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  // Reopen so the tier's cache starts empty — in the writing process the
  // write-through Put path leaves every spilled chunk already resident.
  auto store = MakeStore(Tiered(/*cache_budget=*/64u << 20));
  ASSERT_TRUE(store->Open().ok());
  if (Hypertable(store.get()) == nullptr) return;  // no tier to exercise
  // Range scans (unlike whole-chunk aggregates, which are answered from
  // cached AggStates without touching the tier) pin every cold chunk.
  auto first = store->VertexSeriesRange(0, "temp", Interval::All());
  ASSERT_TRUE(first.ok());
  const auto after_first = store->cold_tier()->cache_stats();
  EXPECT_GT(after_first.misses, 0u);
  auto second = store->VertexSeriesRange(0, "temp", Interval::All());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->samples().size(), first->samples().size());
  const auto after_second = store->cold_tier()->cache_stats();
  // The second sweep re-pins the same chunks; with an ample budget they
  // are all resident, so misses stay flat while hits advance.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
}

// -- crash matrix ------------------------------------------------------------

// Crashes a tiered checkpoint after every single mutating filesystem
// operation in its protocol (segment appends, syncs, catalog write,
// renames, WAL rotation, GC removes), models power loss, recovers, and
// requires the recovered state to be bit-identical to the acknowledged
// state. Runs the whole sweep twice: once with fsync barriers honored
// (kDropAll) and once with deterministic torn tails (kKeepPrefix).
TEST_P(TieringRecoveryTest, CrashMatrixAcrossCheckpoint) {
  for (const auto loss : {FaultInjectionEnv::UnsyncedLoss::kDropAll,
                          FaultInjectionEnv::UnsyncedLoss::kKeepPrefix}) {
    SCOPED_TRACE(loss == FaultInjectionEnv::UnsyncedLoss::kDropAll
                     ? "drop_all"
                     : "keep_prefix");
    dir_ = root_ + (loss == FaultInjectionEnv::UnsyncedLoss::kDropAll
                        ? "/drop_all"
                        : "/keep_prefix");
    std::string acked;
    {
      auto store = MakeStore();
      ASSERT_TRUE(store->Open().ok());
      Ingest(store.get());
      acked = Signature(*store->inner());
    }
    bool completed = false;
    for (uint64_t k = 0; k < 500 && !completed; ++k) {
      auto store = MakeStore();
      ASSERT_TRUE(store->Open().ok()) << "crash point " << k;
      ASSERT_EQ(Signature(*store->inner()), acked) << "crash point " << k;
      env_->SetCrashAfter(k);
      const Status s = store->Checkpoint();
      if (env_->crashed()) {
        // The "machine" died mid-checkpoint. Tear the process down, roll
        // un-synced bytes back, restart — the outer loop re-verifies.
        store.reset();
        ASSERT_TRUE(env_->DropUnsyncedData(loss).ok());
        env_->Revive();
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        // Disarm the leftover crash budget — the sweep is done, and an
        // armed env would fire mid-verify (or in the next loss mode).
        env_->Revive();
        completed = true;
      }
    }
    ASSERT_TRUE(completed) << "checkpoint never outran the crash point";
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    EXPECT_EQ(Signature(*store->inner()), acked);
    EXPECT_TRUE(store->recovery().snapshot_loaded);
    if (Hypertable(store.get()) != nullptr) {
      EXPECT_GT(store->recovery().cold_chunks_adopted, 0u);
    }
  }
}

TEST_P(TieringRecoveryTest, CrashMidIngestRecoversAcknowledgedPrefix) {
  std::vector<std::pair<Timestamp, double>> oracle;
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    auto v0 = store->AddVertex({"Station"}, {});
    ASSERT_TRUE(v0.ok());
    // Crash somewhere in the middle of the append stream; with sync_wal on,
    // every OK append is a durability promise the recovery must keep.
    env_->SetCrashAfter(37);
    for (int i = 0; i < 64; ++i) {
      const Status s = store->AppendVertexSample(*v0, "temp", i * 4, 1.5 * i);
      if (!s.ok()) break;
      oracle.emplace_back(i * 4, 1.5 * i);
    }
    ASSERT_TRUE(env_->crashed());  // 64 appends comfortably pass op 37
    ASSERT_FALSE(oracle.empty());
  }
  // kDropAll honors the fsync barrier exactly, so the recovered state is
  // precisely the acknowledged prefix — a record whose WAL append landed
  // but whose fsync did not was never acknowledged and must vanish.
  ASSERT_TRUE(
      env_->DropUnsyncedData(FaultInjectionEnv::UnsyncedLoss::kDropAll)
          .ok());
  env_->Revive();
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  auto range = store->VertexSeriesRange(0, "temp", Interval::All());
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  ASSERT_EQ(range->samples().size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(range->samples()[i].t, oracle[i].first);
    EXPECT_EQ(range->samples()[i].value, oracle[i].second);
  }
}

// -- deliberate media corruption ---------------------------------------------

TEST_P(TieringRecoveryTest, BitFlippedSegmentIsDetectedNotServed) {
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
    if (Hypertable(store.get()) == nullptr) return;  // no segments exist
  }
  const auto segments = ColdFiles(".seg");
  ASSERT_FALSE(segments.empty());
  const std::string path = dir_ + "/cold/" + segments.front();
  std::string bytes;
  ASSERT_TRUE(env_->ReadFileToString(path, &bytes).ok());
  ASSERT_FALSE(bytes.empty());
  bytes.back() ^= 0x40;  // flip one payload bit in the last record
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_->NewWritableFile(path, &f).ok());
    ASSERT_TRUE(f->Append(bytes).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  // Adoption is metadata-only, so the store opens fine; the first scan
  // that pins the poisoned chunk must surface kCorruption, never data.
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  auto text = BuildSnapshotText(*store->inner());
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kCorruption)
      << text.status().ToString();
}

TEST_P(TieringRecoveryTest, TruncatedSegmentTailIsDetectedNotServed) {
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
    if (Hypertable(store.get()) == nullptr) return;
  }
  const auto segments = ColdFiles(".seg");
  ASSERT_FALSE(segments.empty());
  const std::string path = dir_ + "/cold/" + segments.front();
  auto size = env_->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(env_->TruncateFile(path, *size - 3).ok());
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  auto text = BuildSnapshotText(*store->inner());
  ASSERT_FALSE(text.ok());
  EXPECT_TRUE(text.status().code() == StatusCode::kCorruption ||
              text.status().code() == StatusCode::kOutOfRange)
      << text.status().ToString();
}

TEST_P(TieringRecoveryTest, MissingCatalogOpensAsPreTieringCheckpoint) {
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
    if (Hypertable(store.get()) == nullptr) return;
  }
  for (const auto& name : ColdFiles(".cold")) {
    ASSERT_TRUE(env_->RemoveFile(dir_ + "/cold/" + name).ok());
  }
  // A snapshot with no catalog is indistinguishable from one written
  // before tiering existed: the store opens with an empty cold tier
  // instead of refusing service.
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_TRUE(store->recovery().snapshot_loaded);
  EXPECT_EQ(store->recovery().cold_chunks_adopted, 0u);
  auto range = store->VertexSeriesRange(0, "temp", Interval::All());
  ASSERT_TRUE(range.ok());
  EXPECT_GT(range->samples().size(), 0u);  // the hot tail is still there
}

// -- probabilistic transient faults ------------------------------------------

TEST_P(TieringRecoveryTest, SurvivesProbabilisticTransientFaults) {
  DurableOptions options = Tiered();
  options.retry.max_attempts = 8;
  options.retry_sleep = [](Duration) {};  // spin, don't stall the test
  std::string before;
  {
    auto store = MakeStore(options);
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    // A deterministic two-fault burst on the append path: the plain
    // append fails, the first WAL-rebuild attempt fails, the second
    // rebuild heals — all invisible to the caller.
    env_->SetTransientFailNext(2);
    ASSERT_TRUE(store->AppendVertexSample(0, "temp", 48 * 4, 99.0).ok());
    EXPECT_GE(env_->transient_faults(), 2u);
    // A low-rate probabilistic stream across the whole tiered checkpoint
    // (segment spill, segment fsync, catalog install, snapshot, GC, WAL
    // rotation): every stage retries as an idempotent unit, so scattered
    // hiccups must be absorbed. The rate stays low because a WAL-append
    // retry replays the entire epoch — per-op faults compound across it.
    env_->SetTransientProbability(0.03, /*seed=*/0xC01DCAFE);
    ASSERT_TRUE(store->Checkpoint().ok());
    env_->ClearTransientFaults();
    before = Signature(*store->inner());
  }
  auto store = MakeStore(options);
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(Signature(*store->inner()), before);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, TieringRecoveryTest,
    ::testing::Values(
        Arch{"all_in_graph",
             [] {
               return std::unique_ptr<query::QueryBackend>(
                   std::make_unique<AllInGraphStore>());
             }},
        Arch{"polyglot",
             [] {
               return std::unique_ptr<query::QueryBackend>(
                   std::make_unique<PolyglotStore>(NarrowChunks()));
             }}),
    [](const ::testing::TestParamInfo<Arch>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hygraph::storage
