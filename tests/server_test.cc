// End-to-end tests for the HGQL TCP server (src/server/server.h) over
// loopback: sessions, snapshot isolation, admission shedding, hostile
// frames, the metrics endpoint, group commit through the wire, and clean
// shutdown with requests in flight. Runs under TSan in CI.

#include "server/server.h"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/slow_query.h"
#include "server/client.h"
#include "slow_sync_env.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"
#include "ts/hypertable.h"

namespace hygraph::server {
namespace {

using storage::DurableOptions;
using storage::DurableStore;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hygraph_server_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;

    DurableOptions options;
    options.sync_wal = false;
    store_ = std::make_unique<DurableStore>(
        &slow_env_, dir_, std::make_unique<storage::PolyglotStore>(), options);
    ASSERT_TRUE(store_->Open().ok());

    auto berlin = store_->AddVertex({"Station"}, {{"city", Value("berlin")}});
    ASSERT_TRUE(berlin.ok());
    vertex_ = *berlin;
    ASSERT_TRUE(
        store_->AddVertex({"Station"}, {{"city", Value("munich")}}).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          store_->AppendVertexSample(vertex_, "load", 1000 * i, double(i))
              .ok());
    }
  }

  std::unique_ptr<HgqlServer> StartServer(ServerOptions options = {}) {
    auto server = std::make_unique<HgqlServer>(store_.get(), store_.get(),
                                               std::move(options));
    if (!server->Start().ok()) return nullptr;
    return server;
  }

  Result<HgqlClient> Connect(const HgqlServer& server) {
    return HgqlClient::Connect("127.0.0.1", server.port(), "server_test");
  }

  static uint64_t Counter(const obs::MetricsSnapshot& snap,
                          const std::string& name) {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  }

  std::string dir_;
  /// Slow fsyncs make the group-commit assertions deterministic: while one
  /// wire append's leader syncs, concurrent appenders park behind it, so a
  /// batch provably covers several appends even on a single busy core
  /// (20ms spans several scheduler timeslices). (Declared before store_ so
  /// the store is destroyed first.)
  storage::SlowSyncEnv slow_env_{storage::Env::Default(), 20};
  std::unique_ptr<DurableStore> store_;
  graph::VertexId vertex_ = 0;
};

TEST_F(ServerTest, StartStopIsCleanAndIdempotent) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  EXPECT_NE(server->port(), 0);
  server->Stop();
  server->Stop();  // idempotent
}

TEST_F(ServerTest, HelloQueryGoodbyeRoundTrip) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GT(client->session_id(), 0u);

  auto result =
      client->Query("MATCH (s:Station) RETURN s.city AS city ORDER BY city");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->row_count(), 2u);
  EXPECT_EQ(result->rows[0][0], Value("berlin"));
  EXPECT_EQ(result->rows[1][0], Value("munich"));

  auto pong = client->Admin("ping");
  EXPECT_TRUE(pong.ok());
  client->Close();
}

TEST_F(ServerTest, BadQueryKeepsConnectionUsable) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client->Query("THIS IS NOT HGQL").ok());
  auto result = client->Query("MATCH (s:Station) RETURN s.city AS c");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  client->Close();
}

TEST_F(ServerTest, ConcurrentSessionsEachGetTheirOwnId) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = Connect(*server);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto result = client->Query("MATCH (s:Station) RETURN s.city AS c");
        if (!result.ok() || result->row_count() != 2) failures.fetch_add(1);
      }
      client->Close();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server->sessions_opened(), uint64_t{kClients});
  server->Stop();
  EXPECT_EQ(server->connections_active(), 0u);
}

TEST_F(ServerTest, PinnedSessionSnapshotIsolatesFromConcurrentAppends) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());

  const std::string count_query =
      "MATCH (s:Station) WHERE s.city = 'berlin' "
      "RETURN ts_count(s.load, 0, 1000000000) AS n";
  auto before = client->Query(count_query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const Value baseline = before->rows[0][0];

  // Pin the session snapshot, then append through a SECOND connection.
  ASSERT_TRUE(client->Admin("snapshot.begin").ok());
  {
    auto writer = Connect(*server);
    ASSERT_TRUE(writer.ok());
    std::vector<SampleUpdate> batch;
    for (int i = 0; i < 5; ++i) {
      SampleUpdate s;
      s.id = vertex_;
      s.timestamp = 500000 + i;
      s.value = 9.0;
      s.key = "load";
      batch.push_back(s);
    }
    ASSERT_TRUE(writer->Append(batch).ok());
    writer->Close();
  }

  // The pinned view must not see the writer's samples...
  auto pinned = client->Query(count_query);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->rows[0][0], baseline);

  // ...and releasing the snapshot must reveal them (fresh per-request
  // snapshot behavior).
  ASSERT_TRUE(client->Admin("snapshot.release").ok());
  auto fresh = client->Query(count_query);
  ASSERT_TRUE(fresh.ok());
  auto fresh_n = fresh->rows[0][0].ToDouble();
  auto baseline_n = baseline.ToDouble();
  ASSERT_TRUE(fresh_n.ok());
  ASSERT_TRUE(baseline_n.ok());
  EXPECT_EQ(*fresh_n, *baseline_n + 5);
  client->Close();
}

TEST_F(ServerTest, PinnedSessionStaysRepeatableAcrossCheckpointColdSpill) {
  // A tiered store of its own: narrow chunks so the short ingest seals
  // eleven chunks for the checkpoint to spill cold.
  char tmpl[] = "/tmp/hygraph_server_tier_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  DurableOptions options;
  options.sync_wal = false;
  options.tiering.enabled = true;
  ts::HypertableOptions narrow;
  narrow.chunk_duration = 16;
  auto tiered = std::make_unique<DurableStore>(
      storage::Env::Default(), dir,
      std::make_unique<storage::PolyglotStore>(narrow), options);
  ASSERT_TRUE(tiered->Open().ok());
  auto v = tiered->AddVertex({"Station"}, {{"city", Value("berlin")}});
  ASSERT_TRUE(v.ok());
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(tiered->AppendVertexSample(*v, "load", i * 4, 0.5 * i).ok());
  }

  HgqlServer server(tiered.get(), tiered.get(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = Connect(server);
  ASSERT_TRUE(client.ok());

  // The sub-interval average cuts across chunk boundaries, so answering it
  // needs the sample bytes themselves — after the spill they can only come
  // from pinned cold chunks, exactly the path the session must keep
  // repeatable.
  const std::string query =
      "MATCH (s:Station) WHERE s.city = 'berlin' "
      "RETURN ts_avg(s.load, 6, 90) AS a, ts_count(s.load, 0, 1000) AS n";
  ASSERT_TRUE(client->Admin("snapshot.begin").ok());
  auto before = client->Query(query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Checkpoint under the pinned session: every sealed chunk leaves RAM for
  // the cold tier while the session still holds its fork.
  ASSERT_TRUE(tiered->Checkpoint().ok());
  ts::HypertableStore* ht = tiered->inner()->series_hypertable();
  ASSERT_NE(ht, nullptr);
  EXPECT_GT(ht->stats().cold_chunks_spilled, 0u);
  EXPECT_EQ(ht->MemoryUsage().sealed_samples, 0u);

  // A second connection writes INTO the spilled range, forcing cold chunks
  // to unseal (pin + decode + forget) underneath the pinned session.
  {
    auto writer = Connect(server);
    ASSERT_TRUE(writer.ok());
    std::vector<SampleUpdate> batch;
    for (int i = 0; i < 4; ++i) {
      SampleUpdate s;
      s.id = *v;
      s.timestamp = 7 + i * 16;  // inside the pinned aggregate window
      s.value = 1000.0;
      s.key = "load";
      batch.push_back(s);
    }
    ASSERT_TRUE(writer->Append(batch).ok());
    writer->Close();
  }

  // The pinned session's reads stay repeatable across spill and unseal...
  auto after = client->Query(query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows[0][0], before->rows[0][0]);
  EXPECT_EQ(after->rows[0][1], before->rows[0][1]);

  // ...and releasing the pin reveals the writer's samples.
  ASSERT_TRUE(client->Admin("snapshot.release").ok());
  auto fresh = client->Query(query);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->rows[0][0], before->rows[0][0]);
  EXPECT_NE(fresh->rows[0][1], before->rows[0][1]);
  client->Close();
  server.Stop();
  std::system(("rm -rf " + dir).c_str());
}

TEST_F(ServerTest, AdmissionControlShedsBeyondMaxInflight) {
  ServerOptions options;
  options.max_inflight = 1;
  options.enable_debug_commands = true;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  // One connection occupies the single in-flight slot for ~600ms...
  std::thread spinner([&] {
    auto client = Connect(*server);
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(client->Admin("debug.spin 600").ok());
    client->Close();
  });

  // ...while a second connection retries until it observes a shed.
  bool shed_seen = false;
  {
    auto client = Connect(*server);
    ASSERT_TRUE(client.ok());
    const obs::Clock* clock = obs::SystemClock::Instance();
    const uint64_t deadline = clock->NowNanos() + 5'000'000'000ull;
    while (clock->NowNanos() < deadline) {
      auto result = client->Query("MATCH (s:Station) RETURN s.city AS c");
      if (!result.ok() && result.status().IsResourceExhausted()) {
        shed_seen = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    client->Close();
  }
  spinner.join();
  EXPECT_TRUE(shed_seen);
  EXPECT_GT(Counter(server->MergedMetrics(), "server.requests_shed"), 0u);

  // After the load passes, the server serves normally again.
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Query("MATCH (s:Station) RETURN s.city AS c").ok());
  client->Close();
}

TEST_F(ServerTest, ConnectionLimitRejectsWithResourceExhausted) {
  ServerOptions options;
  options.max_connections = 1;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  auto first = Connect(*server);
  ASSERT_TRUE(first.ok());
  auto second = Connect(*server);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted() ||
              second.status().IsUnavailable())
      << second.status().ToString();
  first->Close();
}

TEST_F(ServerTest, HostileFramesNeverCrashAndNeverBlockOthers) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);

  const std::string hostile[] = {
      std::string("\x00\x01\x02\x03", 4),           // garbage magic
      std::string("HG\x09\x02zzzzzzzz", 12),        // bad version
      std::string("HG\x01\x7fzzzzzzzz", 12),        // unknown type
      // Valid header claiming a huge payload.
      std::string("HG\x01\x02\xff\xff\xff\x7f\x00\x00\x00\x00", 12),
      // Truncated mid-frame: header promises bytes that never come.
      EncodeQueryFrame({0, "MATCH (v) RETURN v"}).substr(0, 20),
  };
  for (const std::string& bytes : hostile) {
    auto sock = net::Socket::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock->WriteAll(bytes.data(), bytes.size()).ok());
    sock->ShutdownBoth();  // truncation: the server sees EOF mid-frame
  }
  // CRC corruption of an otherwise well-formed frame.
  {
    std::string frame = EncodeQueryFrame({0, "MATCH (v) RETURN v"});
    frame.back() ^= 0x40;
    auto sock = net::Socket::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock->WriteAll(frame.data(), frame.size()).ok());
    char buf[256];
    HYGRAPH_IGNORE_RESULT(sock->ReadSome(buf, sizeof(buf)));
  }

  // A healthy client still gets served after all of that.
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = client->Query("MATCH (s:Station) RETURN s.city AS c");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  client->Close();
}

TEST_F(ServerTest, CleanShutdownCompletesInflightRequest) {
  ServerOptions options;
  options.enable_debug_commands = true;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  std::atomic<bool> got_response{false};
  std::thread inflight([&] {
    auto client = Connect(*server);
    ASSERT_TRUE(client.ok());
    // Stop() lands while this request is executing; the in-flight request
    // must complete and its response must be flushed before teardown.
    auto result = client->Admin("debug.spin 400");
    got_response.store(result.ok());
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->Stop();
  inflight.join();
  EXPECT_TRUE(got_response.load());
  EXPECT_EQ(server->connections_active(), 0u);
}

TEST_F(ServerTest, MetricsEndpointServesPrometheusText) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(server->metrics_port(), 0);

  // Generate some traffic first.
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Query("MATCH (s:Station) RETURN s.city AS c").ok());
  client->Close();

  auto sock = net::Socket::Connect("127.0.0.1", server->metrics_port());
  ASSERT_TRUE(sock.ok());
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(sock->WriteAll(get.data(), get.size()).ok());
  std::string body;
  char buf[4096];
  for (;;) {
    auto got = sock->ReadSome(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;
    body.append(buf, *got);
  }
  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find("hygraph_server_requests"), std::string::npos);
  EXPECT_NE(body.find("hygraph_server_queries"), std::string::npos);
  EXPECT_NE(body.find("hygraph_wal_appends"), std::string::npos);

  // /healthz answers; unknown paths 404.
  auto health = net::Socket::Connect("127.0.0.1", server->metrics_port());
  ASSERT_TRUE(health.ok());
  const std::string hget = "GET /healthz HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(health->WriteAll(hget.data(), hget.size()).ok());
  std::string hbody;
  for (;;) {
    auto got = health->ReadSome(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;
    hbody.append(buf, *got);
  }
  EXPECT_NE(hbody.find("ok"), std::string::npos);
}

TEST_F(ServerTest, ConcurrentWireAppendsGroupCommit) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const uint64_t appends_before =
      Counter(server->MergedMetrics(), "wal.appends");
  const uint64_t syncs_before = Counter(server->MergedMetrics(), "wal.syncs");

  constexpr int kWriters = 8;
  constexpr int kBatchesPerWriter = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto client = Connect(*server);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        SampleUpdate s;
        s.id = vertex_;
        s.timestamp = 2000000 + (int64_t{w} * kBatchesPerWriter + b);
        s.value = double(w);
        s.key = "wire";
        if (!client->Append({s}).ok()) failures.fetch_add(1);
      }
      client->Close();
    });
  }
  for (auto& t : writers) t.join();
  ASSERT_EQ(failures.load(), 0);

  const auto snap = server->MergedMetrics();
  const uint64_t appends = Counter(snap, "wal.appends") - appends_before;
  const uint64_t syncs = Counter(snap, "wal.syncs") - syncs_before;
  EXPECT_EQ(appends, uint64_t{kWriters} * kBatchesPerWriter);
  EXPECT_LT(syncs, appends) << "group commit must batch fsyncs";

  // All acked samples are queryable.
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());
  auto result = client->Query(
      "MATCH (s:Station) WHERE s.city = 'berlin' "
      "RETURN ts_count(s.wire, 0, 1000000000) AS n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto n = result->rows[0][0].ToDouble();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, double(kWriters) * kBatchesPerWriter);
  client->Close();
}

TEST_F(ServerTest, ReadOnlyServerRejectsAppends) {
  auto server = std::make_unique<HgqlServer>(store_.get(), nullptr);
  ASSERT_TRUE(server->Start().ok());
  auto client = HgqlClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  SampleUpdate s;
  s.id = vertex_;
  s.timestamp = 1;
  s.value = 1.0;
  s.key = "load";
  const Status status = client->Append({s});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // Queries still work on a read-only server.
  EXPECT_TRUE(client->Query("MATCH (s:Station) RETURN s.city AS c").ok());
  client->Close();
}

TEST_F(ServerTest, SlowQueryLogReachableThroughAdminVerb) {
  ServerOptions options;
  options.slow_query_threshold_ms = 0;  // server leaves the global log off
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  // Arm a 1ns threshold: every query is "slow".
  obs::SlowQueryLog::Global().set_threshold_nanos(1);
  obs::SlowQueryLog::Global().Clear();

  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Query("MATCH (s:Station) RETURN s.city AS c").ok());

  auto slowlog = client->Admin("slowlog");
  ASSERT_TRUE(slowlog.ok()) << slowlog.status().ToString();
  ASSERT_GE(slowlog->row_count(), 1u);
  bool found = false;
  for (const auto& row : slowlog->rows) {
    if (row[0].AsString().find("MATCH (s:Station)") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  ASSERT_TRUE(client->Admin("slowlog.clear").ok());
  auto cleared = client->Admin("slowlog");
  ASSERT_TRUE(cleared.ok());
  EXPECT_EQ(cleared->row_count(), 0u);
  client->Close();
  obs::SlowQueryLog::Global().set_threshold_nanos(0);
}

TEST_F(ServerTest, AdminIntrospectionVerbs) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  auto client = Connect(*server);
  ASSERT_TRUE(client.ok());

  auto info = client->Admin("server.info");
  ASSERT_TRUE(info.ok());
  bool writable = false;
  for (const auto& row : info->rows) {
    if (row[0] == Value("writable")) writable = row[1].AsBool();
  }
  EXPECT_TRUE(writable);

  ASSERT_TRUE(client->Query("MATCH (s:Station) RETURN s.city AS c").ok());
  auto stats = client->Admin("stats");
  ASSERT_TRUE(stats.ok());
  bool saw_queries = false;
  for (const auto& row : stats->rows) {
    if (row[0] == Value("session.queries")) {
      saw_queries = row[1].AsInt() >= 1;
    }
  }
  EXPECT_TRUE(saw_queries);

  EXPECT_FALSE(client->Admin("no.such.verb").ok());
  client->Close();
}

}  // namespace
}  // namespace hygraph::server
