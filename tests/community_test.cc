#include "graph/community.h"

#include <set>

#include <gtest/gtest.h>

namespace hygraph::graph {
namespace {

// Two dense cliques joined by a single bridge edge.
PropertyGraph TwoCliques(size_t clique_size,
                         std::vector<VertexId>* left = nullptr,
                         std::vector<VertexId>* right = nullptr) {
  PropertyGraph g;
  std::vector<VertexId> a;
  std::vector<VertexId> b;
  for (size_t i = 0; i < clique_size; ++i) a.push_back(g.AddVertex({}, {}));
  for (size_t i = 0; i < clique_size; ++i) b.push_back(g.AddVertex({}, {}));
  auto connect_all = [&](const std::vector<VertexId>& vs) {
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        EXPECT_TRUE(g.AddEdge(vs[i], vs[j], "E", {}).ok());
      }
    }
  };
  connect_all(a);
  connect_all(b);
  EXPECT_TRUE(g.AddEdge(a[0], b[0], "BRIDGE", {}).ok());
  if (left != nullptr) *left = a;
  if (right != nullptr) *right = b;
  return g;
}

size_t CommunityCount(const CommunityAssignment& assignment) {
  std::set<size_t> ids;
  for (const auto& [_, c] : assignment) ids.insert(c);
  return ids.size();
}

TEST(LabelPropagationTest, SeparatesCliques) {
  std::vector<VertexId> left;
  std::vector<VertexId> right;
  PropertyGraph g = TwoCliques(6, &left, &right);
  auto communities = LabelPropagation(g);
  ASSERT_TRUE(communities.ok());
  // All of the left clique share a label; same for the right; different.
  for (VertexId v : left) {
    EXPECT_EQ((*communities)[v], (*communities)[left[0]]);
  }
  for (VertexId v : right) {
    EXPECT_EQ((*communities)[v], (*communities)[right[0]]);
  }
  EXPECT_NE((*communities)[left[0]], (*communities)[right[0]]);
}

TEST(LabelPropagationTest, IsolatedVerticesKeepOwnLabels) {
  PropertyGraph g;
  g.AddVertex({}, {});
  g.AddVertex({}, {});
  auto communities = LabelPropagation(g);
  ASSERT_TRUE(communities.ok());
  EXPECT_EQ(CommunityCount(*communities), 2u);
}

TEST(LabelPropagationTest, Validation) {
  EXPECT_FALSE(LabelPropagation(TwoCliques(3), 0).ok());
}

TEST(LouvainTest, SeparatesCliques) {
  std::vector<VertexId> left;
  std::vector<VertexId> right;
  PropertyGraph g = TwoCliques(6, &left, &right);
  auto communities = Louvain(g);
  ASSERT_TRUE(communities.ok());
  for (VertexId v : left) {
    EXPECT_EQ((*communities)[v], (*communities)[left[0]]);
  }
  for (VertexId v : right) {
    EXPECT_EQ((*communities)[v], (*communities)[right[0]]);
  }
  EXPECT_NE((*communities)[left[0]], (*communities)[right[0]]);
}

TEST(LouvainTest, ModularityBeatsSingleCommunity) {
  PropertyGraph g = TwoCliques(5);
  auto communities = Louvain(g);
  ASSERT_TRUE(communities.ok());
  CommunityAssignment all_one;
  for (VertexId v : g.VertexIds()) all_one[v] = 0;
  EXPECT_GT(Modularity(g, *communities), Modularity(g, all_one) + 0.1);
}

TEST(LouvainTest, WeightedEdgesRespected) {
  // Chain a-b-c where a-b is heavy: Louvain should group a with b.
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const VertexId c = g.AddVertex({}, {});
  const VertexId d = g.AddVertex({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "E", {{"w", Value(10.0)}}).ok());
  ASSERT_TRUE(g.AddEdge(b, c, "E", {{"w", Value(0.1)}}).ok());
  ASSERT_TRUE(g.AddEdge(c, d, "E", {{"w", Value(10.0)}}).ok());
  LouvainOptions options;
  options.weight_property = "w";
  auto communities = Louvain(g, options);
  ASSERT_TRUE(communities.ok());
  EXPECT_EQ((*communities)[a], (*communities)[b]);
  EXPECT_EQ((*communities)[c], (*communities)[d]);
  EXPECT_NE((*communities)[a], (*communities)[c]);
}

TEST(ModularityTest, KnownValues) {
  PropertyGraph g = TwoCliques(4);
  CommunityAssignment perfect;
  const auto ids = g.VertexIds();
  for (size_t i = 0; i < ids.size(); ++i) perfect[ids[i]] = i < 4 ? 0 : 1;
  const double q = Modularity(g, perfect);
  EXPECT_GT(q, 0.3);
  EXPECT_LT(q, 0.6);
  CommunityAssignment singletons;
  for (size_t i = 0; i < ids.size(); ++i) singletons[ids[i]] = i;
  EXPECT_LT(Modularity(g, singletons), 0.0);
}

TEST(ModularityTest, EmptyGraphIsZero) {
  PropertyGraph g;
  EXPECT_DOUBLE_EQ(Modularity(g, {}), 0.0);
}

TEST(RenumberTest, DenseFromZeroByVertexOrder) {
  CommunityAssignment raw;
  raw[10] = 77;
  raw[20] = 5;
  raw[30] = 77;
  const CommunityAssignment out = Renumber(raw);
  EXPECT_EQ(out.at(10), 0u);
  EXPECT_EQ(out.at(20), 1u);
  EXPECT_EQ(out.at(30), 0u);
}

TEST(LouvainTest, DeterministicAcrossRuns) {
  PropertyGraph g = TwoCliques(5);
  auto a = Louvain(g);
  auto b = Louvain(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (VertexId v : g.VertexIds()) {
    EXPECT_EQ((*a)[v], (*b)[v]);
  }
}

}  // namespace
}  // namespace hygraph::graph
