// Deterministic replay of every checked-in fuzz corpus file through its
// harness. This is what keeps the fuzz/ subsystem honest in tier-1: the
// harnesses always compile, every seed (including regression reproducers
// for past findings, e.g. the parser stack overflow) runs on every build,
// and under -DHYGRAPH_SANITIZE the whole corpus executes under ASan+UBSan.
//
// HYGRAPH_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt and points at
// <repo>/fuzz/corpus.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/harness.h"

namespace hygraph::fuzz {
namespace {

using Harness = void (*)(const uint8_t*, size_t);

std::vector<std::filesystem::path> CorpusFiles(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(HYGRAPH_FUZZ_CORPUS_DIR) / name;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void ReplayCorpus(const std::string& name, Harness harness) {
  const auto files = CorpusFiles(name);
  // An empty corpus means the seeds were lost, not that there is nothing
  // to check.
  ASSERT_FALSE(files.empty()) << "no corpus files under fuzz/corpus/" << name;
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    harness(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  }
}

TEST(FuzzCorpusTest, WalReader) { ReplayCorpus("wal_reader", FuzzWalReader); }

TEST(FuzzCorpusTest, SerializeLoad) {
  ReplayCorpus("serialize_load", FuzzSerializeLoad);
}

TEST(FuzzCorpusTest, HgqlParse) { ReplayCorpus("hgql_parse", FuzzHgqlParse); }

TEST(FuzzCorpusTest, ChunkCodec) {
  ReplayCorpus("chunk_codec", FuzzChunkCodec);
}

TEST(FuzzCorpusTest, WireFrame) {
  ReplayCorpus("wire_frame", FuzzWireFrame);
}

TEST(FuzzCorpusTest, SegmentLoad) {
  ReplayCorpus("segment_load", FuzzSegmentLoad);
}

}  // namespace
}  // namespace hygraph::fuzz
