// End-to-end coverage of the query-governance layer: the HGQL TIMEOUT
// surface (SET TIMEOUT prefix / trailing clause), deadline enforcement
// through the executor, matcher, traversals and both storage
// architectures' scan loops, cooperative cancellation, points budgets,
// memory budgets, admission shedding, and the PROFILE cut marker.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/context.h"
#include "common/governor.h"
#include "graph/pattern.h"
#include "graph/property_graph.h"
#include "graph/traversal.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/profile.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"
#include "ts/hypertable.h"

namespace hygraph::query {
namespace {

// ---- parser surface --------------------------------------------------------

TEST(TimeoutParseTest, SetTimeoutPrefixArmsTheQuery) {
  auto ast = Parse("SET TIMEOUT 500 MATCH (n) RETURN n.v");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->timeout_ms, 500u);
  EXPECT_EQ(ast->mode, QueryMode::kNormal);
}

TEST(TimeoutParseTest, PrefixComposesWithExplainAndProfile) {
  auto explain = Parse("SET TIMEOUT 100 EXPLAIN MATCH (n) RETURN n.v");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_EQ(explain->mode, QueryMode::kExplain);
  EXPECT_EQ(explain->timeout_ms, 100u);

  auto profile = Parse("SET TIMEOUT 100 PROFILE MATCH (n) RETURN n.v");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->mode, QueryMode::kProfile);
  EXPECT_EQ(profile->timeout_ms, 100u);
}

TEST(TimeoutParseTest, TrailingClauseAfterLimit) {
  auto ast = Parse("MATCH (n) RETURN n.v LIMIT 5 TIMEOUT 250");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->limit, 5u);
  EXPECT_EQ(ast->timeout_ms, 250u);
}

TEST(TimeoutParseTest, ClauseWinsOverPrefix) {
  auto ast = Parse("SET TIMEOUT 100 MATCH (n) RETURN n.v TIMEOUT 2000");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  EXPECT_EQ(ast->timeout_ms, 2000u);
}

TEST(TimeoutParseTest, RejectsAbsurdTimeouts) {
  // Zero, negative, non-integer, missing, and beyond-the-cap literals are
  // all parse errors, not silently clamped values.
  EXPECT_FALSE(Parse("MATCH (n) RETURN n.v TIMEOUT 0").ok());
  EXPECT_FALSE(Parse("MATCH (n) RETURN n.v TIMEOUT -5").ok());
  EXPECT_FALSE(Parse("MATCH (n) RETURN n.v TIMEOUT 1.5").ok());
  EXPECT_FALSE(Parse("MATCH (n) RETURN n.v TIMEOUT").ok());
  EXPECT_FALSE(Parse("SET TIMEOUT MATCH (n) RETURN n.v").ok());
  // One past the 24h cap.
  EXPECT_FALSE(Parse("MATCH (n) RETURN n.v TIMEOUT 86400001").ok());
  // Larger than int64: the lexer's overflow detection rejects it first.
  EXPECT_FALSE(
      Parse("SET TIMEOUT 99999999999999999999 MATCH (n) RETURN n.v").ok());
  // At the cap is fine.
  EXPECT_TRUE(Parse("MATCH (n) RETURN n.v TIMEOUT 86400000").ok());
}

TEST(TimeoutParseTest, PlanCarriesAndRendersTheTimeout) {
  auto ast = Parse("SET TIMEOUT 750 MATCH (n) RETURN n.v");
  ASSERT_TRUE(ast.ok());
  auto plan = CompileQuery(*ast);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->timeout_ms, 750u);
  EXPECT_NE(plan->ToString().find("timeout=750ms"), std::string::npos)
      << plan->ToString();
}

// ---- execution -------------------------------------------------------------

// A pattern whose search space is combinatorial: three unconstrained
// variables over `n` vertices is ~n^3 candidate steps, far beyond what any
// deadline in the test allows — guaranteeing the cut happens mid-search.
std::unique_ptr<storage::AllInGraphStore> WideOpenStore(int n = 300) {
  auto store = std::make_unique<storage::AllInGraphStore>();
  graph::PropertyGraph* g = store->mutable_topology();
  for (int i = 0; i < n; ++i) {
    g->AddVertex({"V"}, {{"id", Value(int64_t{i})}});
  }
  return store;
}

constexpr char kExplosiveQuery[] =
    "MATCH (a), (b), (c) RETURN a.id TIMEOUT 250";

TEST(DeadlineExecutionTest, TimeoutCutsTheQueryWithinTwiceTheDeadline) {
  auto store = WideOpenStore();
  const obs::Clock* clock = obs::SystemClock::Instance();
  const uint64_t start = clock->NowNanos();
  auto result = Execute(*store, kExplosiveQuery);
  const uint64_t elapsed_ms = (clock->NowNanos() - start) / 1'000'000;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // The acceptance bound: enforcement granularity is one checkpoint
  // interval, so the query must die well within 2x its deadline.
  EXPECT_LT(elapsed_ms, 500u);
}

TEST(DeadlineExecutionTest, CancellationStopsTheQuery) {
  auto store = WideOpenStore();
  auto ast = Parse("MATCH (a), (b), (c) RETURN a.id");
  ASSERT_TRUE(ast.ok());
  auto plan = CompileQuery(*ast);
  ASSERT_TRUE(plan.ok());

  QueryContext ctx;
  ctx.Cancel();  // as if another thread cancelled just before we ran
  auto result = RunPlan(*store, *plan, nullptr, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST(DeadlineExecutionTest, PointsBudgetBoundsTheSearch) {
  auto store = WideOpenStore(100);
  auto ast = Parse("MATCH (a), (b), (c) RETURN a.id");
  ASSERT_TRUE(ast.ok());
  auto plan = CompileQuery(*ast);
  ASSERT_TRUE(plan.ok());

  QueryContext ctx;
  ctx.SetPointsBudget(10'000);  // far below the ~10^6 candidate steps
  auto result = RunPlan(*store, *plan, nullptr, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_GE(ctx.charged(), 10'000u);
}

TEST(DeadlineExecutionTest, ProfileMarksWhereTheQueryWasCut) {
  auto store = WideOpenStore(100);
  auto ast = Parse("MATCH (a), (b), (c) RETURN a.id");
  ASSERT_TRUE(ast.ok());
  auto plan = CompileQuery(*ast);
  ASSERT_TRUE(plan.ok());

  QueryContext ctx;
  ctx.Cancel();
  obs::Tracer tracer;
  auto result = RunPlan(*store, *plan, &tracer, &ctx);
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.status().IsCancelled());

  // The execute span carries the cut marker; the spans that ran up to the
  // cut are still in the tree.
  ASSERT_EQ(tracer.root().children.size(), 1u);
  const obs::TraceNode& execute = tracer.root().children.front();
  EXPECT_EQ(execute.name, "execute");
  auto it = execute.counters.find("cut:cancelled");
  ASSERT_NE(it, execute.counters.end()) << execute.ToString();
  EXPECT_EQ(it->second, 1u);
}

TEST(DeadlineExecutionTest, ProfilePlanReturnsTheCutTreeInsteadOfErroring) {
  auto store = WideOpenStore();
  auto ast = Parse(kExplosiveQuery);
  ASSERT_TRUE(ast.ok());
  auto plan = CompileQuery(*ast);
  ASSERT_TRUE(plan.ok());

  auto profiled = ProfilePlan(*store, *plan);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  EXPECT_TRUE(profiled->was_cut());
  EXPECT_TRUE(profiled->cut.IsDeadlineExceeded()) << profiled->cut.ToString();
  EXPECT_TRUE(profiled->result.rows.empty());
  EXPECT_NE(profiled->ToString().find("CUT "), std::string::npos)
      << profiled->ToString();
  // The rendered tree still shows the operators that ran.
  EXPECT_NE(profiled->ToString().find("execute"), std::string::npos);
}

TEST(DeadlineExecutionTest, AdmissionGateShedsNewQueries) {
  ResourceGovernor* governor = ResourceGovernor::Global();
  governor->SetAdmissionHighWater(1);
  ASSERT_TRUE(governor->Reserve(2).ok());

  auto store = WideOpenStore(5);
  auto result = Execute(*store, "MATCH (n) RETURN n.id");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();

  governor->Release(2);
  governor->SetAdmissionHighWater(0);
  EXPECT_TRUE(Execute(*store, "MATCH (n) RETURN n.id").ok());
}

// ---- deep scan loops -------------------------------------------------------

// The scan tests arm a deadline with a fake clock that jumps past due on
// its first re-read, so the scan is cut at its first checkpoint,
// deterministically and without sleeping.
TEST(DeadlineScanTest, HypertableScanHonorsTheInstalledContext) {
  ts::HypertableStore table;
  const SeriesId id = table.Create("s");
  for (int i = 0; i < 5'000; ++i) {
    ASSERT_TRUE(table.Insert(id, i * kMinute, 1.0 * i).ok());
  }

  QueryContext ctx;
  uint64_t now = 0;
  ctx.SetTimeout(1, [now]() mutable {
    now += 10'000'000;
    return now;
  });
  QueryContext::Scope scope(&ctx);
  auto scan = table.Scan(id, Interval::All());
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsDeadlineExceeded()) << scan.status().ToString();
}

TEST(DeadlineScanTest, HypertableMaterializeRespectsTheMemoryBudget) {
  ts::HypertableStore table;
  const SeriesId id = table.Create("s");
  for (int i = 0; i < 5'000; ++i) {
    ASSERT_TRUE(table.Insert(id, i * kMinute, 1.0 * i).ok());
  }

  ResourceGovernor governor;
  governor.SetBudget(1024);  // far below 5000 * sizeof(Sample)
  QueryContext ctx;
  ctx.AttachGovernor(&governor);
  QueryContext::Scope scope(&ctx);
  auto series = table.Materialize(id, Interval::All());
  ASSERT_FALSE(series.ok());
  EXPECT_TRUE(series.status().IsResourceExhausted())
      << series.status().ToString();
  // Nothing leaks: the failed reservation held nothing back.
  ctx.AttachGovernor(nullptr);
  EXPECT_EQ(governor.reserved(), 0u);
}

TEST(DeadlineScanTest, TraversalsHonorTheContext) {
  graph::PropertyGraph g;
  // A long chain so the BFS/DFS/Dijkstra frontiers see many pops.
  graph::VertexId prev = g.AddVertex({"V"}, {});
  const graph::VertexId source = prev;
  for (int i = 1; i < 3'000; ++i) {
    const graph::VertexId next = g.AddVertex({"V"}, {});
    ASSERT_TRUE(g.AddEdge(prev, next, "e", {}).ok());
    prev = next;
  }

  QueryContext cancelled;
  cancelled.Cancel();
  graph::TraversalOptions options;
  options.context = &cancelled;

  auto bfs = graph::Bfs(g, source, options);
  ASSERT_FALSE(bfs.ok());
  EXPECT_TRUE(bfs.status().IsCancelled());

  auto dfs = graph::DfsPreorder(g, source, options);
  ASSERT_FALSE(dfs.ok());
  EXPECT_TRUE(dfs.status().IsCancelled());

  auto path = graph::FindShortestPath(g, source, prev, "", options);
  ASSERT_FALSE(path.ok());
  EXPECT_TRUE(path.status().IsCancelled());

  // Without a context everything still works.
  graph::TraversalOptions plain;
  EXPECT_TRUE(graph::Bfs(g, source, plain).ok());
}

TEST(DeadlineScanTest, PatternMatcherChargesPerCandidate) {
  graph::PropertyGraph g;
  for (int i = 0; i < 200; ++i) g.AddVertex({"V"}, {});

  graph::Pattern pattern;
  pattern.AddVertex("a").AddVertex("b");

  QueryContext ctx;
  ctx.SetPointsBudget(500);
  graph::MatchOptions options;
  options.context = &ctx;
  auto matches = graph::MatchPattern(g, pattern, options);
  ASSERT_FALSE(matches.ok());
  EXPECT_TRUE(matches.status().IsResourceExhausted())
      << matches.status().ToString();
}

// The polyglot architecture routes ts_* scans through the hypertable; the
// all-in-graph architecture sweeps properties. Both must honor a deadline
// reached mid-scan (here: budget, for determinism). The polyglot store
// runs without the chunk cache — with it, a fully-covered aggregate is
// answered from per-chunk partials, which is legitimately too little work
// to trip any budget.
TEST(DeadlineScanTest, BothArchitecturesCutSeriesScans) {
  for (const bool polyglot : {false, true}) {
    SCOPED_TRACE(polyglot ? "polyglot" : "all_in_graph");
    std::unique_ptr<QueryBackend> store;
    if (polyglot) {
      ts::HypertableOptions ts_options;
      ts_options.enable_chunk_cache = false;
      store = std::make_unique<storage::PolyglotStore>(ts_options);
    } else {
      store = std::make_unique<storage::AllInGraphStore>();
    }
    const graph::VertexId v =
        store->mutable_topology()->AddVertex({"V"}, {{"id", Value(1)}});
    for (int i = 0; i < 4'000; ++i) {
      ASSERT_TRUE(store->AppendVertexSample(v, "load", i * kMinute, 1.0).ok());
    }

    auto ast = Parse("MATCH (n:V) RETURN ts_sum(n.load, 0, 900000000)");
    ASSERT_TRUE(ast.ok());
    auto plan = CompileQuery(*ast);
    ASSERT_TRUE(plan.ok());

    QueryContext ctx;
    ctx.SetPointsBudget(1'000);  // < 4000 samples
    auto result = RunPlan(*store, *plan, nullptr, &ctx);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsResourceExhausted())
        << result.status().ToString();
  }
}

}  // namespace
}  // namespace hygraph::query
