#include "analytics/pattern_mining.h"

#include <gtest/gtest.h>

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

ts::MultiSeries Trend(double slope_per_hour, size_t n = 24) {
  ts::MultiSeries ms("s", {"v"});
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(ms.AppendRow(static_cast<Timestamp>(i) * kHour,
                             {slope_per_hour * static_cast<double>(i)})
                    .ok());
  }
  return ms;
}

// Users -> Cards -> Merchants, twice, plus one odd edge.
HyGraph MakeWorld() {
  HyGraph hg;
  for (int i = 0; i < 2; ++i) {
    const VertexId user = *hg.AddPgVertex({"User"}, {});
    const VertexId card = *hg.AddTsVertex({"Card"}, Trend(2.0));
    const VertexId merchant = *hg.AddPgVertex({"Merchant"}, {});
    EXPECT_TRUE(hg.AddPgEdge(user, card, "USES", {}).ok());
    EXPECT_TRUE(hg.AddPgEdge(card, merchant, "TX", {}).ok());
  }
  const VertexId bank = *hg.AddPgVertex({"Bank"}, {});
  const VertexId user0 = hg.structure().VerticesWithLabel("User")[0];
  EXPECT_TRUE(hg.AddPgEdge(bank, user0, "SERVES", {}).ok());
  return hg;
}

TEST(PatternMiningTest, FindsFrequentEdgePatterns) {
  HyGraph hg = MakeWorld();
  MiningOptions options;
  options.min_support = 2;
  options.include_chains = false;
  auto patterns = MineFrequentPatterns(hg, options);
  ASSERT_TRUE(patterns.ok()) << patterns.status().ToString();
  ASSERT_EQ(patterns->size(), 2u);
  EXPECT_EQ((*patterns)[0].support, 2u);
  // Deterministic tie-break: alphabetical shape.
  EXPECT_EQ((*patterns)[0].shape, "Card-[TX]->Merchant");
  EXPECT_EQ((*patterns)[1].shape, "User-[USES]->Card");
}

TEST(PatternMiningTest, ChainsMined) {
  HyGraph hg = MakeWorld();
  MiningOptions options;
  options.min_support = 2;
  options.include_chains = true;
  auto patterns = MineFrequentPatterns(hg, options);
  ASSERT_TRUE(patterns.ok());
  bool found_chain = false;
  for (const FrequentPattern& p : *patterns) {
    if (p.shape == "User-[USES]->Card-[TX]->Merchant") {
      found_chain = true;
      EXPECT_EQ(p.support, 2u);
    }
  }
  EXPECT_TRUE(found_chain);
}

TEST(PatternMiningTest, SupportThresholdFilters) {
  HyGraph hg = MakeWorld();
  MiningOptions options;
  options.min_support = 1;
  options.include_chains = false;
  auto all = MineFrequentPatterns(hg, options);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);  // includes Bank-[SERVES]->User once
  options.min_support = 3;
  auto none = MineFrequentPatterns(hg, options);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(PatternMiningTest, TrendAnnotationFromTsMembers) {
  HyGraph hg = MakeWorld();
  MiningOptions options;
  options.min_support = 2;
  options.include_chains = false;
  auto patterns = MineFrequentPatterns(hg, options);
  ASSERT_TRUE(patterns.ok());
  // Card participates with slope 2/hour = 48/day.
  for (const FrequentPattern& p : *patterns) {
    EXPECT_GT(p.trend_samples, 0u);
    EXPECT_NEAR(p.mean_trend, 48.0, 1.0);
  }
}

TEST(PatternMiningTest, NoSeriesMeansZeroTrend) {
  HyGraph hg;
  const VertexId a = *hg.AddPgVertex({"A"}, {});
  const VertexId b = *hg.AddPgVertex({"B"}, {});
  ASSERT_TRUE(hg.AddPgEdge(a, b, "E", {}).ok());
  MiningOptions options;
  options.min_support = 1;
  auto patterns = MineFrequentPatterns(hg, options);
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns->size(), 1u);
  EXPECT_EQ((*patterns)[0].trend_samples, 0u);
  EXPECT_DOUBLE_EQ((*patterns)[0].mean_trend, 0.0);
}

TEST(PatternMiningTest, SortedBySupport) {
  HyGraph hg = MakeWorld();
  MiningOptions options;
  options.min_support = 1;
  auto patterns = MineFrequentPatterns(hg, options);
  ASSERT_TRUE(patterns.ok());
  for (size_t i = 1; i < patterns->size(); ++i) {
    EXPECT_GE((*patterns)[i - 1].support, (*patterns)[i].support);
  }
}

TEST(PatternMiningTest, Validation) {
  MiningOptions bad;
  bad.min_support = 0;
  EXPECT_FALSE(MineFrequentPatterns(MakeWorld(), bad).ok());
}

}  // namespace
}  // namespace hygraph::analytics
