#include "analytics/corr_reach.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

ts::MultiSeries Sine(double phase, size_t n = 60) {
  ts::MultiSeries ms("s", {"v"});
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(ms.AppendRow(static_cast<Timestamp>(i) * kMinute,
                             {std::sin(static_cast<double>(i) * 0.3 + phase)})
                    .ok());
  }
  return ms;
}

// Chain a - b - c - d where a,b,c are in phase and d is anti-phase:
// correlation-constrained reachability from a should stop at c.
class CorrReachTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *hg_.AddTsVertex({"S"}, Sine(0.0));
    b_ = *hg_.AddTsVertex({"S"}, Sine(0.05));
    c_ = *hg_.AddTsVertex({"S"}, Sine(0.1));
    d_ = *hg_.AddTsVertex({"S"}, Sine(3.14159265));
    ASSERT_TRUE(hg_.AddPgEdge(a_, b_, "LINK", {}).ok());
    ASSERT_TRUE(hg_.AddPgEdge(b_, c_, "LINK", {}).ok());
    ASSERT_TRUE(hg_.AddPgEdge(c_, d_, "LINK", {}).ok());
  }

  HyGraph hg_;
  VertexId a_, b_, c_, d_;
};

TEST_F(CorrReachTest, StopsAtDecorrelatedHop) {
  CorrReachOptions options;
  options.min_correlation = 0.8;
  auto hits = CorrelationReachability(hg_, a_, options);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_EQ(hits->size(), 3u);
  EXPECT_EQ((*hits)[0].vertex, a_);
  EXPECT_EQ((*hits)[0].depth, 0u);
  EXPECT_EQ((*hits)[1].vertex, b_);
  EXPECT_GT((*hits)[1].hop_correlation, 0.8);
  EXPECT_EQ((*hits)[2].vertex, c_);
}

TEST_F(CorrReachTest, NegativeThresholdReachesEverything) {
  CorrReachOptions options;
  options.min_correlation = -1.0;
  auto hits = CorrelationReachability(hg_, a_, options);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 4u);
}

TEST_F(CorrReachTest, TraversesEdgesBothWays) {
  CorrReachOptions options;
  options.min_correlation = 0.8;
  auto hits = CorrelationReachability(hg_, c_, options);
  ASSERT_TRUE(hits.ok());
  // From c: backwards to b then a (in-phase); d blocked.
  EXPECT_EQ(hits->size(), 3u);
}

TEST_F(CorrReachTest, MaxDepthRespected) {
  CorrReachOptions options;
  options.min_correlation = 0.8;
  options.max_depth = 1;
  auto hits = CorrelationReachability(hg_, a_, options);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

TEST_F(CorrReachTest, EdgeLabelFilter) {
  CorrReachOptions options;
  options.min_correlation = 0.8;
  options.edge_label = "OTHER";
  auto hits = CorrelationReachability(hg_, a_, options);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);  // just the source
}

TEST_F(CorrReachTest, VerticesWithoutSeriesBlock) {
  // Insert a PG vertex (no series property) between a and a new sensor.
  const VertexId gap = *hg_.AddPgVertex({"Hub"}, {});
  const VertexId e = *hg_.AddTsVertex({"S"}, Sine(0.0));
  ASSERT_TRUE(hg_.AddPgEdge(a_, gap, "LINK", {}).ok());
  ASSERT_TRUE(hg_.AddPgEdge(gap, e, "LINK", {}).ok());
  CorrReachOptions options;
  options.min_correlation = 0.8;
  auto hits = CorrelationReachability(hg_, a_, options);
  ASSERT_TRUE(hits.ok());
  for (const CorrReachHit& hit : *hits) {
    EXPECT_NE(hit.vertex, gap);
    EXPECT_NE(hit.vertex, e);
  }
}

TEST_F(CorrReachTest, PgVertexWithSeriesPropertyParticipates) {
  core::HyGraph hg;
  const VertexId x = *hg.AddPgVertex({"S"}, {});
  const VertexId y = *hg.AddPgVertex({"S"}, {});
  ASSERT_TRUE(hg.SetVertexSeriesProperty(x, "history", Sine(0.0)).ok());
  ASSERT_TRUE(hg.SetVertexSeriesProperty(y, "history", Sine(0.02)).ok());
  ASSERT_TRUE(hg.AddPgEdge(x, y, "LINK", {}).ok());
  CorrReachOptions options;
  options.min_correlation = 0.9;
  auto hits = CorrelationReachability(hg, x, options);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

TEST_F(CorrReachTest, Validation) {
  EXPECT_FALSE(CorrelationReachability(hg_, 999).ok());
  CorrReachOptions bad;
  bad.min_correlation = 2.0;
  EXPECT_FALSE(CorrelationReachability(hg_, a_, bad).ok());
}

}  // namespace
}  // namespace hygraph::analytics
