#include "ts/chunk_codec.h"

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hygraph::ts {
namespace {

// Round-trips `samples` through the codec and requires bit-exact equality —
// timestamps compared as int64, values compared as raw bit patterns so NaN
// payloads and -0.0 count too.
void ExpectBitExactRoundTrip(const std::vector<Sample>& samples) {
  const std::string bytes = EncodeChunk(samples);
  auto decoded = DecodeChunk(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ((*decoded)[i].t, samples[i].t) << "sample " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>((*decoded)[i].value),
              std::bit_cast<uint64_t>(samples[i].value))
        << "sample " << i;
  }
  // The wide fast-path decoder must agree bit for bit with the streaming
  // reference on every accepted input.
  std::vector<Sample> wide;
  Status ws = DecodeChunkWide(bytes, &wide);
  ASSERT_TRUE(ws.ok()) << ws.ToString();
  ASSERT_EQ(wide.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(wide[i].t, samples[i].t) << "wide sample " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(wide[i].value),
              std::bit_cast<uint64_t>(samples[i].value))
        << "wide sample " << i;
  }
}

// Both decoders over the same (possibly corrupt) bytes: identical
// accept/reject verdicts, and bit-identical samples on accept.
void ExpectWideMatchesScalar(std::string_view bytes) {
  auto scalar = DecodeChunk(bytes);
  std::vector<Sample> wide;
  const Status ws = DecodeChunkWide(bytes, &wide);
  ASSERT_EQ(scalar.ok(), ws.ok())
      << "scalar: " << scalar.status().ToString()
      << " wide: " << ws.ToString();
  if (!scalar.ok()) {
    EXPECT_EQ(ws.code(), StatusCode::kCorruption);
    EXPECT_TRUE(wide.empty());
    return;
  }
  ASSERT_EQ(wide.size(), scalar->size());
  for (size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(wide[i].t, (*scalar)[i].t) << "sample " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(wide[i].value),
              std::bit_cast<uint64_t>((*scalar)[i].value))
        << "sample " << i;
  }
}

TEST(ChunkCodecTest, EmptyChunk) {
  ExpectBitExactRoundTrip({});
  EXPECT_EQ(EncodeChunk({}).size(), 1u);  // just varint(0)
}

TEST(ChunkCodecTest, SingleSample) {
  ExpectBitExactRoundTrip({{1700000000000, 42.5}});
  ExpectBitExactRoundTrip({{0, 0.0}});
  ExpectBitExactRoundTrip({{-1, -0.0}});
}

TEST(ChunkCodecTest, ConstantValuesOnRegularGrid) {
  std::vector<Sample> samples;
  for (int i = 0; i < 288; ++i) {
    samples.push_back({1700000000000 + i * 300000LL, 17.0});
  }
  ExpectBitExactRoundTrip(samples);
  // Regular grid + constant value: ~1 timestamp byte and ~1 value bit per
  // sample after the header. The whole chunk must be far below raw size.
  const std::string bytes = EncodeChunk(samples);
  EXPECT_LT(bytes.size(), samples.size() * 2);
}

TEST(ChunkCodecTest, IntegralRandomWalk) {
  Rng rng(7);
  std::vector<Sample> samples;
  Timestamp t = 1700000000000;
  double v = 20.0;
  for (int i = 0; i < 288; ++i) {
    samples.push_back({t, v});
    t += 300000;
    v = std::max(0.0, v + static_cast<double>(rng.NextInRange(-3, 3)));
  }
  ExpectBitExactRoundTrip(samples);
  // The acceptance bar for sealed chunks: <= 4 bytes/sample on integral
  // counts over a regular grid (raw is 16).
  const std::string bytes = EncodeChunk(samples);
  EXPECT_LE(bytes.size(), samples.size() * 4);
}

TEST(ChunkCodecTest, FullEntropyDoublesStillRoundTrip) {
  Rng rng(11);
  std::vector<Sample> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back({static_cast<Timestamp>(i) * 61000,
                       rng.NextGaussian() * 1e6});
  }
  ExpectBitExactRoundTrip(samples);
}

TEST(ChunkCodecTest, IrregularGapsAndBackwardsTimestamps) {
  // The codec preserves order as given — including non-monotone input
  // (the hypertable always hands it sorted, but the codec must not care).
  std::vector<Sample> samples = {
      {100, 1.0}, {101, 2.0}, {5000000, 3.0}, {5000001, 4.0},
      {-400, 5.0}, {0, 6.0},  {999999999999, 7.0},
  };
  ExpectBitExactRoundTrip(samples);
}

TEST(ChunkCodecTest, ExtremeTimestamps) {
  std::vector<Sample> samples = {
      {std::numeric_limits<Timestamp>::min(), 1.0},
      {-1, 2.0},
      {0, 3.0},
      {std::numeric_limits<Timestamp>::max(), 4.0},
  };
  ExpectBitExactRoundTrip(samples);
}

TEST(ChunkCodecTest, SpecialValues) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // A NaN with a non-default payload must survive bit-exactly.
  const double payload_nan = std::bit_cast<double>(0x7ff80000deadbeefULL);
  std::vector<Sample> samples = {
      {0, nan},  {1, -inf}, {2, inf},         {3, 0.0},
      {4, -0.0}, {5, nan},  {6, payload_nan}, {7, 1e-308},
  };
  ExpectBitExactRoundTrip(samples);
}

TEST(ChunkCodecTest, RandomWalkSweep) {
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.NextBounded(400);
    std::vector<Sample> samples;
    Timestamp t = static_cast<Timestamp>(rng.Next() % 2000000000000ULL);
    double v = rng.NextGaussian() * 100.0;
    for (size_t i = 0; i < n; ++i) {
      samples.push_back({t, v});
      t += 1 + static_cast<Timestamp>(rng.NextBounded(600000));
      if (rng.NextBernoulli(0.3)) {
        v += rng.NextGaussian();  // full-entropy step
      } else if (rng.NextBernoulli(0.5)) {
        v += static_cast<double>(rng.NextInRange(-5, 5));  // integral step
      }  // else: repeat the value exactly
    }
    ExpectBitExactRoundTrip(samples);
  }
}

TEST(ChunkCodecTest, StreamingDecoderReportsCountAndDone) {
  std::vector<Sample> samples;
  for (int i = 0; i < 10; ++i) samples.push_back({i * 1000, i * 1.5});
  const std::string bytes = EncodeChunk(samples);  // must outlive the decoder
  ChunkDecoder decoder(bytes);
  EXPECT_EQ(decoder.count(), 10u);
  EXPECT_FALSE(decoder.done());
  Sample s;
  size_t produced = 0;
  while (decoder.Next(&s)) ++produced;
  EXPECT_EQ(produced, 10u);
  EXPECT_TRUE(decoder.done());
  EXPECT_TRUE(decoder.status().ok());
  EXPECT_FALSE(decoder.Next(&s));  // exhausted, stays exhausted
}

TEST(ChunkCodecTest, EveryStrictPrefixIsRejected) {
  std::vector<Sample> samples;
  for (int i = 0; i < 40; ++i) {
    samples.push_back({1700000000000 + i * 300000LL, 10.0 + i});
  }
  const std::string bytes = EncodeChunk(samples);
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DecodeChunk(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " accepted";
    ExpectWideMatchesScalar(bytes.substr(0, len));
  }
}

TEST(ChunkCodecTest, TrailingGarbageIsRejected) {
  std::vector<Sample> samples = {{0, 1.0}, {1000, 2.0}};
  std::string bytes = EncodeChunk(samples);
  bytes.push_back('\x01');
  EXPECT_FALSE(DecodeChunk(bytes).ok());
  EXPECT_FALSE(DecodeChunk(std::string("\x00garbage", 8)).ok());
}

TEST(ChunkCodecTest, HostileHeadersAreRejected) {
  // Declared count far beyond the actual payload: must fail fast instead
  // of allocating (count is bounded by the ts-column length).
  std::string hostile;
  hostile.push_back('\xff');  // varint continuation...
  for (int i = 0; i < 8; ++i) hostile.push_back('\xff');
  hostile.push_back('\x01');  // ...count = 2^63-ish
  hostile += std::string(16, 'a');
  auto decoded = DecodeChunk(hostile);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);

  // 11-byte varint (overlong) is rejected outright.
  EXPECT_FALSE(DecodeChunk(std::string(11, '\x80')).ok());
}

TEST(ChunkCodecTest, DecoderIsTotalOverMutatedBytes) {
  // Bit-flip sweep over a valid encoding: every mutation either decodes to
  // exactly `count` samples or is rejected with kCorruption — never UB,
  // never an over-long output. (The fuzzer explores this frontier harder.)
  std::vector<Sample> samples;
  for (int i = 0; i < 30; ++i) {
    samples.push_back({i * 60000, 3.0 + (i % 7)});
  }
  const std::string bytes = EncodeChunk(samples);
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      ChunkDecoder decoder(mutated);
      Sample s;
      size_t produced = 0;
      while (decoder.Next(&s)) ++produced;
      if (decoder.status().ok()) {
        EXPECT_EQ(produced, decoder.count());
      } else {
        EXPECT_EQ(decoder.status().code(), StatusCode::kCorruption);
      }
      // The wide decoder shares the exact accept/reject frontier.
      ExpectWideMatchesScalar(mutated);
    }
  }
}

TEST(ChunkCodecTest, WideDecoderMatchesScalarOnRandomBytes) {
  // Pure-noise inputs: totality and verdict parity with no valid framing
  // anywhere in sight.
  Rng rng(99);
  for (int round = 0; round < 2000; ++round) {
    std::string junk(rng.NextBounded(64), '\0');
    for (char& c : junk) c = static_cast<char>(rng.Next() & 0xff);
    ExpectWideMatchesScalar(junk);
  }
}

TEST(ChunkCodecTest, WideDecoderReusesScratchCapacity) {
  std::vector<Sample> big;
  for (int i = 0; i < 300; ++i) big.push_back({i * 1000, i * 0.5});
  const std::string big_bytes = EncodeChunk(big);
  const std::string small_bytes = EncodeChunk({{7, 7.0}});

  std::vector<Sample> scratch;
  ASSERT_TRUE(DecodeChunkWide(big_bytes, &scratch).ok());
  const size_t cap = scratch.capacity();
  ASSERT_TRUE(DecodeChunkWide(small_bytes, &scratch).ok());
  EXPECT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch.capacity(), cap);  // no shrink, no realloc

  // Failure leaves the scratch empty.
  ASSERT_FALSE(DecodeChunkWide("\x05junk", &scratch).ok());
  EXPECT_TRUE(scratch.empty());
}

}  // namespace
}  // namespace hygraph::ts
