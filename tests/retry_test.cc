#include "storage/retry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace hygraph::storage {
namespace {

// Records requested backoffs instead of sleeping — tests run in
// microseconds and the schedule is fully observable.
struct SleepRecorder {
  std::vector<uint64_t> naps;
  RetryPolicy::SleepFn fn() {
    return [this](uint64_t nanos) { naps.push_back(nanos); };
  }
};

TEST(RetryPolicyTest, FirstAttemptSuccessNeverSleeps) {
  SleepRecorder sleeps;
  RetryPolicy policy(RetryOptions{}, sleeps.fn());
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.naps.empty());
}

TEST(RetryPolicyTest, TransientFailuresAreRetriedUntilSuccess) {
  SleepRecorder sleeps;
  obs::MetricsRegistry metrics;
  obs::Counter* retries = metrics.counter("durable.retries");
  RetryPolicy policy(RetryOptions{}, sleeps.fn());
  int calls = 0;
  Status s = policy.Run(
      [&]() -> Status {
        ++calls;
        if (calls < 3) return Status::IOError("flaky disk");
        return Status::OK();
      },
      retries);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.naps.size(), 2u);  // one backoff before each re-attempt
  EXPECT_EQ(retries->value(), 2u);
}

TEST(RetryPolicyTest, ExhaustionReturnsTheLastError) {
  SleepRecorder sleeps;
  RetryOptions options;
  options.max_attempts = 4;
  RetryPolicy policy(options, sleeps.fn());
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::IOError("still broken #" + std::to_string(calls));
  });
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("#4"), std::string::npos) << s.ToString();
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(sleeps.naps.size(), 3u);
}

TEST(RetryPolicyTest, TerminalErrorsAreNotRetried) {
  SleepRecorder sleeps;
  RetryPolicy policy(RetryOptions{}, sleeps.fn());
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::Corruption("checksum mismatch");
  });
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.naps.empty());
}

TEST(RetryPolicyTest, OnlyIOErrorIsRetryable) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::IOError("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Corruption("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Unavailable("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::DeadlineExceeded("x")));
}

TEST(RetryPolicyTest, BackoffDoublesAndCapsWithoutJitter) {
  RetryOptions options;
  options.base_backoff_nanos = 1'000;
  options.max_backoff_nanos = 6'000;
  options.jitter = false;
  RetryPolicy policy(options, [](uint64_t) {});
  EXPECT_EQ(policy.BackoffNanos(0), 1'000u);
  EXPECT_EQ(policy.BackoffNanos(1), 2'000u);
  EXPECT_EQ(policy.BackoffNanos(2), 4'000u);
  EXPECT_EQ(policy.BackoffNanos(3), 6'000u);  // capped
  EXPECT_EQ(policy.BackoffNanos(62), 6'000u);
  EXPECT_EQ(policy.BackoffNanos(63), 6'000u);  // overflow guard
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministicPerSeed) {
  RetryOptions options;
  options.base_backoff_nanos = 1'000'000;
  options.max_backoff_nanos = 64'000'000;
  options.seed = 42;
  RetryPolicy a(options, [](uint64_t) {});
  RetryPolicy b(options, [](uint64_t) {});
  for (int retry = 0; retry < 6; ++retry) {
    const uint64_t nominal = std::min(options.max_backoff_nanos,
                                      options.base_backoff_nanos << retry);
    const uint64_t got = a.BackoffNanos(retry);
    // Half fixed + half jitter: always within [nominal/2, nominal).
    EXPECT_GE(got, nominal / 2);
    EXPECT_LT(got, nominal);
    // Same seed, same call sequence → identical schedule.
    EXPECT_EQ(got, b.BackoffNanos(retry));
  }
}

TEST(RetryPolicyTest, MaxAttemptsBelowOneStillRunsTheOpOnce) {
  RetryOptions options;
  options.max_attempts = 0;
  RetryPolicy policy(options, [](uint64_t) {});
  int calls = 0;
  Status s = policy.Run([&] {
    ++calls;
    return Status::IOError("x");
  });
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace hygraph::storage
