#include "graph/traversal.h"

#include <gtest/gtest.h>

namespace hygraph::graph {
namespace {

// A small directed chain with a branch:
//   0 -> 1 -> 2 -> 3
//        |         ^
//        +--> 4 ---+       (edge 4->3 labeled "FAST", weight 10)
// All other edges labeled "ROAD" with weight 1.
class TraversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 5; ++i) v_.push_back(g_.AddVertex({}, {}));
    auto road = [&](VertexId a, VertexId b, double w) {
      return *g_.AddEdge(a, b, "ROAD", {{"weight", Value(w)}});
    };
    road(v_[0], v_[1], 1);
    road(v_[1], v_[2], 1);
    road(v_[2], v_[3], 1);
    road(v_[1], v_[4], 1);
    fast_ = *g_.AddEdge(v_[4], v_[3], "FAST", {{"weight", Value(10.0)}});
  }

  PropertyGraph g_;
  std::vector<VertexId> v_;
  EdgeId fast_ = kInvalidEdgeId;
};

TEST_F(TraversalTest, BfsOrderAndDepths) {
  auto visits = Bfs(g_, v_[0]);
  ASSERT_TRUE(visits.ok());
  ASSERT_EQ(visits->size(), 5u);
  EXPECT_EQ((*visits)[0].vertex, v_[0]);
  EXPECT_EQ((*visits)[0].depth, 0u);
  EXPECT_EQ((*visits)[1].vertex, v_[1]);
  // Depth of v3 is 3 (via 2 or 4).
  for (const BfsVisit& visit : *visits) {
    if (visit.vertex == v_[3]) {
      EXPECT_EQ(visit.depth, 3u);
    }
  }
}

TEST_F(TraversalTest, BfsMaxDepth) {
  TraversalOptions options;
  options.max_depth = 1;
  auto visits = Bfs(g_, v_[0], options);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 2u);  // 0 and 1
}

TEST_F(TraversalTest, BfsDirectionIn) {
  TraversalOptions options;
  options.direction = TraversalDirection::kIn;
  auto visits = Bfs(g_, v_[3], options);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 5u);  // everything reaches 3
}

TEST_F(TraversalTest, BfsEdgeLabelFilter) {
  TraversalOptions options;
  options.edge_label = "ROAD";
  auto visits = Bfs(g_, v_[4], options);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 1u);  // FAST edge filtered out
}

TEST_F(TraversalTest, BfsUnknownSourceFails) {
  EXPECT_FALSE(Bfs(g_, 999).ok());
}

TEST_F(TraversalTest, DfsPreorderVisitsAll) {
  auto order = DfsPreorder(g_, v_[0]);
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), 5u);
  EXPECT_EQ((*order)[0], v_[0]);
  EXPECT_EQ((*order)[1], v_[1]);
  // DFS goes deep: after 1 comes 2 then 3 (first-neighbor first).
  EXPECT_EQ((*order)[2], v_[2]);
  EXPECT_EQ((*order)[3], v_[3]);
  EXPECT_EQ((*order)[4], v_[4]);
}

TEST_F(TraversalTest, Reachability) {
  EXPECT_TRUE(*IsReachable(g_, v_[0], v_[3]));
  EXPECT_FALSE(*IsReachable(g_, v_[3], v_[0]));  // directed
  EXPECT_TRUE(*IsReachable(g_, v_[2], v_[2]));
  TraversalOptions both;
  both.direction = TraversalDirection::kBoth;
  EXPECT_TRUE(*IsReachable(g_, v_[3], v_[0], both));
}

TEST_F(TraversalTest, KHopNeighbors) {
  auto hop2 = KHopNeighbors(g_, v_[0], 2);
  ASSERT_TRUE(hop2.ok());
  EXPECT_EQ(*hop2, (std::vector<VertexId>{v_[2], v_[4]}));
  auto hop0 = KHopNeighbors(g_, v_[0], 0);
  ASSERT_TRUE(hop0.ok());
  EXPECT_EQ(*hop0, (std::vector<VertexId>{v_[0]}));
}

TEST_F(TraversalTest, ShortestPathUnweighted) {
  auto path = FindShortestPath(g_, v_[0], v_[3]);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->total_weight, 3.0);
  EXPECT_EQ(path->vertices.size(), 4u);
  EXPECT_EQ(path->vertices.front(), v_[0]);
  EXPECT_EQ(path->vertices.back(), v_[3]);
  EXPECT_EQ(path->edges.size(), 3u);
}

TEST_F(TraversalTest, ShortestPathWeighted) {
  // Weighted: 0-1-2-3 costs 3; 0-1-4-3 costs 1+1+10 = 12.
  auto path = FindShortestPath(g_, v_[0], v_[3], "weight");
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->total_weight, 3.0);
  EXPECT_EQ(path->vertices[2], v_[2]);
}

TEST_F(TraversalTest, ShortestPathPrefersFastLaneWhenCheap) {
  // Make the FAST edge cheap: now 0-1-4-3 costs 1+1+0.5.
  ASSERT_TRUE(g_.SetEdgeProperty(fast_, "weight", Value(0.5)).ok());
  auto path = FindShortestPath(g_, v_[0], v_[3], "weight");
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->total_weight, 2.5);
  EXPECT_EQ(path->vertices[2], v_[4]);
}

TEST_F(TraversalTest, ShortestPathNoRoute) {
  const VertexId island = g_.AddVertex({}, {});
  EXPECT_FALSE(FindShortestPath(g_, v_[0], island).ok());
}

TEST_F(TraversalTest, ShortestPathSourceEqualsTarget) {
  auto path = FindShortestPath(g_, v_[2], v_[2]);
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->total_weight, 0.0);
  EXPECT_EQ(path->vertices, (std::vector<VertexId>{v_[2]}));
  EXPECT_TRUE(path->edges.empty());
}

TEST_F(TraversalTest, ShortestPathRejectsNegativeWeight) {
  ASSERT_TRUE(g_.SetEdgeProperty(fast_, "weight", Value(-1.0)).ok());
  TraversalOptions options;
  EXPECT_FALSE(FindShortestPath(g_, v_[0], v_[3], "weight", options).ok());
}

TEST_F(TraversalTest, MissingWeightDefaultsToOne) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "E", {}).ok());  // no weight property
  auto path = FindShortestPath(g, a, b, "weight");
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->total_weight, 1.0);
}

}  // namespace
}  // namespace hygraph::graph
