#include "temporal/temporal_pattern.h"

#include <gtest/gtest.h>

namespace hygraph::temporal {
namespace {

// Card c transacts with merchants m1, m2, m3; the first two TX edges start
// within 30 minutes of each other, the third a day later.
class TemporalPatternTest : public ::testing::Test {
 protected:
  void SetUp() override {
    c_ = *tpg_.AddVertex({"Card"}, {}, Interval::All());
    m1_ = *tpg_.AddVertex({"Merchant"}, {}, Interval::All());
    m2_ = *tpg_.AddVertex({"Merchant"}, {}, Interval::All());
    m3_ = *tpg_.AddVertex({"Merchant"}, {}, Interval::All());
    t1_ = *tpg_.AddEdge(c_, m1_, "TX", {{"amount", Value(1500)}},
                        Interval{kHour, kHour + kMinute});
    t2_ = *tpg_.AddEdge(c_, m2_, "TX", {{"amount", Value(2000)}},
                        Interval{kHour + 30 * kMinute,
                                 kHour + 31 * kMinute});
    t3_ = *tpg_.AddEdge(c_, m3_, "TX", {{"amount", Value(1800)}},
                        Interval{25 * kHour, 25 * kHour + kMinute});
  }

  graph::Pattern TwoTxPattern() {
    graph::Pattern p;
    p.AddVertex("c", "Card");
    p.AddVertex("m1", "Merchant");
    p.AddVertex("m2", "Merchant");
    p.AddEdge("c", "m1", "TX");
    p.AddEdge("c", "m2", "TX");
    return p;
  }

  TemporalPropertyGraph tpg_;
  VertexId c_, m1_, m2_, m3_;
  EdgeId t1_, t2_, t3_;
};

TEST_F(TemporalPatternTest, UnconstrainedMatchesAllPairs) {
  TemporalPattern pattern;
  pattern.structure = TwoTxPattern();
  auto matches = MatchTemporalPattern(tpg_, pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 6u);  // 3 merchants, ordered pairs
}

TEST_F(TemporalPatternTest, MaxEdgeSpanKeepsBurstOnly) {
  TemporalPattern pattern;
  pattern.structure = TwoTxPattern();
  pattern.max_edge_span = kHour;  // t1 and t2 are 30 min apart; t3 is a day
  auto matches = MatchTemporalPattern(tpg_, pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);  // (m1,m2) and (m2,m1)
  for (const TemporalMatch& m : *matches) {
    const VertexId a = m.match.vertices.at("m1");
    const VertexId b = m.match.vertices.at("m2");
    EXPECT_TRUE((a == m1_ && b == m2_) || (a == m2_ && b == m1_));
  }
}

TEST_F(TemporalPatternTest, EdgeWindowsFilterPerEdge) {
  TemporalPattern pattern;
  pattern.structure = TwoTxPattern();
  // First pattern edge must overlap hour 1; second must overlap hour 25.
  pattern.edge_windows = {Interval{kHour, 2 * kHour},
                          Interval{24 * kHour, 26 * kHour}};
  auto matches = MatchTemporalPattern(tpg_, pattern);
  ASSERT_TRUE(matches.ok());
  // m1 or m2 for the first slot, m3 for the second.
  EXPECT_EQ(matches->size(), 2u);
  for (const TemporalMatch& m : *matches) {
    EXPECT_EQ(m.match.vertices.at("m2"), m3_);
  }
}

TEST_F(TemporalPatternTest, EdgeWindowsArityValidated) {
  TemporalPattern pattern;
  pattern.structure = TwoTxPattern();
  pattern.edge_windows = {Interval::All()};  // 1 window for 2 edges
  EXPECT_FALSE(MatchTemporalPattern(tpg_, pattern).ok());
}

TEST_F(TemporalPatternTest, MonotoneEdgesEnforceTemporalOrder) {
  TemporalPattern pattern;
  pattern.structure = TwoTxPattern();
  pattern.require_monotone_edges = true;
  auto matches = MatchTemporalPattern(tpg_, pattern);
  ASSERT_TRUE(matches.ok());
  // Ordered pairs with non-decreasing start times: (m1,m2), (m1,m3),
  // (m2,m3) — the reversed pairs violate monotonicity.
  EXPECT_EQ(matches->size(), 3u);
}

TEST_F(TemporalPatternTest, JointValidityIsIntersection) {
  TemporalPattern pattern;
  graph::Pattern p;
  p.AddVertex("c", "Card");
  p.AddVertex("m", "Merchant");
  p.AddEdge("c", "m", "TX");
  pattern.structure = std::move(p);
  pattern.edge_windows = {Interval{kHour, kHour + kMinute}};
  auto matches = MatchTemporalPattern(tpg_, pattern);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ((*matches)[0].validity, (Interval{kHour, kHour + kMinute}));
}

TEST_F(TemporalPatternTest, VertexValidityConstrains) {
  // A merchant that expired before its TX edge's window cannot match —
  // construct a world where the merchant dies at hour 2.
  TemporalPropertyGraph tpg;
  const VertexId c = *tpg.AddVertex({"Card"}, {}, Interval::All());
  const VertexId m = *tpg.AddVertex({"Merchant"}, {}, Interval{0, 2 * kHour});
  ASSERT_TRUE(
      tpg.AddEdge(c, m, "TX", {}, Interval{kHour, kHour + kMinute}).ok());
  TemporalPattern pattern;
  pattern.structure.AddVertex("c", "Card");
  pattern.structure.AddVertex("m", "Merchant");
  pattern.structure.AddEdge("c", "m", "TX");
  auto matches = MatchTemporalPattern(tpg, pattern);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  // Joint validity clipped by the merchant's lifetime.
  EXPECT_LE((*matches)[0].validity.end, 2 * kHour);
}

TEST_F(TemporalPatternTest, LimitApplied) {
  TemporalPattern pattern;
  pattern.structure = TwoTxPattern();
  graph::MatchOptions options;
  options.limit = 2;
  auto matches = MatchTemporalPattern(tpg_, pattern, options);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);
}

}  // namespace
}  // namespace hygraph::temporal
