#include "ts/multiseries.h"

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

MultiSeries MakeWeather() {
  MultiSeries ms("weather", {"temp", "humidity"});
  EXPECT_TRUE(ms.AppendRow(10, {20.0, 0.5}).ok());
  EXPECT_TRUE(ms.AppendRow(20, {21.0, 0.6}).ok());
  EXPECT_TRUE(ms.AppendRow(30, {19.0, 0.7}).ok());
  return ms;
}

TEST(MultiSeriesTest, AppendRowValidatesArity) {
  MultiSeries ms("m", {"a", "b"});
  EXPECT_FALSE(ms.AppendRow(10, {1.0}).ok());
  EXPECT_FALSE(ms.AppendRow(10, {1.0, 2.0, 3.0}).ok());
  EXPECT_TRUE(ms.AppendRow(10, {1.0, 2.0}).ok());
}

TEST(MultiSeriesTest, AppendRowEnforcesChronology) {
  MultiSeries ms("m", {"a"});
  ASSERT_TRUE(ms.AppendRow(10, {1.0}).ok());
  EXPECT_FALSE(ms.AppendRow(10, {2.0}).ok());
  EXPECT_FALSE(ms.AppendRow(5, {2.0}).ok());
}

TEST(MultiSeriesTest, VariableExtraction) {
  MultiSeries ms = MakeWeather();
  auto temp = ms.Variable("temp");
  ASSERT_TRUE(temp.ok());
  EXPECT_EQ(temp->size(), 3u);
  EXPECT_DOUBLE_EQ(temp->at(1).value, 21.0);
  EXPECT_FALSE(ms.Variable("pressure").ok());
}

TEST(MultiSeriesTest, VariableIndex) {
  MultiSeries ms = MakeWeather();
  EXPECT_EQ(*ms.VariableIndex("humidity"), 1u);
  EXPECT_FALSE(ms.VariableIndex("x").ok());
}

TEST(MultiSeriesTest, AtAccess) {
  MultiSeries ms = MakeWeather();
  EXPECT_DOUBLE_EQ(ms.at(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(ms.at(2, 1), 0.7);
}

TEST(MultiSeriesTest, SlicePreservesColumns) {
  MultiSeries ms = MakeWeather();
  MultiSeries sub = ms.Slice(Interval{15, 30});
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 21.0);
  EXPECT_DOUBLE_EQ(sub.at(0, 1), 0.6);
  EXPECT_EQ(sub.variable_count(), 2u);
}

TEST(MultiSeriesTest, FromColumnsValidation) {
  auto ok = MultiSeries::FromColumns("m", {1, 2}, {"a"}, {{1.0, 2.0}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
  EXPECT_FALSE(
      MultiSeries::FromColumns("m", {1, 2}, {"a", "b"}, {{1.0, 2.0}}).ok());
  EXPECT_FALSE(MultiSeries::FromColumns("m", {1, 2}, {"a"}, {{1.0}}).ok());
  EXPECT_FALSE(
      MultiSeries::FromColumns("m", {2, 1}, {"a"}, {{1.0, 2.0}}).ok());
}

TEST(MultiSeriesTest, TimeSpan) {
  MultiSeries ms = MakeWeather();
  EXPECT_EQ(ms.TimeSpan().start, 10);
  EXPECT_EQ(ms.TimeSpan().end, 31);
  EXPECT_TRUE(MultiSeries("e", {"a"}).TimeSpan().empty());
}

TEST(MultiSeriesTest, VariableByIndexNamesSeries) {
  MultiSeries ms = MakeWeather();
  EXPECT_EQ(ms.VariableByIndex(0).name(), "weather.temp");
}

}  // namespace
}  // namespace hygraph::ts
