#include "common/guard_clean.h"
