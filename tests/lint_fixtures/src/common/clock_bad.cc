#include <chrono>
long ClockBad() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
