#include <thread>
void ThreadBad() {
  std::thread t([] {});
  t.join();
}
