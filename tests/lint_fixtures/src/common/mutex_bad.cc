#include <mutex>
std::mutex bad_mu;
