#include <cstdlib>
int RandBad() { return rand(); }
