#include <iostream>
void CoutBad() { std::cout << "x"; }
