void DeleteBad(int* p) {
  delete p;
}
