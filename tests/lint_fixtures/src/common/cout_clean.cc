#include <cstdio>
void CoutClean() { std::fprintf(stderr, "x"); }
