#include <thread>
void ThreadClean() {
  std::thread t([] {});  // NOLINT(hygraph-raw-thread): fixture escape
  t.join();
}
