#include <chrono>
#include <thread>
void SleepBad() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
