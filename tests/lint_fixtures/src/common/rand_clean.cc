int RandClean() { return 4; }
