int* NewBad() { return new int(7); }
