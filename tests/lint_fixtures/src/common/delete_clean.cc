#include <memory>
void DeleteClean(std::unique_ptr<int> p) { p.reset(); }
