int* NewClean() { return new int(7); }  // NOLINT(hygraph-naked-new)
