#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_
#endif
