#include "common/rand_clean.cc"
