#include <chrono>
#include <thread>
void SleepClean() {
  std::this_thread::sleep_for(  // NOLINT(hygraph-raw-sleep)
      std::chrono::milliseconds(1));
}
