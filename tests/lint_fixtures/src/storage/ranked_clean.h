#ifndef HYGRAPH_STORAGE_RANKED_CLEAN_H_
#define HYGRAPH_STORAGE_RANKED_CLEAN_H_

#include "common/sync.h"

namespace hygraph::storage {

class RankedClean {
 private:
  Mutex mu_{LockRank::kEnvState};
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_RANKED_CLEAN_H_
