#ifndef HYGRAPH_STORAGE_UNRANKED_BAD_H_
#define HYGRAPH_STORAGE_UNRANKED_BAD_H_

#include "common/sync.h"

namespace hygraph::storage {

class UnrankedBad {
 private:
  Mutex mu_;
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_UNRANKED_BAD_H_
