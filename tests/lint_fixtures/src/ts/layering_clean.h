#ifndef HYGRAPH_TS_LAYERING_CLEAN_H_
#define HYGRAPH_TS_LAYERING_CLEAN_H_

#include "common/guard_clean.h"

#endif  // HYGRAPH_TS_LAYERING_CLEAN_H_
