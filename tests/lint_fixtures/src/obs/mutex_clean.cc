#include <mutex>
std::mutex clean_mu;
