#ifndef HYGRAPH_OBS_LAYERING_BAD_H_
#define HYGRAPH_OBS_LAYERING_BAD_H_

#include "ts/series_stub.h"

#endif  // HYGRAPH_OBS_LAYERING_BAD_H_
