#include <chrono>
long ClockClean() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
