#include <sys/socket.h>
int SocketClean() {
  return socket(2, 1, 0);  // NOLINT(hygraph-raw-socket)
}
