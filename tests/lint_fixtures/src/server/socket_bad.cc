#include <sys/socket.h>
int SocketBad() {
  return socket(2, 1, 0);
}
