// Mirrors src/server/net.cc: the one location exempt from raw-socket.
#include <sys/socket.h>
int NetHome() {
  return socket(2, 1, 0);
}
