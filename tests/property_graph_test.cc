#include "graph/property_graph.h"

#include <gtest/gtest.h>

namespace hygraph::graph {
namespace {

TEST(PropertyGraphTest, AddAndGetVertex) {
  PropertyGraph g;
  const VertexId v = g.AddVertex({"User"}, {{"name", Value("Alice")}});
  EXPECT_TRUE(g.HasVertex(v));
  EXPECT_EQ(g.VertexCount(), 1u);
  const Vertex* vertex = *g.GetVertex(v);
  EXPECT_TRUE(vertex->HasLabel("User"));
  EXPECT_FALSE(vertex->HasLabel("Admin"));
  EXPECT_EQ(*g.GetVertexProperty(v, "name"), Value("Alice"));
  EXPECT_FALSE(g.GetVertexProperty(v, "missing").ok());
}

TEST(PropertyGraphTest, AddEdgeValidatesEndpoints) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  auto e = g.AddEdge(a, b, "KNOWS", {{"since", Value(2020)}});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_EQ((*g.GetEdge(*e))->src, a);
  EXPECT_EQ((*g.GetEdge(*e))->dst, b);
  EXPECT_FALSE(g.AddEdge(a, 999, "X", {}).ok());
  EXPECT_FALSE(g.AddEdge(999, b, "X", {}).ok());
}

TEST(PropertyGraphTest, AdjacencyMaintained) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const VertexId c = g.AddVertex({}, {});
  const EdgeId ab = *g.AddEdge(a, b, "E", {});
  const EdgeId ac = *g.AddEdge(a, c, "E", {});
  const EdgeId ba = *g.AddEdge(b, a, "E", {});
  EXPECT_EQ(g.OutEdges(a), (std::vector<EdgeId>{ab, ac}));
  EXPECT_EQ(g.InEdges(a), (std::vector<EdgeId>{ba}));
  EXPECT_EQ(g.OutDegree(a), 2u);
  EXPECT_EQ(g.InDegree(a), 1u);
  EXPECT_EQ(g.Degree(a), 3u);
  EXPECT_EQ(g.OutNeighbors(a), (std::vector<VertexId>{b, c}));
  EXPECT_EQ(g.InNeighbors(a), (std::vector<VertexId>{b}));
  EXPECT_EQ(g.Neighbors(a).size(), 3u);
}

TEST(PropertyGraphTest, RemoveEdge) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const EdgeId e = *g.AddEdge(a, b, "E", {});
  EXPECT_TRUE(g.RemoveEdge(e).ok());
  EXPECT_FALSE(g.HasEdge(e));
  EXPECT_EQ(g.EdgeCount(), 0u);
  EXPECT_TRUE(g.OutEdges(a).empty());
  EXPECT_TRUE(g.InEdges(b).empty());
  EXPECT_FALSE(g.RemoveEdge(e).ok());  // double remove fails
}

TEST(PropertyGraphTest, RemoveVertexCascades) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({"User"}, {});
  const VertexId b = g.AddVertex({"User"}, {});
  const EdgeId ab = *g.AddEdge(a, b, "E", {});
  const EdgeId ba = *g.AddEdge(b, a, "E", {});
  EXPECT_TRUE(g.RemoveVertex(a).ok());
  EXPECT_FALSE(g.HasVertex(a));
  EXPECT_FALSE(g.HasEdge(ab));
  EXPECT_FALSE(g.HasEdge(ba));
  EXPECT_EQ(g.VertexCount(), 1u);
  EXPECT_EQ(g.EdgeCount(), 0u);
  EXPECT_EQ(g.VerticesWithLabel("User"), (std::vector<VertexId>{b}));
}

TEST(PropertyGraphTest, IdsNeverReused) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  EXPECT_TRUE(g.RemoveVertex(a).ok());
  const VertexId b = g.AddVertex({}, {});
  EXPECT_NE(a, b);
}

TEST(PropertyGraphTest, LabelIndex) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({"User", "Admin"}, {});
  const VertexId b = g.AddVertex({"User"}, {});
  g.AddVertex({"Merchant"}, {});
  EXPECT_EQ(g.VerticesWithLabel("User"), (std::vector<VertexId>{a, b}));
  EXPECT_EQ(g.VerticesWithLabel("Admin"), (std::vector<VertexId>{a}));
  EXPECT_TRUE(g.VerticesWithLabel("Nope").empty());
}

TEST(PropertyGraphTest, SetPropertyOverwrites) {
  PropertyGraph g;
  const VertexId v = g.AddVertex({}, {{"x", Value(1)}});
  EXPECT_TRUE(g.SetVertexProperty(v, "x", Value(2)).ok());
  EXPECT_EQ(*g.GetVertexProperty(v, "x"), Value(2));
  EXPECT_FALSE(g.SetVertexProperty(999, "x", Value(1)).ok());
}

TEST(PropertyGraphTest, EdgeProperties) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const EdgeId e = *g.AddEdge(a, b, "E", {});
  EXPECT_TRUE(g.SetEdgeProperty(e, "w", Value(1.5)).ok());
  EXPECT_EQ(*g.GetEdgeProperty(e, "w"), Value(1.5));
  EXPECT_FALSE(g.GetEdgeProperty(e, "missing").ok());
}

TEST(PropertyGraphTest, PropertyIndexLookup) {
  PropertyGraph g;
  for (int i = 0; i < 100; ++i) {
    g.AddVertex({"V"}, {{"mod", Value(i % 10)}});
  }
  // Unindexed: full scan.
  EXPECT_EQ(g.FindVertices("mod", Value(3)).size(), 10u);
  g.CreateVertexPropertyIndex("mod");
  EXPECT_TRUE(g.HasVertexPropertyIndex("mod"));
  EXPECT_EQ(g.FindVertices("mod", Value(3)).size(), 10u);
  EXPECT_TRUE(g.FindVertices("mod", Value(42)).empty());
}

TEST(PropertyGraphTest, PropertyIndexStaysFreshAfterMutation) {
  PropertyGraph g;
  g.CreateVertexPropertyIndex("k");
  const VertexId v = g.AddVertex({}, {{"k", Value(1)}});
  EXPECT_EQ(g.FindVertices("k", Value(1)), (std::vector<VertexId>{v}));
  EXPECT_TRUE(g.SetVertexProperty(v, "k", Value(2)).ok());
  EXPECT_TRUE(g.FindVertices("k", Value(1)).empty());
  EXPECT_EQ(g.FindVertices("k", Value(2)), (std::vector<VertexId>{v}));
  EXPECT_TRUE(g.RemoveVertex(v).ok());
  EXPECT_TRUE(g.FindVertices("k", Value(2)).empty());
}

TEST(PropertyGraphTest, ParallelEdgesAllowed) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(a, b, "E", {}).ok());
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_EQ(g.OutNeighbors(a), (std::vector<VertexId>{b, b}));
}

TEST(PropertyGraphTest, SelfLoop) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  ASSERT_TRUE(g.AddEdge(a, a, "SELF", {}).ok());
  EXPECT_EQ(g.OutDegree(a), 1u);
  EXPECT_EQ(g.InDegree(a), 1u);
}

TEST(PropertyGraphTest, VertexIdsSortedLiveOnly) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const VertexId c = g.AddVertex({}, {});
  ASSERT_TRUE(g.RemoveVertex(b).ok());
  EXPECT_EQ(g.VertexIds(), (std::vector<VertexId>{a, c}));
}

TEST(PropertyGraphTest, CopySemantics) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({"X"}, {{"p", Value(1)}});
  PropertyGraph copy = g;
  EXPECT_TRUE(copy.SetVertexProperty(a, "p", Value(2)).ok());
  EXPECT_EQ(*g.GetVertexProperty(a, "p"), Value(1));   // original untouched
  EXPECT_EQ(*copy.GetVertexProperty(a, "p"), Value(2));
}

}  // namespace
}  // namespace hygraph::graph
