#include "core/stream.h"

#include <gtest/gtest.h>

namespace hygraph::core {
namespace {

TEST(StreamTest, BuildsWorldFromEvents) {
  HyGraph hg;
  StreamProcessor stream(&hg);
  ASSERT_TRUE(stream.ApplyAll({
      UpdateEvent::AddPgVertex(100, "alice", {"User"},
                               {{"name", Value("Alice")}}),
      UpdateEvent::AddTsVertex(100, "card1", {"CreditCard"}, {"balance"}),
      UpdateEvent::AddPgEdge(150, "uses1", "alice", "card1", "USES"),
      UpdateEvent::Sample(200, "card1", {1000.0}),
      UpdateEvent::Sample(260, "card1", {950.0}),
  }).ok());
  EXPECT_EQ(hg.VertexCount(), 2u);
  EXPECT_EQ(hg.EdgeCount(), 1u);
  EXPECT_TRUE(hg.Validate().ok());
  const auto card = *stream.ResolveVertex("card1");
  EXPECT_EQ((*hg.VertexSeries(card))->size(), 2u);
  EXPECT_EQ(stream.stats().events_applied, 5u);
  EXPECT_EQ(stream.stats().samples_appended, 2u);
  EXPECT_EQ(stream.stats().watermark, 260);
  // Validity starts at the creation event.
  EXPECT_EQ(hg.VertexValidity(*stream.ResolveVertex("alice"))->start, 100);
}

TEST(StreamTest, WatermarkRegressionsRejected) {
  HyGraph hg;
  StreamProcessor stream(&hg);
  ASSERT_TRUE(
      stream.Apply(UpdateEvent::AddPgVertex(100, "a", {"X"})).ok());
  Status late = stream.Apply(UpdateEvent::AddPgVertex(50, "b", {"X"}));
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(hg.VertexCount(), 1u);  // nothing applied
}

TEST(StreamTest, DuplicateExternalIdsRejected) {
  HyGraph hg;
  StreamProcessor stream(&hg);
  ASSERT_TRUE(
      stream.Apply(UpdateEvent::AddPgVertex(100, "a", {"X"})).ok());
  EXPECT_EQ(stream.Apply(UpdateEvent::AddPgVertex(200, "a", {"X"})).code(),
            StatusCode::kAlreadyExists);
}

TEST(StreamTest, UnknownReferencesRejected) {
  HyGraph hg;
  StreamProcessor stream(&hg);
  EXPECT_FALSE(
      stream.Apply(UpdateEvent::Sample(100, "ghost", {1.0})).ok());
  EXPECT_FALSE(stream
                   .Apply(UpdateEvent::AddPgEdge(100, "e", "ghost1",
                                                 "ghost2", "E"))
                   .ok());
  EXPECT_FALSE(stream.ResolveVertex("ghost").ok());
  EXPECT_FALSE(stream.ResolveEdge("ghost").ok());
}

TEST(StreamTest, ExpireClosesValidityAndKeepsIntegrity) {
  HyGraph hg;
  StreamProcessor stream(&hg);
  ASSERT_TRUE(stream.ApplyAll({
      UpdateEvent::AddPgVertex(100, "a", {"X"}),
      UpdateEvent::AddPgVertex(100, "b", {"X"}),
      UpdateEvent::AddPgEdge(150, "e", "a", "b", "E"),
      UpdateEvent::ExpireVertex(500, "a"),
  }).ok());
  EXPECT_TRUE(hg.Validate().ok());
  const auto a = *stream.ResolveVertex("a");
  EXPECT_EQ(hg.VertexValidity(a)->end, 500);
  // The incident edge was closed with it.
  EXPECT_EQ(hg.EdgeValidity(*stream.ResolveEdge("e"))->end, 500);
}

TEST(StreamTest, RetentionEvictsStaleSamples) {
  HyGraph hg;
  StreamOptions options;
  options.retention = 10 * kMinute;
  options.eviction_period = kMinute;
  StreamProcessor stream(&hg, options);
  ASSERT_TRUE(stream.Apply(UpdateEvent::AddTsVertex(0, "s", {"Sensor"},
                                                    {"v"}))
                  .ok());
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(stream
                    .Apply(UpdateEvent::Sample(i * kMinute, "s",
                                               {static_cast<double>(i)}))
                    .ok());
  }
  const auto sensor = *stream.ResolveVertex("s");
  const ts::MultiSeries& series = **hg.VertexSeries(sensor);
  // Only the retention window (last ~10 minutes) survives.
  EXPECT_LE(series.size(), 12u);
  EXPECT_GE(series.times().front(), 30 * kMinute - options.retention);
  EXPECT_GT(stream.stats().samples_evicted, 0u);
  EXPECT_TRUE(hg.Validate().ok());
}

TEST(StreamTest, NoRetentionKeepsEverything) {
  HyGraph hg;
  StreamProcessor stream(&hg);
  ASSERT_TRUE(stream.Apply(UpdateEvent::AddTsVertex(0, "s", {"Sensor"},
                                                    {"v"}))
                  .ok());
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(
        stream.Apply(UpdateEvent::Sample(i * kMinute, "s", {1.0})).ok());
  }
  EXPECT_EQ((*hg.VertexSeries(*stream.ResolveVertex("s")))->size(), 50u);
  EXPECT_EQ(stream.stats().samples_evicted, 0u);
}

TEST(StreamTest, TsEdgeSamplesFlow) {
  HyGraph hg;
  StreamProcessor stream(&hg);
  ASSERT_TRUE(stream.ApplyAll({
      UpdateEvent::AddTsVertex(0, "card", {"CreditCard"}, {"balance"}),
      UpdateEvent::AddPgVertex(0, "shop", {"Merchant"}),
      UpdateEvent::AddTsEdge(10, "tx", "card", "shop", "TX", {"amount"}),
      UpdateEvent::EdgeSample(20, "tx", {99.0}),
      UpdateEvent::EdgeSample(30, "tx", {12.0}),
  }).ok());
  const auto edge = *stream.ResolveEdge("tx");
  EXPECT_TRUE(hg.IsTsEdge(edge));
  EXPECT_EQ((*hg.EdgeSeries(edge))->size(), 2u);
}

TEST(StreamTest, SampleArityChecked) {
  HyGraph hg;
  StreamProcessor stream(&hg);
  ASSERT_TRUE(stream.Apply(UpdateEvent::AddTsVertex(0, "s", {"Sensor"},
                                                    {"a", "b"}))
                  .ok());
  EXPECT_FALSE(stream.Apply(UpdateEvent::Sample(10, "s", {1.0})).ok());
  EXPECT_TRUE(stream.Apply(UpdateEvent::Sample(10, "s", {1.0, 2.0})).ok());
}

TEST(StreamTest, HighVolumeIngestKeepsIntegrity) {
  HyGraph hg;
  StreamOptions options;
  options.retention = kHour;
  options.eviction_period = 10 * kMinute;
  StreamProcessor stream(&hg, options);
  for (int s = 0; s < 10; ++s) {
    ASSERT_TRUE(stream
                    .Apply(UpdateEvent::AddTsVertex(
                        0, "s" + std::to_string(s), {"Sensor"}, {"v"}))
                    .ok());
  }
  for (int t = 1; t <= 600; ++t) {
    for (int s = 0; s < 10; ++s) {
      ASSERT_TRUE(stream
                      .Apply(UpdateEvent::Sample(
                          t * kMinute, "s" + std::to_string(s),
                          {static_cast<double>(t + s)}))
                      .ok());
    }
  }
  EXPECT_EQ(stream.stats().samples_appended, 6000u);
  EXPECT_GT(stream.stats().samples_evicted, 4000u);
  EXPECT_TRUE(hg.Validate().ok());
}

}  // namespace
}  // namespace hygraph::core
