#include "temporal/temporal_reachability.h"

#include <gtest/gtest.h>

namespace hygraph::temporal {
namespace {

// Classic time-respecting example: a -> b valid early, b -> c valid later,
// c -> d valid BEFORE b -> c. Static reachability says a reaches d; a
// time-respecting path does not exist because c->d expires too early.
class TemporalReachabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = *tpg_.AddVertex({}, {}, Interval::All());
    b_ = *tpg_.AddVertex({}, {}, Interval::All());
    c_ = *tpg_.AddVertex({}, {}, Interval::All());
    d_ = *tpg_.AddVertex({}, {}, Interval::All());
    ab_ = *tpg_.AddEdge(a_, b_, "E", {}, Interval{100, 200});
    bc_ = *tpg_.AddEdge(b_, c_, "E", {}, Interval{300, 400});
    cd_ = *tpg_.AddEdge(c_, d_, "E", {}, Interval{150, 250});
  }

  TemporalPropertyGraph tpg_;
  graph::VertexId a_, b_, c_, d_;
  graph::EdgeId ab_, bc_, cd_;
};

TEST_F(TemporalReachabilityTest, RespectsTimeOrdering) {
  EXPECT_TRUE(*IsTemporallyReachable(tpg_, a_, b_));
  EXPECT_TRUE(*IsTemporallyReachable(tpg_, a_, c_));
  // c is reached earliest at t=300, but c->d is only valid until 250.
  EXPECT_FALSE(*IsTemporallyReachable(tpg_, a_, d_));
  // Starting at c directly (arrival 0 -> traverse at 150) reaches d.
  EXPECT_TRUE(*IsTemporallyReachable(tpg_, c_, d_));
}

TEST_F(TemporalReachabilityTest, EarliestArrivalValues) {
  auto arrivals = EarliestArrivalTimes(tpg_, a_);
  ASSERT_TRUE(arrivals.ok());
  ASSERT_EQ(arrivals->size(), 3u);  // a, b, c
  // Sorted by arrival: a at window start, b at 100, c at 300.
  EXPECT_EQ((*arrivals)[0].vertex, a_);
  EXPECT_EQ((*arrivals)[1].vertex, b_);
  EXPECT_EQ((*arrivals)[1].arrival, 100);
  EXPECT_EQ((*arrivals)[1].hops, 1u);
  EXPECT_EQ((*arrivals)[2].vertex, c_);
  EXPECT_EQ((*arrivals)[2].arrival, 300);
  EXPECT_EQ((*arrivals)[2].hops, 2u);
}

TEST_F(TemporalReachabilityTest, WindowRestrictsDepartures) {
  TemporalPathOptions options;
  options.window = Interval{250, kMaxTimestamp};
  // a->b expired before the window opens.
  EXPECT_FALSE(*IsTemporallyReachable(tpg_, a_, b_, options));
  TemporalPathOptions late;
  late.window = Interval{150, kMaxTimestamp};
  EXPECT_TRUE(*IsTemporallyReachable(tpg_, a_, b_, late));
}

TEST_F(TemporalReachabilityTest, DwellDelaysConnections) {
  // With dwell 150, arriving at b at 100 allows departing at 250;
  // b->c (300..400) still works. With dwell 350 it does not.
  TemporalPathOptions dwell;
  dwell.min_dwell = 150;
  EXPECT_TRUE(*IsTemporallyReachable(tpg_, a_, c_, dwell));
  dwell.min_dwell = 350;
  EXPECT_FALSE(*IsTemporallyReachable(tpg_, a_, c_, dwell));
}

TEST_F(TemporalReachabilityTest, EdgeLabelFilter) {
  TemporalPathOptions options;
  options.edge_label = "OTHER";
  auto arrivals = EarliestArrivalTimes(tpg_, a_, options);
  ASSERT_TRUE(arrivals.ok());
  EXPECT_EQ(arrivals->size(), 1u);  // only the source
}

TEST_F(TemporalReachabilityTest, PathReconstruction) {
  auto path = EarliestArrivalPath(tpg_, a_, c_);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->vertices,
            (std::vector<graph::VertexId>{a_, b_, c_}));
  EXPECT_EQ(path->edges, (std::vector<graph::EdgeId>{ab_, bc_}));
  EXPECT_EQ(path->traversal_times, (std::vector<Timestamp>{100, 300}));
  EXPECT_EQ(path->arrival, 300);
  EXPECT_FALSE(EarliestArrivalPath(tpg_, a_, d_).ok());
}

TEST_F(TemporalReachabilityTest, PicksFasterAlternative) {
  // Add a slow direct edge a->c valid late: earliest arrival must still be
  // 300 via b; then add a fast direct edge and expect it to win.
  ASSERT_TRUE(tpg_.AddEdge(a_, c_, "E", {}, Interval{500, 600}).ok());
  auto via_b = EarliestArrivalPath(tpg_, a_, c_);
  ASSERT_TRUE(via_b.ok());
  EXPECT_EQ(via_b->arrival, 300);
  ASSERT_TRUE(tpg_.AddEdge(a_, c_, "E", {}, Interval{120, 130}).ok());
  auto direct = EarliestArrivalPath(tpg_, a_, c_);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->arrival, 120);
  EXPECT_EQ(direct->vertices.size(), 2u);
}

TEST_F(TemporalReachabilityTest, Validation) {
  EXPECT_FALSE(EarliestArrivalTimes(tpg_, 999).ok());
  EXPECT_FALSE(IsTemporallyReachable(tpg_, a_, 999).ok());
  TemporalPathOptions bad;
  bad.window = Interval{10, 10};
  EXPECT_FALSE(EarliestArrivalTimes(tpg_, a_, bad).ok());
}

TEST_F(TemporalReachabilityTest, SourceArrivalIsWindowStart) {
  TemporalPathOptions options;
  options.window = Interval{42, kMaxTimestamp};
  auto arrivals = EarliestArrivalTimes(tpg_, a_, options);
  ASSERT_TRUE(arrivals.ok());
  EXPECT_EQ((*arrivals)[0].vertex, a_);
  EXPECT_EQ((*arrivals)[0].arrival, 42);
}

}  // namespace
}  // namespace hygraph::temporal
