#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/env.h"
#include "storage/segment/segment_store.h"
#include "ts/hypertable.h"

namespace hygraph::storage {
namespace {

/// Property gauntlet for the cold tier: a tiered HypertableStore (real
/// SegmentStore on disk, deliberately tiny cache budget) is driven through
/// randomized insert / seal / spill / evict / scan / retain schedules and
/// compared against
///
///   * an all-in-RAM twin — an identical HypertableStore with no cold tier
///     fed the exact same mutations, so every aggregate and scan must come
///     back BIT-identical (the spill must be logically invisible); and
///   * a plain std::map oracle — an independent data structure, so the
///     twin cannot hide a shared bug in the chunk machinery itself.
class TieringPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hygraph_tierprop_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    std::system(("rm -rf " + root_).c_str());
  }

  static ts::HypertableOptions NarrowChunks() {
    ts::HypertableOptions o;
    o.chunk_duration = 16;
    return o;
  }

  std::string root_;
};

using Oracle = std::map<Timestamp, double>;

double RandomValue(Rng& rng) {
  switch (rng.NextBounded(8)) {
    case 0:
      return 0.0;
    case 1:  // extreme magnitudes stress the XOR codec and zone maps
      return rng.NextBernoulli(0.5) ? 1e300 : -1e300;
    case 2:  // infinities exercise the all_finite zone-map path
      return rng.NextBernoulli(0.5)
                 ? std::numeric_limits<double>::infinity()
                 : -std::numeric_limits<double>::infinity();
    default:
      return rng.NextDoubleInRange(-100.0, 100.0);
  }
}

Interval RandomInterval(Rng& rng) {
  if (rng.NextBernoulli(0.15)) return Interval::All();
  const Timestamp start = rng.NextInRange(-40, 840);
  return Interval{start, start + rng.NextInRange(0, 400)};
}

TEST_F(TieringPropertyTest, RandomScheduleMatchesTwinAndOracle) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 0x9E3779B9u);

    SegmentStoreOptions seg;
    seg.env = Env::Default();
    seg.dir = root_ + "/tier" + std::to_string(seed);
    // The chunks here encode to a few dozen bytes each, so this budget
    // holds one or two at most: pins constantly miss and evict, and the
    // schedule exercises the whole cache lifecycle.
    seg.cache_budget_bytes = 64;
    auto tier = SegmentStore::Open(seg);
    ASSERT_TRUE(tier.ok()) << tier.status().ToString();

    ts::HypertableStore tiered(NarrowChunks());
    tiered.AttachColdTier(tier->get());
    ts::HypertableStore twin(NarrowChunks());

    constexpr size_t kSeries = 3;
    std::vector<SeriesId> tiered_ids, twin_ids;
    std::vector<Oracle> oracles(kSeries);
    for (size_t i = 0; i < kSeries; ++i) {
      tiered_ids.push_back(tiered.Create("s" + std::to_string(i)));
      twin_ids.push_back(twin.Create("s" + std::to_string(i)));
    }

    for (int op = 0; op < 400; ++op) {
      SCOPED_TRACE("op " + std::to_string(op));
      const size_t s = rng.NextBounded(kSeries);
      switch (rng.NextBounded(10)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // insert (in- and out-of-order; duplicates overwrite)
          const Timestamp t = rng.NextInRange(0, 800);
          const double v = RandomValue(rng);
          auto ins = tiered.Insert(tiered_ids[s], t, v);
          ASSERT_TRUE(ins.ok()) << ins.ToString();
          ASSERT_TRUE(twin.Insert(twin_ids[s], t, v).ok());
          oracles[s][t] = v;
          break;
        }
        case 4: {  // spill everything sealed to disk (twin keeps it in RAM)
          auto spilled = tiered.SpillSealed();
          ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
          break;
        }
        case 5: {  // retain — drop whole and boundary chunks, cold included
          const Interval keep = RandomInterval(rng);
          auto a = tiered.Retain(tiered_ids[s], keep);
          auto b = twin.Retain(twin_ids[s], keep);
          ASSERT_TRUE(a.ok());
          ASSERT_TRUE(b.ok());
          EXPECT_EQ(*a, *b);
          std::erase_if(oracles[s],
                        [&](const auto& kv) { return !keep.Contains(kv.first); });
          break;
        }
        case 6: {  // range scan: bit-identical to the twin, exact vs oracle
          const Interval interval = RandomInterval(rng);
          auto a = tiered.Scan(tiered_ids[s], interval);
          auto b = twin.Scan(twin_ids[s], interval);
          ASSERT_TRUE(a.ok()) << a.status().ToString();
          ASSERT_TRUE(b.ok());
          std::vector<std::pair<Timestamp, double>> expect;
          for (const auto& [t, v] : oracles[s]) {
            if (interval.Contains(t)) expect.emplace_back(t, v);
          }
          ASSERT_EQ(a->size(), expect.size());
          ASSERT_EQ(b->size(), expect.size());
          for (size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ((*a)[i].t, expect[i].first);
            EXPECT_EQ((*a)[i].value, expect[i].second);
            EXPECT_EQ((*b)[i].t, (*a)[i].t);
            EXPECT_EQ((*b)[i].value, (*a)[i].value);
          }
          break;
        }
        case 7: {  // every aggregate kind, bit-identical to the twin
          const Interval interval = RandomInterval(rng);
          for (int k = 0; k <= static_cast<int>(ts::AggKind::kLast); ++k) {
            const auto kind = static_cast<ts::AggKind>(k);
            auto a = tiered.Aggregate(tiered_ids[s], interval, kind);
            auto b = twin.Aggregate(twin_ids[s], interval, kind);
            ASSERT_EQ(a.ok(), b.ok()) << ts::AggKindName(kind);
            if (a.ok()) {
              // Compare as bit patterns so a NaN result (e.g. stddev of an
              // infinite sum) still has to match exactly.
              EXPECT_EQ(std::bit_cast<uint64_t>(*a), std::bit_cast<uint64_t>(*b))
                  << ts::AggKindName(kind) << " " << *a << " vs " << *b;
            }
          }
          break;
        }
        case 8: {  // tumbling windows, bit-identical to the twin
          const Interval interval{rng.NextInRange(-40, 400),
                                  rng.NextInRange(400, 840)};
          const Duration width = rng.NextInRange(8, 64);
          const auto kind =
              static_cast<ts::AggKind>(rng.NextBounded(8));
          auto a = tiered.WindowAggregate(tiered_ids[s], interval, width, kind);
          auto b = twin.WindowAggregate(twin_ids[s], interval, width, kind);
          ASSERT_EQ(a.ok(), b.ok());
          if (a.ok()) {
            ASSERT_EQ(a->samples().size(), b->samples().size());
            for (size_t i = 0; i < a->samples().size(); ++i) {
              EXPECT_EQ(a->samples()[i].t, b->samples()[i].t);
              EXPECT_EQ(std::bit_cast<uint64_t>(a->samples()[i].value),
                        std::bit_cast<uint64_t>(b->samples()[i].value));
            }
          }
          break;
        }
        case 9: {  // pushed-down value predicate vs an independent count
          const Interval interval = RandomInterval(rng);
          ts::ScanPredicate pred;
          pred.min_value = rng.NextInRange(-80, 40);
          pred.max_value = pred.min_value + rng.NextInRange(0, 120);
          auto a = tiered.CountMatching(tiered_ids[s], interval, pred);
          auto b = twin.CountMatching(twin_ids[s], interval, pred);
          ASSERT_TRUE(a.ok());
          ASSERT_TRUE(b.ok());
          size_t expect = 0;
          for (const auto& [t, v] : oracles[s]) {
            if (interval.Contains(t) && pred.Matches(v)) ++expect;
          }
          EXPECT_EQ(*a, expect);
          EXPECT_EQ(*b, expect);
          break;
        }
      }
    }

    // The schedule must actually have exercised the tier: chunks were
    // spilled, pins missed the tiny cache, and the cache evicted.
    const auto stats = tiered.stats();
    EXPECT_GT(stats.cold_chunks_spilled, 0u);
    const auto cache = (*tier)->cache_stats();
    EXPECT_GT(cache.misses, 0u);
    EXPECT_GT(cache.evictions, 0u);
    EXPECT_LE(cache.cached_bytes, seg.cache_budget_bytes);

    // Full-axis final audit, one series at a time.
    for (size_t s = 0; s < kSeries; ++s) {
      auto all = tiered.Scan(tiered_ids[s], Interval::All());
      ASSERT_TRUE(all.ok());
      ASSERT_EQ(all->size(), oracles[s].size());
      size_t i = 0;
      for (const auto& [t, v] : oracles[s]) {
        EXPECT_EQ((*all)[i].t, t);
        EXPECT_EQ(std::bit_cast<uint64_t>((*all)[i].value),
                  std::bit_cast<uint64_t>(v));
        ++i;
      }
    }
  }
}

// Readers hammer scans and aggregates while a writer keeps inserting,
// spilling and retaining — under TSan this proves the pin/evict/unseal
// dance is data-race free; under any build it proves readers always see a
// consistent prefix (every sample satisfies the writer's value invariant,
// and scans stay sorted).
TEST_F(TieringPropertyTest, ConcurrentReadersDuringSpillAndRetain) {
  SegmentStoreOptions seg;
  seg.env = Env::Default();
  seg.dir = root_ + "/tier_mt";
  seg.cache_budget_bytes = 4096;  // force evictions under the readers
  auto tier = SegmentStore::Open(seg);
  ASSERT_TRUE(tier.ok());

  ts::HypertableStore store(NarrowChunks());
  store.AttachColdTier(tier->get());
  const SeriesId sid = store.Create("mt");

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        Timestamp prev = kMinTimestamp;
        auto status = store.ScanVisit(
            sid, Interval::All(), [&](const ts::Sample& sample) {
              // Writer invariant: value == 0.25 * t, so torn reads and
              // mis-decoded cold bytes are detectable from any thread.
              if (sample.value != 0.25 * sample.t || sample.t <= prev) {
                reader_failures.fetch_add(1, std::memory_order_relaxed);
              }
              prev = sample.t;
            });
        if (!status.ok()) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
        }
        auto agg = store.Aggregate(sid, Interval::All(), ts::AggKind::kCount);
        if (agg.ok() && *agg < 0.0) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (Timestamp t = 0; t < 1500; ++t) {
    ASSERT_TRUE(store.Insert(sid, t, 0.25 * t).ok());
    if (t % 100 == 99) {
      auto spilled = store.SpillSealed();
      ASSERT_TRUE(spilled.ok());
    }
    if (t % 400 == 399) {
      // Drop a cold prefix while readers are mid-flight; pinned readers
      // keep their snapshot, new scans see the trimmed series.
      auto removed = store.Retain(sid, Interval{t - 1000, kMaxTimestamp});
      ASSERT_TRUE(removed.ok());
    }
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(store.stats().cold_chunks_spilled, 0u);
}

}  // namespace
}  // namespace hygraph::storage
