#include "ts/pca.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

TEST(JacobiTest, DiagonalMatrix) {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  ASSERT_TRUE(
      JacobiEigen({{3.0, 0.0}, {0.0, 1.0}}, &eigenvalues, &eigenvectors)
          .ok());
  ASSERT_EQ(eigenvalues.size(), 2u);
  EXPECT_NEAR(eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eigenvalues[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(eigenvectors[0][0]), 1.0, 1e-10);
  EXPECT_NEAR(std::abs(eigenvectors[1][1]), 1.0, 1e-10);
}

TEST(JacobiTest, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors (1,1), (1,-1).
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  ASSERT_TRUE(
      JacobiEigen({{2.0, 1.0}, {1.0, 2.0}}, &eigenvalues, &eigenvectors)
          .ok());
  EXPECT_NEAR(eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eigenvalues[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(eigenvectors[0][0]), std::abs(eigenvectors[0][1]),
              1e-8);
}

TEST(JacobiTest, EigenvectorsAreUnit) {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  ASSERT_TRUE(JacobiEigen({{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 1.0}},
                          &eigenvalues, &eigenvectors)
                  .ok());
  for (const auto& v : eigenvectors) {
    double norm = 0.0;
    for (double x : v) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-8);
  }
  // Eigenvalues sorted decreasing.
  EXPECT_GE(eigenvalues[0], eigenvalues[1]);
  EXPECT_GE(eigenvalues[1], eigenvalues[2]);
}

TEST(JacobiTest, RejectsNonSquare) {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  EXPECT_FALSE(
      JacobiEigen({{1.0, 2.0}}, &eigenvalues, &eigenvectors).ok());
}

MultiSeries CorrelatedPair(size_t n, double slope, uint64_t phase) {
  MultiSeries ms("m", {"a", "b"});
  for (size_t i = 0; i < n; ++i) {
    const double x = std::sin(static_cast<double>(i + phase) * 0.3);
    EXPECT_TRUE(ms.AppendRow(static_cast<Timestamp>(i),
                             {x, slope * x + 0.01 * std::cos(i * 1.1)})
                    .ok());
  }
  return ms;
}

TEST(PcaTest, DominantComponentOfCorrelatedData) {
  auto pca = ComputePca(CorrelatedPair(200, 1.0, 0));
  ASSERT_TRUE(pca.ok());
  ASSERT_EQ(pca->eigenvalues.size(), 2u);
  // Nearly all variance on the first axis; axis ~ (1,1)/sqrt(2).
  EXPECT_GT(pca->eigenvalues[0], 50.0 * pca->eigenvalues[1]);
  EXPECT_NEAR(std::abs(pca->components[0][0]),
              std::abs(pca->components[0][1]), 0.05);
}

TEST(PcaTest, Validation) {
  MultiSeries tiny("t", {"a"});
  ASSERT_TRUE(tiny.AppendRow(0, {1.0}).ok());
  EXPECT_FALSE(ComputePca(tiny).ok());
}

TEST(PcaSimilarityTest, SameStructureIsSimilar) {
  const MultiSeries a = CorrelatedPair(200, 1.0, 0);
  const MultiSeries b = CorrelatedPair(200, 1.0, 37);  // same subspace
  auto sim = PcaSimilarity(a, b, 1);
  ASSERT_TRUE(sim.ok());
  EXPECT_GT(*sim, 0.95);
}

TEST(PcaSimilarityTest, OrthogonalStructureIsDissimilar) {
  const MultiSeries a = CorrelatedPair(200, 1.0, 0);    // axis (1, 1)
  const MultiSeries b = CorrelatedPair(200, -1.0, 11);  // axis (1, -1)
  auto sim = PcaSimilarity(a, b, 1);
  ASSERT_TRUE(sim.ok());
  EXPECT_LT(*sim, 0.1);
}

TEST(PcaSimilarityTest, SelfSimilarityIsOne) {
  const MultiSeries a = CorrelatedPair(100, 2.0, 0);
  auto sim = PcaSimilarity(a, a, 2);
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(*sim, 1.0, 0.05);
}

TEST(PcaSimilarityTest, Validation) {
  const MultiSeries a = CorrelatedPair(50, 1.0, 0);
  MultiSeries c("c", {"only"});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(c.AppendRow(i, {1.0 * i}).ok());
  }
  EXPECT_FALSE(PcaSimilarity(a, c, 1).ok());  // variable counts differ
  EXPECT_FALSE(PcaSimilarity(a, a, 0).ok());
}

}  // namespace
}  // namespace hygraph::ts
