#include "query/parser.h"

#include <gtest/gtest.h>

namespace hygraph::query {
namespace {

TEST(ParserTest, MinimalQuery) {
  auto q = Parse("MATCH (s:Station) RETURN s.name");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->paths.size(), 1u);
  ASSERT_EQ(q->paths[0].nodes.size(), 1u);
  EXPECT_EQ(q->paths[0].nodes[0].var, "s");
  EXPECT_EQ(q->paths[0].nodes[0].label, "Station");
  ASSERT_EQ(q->returns.size(), 1u);
  EXPECT_EQ(q->returns[0].expr->kind, Expr::Kind::kPropertyRef);
  EXPECT_EQ(q->returns[0].alias, "s.name");
  EXPECT_EQ(q->limit, 0u);
  EXPECT_EQ(q->where, nullptr);
}

TEST(ParserTest, PathWithEdges) {
  auto q = Parse(
      "MATCH (a:User)-[u:USES]->(c:Card)<-[:OWNS]-(b:Bank), (m:Merchant) "
      "RETURN a.name");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->paths.size(), 2u);
  const PathAst& path = q->paths[0];
  ASSERT_EQ(path.nodes.size(), 3u);
  ASSERT_EQ(path.edges.size(), 2u);
  EXPECT_EQ(path.edges[0].var, "u");
  EXPECT_EQ(path.edges[0].label, "USES");
  EXPECT_EQ(path.edges[0].dir, EdgeAst::Dir::kRight);
  EXPECT_EQ(path.edges[1].label, "OWNS");
  EXPECT_EQ(path.edges[1].dir, EdgeAst::Dir::kLeft);
  EXPECT_EQ(q->paths[1].nodes[0].label, "Merchant");
}

TEST(ParserTest, UndirectedEdge) {
  auto q = Parse("MATCH (a)-[:SIMILAR]-(b) RETURN a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->paths[0].edges[0].dir, EdgeAst::Dir::kUndirected);
}

TEST(ParserTest, BareEdges) {
  auto q = Parse("MATCH (a)-->(b)--(c) RETURN a");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->paths[0].edges[0].dir, EdgeAst::Dir::kRight);
  EXPECT_EQ(q->paths[0].edges[1].dir, EdgeAst::Dir::kUndirected);
  EXPECT_TRUE(q->paths[0].edges[0].label.empty());
}

TEST(ParserTest, NodePropertyMap) {
  auto q = Parse("MATCH (s:Station {name: 'S1', district: 3}) RETURN s");
  ASSERT_TRUE(q.ok());
  const NodeAst& node = q->paths[0].nodes[0];
  ASSERT_EQ(node.properties.size(), 2u);
  EXPECT_EQ(node.properties[0].first, "name");
  EXPECT_EQ(node.properties[0].second, Value("S1"));
  EXPECT_EQ(node.properties[1].second, Value(3));
}

TEST(ParserTest, EdgePropertyMapAndNegativeLiteral) {
  auto q = Parse("MATCH (a)-[t:TX {amount: -5}]->(b) RETURN t.amount");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->paths[0].edges[0].properties[0].second, Value(-5));
}

TEST(ParserTest, WherePrecedence) {
  auto q = Parse(
      "MATCH (s) WHERE s.a > 1 AND s.b < 2 OR NOT s.c = 3 RETURN s");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q->where, nullptr);
  // OR binds loosest.
  EXPECT_EQ(q->where->binary_op, BinaryOp::kOr);
  EXPECT_EQ(q->where->lhs->binary_op, BinaryOp::kAnd);
  EXPECT_EQ(q->where->rhs->kind, Expr::Kind::kUnary);
}

TEST(ParserTest, ComparisonWithNegativeNumber) {
  // "x < -1" must parse despite '<-' lexing as an arrow.
  auto e = ParseExpression("x < -1");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->binary_op, BinaryOp::kLt);
  EXPECT_EQ((*e)->rhs->kind, Expr::Kind::kUnary);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->binary_op, BinaryOp::kAdd);
  EXPECT_EQ((*e)->rhs->binary_op, BinaryOp::kMul);
  auto paren = ParseExpression("(1 + 2) * 3");
  ASSERT_TRUE(paren.ok());
  EXPECT_EQ((*paren)->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, FunctionCalls) {
  auto e = ParseExpression("ts_avg(s.bikes, 0, 86400000)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kCall);
  EXPECT_EQ((*e)->call_name, "ts_avg");
  ASSERT_EQ((*e)->args.size(), 3u);
  EXPECT_EQ((*e)->args[0]->kind, Expr::Kind::kPropertyRef);
  auto nullary = ParseExpression("f()");
  ASSERT_TRUE(nullary.ok());
  EXPECT_TRUE((*nullary)->args.empty());
}

TEST(ParserTest, ReturnAliasesAndOrderBy) {
  auto q = Parse(
      "MATCH (s:Station) RETURN s.name AS n, ts_avg(s.bikes, 0, 10) AS a "
      "ORDER BY a DESC, n LIMIT 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->returns.size(), 2u);
  EXPECT_EQ(q->returns[0].alias, "n");
  EXPECT_EQ(q->returns[1].alias, "a");
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_TRUE(q->order_by[0].descending);
  EXPECT_FALSE(q->order_by[1].descending);
  EXPECT_EQ(q->limit, 10u);
}

TEST(ParserTest, BooleanLiterals) {
  auto q = Parse("MATCH (u) WHERE u.flag = true RETURN u");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->rhs->literal, Value(true));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("RETURN 1").ok());                      // no MATCH
  EXPECT_FALSE(Parse("MATCH (a)").ok());                     // no RETURN
  EXPECT_FALSE(Parse("MATCH (a RETURN a").ok());             // missing ')'
  EXPECT_FALSE(Parse("MATCH (a) RETURN a LIMIT x").ok());    // bad LIMIT
  EXPECT_FALSE(Parse("MATCH (a) RETURN a extra").ok());      // trailing
  EXPECT_FALSE(Parse("MATCH (a)-[:E](b) RETURN a").ok());    // bad edge
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("f(1,)").ok());
}

TEST(ParserTest, ExprToStringRoundTrips) {
  const std::string text = "(a.x > 3) AND ts_avg(a.y, 0, 10) < 2.5";
  auto e = ParseExpression(text);
  ASSERT_TRUE(e.ok());
  auto reparsed = ParseExpression((*e)->ToString());
  ASSERT_TRUE(reparsed.ok()) << (*e)->ToString();
  EXPECT_EQ((*reparsed)->ToString(), (*e)->ToString());
}

TEST(ParserTest, CloneIsDeep) {
  auto e = ParseExpression("a.x + f(b.y, 1)");
  ASSERT_TRUE(e.ok());
  ExprPtr clone = (*e)->Clone();
  EXPECT_EQ(clone->ToString(), (*e)->ToString());
  EXPECT_NE(clone.get(), e->get());
  EXPECT_NE(clone->lhs.get(), (*e)->lhs.get());
}

TEST(ParserTest, AnonymousNodes) {
  auto q = Parse("MATCH (:User)-[:USES]->() RETURN 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->paths[0].nodes[0].var.empty());
  EXPECT_EQ(q->paths[0].nodes[0].label, "User");
  EXPECT_TRUE(q->paths[0].nodes[1].var.empty());
  EXPECT_TRUE(q->paths[0].nodes[1].label.empty());
}

// ---- fuzzer-regression suite: hostile nesting must error, not crash --------
//
// Each shape below previously recursed once per token; a large enough input
// overflowed the stack (found by fuzz_hgql_parse, mirrored in
// fuzz/corpus/hgql_parse/). The parser now enforces a nesting ceiling and
// reports kInvalidArgument through the normal Status channel.

std::string Repeat(const std::string& unit, int times) {
  std::string out;
  for (int i = 0; i < times; ++i) out += unit;
  return out;
}

TEST(ParserDepthTest, DeeplyNestedParensRejected) {
  const std::string q =
      "MATCH (n) RETURN " + Repeat("(", 5000) + "1" + Repeat(")", 5000);
  auto result = Parse(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("nesting"), std::string::npos);
}

TEST(ParserDepthTest, DeepNotChainRejected) {
  const std::string q =
      "MATCH (n) WHERE " + Repeat("NOT ", 5000) + "TRUE RETURN n";
  auto result = Parse(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserDepthTest, DeepUnaryMinusChainRejected) {
  const std::string q = "MATCH (n) RETURN " + Repeat("-", 5000) + "1";
  auto result = Parse(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserDepthTest, DeepNegativeLiteralChainRejected) {
  // The literal parser inside property maps recurses for '-' too.
  const std::string q =
      "MATCH (n {k: " + Repeat("-", 5000) + "1}) RETURN n";
  auto result = Parse(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserDepthTest, ExpressionEntryPointAlsoGuarded) {
  auto result = ParseExpression(Repeat("(", 5000) + "1" + Repeat(")", 5000));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserDepthTest, ReasonableNestingStillParses) {
  // The ceiling must be far above real queries: 50 nested parens is fine.
  auto result =
      ParseExpression(Repeat("(", 50) + "1 + 2" + Repeat(")", 50));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto deep_not = Parse(
      "MATCH (n) WHERE " + Repeat("NOT ", 50) + "TRUE RETURN n");
  ASSERT_TRUE(deep_not.ok()) << deep_not.status().ToString();
}

}  // namespace
}  // namespace hygraph::query
