#include "ts/correlate.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::ts {
namespace {

Series SineSeries(const std::string& name, size_t n, double phase,
                  Duration step = kMinute) {
  Series s(name);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(s.Append(static_cast<Timestamp>(i) * step,
                         std::sin(static_cast<double>(i) * 0.2 + phase))
                    .ok());
  }
  return s;
}

TEST(AlignTest, InnerJoinOnTimestamps) {
  Series a("a");
  Series b("b");
  ASSERT_TRUE(a.Append(1, 10).ok());
  ASSERT_TRUE(a.Append(2, 20).ok());
  ASSERT_TRUE(a.Append(4, 40).ok());
  ASSERT_TRUE(b.Append(2, 200).ok());
  ASSERT_TRUE(b.Append(3, 300).ok());
  ASSERT_TRUE(b.Append(4, 400).ok());
  std::vector<double> va;
  std::vector<double> vb;
  AlignOnTimestamps(a, b, &va, &vb);
  EXPECT_EQ(va, (std::vector<double>{20, 40}));
  EXPECT_EQ(vb, (std::vector<double>{200, 400}));
}

TEST(CorrelationTest, IdenticalSeriesIsOne) {
  Series s = SineSeries("s", 100, 0.0);
  auto corr = Correlation(s, s);
  ASSERT_TRUE(corr.ok());
  EXPECT_NEAR(*corr, 1.0, 1e-12);
}

TEST(CorrelationTest, AntiphaseIsMinusOne) {
  Series a = SineSeries("a", 100, 0.0);
  Series b("b");
  for (const Sample& s : a.samples()) {
    ASSERT_TRUE(b.Append(s.t, -s.value).ok());
  }
  auto corr = Correlation(a, b);
  ASSERT_TRUE(corr.ok());
  EXPECT_NEAR(*corr, -1.0, 1e-12);
}

TEST(CorrelationTest, InsufficientOverlapFails) {
  Series a("a");
  Series b("b");
  ASSERT_TRUE(a.Append(1, 1).ok());
  ASSERT_TRUE(b.Append(2, 1).ok());
  EXPECT_FALSE(Correlation(a, b).ok());
}

TEST(CorrelationTest, MinOverlapEnforced) {
  Series a = SineSeries("a", 5, 0.0);
  Series b = SineSeries("b", 5, 0.5);
  EXPECT_TRUE(Correlation(a, b, 5).ok());
  EXPECT_FALSE(Correlation(a, b, 6).ok());
}

TEST(CrossCorrelationTest, RecoversKnownLag) {
  // b is a delayed by 10 minutes; best lag should be +10 min.
  Series a = SineSeries("a", 200, 0.0);
  Series b("b");
  for (const Sample& s : a.samples()) {
    ASSERT_TRUE(b.Append(s.t + 10 * kMinute, s.value).ok());
  }
  auto at_lag = CrossCorrelation(a, b, 10 * kMinute);
  ASSERT_TRUE(at_lag.ok());
  EXPECT_NEAR(*at_lag, 1.0, 1e-12);
  auto best = FindBestLag(a, b, 30 * kMinute, kMinute);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->lag_ms, 10 * kMinute);
  EXPECT_NEAR(best->correlation, 1.0, 1e-12);
}

TEST(FindBestLagTest, RejectsBadParameters) {
  Series a = SineSeries("a", 10, 0.0);
  EXPECT_FALSE(FindBestLag(a, a, 10, 0).ok());
  EXPECT_FALSE(FindBestLag(a, a, -5, 1).ok());
}

TEST(SlidingCorrelationTest, TracksRegimeChange) {
  // First half: identical; second half: anti-phase.
  Series a("a");
  Series b("b");
  for (int i = 0; i < 200; ++i) {
    const double v = std::sin(i * 0.3);
    ASSERT_TRUE(a.Append(i * kMinute, v).ok());
    ASSERT_TRUE(b.Append(i * kMinute, i < 100 ? v : -v).ok());
  }
  auto sliding = SlidingCorrelation(a, b, 50 * kMinute, 50 * kMinute);
  ASSERT_TRUE(sliding.ok());
  ASSERT_EQ(sliding->size(), 4u);
  EXPECT_NEAR(sliding->at(0).value, 1.0, 1e-9);
  EXPECT_NEAR(sliding->at(3).value, -1.0, 1e-9);
}

TEST(SlidingCorrelationTest, EmptyWhenNoOverlap) {
  Series a = SineSeries("a", 10, 0.0);
  Series b("b");
  ASSERT_TRUE(b.Append(kDay, 1.0).ok());
  ASSERT_TRUE(b.Append(kDay + kMinute, 2.0).ok());
  auto sliding = SlidingCorrelation(a, b, kMinute, kMinute);
  ASSERT_TRUE(sliding.ok());
  EXPECT_TRUE(sliding->empty());
}

TEST(CorrelationMatrixTest, SymmetricWithUnitDiagonal) {
  std::vector<Series> set = {SineSeries("a", 50, 0.0),
                             SineSeries("b", 50, 0.1),
                             SineSeries("c", 50, 3.14159)};
  auto m = CorrelationMatrix(set);
  ASSERT_EQ(m.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m[i][i], 1.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m[i][j], m[j][i]);
    }
  }
  EXPECT_GT(m[0][1], 0.9);   // nearly in phase
  EXPECT_LT(m[0][2], -0.9);  // nearly anti-phase
}

}  // namespace
}  // namespace hygraph::ts
