#include "storage/durable.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "storage/all_in_graph.h"
#include "storage/env.h"
#include "storage/polyglot.h"

namespace hygraph::storage {
namespace {

using BackendFactory = std::function<std::unique_ptr<query::QueryBackend>()>;

struct Arch {
  const char* name;
  BackendFactory make;
};

class RecoveryTest : public ::testing::TestWithParam<Arch> {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/hygraph_recovery_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    root_ = tmpl;
    dir_ = root_ + "/store";
    env_ = Env::Default();
  }
  void TearDown() override {
    std::system(("rm -rf " + root_).c_str());
  }

  std::unique_ptr<DurableStore> MakeStore(DurableOptions options = {}) {
    return std::make_unique<DurableStore>(env_, dir_, GetParam().make(),
                                          options);
  }

  // Canonical logical-state signature (topology + all series).
  static std::string Signature(const query::QueryBackend& backend) {
    auto text = BuildSnapshotText(backend);
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return text.value_or("<error>");
  }

  // A small mixed workload: 3 vertices, 2 edges, static properties, and
  // samples on both a vertex and an edge.
  static void Ingest(DurableStore* store) {
    auto v0 = store->AddVertex({"Station"}, {{"city", Value("berlin")}});
    ASSERT_TRUE(v0.ok()) << v0.status().ToString();
    auto v1 = store->AddVertex({"Station"}, {{"city", Value("munich")}});
    ASSERT_TRUE(v1.ok());
    auto v2 = store->AddVertex({"Sensor"}, {});
    ASSERT_TRUE(v2.ok());
    auto e0 = store->AddEdge(*v0, *v1, "route", {{"km", Value(int64_t{584})}});
    ASSERT_TRUE(e0.ok()) << e0.status().ToString();
    auto e1 = store->AddEdge(*v2, *v0, "observes", {});
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(store->SetVertexProperty(*v1, "open", Value(true)).ok());
    ASSERT_TRUE(store->SetEdgeProperty(*e0, "toll", Value(2.5)).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          store->AppendVertexSample(*v0, "temp", 100 + i, 20.0 + i).ok());
      ASSERT_TRUE(
          store->AppendEdgeSample(*e0, "load", 200 + i, 0.5 * i).ok());
    }
  }

  std::string root_;
  std::string dir_;
  Env* env_ = nullptr;
};

TEST_P(RecoveryTest, ReopenAfterCleanRunRestoresEverything) {
  std::string before;
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    before = Signature(*store->inner());
  }
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(Signature(*store->inner()), before);
  EXPECT_FALSE(store->recovery().snapshot_loaded);
  EXPECT_EQ(store->recovery().wal_records_replayed, 27u);
  EXPECT_EQ(store->recovery().wal_replay_failures, 0u);
  EXPECT_FALSE(store->recovery().wal_torn_tail);
}

TEST_P(RecoveryTest, EmptyDirectoryOpensEmpty) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(store->topology().VertexCount(), 0u);
  EXPECT_FALSE(store->recovery().snapshot_loaded);
  EXPECT_EQ(store->recovery().wal_records_salvaged, 0u);
  EXPECT_EQ(store->next_seq(), 1u);
}

TEST_P(RecoveryTest, CheckpointPlusTailReplay) {
  std::string before;
  uint64_t seq_before = 0;
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
    // Post-checkpoint tail that only the WAL covers.
    ASSERT_TRUE(store->AppendVertexSample(0, "temp", 500, 99.0).ok());
    ASSERT_TRUE(store->SetVertexProperty(1, "open", Value(false)).ok());
    before = Signature(*store->inner());
    seq_before = store->next_seq();
  }
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(Signature(*store->inner()), before);
  EXPECT_TRUE(store->recovery().snapshot_loaded);
  EXPECT_EQ(store->recovery().wal_records_replayed, 2u);
  EXPECT_EQ(store->recovery().wal_records_skipped, 0u);
  // Sequence numbers keep increasing across restarts.
  EXPECT_EQ(store->next_seq(), seq_before);
}

TEST_P(RecoveryTest, RepeatedCheckpointsKeepOnlyNewestSnapshot) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  Ingest(store.get());
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->AppendVertexSample(0, "temp", 500, 1.0).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->AppendVertexSample(0, "temp", 501, 2.0).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  size_t snapshots = 0;
  for (const std::string& child : children) {
    if (child.rfind("snapshot-", 0) == 0) ++snapshots;
  }
  EXPECT_EQ(snapshots, 1u);
}

TEST_P(RecoveryTest, RemovalsAreDurableThroughWalReplay) {
  std::string before;
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->RemoveEdge(1).ok());
    // Removing vertex 1 (of 0..2) leaves a sparse id space and also drops
    // its incident edge 0.
    ASSERT_TRUE(store->RemoveVertex(1).ok());
    EXPECT_EQ(store->Checkpoint().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(store->topology().VertexCount(), 2u);
    EXPECT_EQ(store->topology().EdgeCount(), 0u);
  }
  // …but the WAL alone still recovers the post-removal state.
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_EQ(store->topology().VertexCount(), 2u);
  EXPECT_EQ(store->topology().EdgeCount(), 0u);
  EXPECT_FALSE(store->topology().HasVertex(1));
  EXPECT_TRUE(store->topology().HasVertex(2));
  EXPECT_FALSE(store->topology().HasEdge(0));
}

TEST_P(RecoveryTest, AutoCheckpointTriggersAndDefersAfterRemovals) {
  DurableOptions options;
  options.checkpoint_every = 5;
  auto store = MakeStore(options);
  ASSERT_TRUE(store->Open().ok());
  Ingest(store.get());
  EXPECT_TRUE(store->background_error().ok())
      << store->background_error().ToString();
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  bool has_snapshot = false;
  for (const std::string& child : children) {
    if (child.rfind("snapshot-", 0) == 0) has_snapshot = true;
  }
  EXPECT_TRUE(has_snapshot);
  // Removals make ids sparse; subsequent auto-checkpoints defer silently.
  ASSERT_TRUE(store->RemoveVertex(1).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->AppendVertexSample(0, "temp", 1000 + i, 1.0).ok());
  }
  EXPECT_TRUE(store->background_error().ok());
}

TEST_P(RecoveryTest, TornWalTailIsSalvagedOnOpen) {
  std::string before;
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    before = Signature(*store->inner());
  }
  // Chop bytes off the WAL mid-record: the last record is lost, every
  // intact one survives.
  auto size = env_->GetFileSize(dir_ + "/wal.log");
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(env_->TruncateFile(dir_ + "/wal.log", *size - 3).ok());
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  EXPECT_TRUE(store->recovery().wal_torn_tail);
  EXPECT_GT(store->recovery().wal_bytes_dropped, 0u);
  EXPECT_EQ(store->recovery().wal_records_replayed, 26u);
  // The salvaged state is the full state minus exactly the last mutation
  // (an edge sample): replaying it reproduces the original state.
  ASSERT_TRUE(store->AppendEdgeSample(0, "load", 209, 0.5 * 9).ok());
  EXPECT_EQ(Signature(*store->inner()), before);
}

TEST_P(RecoveryTest, CorruptSnapshotIsRejectedNotParsed) {
  {
    auto store = MakeStore();
    ASSERT_TRUE(store->Open().ok());
    Ingest(store.get());
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  // Flip one bit in the installed snapshot.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  std::string snapshot;
  for (const std::string& child : children) {
    if (child.rfind("snapshot-", 0) == 0) snapshot = dir_ + "/" + child;
  }
  ASSERT_FALSE(snapshot.empty());
  std::string text;
  ASSERT_TRUE(env_->ReadFileToString(snapshot, &text).ok());
  // Flip a bit inside a string value: the file still parses record by
  // record, so only the checksum can catch the rot.
  const size_t pos = text.find("berlin");
  ASSERT_NE(pos, std::string::npos);
  text[pos] ^= 0x04;
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(snapshot, &file).ok());
    ASSERT_TRUE(file->Append(text).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  auto store = MakeStore();
  EXPECT_EQ(store->Open().code(), StatusCode::kCorruption);
}

TEST_P(RecoveryTest, SnapshotTextRoundTripsBackendState) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  Ingest(store.get());
  auto text = BuildSnapshotText(*store->inner());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto restored = GetParam().make();
  ASSERT_TRUE(RestoreFromSnapshotText(*text, restored.get()).ok());
  EXPECT_EQ(Signature(*restored), *text);
  // Series round-trip specifically.
  auto range = restored->VertexSeriesRange(0, "temp", Interval::All());
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->samples().size(), 10u);
  EXPECT_DOUBLE_EQ(range->samples()[3].value, 23.0);
}

TEST_P(RecoveryTest, RestoreRequiresChecksumTrailer) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Open().ok());
  Ingest(store.get());
  auto text = BuildSnapshotText(*store->inner());
  ASSERT_TRUE(text.ok());
  // Drop the trailer line entirely — a parseable but truncated snapshot.
  const size_t pos = text->rfind("CHECKSUM ");
  ASSERT_NE(pos, std::string::npos);
  std::string truncated = text->substr(0, pos);
  auto restored = GetParam().make();
  EXPECT_EQ(RestoreFromSnapshotText(truncated, restored.get()).code(),
            StatusCode::kCorruption);
}

TEST_P(RecoveryTest, MutationsBeforeOpenAreRejected) {
  auto store = MakeStore();
  EXPECT_EQ(store->AddVertex({}, {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store->AppendVertexSample(0, "k", 1, 1.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store->Checkpoint().code(), StatusCode::kFailedPrecondition);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, RecoveryTest,
    ::testing::Values(
        Arch{"all_in_graph",
             [] {
               return std::unique_ptr<query::QueryBackend>(
                   std::make_unique<AllInGraphStore>());
             }},
        Arch{"polyglot",
             [] {
               return std::unique_ptr<query::QueryBackend>(
                   std::make_unique<PolyglotStore>());
             }}),
    [](const ::testing::TestParamInfo<Arch>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hygraph::storage
