#include "common/value.h"

#include <gtest/gtest.h>

namespace hygraph {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{7}).is_int());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(std::string("hi")).is_string());
  EXPECT_TRUE(Value::SeriesRef(3).is_series_ref());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.25).AsDouble(), 2.25);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value::SeriesRef(9).AsSeriesId(), 9u);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value(3.5));
  EXPECT_EQ(Value(3).Compare(Value(3.0)), 0);
}

TEST(ValueTest, ToDoubleWidens) {
  EXPECT_DOUBLE_EQ(*Value(4).ToDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value(4.5).ToDouble(), 4.5);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value().ToDouble().ok());
}

TEST(ValueTest, CompareNumericOrdering) {
  EXPECT_LT(Value(1).Compare(Value(2)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(2)), 0);
  EXPECT_LT(Value(-1).Compare(Value(0.5)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
}

TEST(ValueTest, CompareAcrossTypesOrdersByTypeTag) {
  // null < bool < int/double < string < series_ref by enum order.
  EXPECT_LT(Value().Compare(Value(false)), 0);
  EXPECT_LT(Value(true).Compare(Value(0)), 0);
  EXPECT_LT(Value(5).Compare(Value("5")), 0);
  EXPECT_LT(Value("5").Compare(Value::SeriesRef(0)), 0);
}

TEST(ValueTest, SeriesRefDistinctFromInt) {
  EXPECT_NE(Value::SeriesRef(7), Value(7));
  EXPECT_EQ(Value::SeriesRef(7), Value::SeriesRef(7));
  EXPECT_NE(Value::SeriesRef(7), Value::SeriesRef(8));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(3.0).ToString(), "3.0");
  EXPECT_EQ(Value("txt").ToString(), "txt");
  EXPECT_EQ(Value::SeriesRef(2).ToString(), "ts#2");
}

TEST(ValueTest, BoolCompare) {
  EXPECT_LT(Value(false).Compare(Value(true)), 0);
  EXPECT_EQ(Value(true).Compare(Value(true)), 0);
}

TEST(ValueTest, IsNumeric) {
  EXPECT_TRUE(Value(1).is_numeric());
  EXPECT_TRUE(Value(1.5).is_numeric());
  EXPECT_FALSE(Value("1").is_numeric());
  EXPECT_FALSE(Value(true).is_numeric());
}

}  // namespace
}  // namespace hygraph
