#include "analytics/link_prediction.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

ts::MultiSeries Signal(double phase) {
  ts::MultiSeries ms("s", {"v"});
  for (int i = 0; i < 48; ++i) {
    EXPECT_TRUE(
        ms.AppendRow(i * kHour, {std::sin(i * 0.3 + phase)}).ok());
  }
  return ms;
}

TEST(ScorePairTest, CommonNeighborsAndJaccard) {
  graph::PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const VertexId x = g.AddVertex({}, {});
  const VertexId y = g.AddVertex({}, {});
  ASSERT_TRUE(g.AddEdge(a, x, "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(b, x, "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(a, y, "E", {}).ok());
  EXPECT_DOUBLE_EQ(ScorePair(g, a, b, StructuralScore::kCommonNeighbors),
                   1.0);
  // neighbors(a) = {x, y}, neighbors(b) = {x} -> Jaccard 1/2.
  EXPECT_DOUBLE_EQ(ScorePair(g, a, b, StructuralScore::kJaccard), 0.5);
  EXPECT_DOUBLE_EQ(
      ScorePair(g, a, b, StructuralScore::kPreferentialAttachment), 2.0);
}

TEST(ScorePairTest, AdamicAdarWeighsRareNeighbors) {
  graph::PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const VertexId rare = g.AddVertex({}, {});   // degree 2
  const VertexId hub = g.AddVertex({}, {});    // degree 5
  ASSERT_TRUE(g.AddEdge(a, rare, "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(b, rare, "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(a, hub, "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(b, hub, "E", {}).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(g.AddEdge(hub, g.AddVertex({}, {}), "E", {}).ok());
  }
  const double aa = ScorePair(g, a, b, StructuralScore::kAdamicAdar);
  EXPECT_NEAR(aa, 1.0 / std::log(2.0) + 1.0 / std::log(5.0), 1e-9);
}

// Two triangles missing one closing edge each; the pair whose endpoints
// also co-move in time should rank first for the hybrid scorer.
HyGraph TriangleWorld(VertexId* covary_u, VertexId* covary_v,
                      VertexId* anti_u, VertexId* anti_v) {
  HyGraph hg;
  // Triangle 1 (u, v co-moving), missing (u, v).
  const VertexId u = *hg.AddTsVertex({"S"}, Signal(0.0));
  const VertexId v = *hg.AddTsVertex({"S"}, Signal(0.05));
  const VertexId w = *hg.AddTsVertex({"S"}, Signal(1.0));
  EXPECT_TRUE(hg.AddPgEdge(u, w, "E", {}).ok());
  EXPECT_TRUE(hg.AddPgEdge(v, w, "E", {}).ok());
  // Triangle 2 (p, q anti-phase), missing (p, q).
  const VertexId p = *hg.AddTsVertex({"S"}, Signal(0.0));
  const VertexId q = *hg.AddTsVertex({"S"}, Signal(3.14159265));
  const VertexId r = *hg.AddTsVertex({"S"}, Signal(2.0));
  EXPECT_TRUE(hg.AddPgEdge(p, r, "E", {}).ok());
  EXPECT_TRUE(hg.AddPgEdge(q, r, "E", {}).ok());
  *covary_u = u;
  *covary_v = v;
  *anti_u = p;
  *anti_v = q;
  return hg;
}

TEST(PredictLinksTest, HybridPrefersCoMovingPair) {
  VertexId u, v, p, q;
  HyGraph hg = TriangleWorld(&u, &v, &p, &q);
  LinkPredictionOptions options;
  options.structure_weight = 0.5;
  options.top_k = 4;
  auto links = PredictLinks(hg, options);
  ASSERT_TRUE(links.ok()) << links.status().ToString();
  ASSERT_GE(links->size(), 2u);
  // Both missing triangle edges are candidates with equal structure;
  // the co-moving pair must outrank the anti-phase pair.
  size_t rank_uv = 99, rank_pq = 99;
  for (size_t i = 0; i < links->size(); ++i) {
    const auto& link = (*links)[i];
    if ((link.u == std::min(u, v)) && (link.v == std::max(u, v))) rank_uv = i;
    if ((link.u == std::min(p, q)) && (link.v == std::max(p, q))) rank_pq = i;
  }
  ASSERT_NE(rank_uv, 99u);
  ASSERT_NE(rank_pq, 99u);
  EXPECT_LT(rank_uv, rank_pq);
}

TEST(PredictLinksTest, PureStructuralTiesRemain) {
  VertexId u, v, p, q;
  HyGraph hg = TriangleWorld(&u, &v, &p, &q);
  LinkPredictionOptions options;
  options.structure_weight = 1.0;  // temporal part ignored
  options.top_k = 4;
  auto links = PredictLinks(hg, options);
  ASSERT_TRUE(links.ok());
  // The two missing edges tie structurally.
  ASSERT_GE(links->size(), 2u);
  EXPECT_DOUBLE_EQ((*links)[0].score, (*links)[1].score);
}

TEST(PredictLinksTest, ExcludesExistingEdges) {
  VertexId u, v, p, q;
  HyGraph hg = TriangleWorld(&u, &v, &p, &q);
  auto links = PredictLinks(hg, {});
  ASSERT_TRUE(links.ok());
  for (const PredictedLink& link : *links) {
    // (u, w) etc. are existing edges and must not be predicted.
    bool adjacent = false;
    for (VertexId nb : hg.structure().Neighbors(link.u)) {
      if (nb == link.v) adjacent = true;
    }
    EXPECT_FALSE(adjacent);
  }
}

TEST(PredictLinksTest, Validation) {
  VertexId u, v, p, q;
  HyGraph hg = TriangleWorld(&u, &v, &p, &q);
  LinkPredictionOptions bad;
  bad.structure_weight = 1.5;
  EXPECT_FALSE(PredictLinks(hg, bad).ok());
}

TEST(EvaluateTest, HoldoutRecoversSomeEdges) {
  // A denser world: two cliques of co-moving sensors.
  HyGraph hg;
  std::vector<VertexId> members;
  for (int c = 0; c < 2; ++c) {
    std::vector<VertexId> clique;
    for (int i = 0; i < 5; ++i) {
      clique.push_back(
          *hg.AddTsVertex({"S"}, Signal(c * 3.0 + 0.02 * i)));
    }
    for (size_t i = 0; i < clique.size(); ++i) {
      for (size_t j = i + 1; j < clique.size(); ++j) {
        ASSERT_TRUE(hg.AddPgEdge(clique[i], clique[j], "E", {}).ok());
      }
    }
    members.insert(members.end(), clique.begin(), clique.end());
  }
  auto eval = EvaluateLinkPrediction(hg, 0.2, 7, {});
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_GT(eval->held_out, 0u);
  // Within-clique held-out edges are highly recoverable.
  EXPECT_GT(eval->hybrid_hits, 0u);
}

TEST(EvaluateTest, Validation) {
  VertexId u, v, p, q;
  HyGraph hg = TriangleWorld(&u, &v, &p, &q);
  EXPECT_FALSE(EvaluateLinkPrediction(hg, 0.0, 1, {}).ok());
  EXPECT_FALSE(EvaluateLinkPrediction(hg, 1.0, 1, {}).ok());
}

}  // namespace
}  // namespace hygraph::analytics
