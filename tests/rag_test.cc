#include "analytics/rag.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

TEST(VectorIndexTest, AddValidatesDimensions) {
  VectorIndex index;
  EXPECT_TRUE(index.Add(1, {1.0, 0.0}).ok());
  EXPECT_EQ(index.dimension(), 2u);
  EXPECT_FALSE(index.Add(2, {1.0, 0.0, 0.0}).ok());
  EXPECT_FALSE(index.Add(3, {}).ok());
  EXPECT_EQ(index.size(), 1u);
}

TEST(VectorIndexTest, AddReplacesExisting) {
  VectorIndex index;
  ASSERT_TRUE(index.Add(1, {1.0, 0.0}).ok());
  ASSERT_TRUE(index.Add(1, {0.0, 1.0}).ok());
  EXPECT_EQ(index.size(), 1u);
  auto hits = index.Search({0.0, 1.0}, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_NEAR((*hits)[0].score, 1.0, 1e-12);
}

TEST(VectorIndexTest, CosineSearchOrdersBySimilarity) {
  VectorIndex index(VectorIndex::Metric::kCosine);
  ASSERT_TRUE(index.Add(1, {1.0, 0.0}).ok());
  ASSERT_TRUE(index.Add(2, {0.7, 0.7}).ok());
  ASSERT_TRUE(index.Add(3, {0.0, 1.0}).ok());
  auto hits = index.Search({1.0, 0.1}, 2);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].vertex, 1u);
  EXPECT_EQ((*hits)[1].vertex, 2u);
}

TEST(VectorIndexTest, EuclideanMetric) {
  VectorIndex index(VectorIndex::Metric::kEuclidean);
  ASSERT_TRUE(index.Add(1, {0.0, 0.0}).ok());
  ASSERT_TRUE(index.Add(2, {10.0, 0.0}).ok());
  auto hits = index.Search({1.0, 0.0}, 2);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ((*hits)[0].vertex, 1u);
  EXPECT_DOUBLE_EQ((*hits)[0].score, -1.0);  // negative distance
}

TEST(VectorIndexTest, Validation) {
  VectorIndex index;
  EXPECT_FALSE(index.Search({1.0}, 3).ok());  // empty index
  ASSERT_TRUE(index.Add(1, {1.0, 2.0}).ok());
  EXPECT_FALSE(index.Search({1.0}, 3).ok());  // dimension mismatch
}

ts::MultiSeries Pattern(double base, double amp, double freq,
                        uint64_t phase) {
  ts::MultiSeries ms("p", {"v"});
  for (int i = 0; i < 48; ++i) {
    EXPECT_TRUE(ms.AppendRow(i * kHour,
                             {base + amp * std::sin(i * freq + 0.01 *
                                                    static_cast<double>(
                                                        phase))})
                    .ok());
  }
  return ms;
}

// Two behavioural families (differing in level, amplitude AND shape) in
// two structural cliques.
HyGraph RagWorld(std::vector<VertexId>* calm, std::vector<VertexId>* wild) {
  HyGraph hg;
  for (int i = 0; i < 4; ++i) {
    calm->push_back(*hg.AddTsVertex({"Sensor"}, Pattern(10, 0.5, 0.15, i)));
  }
  for (int i = 0; i < 4; ++i) {
    wild->push_back(*hg.AddTsVertex({"Sensor"}, Pattern(100, 30, 1.3, i)));
  }
  auto clique = [&](const std::vector<VertexId>& vs) {
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        EXPECT_TRUE(hg.AddPgEdge(vs[i], vs[j], "LINK", {}).ok());
      }
    }
  };
  clique(*calm);
  clique(*wild);
  for (VertexId v : *calm) {
    EXPECT_TRUE(hg.SetVertexProperty(v, "zone", Value("calm")).ok());
  }
  return hg;
}

TEST(RetrieverTest, RetrieveSimilarToFindsOwnFamily) {
  std::vector<VertexId> calm, wild;
  HyGraph hg = RagWorld(&calm, &wild);
  RagOptions options;
  options.top_k = 3;
  auto retriever = HyGraphRetriever::Build(&hg, options);
  ASSERT_TRUE(retriever.ok()) << retriever.status().ToString();
  auto contexts = retriever->RetrieveSimilarTo(calm[0]);
  ASSERT_TRUE(contexts.ok());
  ASSERT_EQ(contexts->size(), 3u);
  // All retrieved anchors are the other calm sensors, not the wild ones.
  for (const RetrievedContext& context : *contexts) {
    EXPECT_NE(context.anchor, calm[0]);
    EXPECT_TRUE(std::find(calm.begin(), calm.end(), context.anchor) !=
                calm.end())
        << "retrieved a wild sensor";
  }
}

TEST(RetrieverTest, ContextIncludesNeighborhoodAndText) {
  std::vector<VertexId> calm, wild;
  HyGraph hg = RagWorld(&calm, &wild);
  RagOptions options;
  options.top_k = 1;
  options.hops = 1;
  auto retriever = HyGraphRetriever::Build(&hg, options);
  ASSERT_TRUE(retriever.ok());
  auto contexts = retriever->RetrieveSimilarTo(calm[0]);
  ASSERT_TRUE(contexts.ok());
  ASSERT_EQ(contexts->size(), 1u);
  const RetrievedContext& context = (*contexts)[0];
  // Anchor + its 3 clique neighbors.
  EXPECT_EQ(context.neighborhood.size(), 4u);
  EXPECT_NE(context.text.find("anchor:"), std::string::npos);
  EXPECT_NE(context.text.find("near:"), std::string::npos);
  EXPECT_NE(context.text.find("Sensor"), std::string::npos);
  EXPECT_NE(context.text.find("series["), std::string::npos);
}

TEST(RetrieverTest, RetrieveByRawVector) {
  std::vector<VertexId> calm, wild;
  HyGraph hg = RagWorld(&calm, &wild);
  auto retriever = HyGraphRetriever::Build(&hg, {});
  ASSERT_TRUE(retriever.ok());
  const Embedding& probe = retriever->embeddings().at(wild[1]);
  auto contexts = retriever->Retrieve(probe);
  ASSERT_TRUE(contexts.ok());
  ASSERT_FALSE(contexts->empty());
  EXPECT_EQ((*contexts)[0].anchor, wild[1]);  // itself first
}

TEST(RetrieverTest, UnknownVertexFails) {
  std::vector<VertexId> calm, wild;
  HyGraph hg = RagWorld(&calm, &wild);
  auto retriever = HyGraphRetriever::Build(&hg, {});
  ASSERT_TRUE(retriever.ok());
  EXPECT_FALSE(retriever->RetrieveSimilarTo(999).ok());
}

TEST(DescribeVertexTest, RendersLabelsPropertiesAndSeries) {
  std::vector<VertexId> calm, wild;
  HyGraph hg = RagWorld(&calm, &wild);
  const std::string text = DescribeVertex(hg, calm[0]);
  EXPECT_NE(text.find("Sensor"), std::string::npos);
  EXPECT_NE(text.find("zone=calm"), std::string::npos);
  EXPECT_NE(text.find("48 pts"), std::string::npos);
  EXPECT_EQ(DescribeVertex(hg, 424242), "(unknown vertex)");
}

}  // namespace
}  // namespace hygraph::analytics
