#include "common/time.h"

#include <gtest/gtest.h>

namespace hygraph {
namespace {

TEST(IntervalTest, ContainsHalfOpen) {
  Interval i{10, 20};
  EXPECT_TRUE(i.Contains(10));
  EXPECT_TRUE(i.Contains(19));
  EXPECT_FALSE(i.Contains(20));
  EXPECT_FALSE(i.Contains(9));
}

TEST(IntervalTest, EmptyWhenDegenerate) {
  EXPECT_TRUE((Interval{5, 5}).empty());
  EXPECT_TRUE((Interval{6, 5}).empty());
  EXPECT_FALSE((Interval{5, 6}).empty());
  EXPECT_EQ((Interval{6, 5}).length(), 0);
}

TEST(IntervalTest, AtSingleInstant) {
  Interval i = Interval::At(7);
  EXPECT_TRUE(i.Contains(7));
  EXPECT_FALSE(i.Contains(8));
  EXPECT_EQ(i.length(), 1);
}

TEST(IntervalTest, AllCoversEverything) {
  Interval all = Interval::All();
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(kMinTimestamp));
  EXPECT_TRUE(all.Contains(kMaxTimestamp - 1));
  EXPECT_EQ(all.length(), kMaxTimestamp);  // saturates, no overflow
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE((Interval{0, 10}).Overlaps(Interval{5, 15}));
  EXPECT_TRUE((Interval{5, 15}).Overlaps(Interval{0, 10}));
  EXPECT_FALSE((Interval{0, 10}).Overlaps(Interval{10, 20}));  // half-open
  EXPECT_FALSE((Interval{0, 5}).Overlaps(Interval{6, 9}));
  EXPECT_TRUE((Interval{0, 10}).Overlaps(Interval{2, 3}));
}

TEST(IntervalTest, ContainsInterval) {
  EXPECT_TRUE((Interval{0, 10}).ContainsInterval(Interval{2, 8}));
  EXPECT_TRUE((Interval{0, 10}).ContainsInterval(Interval{0, 10}));
  EXPECT_FALSE((Interval{0, 10}).ContainsInterval(Interval{2, 11}));
  EXPECT_TRUE(Interval::All().ContainsInterval(Interval{-5, 5}));
}

TEST(IntervalTest, Intersect) {
  Interval i = Interval{0, 10}.Intersect(Interval{5, 20});
  EXPECT_EQ(i.start, 5);
  EXPECT_EQ(i.end, 10);
  EXPECT_TRUE((Interval{0, 5}).Intersect(Interval{10, 20}).empty());
}

TEST(IntervalTest, LengthOfBoundedInterval) {
  EXPECT_EQ((Interval{100, 250}).length(), 150);
}

TEST(FormatTimestampTest, KnownInstant) {
  // 2023-11-14T22:13:20.000Z
  EXPECT_EQ(FormatTimestamp(1700000000000), "2023-11-14T22:13:20.000");
  EXPECT_EQ(FormatTimestamp(1700000000250), "2023-11-14T22:13:20.250");
}

TEST(FormatTimestampTest, Sentinels) {
  EXPECT_EQ(FormatTimestamp(kMaxTimestamp), "+inf");
  EXPECT_EQ(FormatTimestamp(kMinTimestamp), "-inf");
}

TEST(FormatTimestampTest, IntervalToString) {
  Interval i{1700000000000, kMaxTimestamp};
  EXPECT_EQ(i.ToString(), "[2023-11-14T22:13:20.000, +inf)");
}

TEST(DurationTest, UnitConstants) {
  EXPECT_EQ(kSecond, 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

}  // namespace
}  // namespace hygraph
