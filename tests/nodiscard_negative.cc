// Negative-compile probe: this file must NOT compile under
// -Werror=unused-result. tests/CMakeLists.txt registers it as a ctest case
// with WILL_FAIL, invoking the compiler directly — if [[nodiscard]] is ever
// dropped from Status or Result<T>, the snippet starts compiling and the
// test turns red. It is never linked into anything.
#include "common/status.h"

namespace {

hygraph::Status MakeStatus() { return hygraph::Status::Internal("dropped"); }
hygraph::Result<int> MakeResult() { return 7; }

void DiscardsBoth() {
  MakeStatus();  // discarded Status: must be a compile error
  MakeResult();  // discarded Result<T>: must be a compile error
  // The governance codes added for deadlines / cancellation / budgets are
  // just as easy to drop on an error path, so they get the same guard.
  hygraph::Status::DeadlineExceeded("dropped");
  hygraph::Status::Cancelled("dropped");
  hygraph::Status::ResourceExhausted("dropped");
  hygraph::Status::Unavailable("dropped");
}

}  // namespace

int main() {
  DiscardsBoth();
  return 0;
}
