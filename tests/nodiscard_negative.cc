// Negative-compile probe: this file must NOT compile under
// -Werror=unused-result. tests/CMakeLists.txt registers it as a ctest case
// with WILL_FAIL, invoking the compiler directly — if [[nodiscard]] is ever
// dropped from Status or Result<T>, the snippet starts compiling and the
// test turns red. It is never linked into anything.
#include "common/status.h"

namespace {

hygraph::Status MakeStatus() { return hygraph::Status::Internal("dropped"); }
hygraph::Result<int> MakeResult() { return 7; }

void DiscardsBoth() {
  MakeStatus();  // discarded Status: must be a compile error
  MakeResult();  // discarded Result<T>: must be a compile error
}

}  // namespace

int main() {
  DiscardsBoth();
  return 0;
}
