// Hostile-input and round-trip tests for the HGQL wire codec
// (src/server/wire.h). The decoder must be total: every byte string either
// yields a frame, asks for more bytes, or is rejected with a Status —
// truncation at EVERY prefix length, flipped CRCs, bad magic, unknown
// types and oversized length fields are all exercised here (the fuzz
// harness fuzz_wire_frame covers the rest of the input space).

#include "server/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace hygraph::server {
namespace {

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

TEST(WireFrameTest, HelloRoundTrip) {
  HelloRequest hello;
  hello.client_name = "wire_test";
  const std::string frame = EncodeHelloFrame(hello);

  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);
  EXPECT_EQ(r.consumed, frame.size());
  EXPECT_EQ(r.frame.type, FrameType::kHello);

  auto req = DecodeRequest(r.frame);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->type, FrameType::kHello);
  EXPECT_EQ(req->hello.protocol_version, kWireVersion);
  EXPECT_EQ(req->hello.client_name, "wire_test");
}

TEST(WireFrameTest, QueryRoundTrip) {
  QueryRequest query;
  query.timeout_ms = 2500;
  query.text = "MATCH (v) RETURN v LIMIT 3";
  const std::string frame = EncodeQueryFrame(query);

  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);
  auto req = DecodeRequest(r.frame);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->query.timeout_ms, 2500u);
  EXPECT_EQ(req->query.text, "MATCH (v) RETURN v LIMIT 3");
}

TEST(WireFrameTest, AppendRoundTrip) {
  AppendRequest append;
  append.no_sync = true;
  for (int i = 0; i < 5; ++i) {
    SampleUpdate s;
    s.kind = i % 2 == 0 ? SampleUpdate::kVertex : SampleUpdate::kEdge;
    s.id = static_cast<uint64_t>(i);
    s.timestamp = 1000 * i;
    s.value = 0.5 * i;
    s.key = "load";
    append.samples.push_back(s);
  }
  const std::string frame = EncodeAppendFrame(append);

  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);
  auto req = DecodeRequest(r.frame);
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE(req->append.no_sync);
  ASSERT_EQ(req->append.samples.size(), 5u);
  EXPECT_EQ(req->append.samples[1].kind, SampleUpdate::kEdge);
  EXPECT_EQ(req->append.samples[4].timestamp, 4000);
  EXPECT_DOUBLE_EQ(req->append.samples[4].value, 2.0);
  EXPECT_EQ(req->append.samples[4].key, "load");
}

TEST(WireFrameTest, ResponseRoundTripAllValueTypes) {
  WireResponse resp;
  resp.code = StatusCode::kOk;
  resp.message = "done";
  resp.has_table = true;
  resp.table.columns = {"null", "bool", "int", "double", "string", "series"};
  resp.table.rows.push_back({Value(), Value(true), Value(int64_t{-7}),
                             Value(2.75), Value("text"),
                             Value::SeriesRef(42)});

  const std::string frame = EncodeResultFrame(resp);
  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);
  auto decoded = DecodeResponse(r.frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->message, "done");
  ASSERT_EQ(decoded->table.rows.size(), 1u);
  const auto& row = decoded->table.rows[0];
  EXPECT_TRUE(row[0].is_null());
  EXPECT_EQ(row[1], Value(true));
  EXPECT_EQ(row[2], Value(int64_t{-7}));
  EXPECT_EQ(row[3], Value(2.75));
  EXPECT_EQ(row[4], Value("text"));
  EXPECT_EQ(row[5].AsSeriesId(), 42u);
}

TEST(WireFrameTest, ErrorResponseCarriesStatus) {
  WireResponse resp;
  resp.code = StatusCode::kResourceExhausted;
  resp.message = "shed";
  const std::string frame = EncodeResultFrame(resp);
  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);
  auto decoded = DecodeResponse(r.frame);
  ASSERT_TRUE(decoded.ok());
  const Status status = StatusFromWire(decoded->code, decoded->message);
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(status.message(), "shed");
}

TEST(WireFrameTest, TruncationAtEveryPrefixNeverYieldsAFrame) {
  QueryRequest query;
  query.text = "MATCH (v) RETURN v";
  const std::string frame = EncodeQueryFrame(query);
  for (size_t len = 0; len < frame.size(); ++len) {
    DecodeResult r = DecodeFrame(Bytes(frame), len);
    EXPECT_NE(r.progress, DecodeProgress::kFrame) << "prefix length " << len;
    // A valid frame's prefix is never an error either — the decoder must
    // keep asking for more bytes.
    EXPECT_EQ(r.progress, DecodeProgress::kNeedMore)
        << "prefix length " << len << ": " << r.error.ToString();
    EXPECT_GT(r.need, len);
  }
}

TEST(WireFrameTest, BadMagicRejectedEarly) {
  std::string frame = EncodeGoodbyeFrame();
  frame[0] = 'X';
  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  EXPECT_EQ(r.progress, DecodeProgress::kError);
  // Detected from the very first byte, before a full header arrives.
  DecodeResult early = DecodeFrame(Bytes(frame), 1);
  EXPECT_EQ(early.progress, DecodeProgress::kError);
}

TEST(WireFrameTest, BadVersionRejected) {
  std::string frame = EncodeGoodbyeFrame();
  frame[2] = 9;
  EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size()).progress,
            DecodeProgress::kError);
}

TEST(WireFrameTest, UnknownFrameTypeRejected) {
  std::string frame = EncodeGoodbyeFrame();
  frame[3] = 0x7f;
  EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size()).progress,
            DecodeProgress::kError);
}

TEST(WireFrameTest, CorruptPayloadCrcRejected) {
  QueryRequest query;
  query.text = "MATCH (v) RETURN v";
  std::string frame = EncodeQueryFrame(query);
  frame[frame.size() - 1] ^= 0x01;  // flip one payload bit
  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kError);
  EXPECT_EQ(r.error.code(), StatusCode::kCorruption);
}

TEST(WireFrameTest, OversizedLengthFieldRejectedWithoutAllocating) {
  std::string frame = EncodeGoodbyeFrame();
  // Claim a ~4 GiB payload; the decoder must reject from the 12 header
  // bytes alone instead of waiting for (or allocating) that much.
  frame[4] = static_cast<char>(0xff);
  frame[5] = static_cast<char>(0xff);
  frame[6] = static_cast<char>(0xff);
  frame[7] = static_cast<char>(0xfe);
  DecodeResult r = DecodeFrame(Bytes(frame), kWireHeaderSize);
  ASSERT_EQ(r.progress, DecodeProgress::kError);
  EXPECT_TRUE(r.error.IsResourceExhausted());
}

TEST(WireFrameTest, ServerFrameLimitTighterThanProtocolLimit) {
  QueryRequest query;
  query.text = std::string(1024, 'q');
  const std::string frame = EncodeQueryFrame(query);
  EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size()).progress,
            DecodeProgress::kFrame);
  DecodeResult tight = DecodeFrame(Bytes(frame), frame.size(), 256);
  ASSERT_EQ(tight.progress, DecodeProgress::kError);
  EXPECT_TRUE(tight.error.IsResourceExhausted());
}

TEST(WireFrameTest, TrailingBytesInRequestPayloadRejected) {
  ByteWriter w;
  w.U64(0);        // timeout
  w.Str("RETURN 1");
  w.U8(0xab);      // trailing garbage
  const std::string frame = EncodeFrame(FrameType::kQuery, w.str());
  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);  // framing is fine
  EXPECT_FALSE(DecodeRequest(r.frame).ok());      // payload is not
}

TEST(WireFrameTest, AppendCountBeyondBytesRejected) {
  ByteWriter w;
  w.U8(0);
  w.U32(1000000);  // claims a million samples with no bytes behind them
  const std::string frame = EncodeFrame(FrameType::kAppend, w.str());
  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);
  EXPECT_FALSE(DecodeRequest(r.frame).ok());
}

TEST(WireFrameTest, StringLengthBeyondBytesRejected) {
  ByteWriter w;
  w.U64(0);
  w.U32(0xffffffffu);  // string length prefix with no body
  const std::string frame = EncodeFrame(FrameType::kQuery, w.str());
  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);
  EXPECT_FALSE(DecodeRequest(r.frame).ok());
}

TEST(WireFrameTest, ResultFrameIsNotARequest) {
  const std::string frame = EncodeResultFrame(WireResponse{});
  DecodeResult r = DecodeFrame(Bytes(frame), frame.size());
  ASSERT_EQ(r.progress, DecodeProgress::kFrame);
  EXPECT_FALSE(DecodeRequest(r.frame).ok());
}

TEST(WireByteReaderTest, ReaderLeavesCursorOnFailedReads) {
  ByteWriter w;
  w.U32(7);
  const std::string buf = w.str();
  ByteReader r(buf);
  uint64_t u64 = 0;
  EXPECT_FALSE(r.U64(&u64));  // only 4 bytes available
  uint32_t u32 = 0;
  EXPECT_TRUE(r.U32(&u32));  // the failed read consumed nothing
  EXPECT_EQ(u32, 7u);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace hygraph::server
