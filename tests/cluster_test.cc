#include "analytics/cluster.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

EmbeddingMap ThreeBlobs(size_t per_blob, uint64_t seed = 3) {
  Rng rng(seed);
  EmbeddingMap embeddings;
  VertexId id = 0;
  const double centers[3][2] = {{0, 0}, {20, 0}, {0, 20}};
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      embeddings[id++] = {centers[b][0] + rng.NextGaussian(),
                          centers[b][1] + rng.NextGaussian()};
    }
  }
  return embeddings;
}

TEST(KMedoidsTest, RecoversBlobs) {
  EmbeddingMap embeddings = ThreeBlobs(10);
  ClusterOptions options;
  options.k = 3;
  auto result = KMedoids(embeddings, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->medoids.size(), 3u);
  EXPECT_EQ(result->assignment.size(), 30u);
  // All members of a ground-truth blob share one cluster.
  for (VertexId base : {VertexId{0}, VertexId{10}, VertexId{20}}) {
    const size_t cluster = result->assignment.at(base);
    for (VertexId v = base; v < base + 10; ++v) {
      EXPECT_EQ(result->assignment.at(v), cluster) << v;
    }
  }
  // And distinct blobs get distinct clusters.
  EXPECT_NE(result->assignment.at(0), result->assignment.at(10));
  EXPECT_NE(result->assignment.at(0), result->assignment.at(20));
  EXPECT_GT(result->silhouette, 0.8);
}

TEST(KMedoidsTest, MedoidsAreClusterMembers) {
  EmbeddingMap embeddings = ThreeBlobs(8);
  ClusterOptions options;
  options.k = 3;
  auto result = KMedoids(embeddings, options);
  ASSERT_TRUE(result.ok());
  for (size_t c = 0; c < result->medoids.size(); ++c) {
    EXPECT_EQ(result->assignment.at(result->medoids[c]), c);
  }
}

TEST(KMedoidsTest, Validation) {
  EmbeddingMap embeddings = ThreeBlobs(2);
  ClusterOptions zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(KMedoids(embeddings, zero_k).ok());
  ClusterOptions too_many;
  too_many.k = 100;
  EXPECT_FALSE(KMedoids(embeddings, too_many).ok());
}

TEST(KMedoidsTest, DeterministicForSeed) {
  EmbeddingMap embeddings = ThreeBlobs(10);
  ClusterOptions options;
  options.k = 3;
  auto a = KMedoids(embeddings, options);
  auto b = KMedoids(embeddings, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(SilhouetteTest, PerfectVsRandomAssignment) {
  EmbeddingMap embeddings = ThreeBlobs(10);
  std::unordered_map<VertexId, size_t> perfect;
  std::unordered_map<VertexId, size_t> scrambled;
  Rng rng(11);
  for (const auto& [v, _] : embeddings) {
    perfect[v] = v / 10;
    scrambled[v] = rng.NextBounded(3);
  }
  EXPECT_GT(Silhouette(embeddings, perfect),
            Silhouette(embeddings, scrambled) + 0.3);
}

TEST(SilhouetteTest, DegenerateCases) {
  EmbeddingMap embeddings = ThreeBlobs(2);
  std::unordered_map<VertexId, size_t> one_cluster;
  for (const auto& [v, _] : embeddings) one_cluster[v] = 0;
  EXPECT_DOUBLE_EQ(Silhouette(embeddings, one_cluster), 0.0);
  EXPECT_DOUBLE_EQ(Silhouette({}, {}), 0.0);
}

ts::MultiSeries Wave(double base, double amp, uint64_t phase) {
  ts::MultiSeries ms("s", {"v"});
  for (int i = 0; i < 48; ++i) {
    EXPECT_TRUE(ms.AppendRow(i * kHour,
                             {base + amp * std::sin(i * 0.4 +
                                                    0.01 * phase)})
                    .ok());
  }
  return ms;
}

TEST(HybridClusterTest, GroupsByStructureAndBehaviour) {
  // Two structural cliques; within each, members share behaviour too.
  HyGraph hg;
  std::vector<VertexId> calm;
  std::vector<VertexId> wild;
  for (int i = 0; i < 4; ++i) {
    calm.push_back(*hg.AddTsVertex({"S"}, Wave(10, 0.5, i)));
  }
  for (int i = 0; i < 4; ++i) {
    wild.push_back(*hg.AddTsVertex({"S"}, Wave(100, 30, i)));
  }
  auto clique = [&](const std::vector<VertexId>& vs) {
    for (size_t i = 0; i < vs.size(); ++i) {
      for (size_t j = i + 1; j < vs.size(); ++j) {
        ASSERT_TRUE(hg.AddPgEdge(vs[i], vs[j], "E", {}).ok());
      }
    }
  };
  clique(calm);
  clique(wild);
  ClusterOptions options;
  options.k = 2;
  auto result = HybridCluster(hg, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const size_t calm_cluster = result->assignment.at(calm[0]);
  for (VertexId v : calm) {
    EXPECT_EQ(result->assignment.at(v), calm_cluster);
  }
  EXPECT_NE(result->assignment.at(wild[0]), calm_cluster);
}

}  // namespace
}  // namespace hygraph::analytics
