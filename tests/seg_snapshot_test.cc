#include "analytics/seg_snapshot.h"

#include <gtest/gtest.h>

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

// A graph whose population doubles at t = 1000: a,b always there; c,d join
// at 1000. Driver series: activity level 1 before, 10 after.
struct World {
  HyGraph hg;
  ts::Series driver{"activity"};
};

World MakeWorld() {
  World w;
  (void)*w.hg.AddPgVertex({"N"}, {}, Interval{0, 2000});
  (void)*w.hg.AddPgVertex({"N"}, {}, Interval{0, 2000});
  (void)*w.hg.AddPgVertex({"N"}, {}, Interval{1000, 2000});
  (void)*w.hg.AddPgVertex({"N"}, {}, Interval{1000, 2000});
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(
        w.driver.Append(i * 100, i < 10 ? 1.0 : 10.0).ok());
  }
  return w;
}

TEST(SegSnapshotTest, OneSnapshotPerRegime) {
  World w = MakeWorld();
  SegSnapshotOptions options;
  options.max_error = 1.0;
  options.max_segments = 4;
  auto regimes = SegmentationSnapshots(w.hg, w.driver, options);
  ASSERT_TRUE(regimes.ok()) << regimes.status().ToString();
  ASSERT_GE(regimes->size(), 2u);
  // The first regime's snapshot (midpoint < 1000) sees 2 vertices; the
  // last regime's snapshot sees 4.
  EXPECT_EQ(regimes->front().snapshot.graph.VertexCount(), 2u);
  EXPECT_EQ(regimes->back().snapshot.graph.VertexCount(), 4u);
}

TEST(SegSnapshotTest, SegmentsCoverDriver) {
  World w = MakeWorld();
  auto regimes = SegmentationSnapshots(w.hg, w.driver);
  ASSERT_TRUE(regimes.ok());
  EXPECT_EQ(regimes->front().segment.begin, 0u);
  EXPECT_EQ(regimes->back().segment.end, w.driver.size());
  for (size_t i = 1; i < regimes->size(); ++i) {
    EXPECT_EQ((*regimes)[i].segment.begin, (*regimes)[i - 1].segment.end);
  }
}

TEST(SegSnapshotTest, SnapshotAtRegimeMidpoint) {
  World w = MakeWorld();
  auto regimes = SegmentationSnapshots(w.hg, w.driver);
  ASSERT_TRUE(regimes.ok());
  for (const RegimeSnapshot& regime : *regimes) {
    EXPECT_GE(regime.snapshot.at, regime.segment.start_time);
    EXPECT_LE(regime.snapshot.at, regime.segment.end_time);
  }
}

TEST(SegSnapshotTest, FlatDriverYieldsSingleSnapshot) {
  World w = MakeWorld();
  ts::Series flat("flat");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(flat.Append(i * 100, 5.0).ok());
  }
  auto regimes = SegmentationSnapshots(w.hg, flat);
  ASSERT_TRUE(regimes.ok());
  EXPECT_EQ(regimes->size(), 1u);
}

TEST(SegSnapshotTest, EmptyDriverFails) {
  World w = MakeWorld();
  EXPECT_FALSE(SegmentationSnapshots(w.hg, ts::Series("e")).ok());
}

TEST(SegSnapshotTest, MaxSegmentsBoundsSnapshots) {
  World w = MakeWorld();
  // A jagged driver would segment endlessly; the cap must hold.
  ts::Series jagged("j");
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(jagged.Append(i * 50, (i % 2) * 10.0).ok());
  }
  SegSnapshotOptions options;
  options.max_error = 0.001;
  options.max_segments = 5;
  auto regimes = SegmentationSnapshots(w.hg, jagged, options);
  ASSERT_TRUE(regimes.ok());
  EXPECT_LE(regimes->size(), 5u);
}

}  // namespace
}  // namespace hygraph::analytics
