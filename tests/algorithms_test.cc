#include "graph/algorithms.h"

#include <gtest/gtest.h>

namespace hygraph::graph {
namespace {

PropertyGraph Triangle() {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const VertexId c = g.AddVertex({}, {});
  EXPECT_TRUE(g.AddEdge(a, b, "E", {}).ok());
  EXPECT_TRUE(g.AddEdge(b, c, "E", {}).ok());
  EXPECT_TRUE(g.AddEdge(c, a, "E", {}).ok());
  return g;
}

TEST(PageRankTest, SumsToOne) {
  PropertyGraph g = Triangle();
  auto ranks = PageRank(g);
  ASSERT_TRUE(ranks.ok());
  double total = 0.0;
  for (const auto& [_, r] : *ranks) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  PropertyGraph g = Triangle();
  auto ranks = PageRank(g);
  ASSERT_TRUE(ranks.ok());
  for (const auto& [_, r] : *ranks) EXPECT_NEAR(r, 1.0 / 3.0, 1e-9);
}

TEST(PageRankTest, HubReceivesMoreRank) {
  PropertyGraph g;
  const VertexId hub = g.AddVertex({}, {});
  std::vector<VertexId> spokes;
  for (int i = 0; i < 5; ++i) {
    const VertexId s = g.AddVertex({}, {});
    spokes.push_back(s);
    ASSERT_TRUE(g.AddEdge(s, hub, "E", {}).ok());
  }
  auto ranks = PageRank(g);
  ASSERT_TRUE(ranks.ok());
  for (VertexId s : spokes) {
    EXPECT_GT((*ranks)[hub], (*ranks)[s] * 3);
  }
}

TEST(PageRankTest, DanglingMassRedistributed) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});  // dangling
  ASSERT_TRUE(g.AddEdge(a, b, "E", {}).ok());
  auto ranks = PageRank(g);
  ASSERT_TRUE(ranks.ok());
  double total = 0.0;
  for (const auto& [_, r] : *ranks) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT((*ranks)[b], (*ranks)[a]);
}

TEST(PageRankTest, EmptyGraphAndValidation) {
  PropertyGraph g;
  auto ranks = PageRank(g);
  ASSERT_TRUE(ranks.ok());
  EXPECT_TRUE(ranks->empty());
  PageRankOptions bad;
  bad.damping = 1.5;
  EXPECT_FALSE(PageRank(Triangle(), bad).ok());
}

TEST(ConnectedComponentsTest, TwoIslands) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  const VertexId c = g.AddVertex({}, {});
  const VertexId d = g.AddVertex({}, {});
  ASSERT_TRUE(g.AddEdge(a, b, "E", {}).ok());
  ASSERT_TRUE(g.AddEdge(c, d, "E", {}).ok());
  auto components = ConnectedComponents(g);
  EXPECT_EQ(components[a], components[b]);
  EXPECT_EQ(components[c], components[d]);
  EXPECT_NE(components[a], components[c]);
  // Component labeled by its smallest member.
  EXPECT_EQ(components[a], a);
  EXPECT_EQ(components[c], c);
}

TEST(ConnectedComponentsTest, DirectionIgnored) {
  PropertyGraph g;
  const VertexId a = g.AddVertex({}, {});
  const VertexId b = g.AddVertex({}, {});
  ASSERT_TRUE(g.AddEdge(b, a, "E", {}).ok());  // only b -> a
  auto components = ConnectedComponents(g);
  EXPECT_EQ(components[a], components[b]);
}

TEST(TriangleCountTest, SingleTriangle) {
  EXPECT_EQ(CountTriangles(Triangle()), 1u);
}

TEST(TriangleCountTest, SquareHasNone) {
  PropertyGraph g;
  std::vector<VertexId> v;
  for (int i = 0; i < 4; ++i) v.push_back(g.AddVertex({}, {}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(g.AddEdge(v[i], v[(i + 1) % 4], "E", {}).ok());
  }
  EXPECT_EQ(CountTriangles(g), 0u);
}

TEST(TriangleCountTest, K4HasFour) {
  PropertyGraph g;
  std::vector<VertexId> v;
  for (int i = 0; i < 4; ++i) v.push_back(g.AddVertex({}, {}));
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      ASSERT_TRUE(g.AddEdge(v[i], v[j], "E", {}).ok());
    }
  }
  EXPECT_EQ(CountTriangles(g), 4u);
}

TEST(TriangleCountTest, ParallelEdgesAndLoopsIgnored) {
  PropertyGraph g = Triangle();
  const VertexId a = *g.VertexIds().begin();
  ASSERT_TRUE(g.AddEdge(a, a, "SELF", {}).ok());
  ASSERT_TRUE(g.AddEdge(a, g.VertexIds()[1], "DUP", {}).ok());
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST(ClusteringCoefficientTest, TriangleIsOne) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(Triangle()), 1.0);
}

TEST(ClusteringCoefficientTest, StarIsZero) {
  PropertyGraph g;
  const VertexId hub = g.AddVertex({}, {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(g.AddEdge(hub, g.AddVertex({}, {}), "E", {}).ok());
  }
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(DegreeHistogramTest, CountsDegrees) {
  PropertyGraph g;
  const VertexId hub = g.AddVertex({}, {});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(g.AddEdge(hub, g.AddVertex({}, {}), "E", {}).ok());
  }
  auto hist = DegreeHistogram(g);
  EXPECT_EQ(hist[3], 1u);  // hub
  EXPECT_EQ(hist[1], 3u);  // leaves
}

}  // namespace
}  // namespace hygraph::graph
