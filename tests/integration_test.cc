// End-to-end integration: the Figure-4 pipeline stages chained over
// generated data, plus cross-layer flows (workload -> storage -> HGQL ->
// analytics -> annotated HyGraph).

#include <gtest/gtest.h>

#include "analytics/detection.h"
#include "analytics/fraud.h"
#include "analytics/hybrid_aggregate.h"
#include "analytics/seg_snapshot.h"
#include "core/convert.h"
#include "query/executor.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"
#include "temporal/metric_evolution.h"
#include "workloads/bike_sharing.h"
#include "workloads/financial.h"
#include "workloads/fraud_workload.h"

namespace hygraph {
namespace {

TEST(IntegrationTest, Figure4PipelineEndToEnd) {
  // 1. <X>ToHyGraph: generate the credit-card world.
  workloads::FraudConfig config;
  config.users = 80;
  config.merchants = 18;
  config.merchant_clusters = 3;
  config.days = 6;
  config.seed = 321;
  auto hg = workloads::GenerateFraudHyGraph(config);
  ASSERT_TRUE(hg.ok());
  ASSERT_TRUE(hg->Validate().ok());

  // 2. HyGraphTo<TS>: metric evolution of the structure.
  const auto times = temporal::SampleTimes(hg->tpg(), 32);
  if (times.size() >= 2) {
    auto sizes = temporal::SizeEvolution(hg->tpg(), times);
    ASSERT_TRUE(sizes.ok());
    EXPECT_EQ(sizes->vertex_count.size(), times.size());
  }

  // 3. HyGraphToHyGraph: hybrid detection with annotation.
  core::HyGraph annotated = *hg;
  auto verdict = analytics::DetectFraudHybrid(annotated, {}, &annotated);
  ASSERT_TRUE(verdict.ok());
  ASSERT_TRUE(annotated.Validate().ok());
  auto metrics = analytics::EvaluateVerdict(annotated, *verdict);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->f1(), 0.9);

  // 4. The annotated instance exposes the cluster for further queries.
  const auto subgraphs = annotated.SubgraphIds();
  ASSERT_EQ(subgraphs.size(), 1u);
  auto members = annotated.SubgraphAt(subgraphs[0], config.start_time);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->vertices.size(), verdict->flagged_users.size());
}

TEST(IntegrationTest, WorkloadThroughBothEnginesAndHgql) {
  workloads::BikeSharingConfig config;
  config.stations = 12;
  config.districts = 3;
  config.days = 2;
  config.sample_interval = kHour;
  config.seed = 5;
  auto dataset = workloads::GenerateBikeSharing(config);
  ASSERT_TRUE(dataset.ok());
  storage::AllInGraphStore red;
  storage::PolyglotStore green;
  ASSERT_TRUE(workloads::LoadIntoBackend(*dataset, &red).ok());
  ASSERT_TRUE(workloads::LoadIntoBackend(*dataset, &green).ok());
  const std::string query =
      "MATCH (s:Station) RETURN s.name AS n, ts_avg(s.bikes, " +
      std::to_string(dataset->start()) + ", " +
      std::to_string(dataset->end()) + ") AS a ORDER BY a DESC LIMIT 3";
  auto from_red = query::Execute(red, query);
  auto from_green = query::Execute(green, query);
  ASSERT_TRUE(from_red.ok());
  ASSERT_TRUE(from_green.ok());
  ASSERT_EQ(from_red->row_count(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(from_red->rows[r][0], from_green->rows[r][0]);
    // Chunked vs flat summation differs in the last bits.
    EXPECT_NEAR(from_red->rows[r][1].AsDouble(),
                from_green->rows[r][1].AsDouble(), 1e-9);
  }
}

TEST(IntegrationTest, BikeWorldHybridAggregateByDistrict) {
  workloads::BikeSharingConfig config;
  config.stations = 12;
  config.districts = 3;
  config.days = 2;
  config.sample_interval = 30 * kMinute;
  auto dataset = workloads::GenerateBikeSharing(config);
  ASSERT_TRUE(dataset.ok());
  auto hg = workloads::ToHyGraph(*dataset);
  ASSERT_TRUE(hg.ok());
  analytics::HybridAggregateOptions options;
  options.group_key = "district";
  options.granularity = 6 * kHour;
  auto result = analytics::HybridAggregate(*hg, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->summary.VertexCount(), 3u);
  for (graph::VertexId v : result->summary.TsVertices()) {
    auto series = result->summary.VertexSeries(v);
    ASSERT_TRUE(series.ok());
    EXPECT_EQ((*series)->size(), 8u);  // 2 days at 6h granularity
  }
  EXPECT_TRUE(result->summary.Validate().ok());
}

TEST(IntegrationTest, FinancialWorldSegmentationSnapshots) {
  workloads::FinancialConfig config;
  config.companies = 25;
  config.years = 4;
  config.seed = 77;
  auto hg = workloads::GenerateFinancialHyGraph(config);
  ASSERT_TRUE(hg.ok());
  // Driver: number of live companies over time (graph metric as series).
  const auto times = temporal::SampleTimes(hg->tpg(), 64);
  ASSERT_GE(times.size(), 4u);
  auto sizes = temporal::SizeEvolution(hg->tpg(), times);
  ASSERT_TRUE(sizes.ok());
  analytics::SegSnapshotOptions options;
  options.max_error = 4.0;
  options.max_segments = 6;
  auto regimes =
      analytics::SegmentationSnapshots(*hg, sizes->vertex_count, options);
  ASSERT_TRUE(regimes.ok());
  ASSERT_GE(regimes->size(), 2u);
  // Snapshots must be consistent LPGs of strictly different eras.
  EXPECT_LT(regimes->front().snapshot.at, regimes->back().snapshot.at);
}

TEST(IntegrationTest, RoundTripThroughConverters) {
  workloads::FraudConfig config;
  config.users = 20;
  config.merchants = 9;
  config.merchant_clusters = 3;
  config.days = 3;
  auto hg = workloads::GenerateFraudHyGraph(config);
  ASSERT_TRUE(hg.ok());
  // HyGraph -> TPG -> HyGraph keeps the structural layer intact.
  auto tpg = core::ToTemporalGraph(*hg);
  ASSERT_TRUE(tpg.ok());
  auto back = core::FromTemporalGraph(*tpg);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->VertexCount(), hg->VertexCount());
  EXPECT_EQ(back->EdgeCount(), hg->EdgeCount());
  // HyGraph -> series collection covers every TS element.
  const auto collection = core::ToSeriesCollection(*hg);
  EXPECT_GE(collection.size(),
            hg->TsVertices().size() + hg->TsEdges().size());
}

TEST(IntegrationTest, ContextualDetectionOnBikeWorld) {
  workloads::BikeSharingConfig config;
  config.stations = 20;
  config.districts = 4;
  config.days = 3;
  config.sample_interval = kHour;
  auto dataset = workloads::GenerateBikeSharing(config);
  ASSERT_TRUE(dataset.ok());
  auto hg = workloads::ToHyGraph(*dataset);
  ASSERT_TRUE(hg.ok());
  analytics::ContextualDetectionOptions options;
  options.threshold = 3.0;
  // Should run cleanly on an organic world (few or no anomalies).
  auto result = analytics::DetectContextualAnomalies(*hg, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->communities.size(), hg->VertexCount());
}

}  // namespace
}  // namespace hygraph
