#include "common/status.h"

#include <gtest/gtest.h>

namespace hygraph {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Corruption("f"), StatusCode::kCorruption, "Corruption"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
      {Status::IOError("i"), StatusCode::kIOError, "IOError"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("vertex 17");
  EXPECT_EQ(s.ToString(), "NotFound: vertex 17");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> extracted = std::move(r).value();
  EXPECT_EQ(*extracted, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Status FailsThenPropagates(bool fail) {
  HYGRAPH_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace hygraph
