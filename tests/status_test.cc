#include "common/status.h"

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace hygraph {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Corruption("f"), StatusCode::kCorruption, "Corruption"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
      {Status::IOError("i"), StatusCode::kIOError, "IOError"},
      {Status::DeadlineExceeded("j"), StatusCode::kDeadlineExceeded,
       "DeadlineExceeded"},
      {Status::Cancelled("k"), StatusCode::kCancelled, "Cancelled"},
      {Status::ResourceExhausted("l"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::Unavailable("m"), StatusCode::kUnavailable, "Unavailable"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeName(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, GovernancePredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());

  const Status io = Status::IOError("x");
  EXPECT_FALSE(io.IsDeadlineExceeded());
  EXPECT_FALSE(io.IsCancelled());
  EXPECT_FALSE(io.IsResourceExhausted());
  EXPECT_FALSE(io.IsUnavailable());
  EXPECT_FALSE(Status::OK().IsCancelled());

  // IsInterruption covers exactly the cooperative-cut family: a query that
  // was stopped on purpose, as opposed to failing.
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsInterruption());
  EXPECT_TRUE(Status::Cancelled("x").IsInterruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsInterruption());
  EXPECT_FALSE(Status::Unavailable("x").IsInterruption());
  EXPECT_FALSE(io.IsInterruption());
  EXPECT_FALSE(Status::OK().IsInterruption());
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("vertex 17");
  EXPECT_EQ(s.ToString(), "NotFound: vertex 17");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> extracted = std::move(r).value();
  EXPECT_EQ(*extracted, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Status FailsThenPropagates(bool fail) {
  HYGRAPH_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusTest, StatusCodeNameCoversEveryEnumValue) {
  // Exhaustive: if a new StatusCode is added without a name, this fails
  // (either by size mismatch below or by hitting the fallback string).
  const std::vector<std::pair<StatusCode, const char*>> names = {
      {StatusCode::kOk, "OK"},
      {StatusCode::kInvalidArgument, "InvalidArgument"},
      {StatusCode::kNotFound, "NotFound"},
      {StatusCode::kAlreadyExists, "AlreadyExists"},
      {StatusCode::kOutOfRange, "OutOfRange"},
      {StatusCode::kFailedPrecondition, "FailedPrecondition"},
      {StatusCode::kCorruption, "Corruption"},
      {StatusCode::kUnimplemented, "Unimplemented"},
      {StatusCode::kInternal, "Internal"},
      {StatusCode::kIOError, "IOError"},
      {StatusCode::kDeadlineExceeded, "DeadlineExceeded"},
      {StatusCode::kCancelled, "Cancelled"},
      {StatusCode::kResourceExhausted, "ResourceExhausted"},
      {StatusCode::kUnavailable, "Unavailable"},
  };
  // kUnavailable is the last enumerator; the table must reach it.
  EXPECT_EQ(static_cast<size_t>(StatusCode::kUnavailable) + 1, names.size());
  for (const auto& [code, name] : names) {
    EXPECT_STREQ(StatusCodeName(code), name);
  }
}

TEST(StatusTest, IsNodiscard) {
  // Compile-time half of the [[nodiscard]] contract; the runtime half is
  // the status_nodiscard_negative_compile ctest case, which proves a
  // DISCARDED Status fails to compile.
  static_assert(
      std::is_same_v<decltype(Status::OK()), Status>,
      "factory returns by value, so [[nodiscard]] on the class applies");
  Status s = Status::OK();  // assigning is the blessed way to consume one
  EXPECT_TRUE(s.ok());
  // The explicit-discard escape hatch must compile without warnings.
  HYGRAPH_IGNORE_RESULT(Status::Internal("deliberately dropped"));
  HYGRAPH_IGNORE_RESULT(Result<int>(7));
}

TEST(ResultTest, MoveConstructionTransfersPayload) {
  Result<std::string> source(std::string("payload"));
  Result<std::string> moved(std::move(source));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, "payload");
}

TEST(ResultTest, MoveAssignmentTransfersPayloadAndStatus) {
  Result<std::string> ok_result(std::string("kept"));
  Result<std::string> err_result(Status::NotFound("gone"));
  ok_result = std::move(err_result);
  EXPECT_FALSE(ok_result.ok());
  EXPECT_EQ(ok_result.status().code(), StatusCode::kNotFound);

  Result<std::string> refill(std::string("fresh"));
  Result<std::string> target(Status::Internal("old error"));
  target = std::move(refill);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "fresh");
}

TEST(ResultTest, RvalueValueLeavesMovedFromPayload) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> taken = std::move(r).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(ResultTest, ValueOrOnErrorReturnsFallbackByValue) {
  Result<std::string> err(Status::OutOfRange("x"));
  std::string fallback = "fb";
  EXPECT_EQ(err.value_or(fallback), "fb");
  // The fallback is taken by value: the caller's copy is untouched.
  EXPECT_EQ(fallback, "fb");
}

TEST(ResultTest, ConstAccessors) {
  const Result<int> r(9);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(*r, 9);
  EXPECT_EQ(r.value(), 9);
  const Result<std::string> s(std::string("abc"));
  EXPECT_EQ(s->size(), 3u);
}

}  // namespace
}  // namespace hygraph
