#include "analytics/detection.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hygraph::analytics {
namespace {

using core::HyGraph;
using graph::VertexId;

ts::MultiSeries Level(double level, size_t n = 24) {
  ts::MultiSeries ms("s", {"v"});
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(ms.AppendRow(static_cast<Timestamp>(i) * kHour,
                             {level + 0.1 * static_cast<double>(i % 3)})
                    .ok());
  }
  return ms;
}

// Two cliques: a "quiet" community (levels ~10) with one loud member
// (level 100), and a "busy" community (levels ~100) that is perfectly
// normal for its own context.
class DetectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      quiet_.push_back(
          *hg_.AddTsVertex({"S"}, Level(i == 0 ? 100.0 : 10.0 + i * 0.2)));
    }
    for (int i = 0; i < 6; ++i) {
      busy_.push_back(*hg_.AddTsVertex({"S"}, Level(100.0 + i * 0.2)));
    }
    auto clique = [&](const std::vector<VertexId>& vs) {
      for (size_t i = 0; i < vs.size(); ++i) {
        for (size_t j = i + 1; j < vs.size(); ++j) {
          ASSERT_TRUE(hg_.AddPgEdge(vs[i], vs[j], "E", {}).ok());
        }
      }
    };
    clique(quiet_);
    clique(busy_);
    ASSERT_TRUE(hg_.AddPgEdge(quiet_[1], busy_[0], "BRIDGE", {}).ok());
  }

  HyGraph hg_;
  std::vector<VertexId> quiet_;
  std::vector<VertexId> busy_;
};

TEST_F(DetectionTest, FlagsOnlyTheContextualOutlier) {
  ContextualDetectionOptions options;
  options.threshold = 2.0;
  auto result = DetectContextualAnomalies(hg_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->anomalies.size(), 1u);
  EXPECT_EQ(result->anomalies[0].vertex, quiet_[0]);
  EXPECT_GT(result->anomalies[0].z_score, 2.0);
  // The busy community members are NOT flagged despite high absolute
  // levels — that is the community-context advantage.
  for (const ContextualAnomaly& a : result->anomalies) {
    for (VertexId v : busy_) {
      EXPECT_NE(a.vertex, v);
    }
  }
}

TEST_F(DetectionTest, GlobalBaselineWouldFlagBusyCommunity) {
  // Sanity check of the premise: against the global distribution, busy
  // members sit far from the mean. Done by collapsing communities: with
  // min_community_size larger than any community, the detector falls back
  // to the global pool.
  ContextualDetectionOptions options;
  options.threshold = 1.0;
  options.min_community_size = 100;  // force global fallback
  auto result = DetectContextualAnomalies(hg_, options);
  ASSERT_TRUE(result.ok());
  // With a bimodal global pool, both sides deviate from the grand mean.
  EXPECT_GT(result->anomalies.size(), 1u);
}

TEST_F(DetectionTest, CommunitiesReturned) {
  auto result = DetectContextualAnomalies(hg_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->communities.size(), 12u);
  EXPECT_EQ(result->communities.at(quiet_[0]),
            result->communities.at(quiet_[1]));
  EXPECT_NE(result->communities.at(quiet_[0]),
            result->communities.at(busy_[0]));
}

TEST_F(DetectionTest, MaxStatistic) {
  ContextualDetectionOptions options;
  options.statistic = ContextualDetectionOptions::Statistic::kMax;
  options.threshold = 2.0;
  auto result = DetectContextualAnomalies(hg_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->anomalies.size(), 1u);
  EXPECT_EQ(result->anomalies[0].vertex, quiet_[0]);
}

TEST_F(DetectionTest, SortedBySeverity) {
  ContextualDetectionOptions options;
  options.threshold = 0.5;
  auto result = DetectContextualAnomalies(hg_, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->anomalies.size(); ++i) {
    EXPECT_GE(std::abs(result->anomalies[i - 1].z_score),
              std::abs(result->anomalies[i].z_score));
  }
}

TEST_F(DetectionTest, Validation) {
  ContextualDetectionOptions bad;
  bad.threshold = 0.0;
  EXPECT_FALSE(DetectContextualAnomalies(hg_, bad).ok());
  HyGraph empty_series;
  (void)*empty_series.AddPgVertex({"X"}, {});
  EXPECT_FALSE(DetectContextualAnomalies(empty_series).ok());
}

}  // namespace
}  // namespace hygraph::analytics
