// Property-based HGQL coverage: for every aggregate kind and both storage
// engines, the query result must equal the aggregate computed directly on
// the generating dataset — the executor, planner, functions, and storage
// layers all have to agree with ground truth, not just with each other.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"
#include "ts/aggregate.h"
#include "workloads/bike_sharing.h"

namespace hygraph {
namespace {

struct Fixture {
  workloads::BikeSharingDataset dataset;
  storage::AllInGraphStore red;
  storage::PolyglotStore green;
  std::vector<graph::VertexId> stations;
};

Fixture* SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    workloads::BikeSharingConfig config;
    config.stations = 10;
    config.districts = 3;
    config.days = 3;
    config.sample_interval = kHour;
    config.seed = 31;
    f->dataset = std::move(*workloads::GenerateBikeSharing(config));
    f->stations = *workloads::LoadIntoBackend(f->dataset, &f->red);
    (void)*workloads::LoadIntoBackend(f->dataset, &f->green);
    return f;
  }();
  return fixture;
}

class AggKindSweep
    : public ::testing::TestWithParam<std::tuple<ts::AggKind, bool>> {};

TEST_P(AggKindSweep, QueryMatchesDirectComputation) {
  const auto [kind, use_polyglot] = GetParam();
  Fixture* f = SharedFixture();
  const query::QueryBackend& backend =
      use_polyglot ? static_cast<const query::QueryBackend&>(f->green)
                   : static_cast<const query::QueryBackend&>(f->red);
  // A misaligned sub-range exercises partial chunks on the polyglot side.
  const Interval range{f->dataset.start() + 5 * kHour,
                       f->dataset.start() + 2 * kDay + 7 * kHour};
  const std::string fn = std::string("ts_") + ts::AggKindName(kind);
  for (size_t s = 0; s < f->dataset.stations.size(); s += 3) {
    const workloads::StationRecord& station = f->dataset.stations[s];
    const std::string query =
        "MATCH (s:Station {name: '" + station.name + "'}) RETURN " + fn +
        "(s.bikes, " + std::to_string(range.start) + ", " +
        std::to_string(range.end) + ") AS x";
    auto result = query::Execute(backend, query);
    ASSERT_TRUE(result.ok()) << query << " -> "
                             << result.status().ToString();
    ASSERT_EQ(result->row_count(), 1u);
    auto expected = ts::Aggregate(station.bikes, range, kind);
    const Value& got = result->rows[0][0];
    if (!expected.ok()) {
      EXPECT_TRUE(got.is_null());
      continue;
    }
    ASSERT_TRUE(got.is_numeric()) << query;
    EXPECT_NEAR(got.ToDouble().value(), *expected,
                1e-9 * (1.0 + std::abs(*expected)))
        << query;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AggKindSweep,
    ::testing::Combine(
        ::testing::Values(ts::AggKind::kCount, ts::AggKind::kSum,
                          ts::AggKind::kAvg, ts::AggKind::kMin,
                          ts::AggKind::kMax, ts::AggKind::kStdDev,
                          ts::AggKind::kFirst, ts::AggKind::kLast),
        ::testing::Bool()));

class RangeSweep : public ::testing::TestWithParam<Duration> {};

TEST_P(RangeSweep, CountsAreExactOnBothEngines) {
  Fixture* f = SharedFixture();
  const Duration length = GetParam();
  const Interval range{f->dataset.start() + 90 * kMinute,
                       f->dataset.start() + 90 * kMinute + length};
  const workloads::StationRecord& station = f->dataset.stations[1];
  auto [lo, hi] = station.bikes.RangeIndices(range);
  const double expected = static_cast<double>(hi - lo);
  const std::string query =
      "MATCH (s:Station {name: '" + station.name + "'}) RETURN ts_count("
      "s.bikes, " + std::to_string(range.start) + ", " +
      std::to_string(range.end) + ") AS n";
  for (const query::QueryBackend* backend :
       {static_cast<const query::QueryBackend*>(&f->red),
        static_cast<const query::QueryBackend*>(&f->green)}) {
    auto result = query::Execute(*backend, query);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->rows[0][0].ToDouble().value(), expected)
        << backend->name() << " length=" << length;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RangeSweep,
                         ::testing::Values(0, kMinute, kHour, 5 * kHour,
                                           kDay, 10 * kDay));

}  // namespace
}  // namespace hygraph
