#include "query/executor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "storage/all_in_graph.h"

namespace hygraph::query {
namespace {

// Three stations with bikes series, two TRIP edges.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::PropertyGraph* g = store_.mutable_topology();
    s1_ = g->AddVertex({"Station"}, {{"name", Value("S1")},
                                     {"district", Value(0)},
                                     {"capacity", Value(10)}});
    s2_ = g->AddVertex({"Station"}, {{"name", Value("S2")},
                                     {"district", Value(0)},
                                     {"capacity", Value(20)}});
    s3_ = g->AddVertex({"Station"}, {{"name", Value("S3")},
                                     {"district", Value(1)},
                                     {"capacity", Value(30)}});
    trip12_ = *g->AddEdge(s1_, s2_, "TRIP", {{"distance", Value(100.0)}});
    trip23_ = *g->AddEdge(s2_, s3_, "TRIP", {{"distance", Value(200.0)}});
    // bikes series: s1 constant 5, s2 ramp 0..9, s3 = 2 * ramp (correlated
    // with s2).
    for (int i = 0; i < 10; ++i) {
      const Timestamp t = i * kHour;
      ASSERT_TRUE(store_.AppendVertexSample(s1_, "bikes", t, 5.0).ok());
      ASSERT_TRUE(store_.AppendVertexSample(s2_, "bikes", t, i).ok());
      ASSERT_TRUE(store_.AppendVertexSample(s3_, "bikes", t, 2.0 * i).ok());
      ASSERT_TRUE(store_.AppendEdgeSample(trip12_, "trips", t, 1.0 + i).ok());
    }
  }

  QueryResult MustRun(const std::string& text) {
    auto result = Execute(store_, text);
    EXPECT_TRUE(result.ok()) << text << " -> " << result.status().ToString();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  storage::AllInGraphStore store_;
  graph::VertexId s1_, s2_, s3_;
  graph::EdgeId trip12_, trip23_;
};

TEST_F(ExecutorTest, SimpleProjection) {
  QueryResult r = MustRun("MATCH (s:Station) RETURN s.name, s.capacity");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"s.name", "s.capacity"}));
  EXPECT_EQ(r.row_count(), 3u);
}

TEST_F(ExecutorTest, InlinePropertyFilter) {
  QueryResult r = MustRun("MATCH (s:Station {name: 'S2'}) RETURN s.capacity");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(20));
}

TEST_F(ExecutorTest, WhereWithArithmetic) {
  QueryResult r = MustRun(
      "MATCH (s:Station) WHERE s.capacity * 2 >= 40 RETURN s.name");
  EXPECT_EQ(r.row_count(), 2u);  // S2, S3
}

TEST_F(ExecutorTest, PathAndEdgeProperty) {
  QueryResult r = MustRun(
      "MATCH (a:Station)-[t:TRIP]->(b:Station) "
      "RETURN a.name, b.name, t.distance");
  ASSERT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, TsAggregateFunctions) {
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S2'}) "
      "RETURN ts_avg(s.bikes, 0, 36000000) AS a, "
      "ts_count(s.bikes, 0, 36000000) AS c, "
      "ts_min(s.bikes, 0, 36000000) AS lo, "
      "ts_max(s.bikes, 0, 36000000) AS hi, "
      "ts_sum(s.bikes, 0, 36000000) AS total");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_DOUBLE_EQ(r.At(0, "a")->AsDouble(), 4.5);
  EXPECT_DOUBLE_EQ(r.At(0, "c")->AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(r.At(0, "lo")->AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(r.At(0, "hi")->AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ(r.At(0, "total")->AsDouble(), 45.0);
}

TEST_F(ExecutorTest, TsRangeRespectsBounds) {
  // Only samples with t in [0, 2h) -> values 0 and 1.
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S2'}) RETURN ts_sum(s.bikes, 0, 7200000)");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 1.0);
}

TEST_F(ExecutorTest, TsOnEdges) {
  QueryResult r = MustRun(
      "MATCH (a:Station)-[t:TRIP]->(b:Station) "
      "WHERE ts_count(t.trips, 0, 36000000) > 0 "
      "RETURN a.name, ts_sum(t.trips, 0, 36000000) AS total");
  ASSERT_EQ(r.row_count(), 1u);  // only trip12 carries samples
  EXPECT_EQ(*r.At(0, "a.name"), Value("S1"));
  EXPECT_DOUBLE_EQ(r.At(0, "total")->AsDouble(), 55.0);
}

TEST_F(ExecutorTest, TsCorr) {
  QueryResult r = MustRun(
      "MATCH (a:Station {name: 'S2'}), (b:Station {name: 'S3'}) "
      "RETURN ts_corr(a.bikes, b.bikes, 0, 36000000) AS c");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_NEAR(r.At(0, "c")->AsDouble(), 1.0, 1e-9);
}

TEST_F(ExecutorTest, TsWindowAgg) {
  // Daily-average then max over s2's ramp: windows of 5h -> avgs 2 and 7.
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S2'}) "
      "RETURN ts_window_agg(s.bikes, 0, 36000000, 18000000, 'avg', 'max')");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 7.0);
}

TEST_F(ExecutorTest, OrderByAliasAndLimit) {
  QueryResult r = MustRun(
      "MATCH (s:Station) RETURN s.name AS n, "
      "ts_avg(s.bikes, 0, 36000000) AS a ORDER BY a DESC LIMIT 2");
  ASSERT_EQ(r.row_count(), 2u);
  EXPECT_EQ(*r.At(0, "n"), Value("S3"));  // avg 9
  EXPECT_EQ(*r.At(1, "n"), Value("S1"));  // avg 5
}

TEST_F(ExecutorTest, OrderByAscendingDefault) {
  QueryResult r = MustRun(
      "MATCH (s:Station) RETURN s.name AS n ORDER BY n");
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.rows[0][0], Value("S1"));
  EXPECT_EQ(r.rows[2][0], Value("S3"));
}

TEST_F(ExecutorTest, LimitWithoutOrder) {
  QueryResult r = MustRun("MATCH (s:Station) RETURN s.name LIMIT 1");
  EXPECT_EQ(r.row_count(), 1u);
}

TEST_F(ExecutorTest, DegreeFunctions) {
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S2'}) "
      "RETURN degree(s), in_degree(s), out_degree(s)");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(2));
  EXPECT_EQ(r.rows[0][1], Value(1));
  EXPECT_EQ(r.rows[0][2], Value(1));
}

TEST_F(ExecutorTest, MissingPropertyIsNull) {
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S1'}) RETURN s.nonexistent AS x, "
      "coalesce(s.nonexistent, 7) AS y");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_TRUE(r.At(0, "x")->is_null());
  EXPECT_EQ(*r.At(0, "y"), Value(7));
}

TEST_F(ExecutorTest, NullComparisonsAreFalse) {
  QueryResult r = MustRun(
      "MATCH (s:Station) WHERE s.nonexistent > 0 RETURN s.name");
  EXPECT_EQ(r.row_count(), 0u);
}

TEST_F(ExecutorTest, NotEqualWorks) {
  QueryResult r = MustRun(
      "MATCH (s:Station) WHERE s.name <> 'S1' RETURN s.name");
  EXPECT_EQ(r.row_count(), 2u);
}

TEST_F(ExecutorTest, AbsAndUnaryMinus) {
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S1'}) RETURN abs(-s.capacity) AS a");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(*r.At(0, "a"), Value(10));
}

TEST_F(ExecutorTest, TsAggregateOverEmptyRangeIsNull) {
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S1'}) "
      "RETURN ts_avg(s.bikes, 99999999999, 99999999999999) AS a");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_TRUE(r.At(0, "a")->is_null());
}

TEST_F(ExecutorTest, DistinctDeduplicatesRows) {
  // Every station's district, with duplicates across stations.
  QueryResult all = MustRun("MATCH (s:Station) RETURN s.district AS d");
  EXPECT_EQ(all.row_count(), 3u);
  QueryResult distinct =
      MustRun("MATCH (s:Station) RETURN DISTINCT s.district AS d");
  EXPECT_EQ(distinct.row_count(), 2u);  // districts 0 and 1
  // First-occurrence order preserved, and ORDER BY still works on top.
  QueryResult ordered = MustRun(
      "MATCH (s:Station) RETURN DISTINCT s.district AS d ORDER BY d DESC");
  ASSERT_EQ(ordered.row_count(), 2u);
  EXPECT_EQ(ordered.rows[0][0], Value(1));
  // DISTINCT with LIMIT dedupes before limiting.
  QueryResult limited = MustRun(
      "MATCH (s:Station) RETURN DISTINCT s.district AS d LIMIT 5");
  EXPECT_EQ(limited.row_count(), 2u);
}

TEST_F(ExecutorTest, TsSlope) {
  // s2 rises 1 unit per hour = 24 per day.
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S2'}) "
      "RETURN ts_slope(s.bikes, 0, 36000000) AS m");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_NEAR(r.At(0, "m")->AsDouble(), 24.0, 1e-6);
  // Constant series -> slope 0.
  QueryResult flat = MustRun(
      "MATCH (s:Station {name: 'S1'}) "
      "RETURN ts_slope(s.bikes, 0, 36000000) AS m");
  EXPECT_NEAR(flat.At(0, "m")->AsDouble(), 0.0, 1e-9);
}

TEST_F(ExecutorTest, TsAnomalyCount) {
  // Too few samples for the 24-window: count 0, not an error.
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S2'}) "
      "RETURN ts_anomaly_count(s.bikes, 0, 36000000, 4.0) AS n");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(*r.At(0, "n"), Value(0));
}

TEST_F(ExecutorTest, TsSax) {
  QueryResult r = MustRun(
      "MATCH (s:Station {name: 'S2'}) "
      "RETURN ts_sax(s.bikes, 0, 36000000, 4, 3) AS w");
  ASSERT_EQ(r.row_count(), 1u);
  ASSERT_TRUE(r.At(0, "w")->is_string());
  const std::string word = r.At(0, "w")->AsString();
  EXPECT_EQ(word.size(), 4u);
  // Rising ramp -> non-decreasing symbols.
  EXPECT_LE(word.front(), word.back());
  // Range too short for the segments -> null.
  QueryResult tiny = MustRun(
      "MATCH (s:Station {name: 'S2'}) "
      "RETURN ts_sax(s.bikes, 0, 3600000, 8, 3) AS w");
  EXPECT_TRUE(tiny.At(0, "w")->is_null());
}

TEST_F(ExecutorTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(Execute(store_, "MATCH (s:Station) RETURN nosuch(s)").ok());
  EXPECT_FALSE(Execute(store_, "MATCH (s RETURN s").ok());
  EXPECT_FALSE(
      Execute(store_, "MATCH (s:Station) RETURN ts_avg(s.bikes, 0)").ok());
  EXPECT_FALSE(Execute(store_, "MATCH (s:Station) RETURN q.name").ok());
}

TEST_F(ExecutorTest, ResultHelpers) {
  QueryResult r = MustRun("MATCH (s:Station) RETURN s.name AS n");
  EXPECT_FALSE(r.At(99, "n").ok());
  EXPECT_FALSE(r.At(0, "zz").ok());
  const std::string rendered = r.ToString(2);
  EXPECT_NE(rendered.find("n"), std::string::npos);
  EXPECT_NE(rendered.find("more rows"), std::string::npos);
}

TEST_F(ExecutorTest, DivisionByZeroIsError) {
  EXPECT_FALSE(
      Execute(store_, "MATCH (s:Station) RETURN s.capacity / 0").ok());
}

}  // namespace
}  // namespace hygraph::query
