#!/usr/bin/env python3
"""HyGraph project linter: repo invariants clang-tidy cannot express.

Checks are small rules in a registry (see @rule below); `--list` prints
them. The current rules (see DESIGN.md §12 "Static analysis"):

  naked-new       no `new` expression in library code unless annotated with
                  `NOLINT(hygraph-naked-new)` (leaked singletons, private
                  constructors).
  naked-delete    no `delete` expressions at all — ownership goes through
                  smart pointers.
  raw-rand        no `rand()` / `srand()` anywhere — randomness goes through
                  common/rng.h so runs stay reproducible and seedable.
  cc-include      no `#include` of a `.cc` file.
  include-guard   headers open with `#ifndef HYGRAPH_<PATH>_H_` where PATH is
                  the path relative to src/ (or the repo root for headers
                  outside src/), uppercased, with '/' and '.' as '_'.
  no-cout         no `std::cout` in src/ library code — a library reports
                  through Status/Result, not a stream it does not own.
  raw-clock       no `std::chrono::steady_clock::now()` outside src/obs/ —
                  timing goes through obs::Clock (SystemClock in production,
                  ManualClock in tests) so it stays injectable everywhere.
  raw-mutex       no raw std mutex types in src/ outside common/sync.h —
                  locking goes through hygraph::Mutex/SharedMutex so every
                  lock is instrumented (concurrency.* counters) and follows
                  the documented hierarchy. src/obs/ is exempt: it sits
                  beneath the sync layer (the registry mutex cannot be
                  instrumented by the registry it guards; see obs/mutex.h).
  raw-sleep       no sleep_for / sleep_until / usleep / nanosleep in src/
                  outside storage/retry.cc — backoff waits go through
                  RetryPolicy (storage/retry.h) so they are capped, jittered,
                  deterministic under test (injectable SleepFn), and counted
                  (durable.retries). Annotate a genuine exception with
                  NOLINT(hygraph-raw-sleep).
  raw-thread      no std::thread / std::jthread in src/ outside
                  common/thread_pool.cc — parallelism goes through the
                  process-wide ThreadPool (common/thread_pool.h) so worker
                  counts, instrumentation (concurrency.pool_*), governance
                  checks, and HYGRAPH_THREADS all apply. Annotate a genuine
                  exception with NOLINT(hygraph-raw-thread).
  layering        project includes in src/ must follow the declared layer
                  DAG (mirrors the target_link_libraries topology in
                  src/CMakeLists.txt, with common/sync.h split into its own
                  layer above obs). Upward or sideways includes are errors:
                  they are cycles waiting to happen and defeat the
                  one-direction dependency story in DESIGN.md.
  raw-socket      no socket/poll syscalls (socket, bind, listen, accept,
                  connect, recv, send, poll, setsockopt, shutdown, ...) in
                  src/ outside src/server/net.{h,cc} — the server's RAII
                  Socket/Listener wrappers own every fd, EINTR loop, and
                  SIGPIPE suppression exactly once. Annotate a genuine
                  exception with NOLINT(hygraph-raw-socket).
  unranked-lock   every hygraph::Mutex / SharedMutex member declaration in
                  src/ must be constructed with a LockRank (on the
                  declaration, or where the member is initialized in the
                  same header or sibling .cc) so the runtime rank checker
                  covers it — or carry NOLINT(hygraph-unranked-lock) with a
                  justification for living outside the hierarchy.

Exit status: 0 when clean, 1 with one `path:line: [check] message` per
finding otherwise. Run via scripts/lint.sh or directly:

    python3 scripts/hygraph_lint.py [--root DIR] [--list]

--root lints an alternate tree laid out like the repo (used by the
tests/lint_selftest fixtures).
"""
from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Library code: invariants apply fully. fuzz/ counts as library code (the
# harnesses link into tier-1 tests); tests/bench/examples get the subset
# that keeps determinism and build hygiene (raw-rand, cc-include).
LIBRARY_DIRS = ("src", "fuzz")
ALL_DIRS = ("src", "fuzz", "tests", "bench", "examples")

# The lint selftest's fixture tree is linted with --root, never as part of
# the real repo: its files violate rules on purpose.
FIXTURE_DIR = Path("tests/lint_fixtures")

RNG_HOME = Path("src/common/rng.h")
CLOCK_HOME = Path("src/obs")
SYNC_HOME = Path("src/common/sync.h")
# The one sanctioned real sleep: RetryPolicy's default backoff SleepFn.
RETRY_HOME = Path("src/storage/retry.cc")
# The one sanctioned spawner of real threads: the process-wide worker pool.
# Its header declares the worker vector and carries the NOLINT escape there.
POOL_HOME = Path("src/common/thread_pool.cc")
POOL_FILES = (POOL_HOME, Path("src/common/thread_pool.h"))
# The one sanctioned home of socket/poll syscalls: the server's RAII
# net::Socket / net::Listener wrappers.
NET_FILES = (Path("src/server/net.h"), Path("src/server/net.cc"))

RAW_SLEEP_ALLOW = "NOLINT(hygraph-raw-sleep)"
RAW_THREAD_ALLOW = "NOLINT(hygraph-raw-thread)"
RAW_SOCKET_ALLOW = "NOLINT(hygraph-raw-socket)"
NAKED_NEW_ALLOW = "NOLINT(hygraph-naked-new)"
UNRANKED_ALLOW = "NOLINT(hygraph-unranked-lock)"

# ---------------------------------------------------------------------------
# Layering: direct dependencies per layer, mirroring src/CMakeLists.txt
# (target_link_libraries). Two refinements over the CMake picture:
#   * common/sync.h forms its own "sync" layer ABOVE obs — the instrumented
#     mutexes report into obs::MetricsRegistry, so plain "common" must not
#     depend on it, and obs beneath it uses the annotation-only obs/mutex.h.
#   * common/thread_annotations.h is macro-only and stays in base "common".
# A file may include same-layer headers and anything in the transitive
# closure of its layer's deps.
LAYER_DEPS: dict[str, tuple[str, ...]] = {
    "common": (),
    "obs": ("common",),
    "sync": ("obs", "common"),
    "ts": ("sync", "obs", "common"),
    "graph": ("common",),
    "temporal": ("graph", "ts"),
    "core": ("temporal",),
    "query": ("core", "obs"),
    "storage": ("query",),
    "analytics": ("core", "storage"),
    "workloads": ("core", "storage"),
    "server": ("storage",),
}


def layer_closure() -> dict[str, frozenset[str]]:
    closure: dict[str, frozenset[str]] = {}

    def resolve(layer: str, trail: tuple[str, ...]) -> frozenset[str]:
        if layer in closure:
            return closure[layer]
        if layer in trail:
            raise ValueError(f"LAYER_DEPS cycle through {layer!r}")
        deps: set[str] = set()
        for dep in LAYER_DEPS[layer]:
            deps.add(dep)
            deps |= resolve(dep, trail + (layer,))
        closure[layer] = frozenset(deps)
        return closure[layer]

    for name in LAYER_DEPS:
        resolve(name, ())
    return closure


LAYER_CLOSURE = layer_closure()


def layer_of(rel: Path) -> str | None:
    """Layer of a src/ file, None for files outside src/."""
    if rel.parts[0] != "src" or len(rel.parts) < 3:
        return None
    if rel == SYNC_HOME or rel in POOL_FILES:
        # The worker pool lives in common/ for includability but sits above
        # obs (it reports busy time through obs::Counter), exactly like the
        # instrumented mutexes — same layer, same reasoning.
        return "sync"
    return rel.parts[1]


# ---------------------------------------------------------------------------
# Rule registry


@dataclass
class SourceFile:
    rel: Path                 # path relative to the linted root
    raw: list[str]            # verbatim lines
    code: list[str]           # comments and string contents blanked
    library: bool             # under LIBRARY_DIRS


@dataclass
class Tree:
    root: Path
    files: list[SourceFile] = field(default_factory=list)

    def get(self, rel: Path) -> SourceFile | None:
        for f in self.files:
            if f.rel == rel:
                return f
        return None


RULES: list = []


def rule(name: str, scope: str):
    """Registers `fn(tree, report)` as a lint rule. `scope` is prose for
    --list; the rule itself decides which files it visits."""

    def wrap(fn):
        fn.rule_name = name
        fn.rule_scope = scope
        RULES.append(fn)
        return fn

    return wrap


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blanks out comments and string/char literal contents, preserving line
    structure, so token checks do not fire on prose or quoted text."""
    out = []
    in_block_comment = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if in_block_comment:
                if line.startswith("*/", i):
                    in_block_comment = False
                    i += 2
                else:
                    i += 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block_comment = True
                i += 2
                continue
            if c in ("'", '"'):
                quote = c
                result.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        result.append(quote)
                        i += 1
                        break
                    i += 1
                continue
            result.append(c)
            i += 1
        out.append("".join(result))
    return out


def load_tree(root: Path) -> Tree:
    tree = Tree(root=root)
    for d in ALL_DIRS:
        top = root / d
        if not top.is_dir():
            continue
        for path in sorted(top.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            rel = path.relative_to(root)
            if rel.is_relative_to(FIXTURE_DIR):
                continue
            raw = path.read_text(encoding="utf-8").splitlines()
            tree.files.append(SourceFile(
                rel=rel,
                raw=raw,
                code=strip_comments_and_strings(raw),
                library=rel.parts[0] in LIBRARY_DIRS,
            ))
    return tree


# ---------------------------------------------------------------------------
# Rules


@rule("raw-rand", "all dirs")
def check_raw_rand(tree: Tree, report) -> None:
    for f in tree.files:
        if f.rel == RNG_HOME:
            continue
        for lineno, code_line in enumerate(f.code, 1):
            if re.search(r"\b(s?rand)\s*\(", code_line):
                report(f.rel, lineno, "raw-rand",
                       "use common/rng.h instead of rand()/srand()")


@rule("cc-include", "all dirs")
def check_cc_include(tree: Tree, report) -> None:
    for f in tree.files:
        for lineno, raw_line in enumerate(f.raw, 1):
            if re.search(r'#\s*include\s*"[^"]+\.cc"', raw_line):
                report(f.rel, lineno, "cc-include",
                       "never #include a .cc file; link it instead")


@rule("raw-clock", "everywhere outside src/obs/")
def check_raw_clock(tree: Tree, report) -> None:
    for f in tree.files:
        if f.rel.is_relative_to(CLOCK_HOME):
            continue
        for lineno, code_line in enumerate(f.code, 1):
            if re.search(r"\bsteady_clock\s*::\s*now\b", code_line):
                report(f.rel, lineno, "raw-clock",
                       "read time through obs::Clock (obs/clock.h), not "
                       "std::chrono::steady_clock::now()")


@rule("raw-mutex", "src/ outside common/sync.h and src/obs/")
def check_raw_mutex(tree: Tree, report) -> None:
    for f in tree.files:
        if (f.rel.parts[0] != "src" or f.rel == SYNC_HOME
                or f.rel.is_relative_to(CLOCK_HOME)):
            continue
        for lineno, code_line in enumerate(f.code, 1):
            if re.search(r"\bstd\s*::\s*(recursive_|timed_|shared_)?mutex\b",
                         code_line):
                report(f.rel, lineno, "raw-mutex",
                       "lock through hygraph::Mutex/SharedMutex "
                       "(common/sync.h), not raw std mutexes")


@rule("raw-sleep", "src/ outside storage/retry.cc")
def check_raw_sleep(tree: Tree, report) -> None:
    for f in tree.files:
        if f.rel.parts[0] != "src" or f.rel == RETRY_HOME:
            continue
        for lineno, (raw_line, code_line) in enumerate(zip(f.raw, f.code), 1):
            if RAW_SLEEP_ALLOW in raw_line:
                continue
            if re.search(r"\b(sleep_for|sleep_until|usleep|nanosleep)\s*\(",
                         code_line):
                report(f.rel, lineno, "raw-sleep",
                       "sleep/backoff in library code goes through "
                       "RetryPolicy (storage/retry.h); annotate a genuine "
                       f"exception with {RAW_SLEEP_ALLOW}")


@rule("raw-thread", "src/ outside common/thread_pool.cc")
def check_raw_thread(tree: Tree, report) -> None:
    for f in tree.files:
        if f.rel.parts[0] != "src" or f.rel == POOL_HOME:
            continue
        for lineno, (raw_line, code_line) in enumerate(zip(f.raw, f.code), 1):
            if RAW_THREAD_ALLOW in raw_line:
                continue
            if re.search(r"\bstd\s*::\s*j?thread\b", code_line):
                report(f.rel, lineno, "raw-thread",
                       "spawn work through ThreadPool "
                       "(common/thread_pool.h), not raw std::thread; "
                       "annotate a genuine exception with "
                       f"{RAW_THREAD_ALLOW}")


SOCKET_CALL_RE = re.compile(
    r"(?:^|[^\w.:>])(?:::\s*)?"
    r"(socket|bind|listen|accept4?|connect|recv(?:from|msg)?|"
    r"send(?:to|msg)?|p?poll|select|epoll_\w+|setsockopt|getsockopt|"
    r"getsockname|getpeername|shutdown|inet_pton|inet_ntop)\s*\(")


@rule("raw-socket", "src/ outside server/net.{h,cc}")
def check_raw_socket(tree: Tree, report) -> None:
    for f in tree.files:
        if f.rel.parts[0] != "src" or f.rel in NET_FILES:
            continue
        for lineno, (raw_line, code_line) in enumerate(zip(f.raw, f.code), 1):
            if RAW_SOCKET_ALLOW in raw_line:
                continue
            m = SOCKET_CALL_RE.search(code_line)
            if m is not None:
                report(f.rel, lineno, "raw-socket",
                       f"raw socket/poll syscall {m.group(1)}() belongs in "
                       "net::Socket/net::Listener (src/server/net.h); "
                       "annotate a genuine exception with "
                       f"{RAW_SOCKET_ALLOW}")


@rule("naked-new", "library code (src/, fuzz/)")
def check_naked_new(tree: Tree, report) -> None:
    for f in tree.files:
        if not f.library:
            continue
        for lineno, (raw_line, code_line) in enumerate(zip(f.raw, f.code), 1):
            prev_line = f.raw[lineno - 2] if lineno >= 2 else ""
            allowed = (NAKED_NEW_ALLOW in raw_line
                       or "NOLINTNEXTLINE(hygraph-naked-new)" in prev_line)
            if re.search(r"\bnew\b", code_line) and not allowed:
                report(f.rel, lineno, "naked-new",
                       "naked new in library code; use make_unique or "
                       f"annotate with {NAKED_NEW_ALLOW}")


@rule("naked-delete", "library code (src/, fuzz/)")
def check_naked_delete(tree: Tree, report) -> None:
    for f in tree.files:
        if not f.library:
            continue
        for lineno, code_line in enumerate(f.code, 1):
            if re.search(r"(?<!=)\s\bdelete\b(?!;)", " " + code_line):
                report(f.rel, lineno, "naked-delete",
                       "naked delete in library code; ownership belongs "
                       "in a smart pointer")


@rule("no-cout", "src/")
def check_no_cout(tree: Tree, report) -> None:
    for f in tree.files:
        if f.rel.parts[0] != "src":
            continue
        for lineno, code_line in enumerate(f.code, 1):
            if "std::cout" in code_line:
                report(f.rel, lineno, "no-cout",
                       "library code must not write to std::cout; report "
                       "through Status/Result")


def expected_guard(rel: Path) -> str:
    base = rel.relative_to("src") if rel.parts[0] == "src" else rel
    token = str(base).upper().replace("/", "_").replace(".", "_")
    return f"HYGRAPH_{token}_"


@rule("include-guard", "headers everywhere")
def check_include_guard(tree: Tree, report) -> None:
    for f in tree.files:
        if f.rel.suffix != ".h":
            continue
        guard = expected_guard(f.rel)
        text = "\n".join(f.raw)
        if f"#ifndef {guard}" not in text or f"#define {guard}" not in text:
            report(f.rel, 1, "include-guard",
                   f"expected include guard {guard}")


INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


@rule("layering", "src/ project includes")
def check_layering(tree: Tree, report) -> None:
    for f in tree.files:
        source_layer = layer_of(f.rel)
        if source_layer is None:
            continue
        if source_layer not in LAYER_DEPS:
            report(f.rel, 1, "layering",
                   f"directory src/{source_layer}/ is not in the layer map; "
                   "add it (and its dependencies) to LAYER_DEPS in "
                   "scripts/hygraph_lint.py")
            continue
        allowed = LAYER_CLOSURE[source_layer]
        # Raw lines: comment/string stripping blanks out the include path.
        for lineno, raw_line in enumerate(f.raw, 1):
            m = INCLUDE_RE.search(raw_line)
            if m is None:
                continue
            target = layer_of(Path("src") / m.group(1))
            if target is None or target == source_layer:
                continue
            if target not in LAYER_DEPS:
                report(f.rel, lineno, "layering",
                       f'include "{m.group(1)}" targets unknown layer '
                       f"{target!r}; add it to LAYER_DEPS in "
                       "scripts/hygraph_lint.py")
                continue
            if target not in allowed:
                report(f.rel, lineno, "layering",
                       f'layer "{source_layer}" may not include '
                       f'"{m.group(1)}" (layer "{target}"); allowed: '
                       f'{", ".join(sorted(allowed)) or "none"}')


# Member (or local) declarations of the instrumented lock types, directly
# or behind unique_ptr. References and the class definitions themselves do
# not match (no identifier follows `Mutex&` / `Mutex(`).
LOCK_DECL_RE = re.compile(
    r"\b(?:hygraph::)?(?:Mutex|SharedMutex)\s+(\w+)\s*[;{=(]")
LOCK_UPTR_RE = re.compile(
    r"\bunique_ptr<\s*(?:hygraph::)?(?:Shared)?Mutex\s*>\s+(\w+)")


@rule("unranked-lock", "src/ outside common/sync.h")
def check_unranked_lock(tree: Tree, report) -> None:
    for f in tree.files:
        if f.rel.parts[0] != "src" or f.rel == SYNC_HOME:
            continue
        sibling = None
        if f.rel.suffix == ".h":
            sibling = tree.get(f.rel.with_suffix(".cc"))
        for lineno, code_line in enumerate(f.code, 1):
            m = LOCK_DECL_RE.search(code_line) or LOCK_UPTR_RE.search(
                code_line)
            if m is None:
                continue
            name = m.group(1)
            raw_line = f.raw[lineno - 1]
            prev_line = f.raw[lineno - 2] if lineno >= 2 else ""
            if UNRANKED_ALLOW in raw_line or UNRANKED_ALLOW in prev_line:
                continue
            if "LockRank::" in code_line:  # ranked right on the declaration
                continue
            if has_rank_init(f, name, lineno) or (
                    sibling is not None and has_rank_init(sibling, name, 0)):
                continue
            report(f.rel, lineno, "unranked-lock",
                   f"lock member {name!r} is never constructed with a "
                   "LockRank, so the runtime rank checker cannot see it; "
                   "pass a rank (common/sync.h) or annotate with "
                   f"{UNRANKED_ALLOW} and a justification")


def has_rank_init(f: SourceFile, name: str, decl_lineno: int) -> bool:
    """True when `name` is mentioned next to a LockRank:: value somewhere in
    `f` other than the declaration itself — constructor init lists,
    make_unique calls, or brace initializers (which may wrap, so the line
    after a mention also counts)."""
    name_re = re.compile(rf"\b{re.escape(name)}\b")
    for lineno, code_line in enumerate(f.code, 1):
        if lineno == decl_lineno or not name_re.search(code_line):
            continue
        if "LockRank::" in code_line:
            return True
        if lineno < len(f.code) and "LockRank::" in f.code[lineno]:
            return True
    return False


# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    root = REPO
    if "--list" in argv:
        for fn in RULES:
            print(f"{fn.rule_name:15} {fn.rule_scope}")
        return 0
    if "--root" in argv:
        root = Path(argv[argv.index("--root") + 1]).resolve()

    tree = load_tree(root)
    findings: list[str] = []

    def report(rel: Path, lineno: int, check: str, message: str) -> None:
        findings.append(f"{rel}:{lineno}: [{check}] {message}")

    for fn in RULES:
        fn(tree, report)

    findings.sort(key=lambda s: (s.split(":", 1)[0], int(s.split(":", 2)[1])))
    if findings:
        print("\n".join(findings))
        print(f"\nhygraph_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("hygraph_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
