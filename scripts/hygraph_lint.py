#!/usr/bin/env python3
"""HyGraph project linter: repo invariants clang-tidy cannot express.

Checks (see DESIGN.md "Correctness tooling"):
  naked-new       no `new` expression in library code unless annotated with
                  `NOLINT(hygraph-naked-new)` (leaked singletons, private
                  constructors); no `delete` expressions at all — ownership
                  goes through smart pointers.
  raw-rand        no `rand()` / `srand()` anywhere — randomness goes through
                  common/rng.h so runs stay reproducible and seedable.
  cc-include      no `#include` of a `.cc` file.
  include-guard   headers open with `#ifndef HYGRAPH_<PATH>_H_` where PATH is
                  the path relative to src/ (or the repo root for headers
                  outside src/), uppercased, with '/' and '.' as '_'.
  no-cout         no `std::cout` in src/ library code — a library reports
                  through Status/Result, not a stream it does not own.
  raw-clock       no `std::chrono::steady_clock::now()` outside src/obs/ —
                  timing goes through obs::Clock (SystemClock in production,
                  ManualClock in tests) so it stays injectable everywhere.
  raw-mutex       no raw std mutex types in src/ outside common/sync.h —
                  locking goes through hygraph::Mutex/SharedMutex so every
                  lock is instrumented (concurrency.* counters) and follows
                  the documented hierarchy. src/obs/ is exempt: it sits
                  beneath the sync layer (the registry mutex cannot be
                  instrumented by the registry it guards).
  raw-sleep       no sleep_for / sleep_until / usleep / nanosleep in src/
                  outside storage/retry.cc — backoff waits go through
                  RetryPolicy (storage/retry.h) so they are capped, jittered,
                  deterministic under test (injectable SleepFn), and counted
                  (durable.retries). Ad-hoc retry loops hide unbounded
                  stalls; annotate a genuine exception with
                  NOLINT(hygraph-raw-sleep).

Exit status: 0 when clean, 1 with one `path:line: [check] message` per
finding otherwise. Run via scripts/lint.sh or directly:

    python3 scripts/hygraph_lint.py
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Library code: invariants apply fully. fuzz/ counts as library code (the
# harnesses link into tier-1 tests); tests/bench/examples get the subset
# that keeps determinism and build hygiene (raw-rand, cc-include).
LIBRARY_DIRS = ("src", "fuzz")
ALL_DIRS = ("src", "fuzz", "tests", "bench", "examples")

RNG_HOME = Path("src/common/rng.h")
CLOCK_HOME = Path("src/obs")
SYNC_HOME = Path("src/common/sync.h")
# The one sanctioned real sleep: RetryPolicy's default backoff SleepFn.
RETRY_HOME = Path("src/storage/retry.cc")

RAW_SLEEP_ALLOW = "NOLINT(hygraph-raw-sleep)"

NAKED_NEW_ALLOW = "NOLINT(hygraph-naked-new)"


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blanks out comments and string/char literal contents, preserving line
    structure, so token checks do not fire on prose or quoted text."""
    out = []
    in_block_comment = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if in_block_comment:
                if line.startswith("*/", i):
                    in_block_comment = False
                    i += 2
                else:
                    i += 1
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block_comment = True
                i += 2
                continue
            if c in ("'", '"'):
                quote = c
                result.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        result.append(quote)
                        i += 1
                        break
                    i += 1
                continue
            result.append(c)
            i += 1
        out.append("".join(result))
    return out


def iter_sources(dirs: tuple[str, ...]):
    for d in dirs:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in (".h", ".cc"):
                yield path.relative_to(REPO)


def expected_guard(rel: Path) -> str:
    base = rel.relative_to("src") if rel.parts[0] == "src" else rel
    token = str(base).upper().replace("/", "_").replace(".", "_")
    return f"HYGRAPH_{token}_"


def main() -> int:
    findings: list[str] = []

    def report(rel: Path, lineno: int, check: str, message: str) -> None:
        findings.append(f"{rel}:{lineno}: [{check}] {message}")

    for rel in iter_sources(ALL_DIRS):
        raw = (REPO / rel).read_text(encoding="utf-8").splitlines()
        code = strip_comments_and_strings(raw)
        library = rel.parts[0] in LIBRARY_DIRS

        for lineno, (raw_line, code_line) in enumerate(zip(raw, code), 1):
            if rel != RNG_HOME and re.search(r"\b(s?rand)\s*\(", code_line):
                report(rel, lineno, "raw-rand",
                       "use common/rng.h instead of rand()/srand()")
            if re.search(r'#\s*include\s*"[^"]+\.cc"', raw_line):
                report(rel, lineno, "cc-include",
                       "never #include a .cc file; link it instead")
            if (not rel.is_relative_to(CLOCK_HOME)
                    and re.search(r"\bsteady_clock\s*::\s*now\b", code_line)):
                report(rel, lineno, "raw-clock",
                       "read time through obs::Clock (obs/clock.h), not "
                       "std::chrono::steady_clock::now()")
            if (rel.parts[0] == "src" and rel != SYNC_HOME
                    and not rel.is_relative_to(CLOCK_HOME)
                    and re.search(
                        r"\bstd\s*::\s*(recursive_|timed_|shared_)?mutex\b",
                        code_line)):
                report(rel, lineno, "raw-mutex",
                       "lock through hygraph::Mutex/SharedMutex "
                       "(common/sync.h), not raw std mutexes")
            if (rel.parts[0] == "src" and rel != RETRY_HOME
                    and RAW_SLEEP_ALLOW not in raw_line
                    and re.search(
                        r"\b(sleep_for|sleep_until|usleep|nanosleep)\s*\(",
                        code_line)):
                report(rel, lineno, "raw-sleep",
                       "sleep/backoff in library code goes through "
                       "RetryPolicy (storage/retry.h); annotate a genuine "
                       f"exception with {RAW_SLEEP_ALLOW}")
            if library:
                prev_line = raw[lineno - 2] if lineno >= 2 else ""
                allowed = (NAKED_NEW_ALLOW in raw_line
                           or "NOLINTNEXTLINE(hygraph-naked-new)" in prev_line)
                if re.search(r"\bnew\b", code_line) and not allowed:
                    report(rel, lineno, "naked-new",
                           "naked new in library code; use make_unique or "
                           f"annotate with {NAKED_NEW_ALLOW}")
                if re.search(r"(?<!=)\s\bdelete\b(?!;)", " " + code_line):
                    report(rel, lineno, "naked-delete",
                           "naked delete in library code; ownership belongs "
                           "in a smart pointer")
            if rel.parts[0] == "src" and "std::cout" in code_line:
                report(rel, lineno, "no-cout",
                       "library code must not write to std::cout; report "
                       "through Status/Result")

        if rel.suffix == ".h":
            guard = expected_guard(rel)
            text = "\n".join(raw)
            if f"#ifndef {guard}" not in text or f"#define {guard}" not in text:
                report(rel, 1, "include-guard",
                       f"expected include guard {guard}")

    if findings:
        print("\n".join(findings))
        print(f"\nhygraph_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("hygraph_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
