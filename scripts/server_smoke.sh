#!/usr/bin/env bash
# End-to-end smoke of the HGQL network server: launch examples/hgql_server,
# drive queries through examples/hgql_client over loopback, scrape the
# Prometheus /metrics endpoint and require the server.* counters to have
# moved, then shut the daemon down with SIGTERM and require a clean exit.
#
#   usage: scripts/server_smoke.sh [build_dir]   (default: build)
#
# Run from the repo root (CI: the server-smoke job).
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/examples/hgql_server"
CLIENT="$BUILD_DIR/examples/hgql_client"
OUT="$(mktemp /tmp/hgql_smoke_XXXXXX.log)"

[ -x "$SERVER" ] || { echo "missing $SERVER (build hgql_server first)"; exit 1; }
[ -x "$CLIENT" ] || { echo "missing $CLIENT (build hgql_client first)"; exit 1; }

"$SERVER" </dev/null >"$OUT" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

# Wait for the daemon to print its ephemeral ports.
PORT=""
for _ in $(seq 1 50); do
  PORT=$(grep -oP 'listening on 127\.0\.0\.1:\K[0-9]+' "$OUT" || true)
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "server never printed its port"; cat "$OUT"; exit 1; }
METRICS_PORT=$(grep -oP 'metrics at http://127\.0\.0\.1:\K[0-9]+' "$OUT")
echo "server up: query port $PORT, metrics port $METRICS_PORT"

# Drive real queries and admin verbs through the wire client.
REPL_OUT=$(printf '%s\n' \
    "MATCH (s:Station) RETURN s.district AS d LIMIT 3" \
    "MATCH (s:Station) RETURN ts_avg(s.bikes, 0, 99999999999999) AS b LIMIT 1" \
    ":server.info" \
    ":stats" \
    "quit" | "$CLIENT" "$PORT")
echo "$REPL_OUT"
echo "$REPL_OUT" | grep -q "connected to 127.0.0.1:$PORT" \
  || { echo "FAIL: client never connected"; exit 1; }
echo "$REPL_OUT" | grep -q "session.queries" \
  || { echo "FAIL: :stats did not report session tallies"; exit 1; }
if echo "$REPL_OUT" | grep -q "^error:"; then
  echo "FAIL: a smoke query errored"; exit 1
fi

# Scrape Prometheus metrics and require the request counters to have moved.
python3 - "$METRICS_PORT" <<'EOF'
import sys, urllib.request

port = sys.argv[1]
text = urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics",
                              timeout=10).read().decode()
metrics = {}
for line in text.splitlines():
    if line and not line.startswith("#"):
        name, _, value = line.partition(" ")
        try:
            metrics[name] = float(value)
        except ValueError:
            pass
for name in ("hygraph_server_requests", "hygraph_server_queries",
             "hygraph_server_connections_accepted"):
    if metrics.get(name, 0) <= 0:
        sys.exit(f"FAIL: {name} did not move (got {metrics.get(name)})")
print(f"metrics ok: requests={metrics['hygraph_server_requests']:.0f} "
      f"queries={metrics['hygraph_server_queries']:.0f}")
EOF

# Clean shutdown: SIGTERM must make the daemon stop and say goodbye.
kill -TERM "$SERVER_PID"
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "FAIL: server still running after SIGTERM"; exit 1
fi
wait "$SERVER_PID" && RC=0 || RC=$?
[ "$RC" -eq 0 ] || { echo "FAIL: server exit code $RC"; cat "$OUT"; exit 1; }
grep -q "bye" "$OUT" || { echo "FAIL: no clean shutdown message"; exit 1; }
trap - EXIT
echo "server_smoke: OK"
