#!/usr/bin/env bash
# Tier-1 gate: the standard build + full test suite, then the durability /
# corruption suite again under ASan+UBSan (torn-tail salvage, fault
# injection, and parser-corruption paths are exactly where memory bugs
# would hide).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier 1: standard build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo
echo "=== tier 1: durability suite under ASan+UBSan ==="
cmake -B build-san -S . -DHYGRAPH_SANITIZE=address,undefined >/dev/null
cmake --build build-san -j --target \
  wal_test recovery_test fault_injection_test serialize_test
for t in wal_test recovery_test fault_injection_test serialize_test; do
  echo "--- $t (sanitized) ---"
  ./build-san/tests/"$t"
done

echo
echo "tier 1 OK"
