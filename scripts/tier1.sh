#!/usr/bin/env bash
# Tier-1 gate, in four passes:
#
#   1. static analysis  — scripts/lint.sh (project linter + clang-tidy when
#                         installed)
#   2. standard build   — warnings-as-errors, full ctest suite (includes the
#                         fuzz-corpus replay and the [[nodiscard]] and
#                         thread-safety negative-compile checks) with the
#                         runtime lock-rank checker force-enabled, so every
#                         test doubles as a lock-ordering assertion
#   2b. thread safety   — when Clang is installed, the whole tree compiles
#                         under -Wthread-safety -Werror (skipped with a
#                         notice otherwise; CI always runs it)
#   3. sanitized build  — the FULL ctest suite again under ASan+UBSan, not
#                         just the durability tests: parser, serializer, and
#                         corpus-replay paths are exactly where memory bugs
#                         would hide.
#   4. tsan build       — the FULL ctest suite under ThreadSanitizer (TSan
#                         and ASan cannot share a process): the concurrency
#                         and snapshot-isolation stress tests only prove
#                         races absent when TSan watches every interleaving
#                         they drive.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier 1: static analysis (scripts/lint.sh) ==="
scripts/lint.sh

echo
echo "=== tier 1: standard build + ctest (HYGRAPH_WERROR=ON, lock-rank checks) ==="
cmake -B build -S . -DHYGRAPH_WERROR=ON -DHYGRAPH_LOCK_RANK_CHECKS=ON >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo
echo "=== tier 1: Clang -Wthread-safety analysis ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DHYGRAPH_THREAD_SAFETY=ON >/dev/null
  cmake --build build-tsa -j
  (cd build-tsa && ctest -R thread_safety_negative --output-on-failure)
else
  echo "clang++ not installed — skipping (CI runs this pass unconditionally)"
fi

echo
echo "=== tier 1: full ctest suite under ASan+UBSan ==="
cmake -B build-san -S . -DHYGRAPH_SANITIZE=address,undefined \
  -DHYGRAPH_WERROR=ON >/dev/null
cmake --build build-san -j
(cd build-san && ctest --output-on-failure -j)

echo
echo "=== tier 1: full ctest suite under TSan ==="
cmake -B build-tsan -S . -DHYGRAPH_SANITIZE=thread \
  -DHYGRAPH_WERROR=ON >/dev/null
cmake --build build-tsan -j
(cd build-tsan && ctest --output-on-failure -j)

echo
echo "tier 1 OK"
