#!/usr/bin/env bash
# Static-analysis gate: the project linter plus clang-tidy.
#
#   scripts/lint.sh            # lint everything
#   scripts/lint.sh --no-tidy  # project linter only (explicitly skip tidy)
#
# clang-tidy needs a compile_commands.json; this script configures the
# standard build tree (CMAKE_EXPORT_COMPILE_COMMANDS is always ON) if it is
# missing. When clang-tidy is not installed the tidy pass is skipped with a
# notice — the .clang-tidy config still gates CI, where the tool exists.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tidy=1
if [[ "${1:-}" == "--no-tidy" ]]; then
  run_tidy=0
fi

echo "=== lint: hygraph_lint.py ==="
python3 scripts/hygraph_lint.py

if [[ "$run_tidy" == 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo
    echo "=== lint: clang-tidy ==="
    if [[ ! -f build/compile_commands.json ]]; then
      cmake -B build -S . >/dev/null
    fi
    # Library sources only (tests and benches follow gtest/benchmark idiom
    # that the naming rules deliberately do not cover), and only files the
    # compile database knows — fuzzer entry points are gated behind
    # HYGRAPH_FUZZ and may be absent from a default configure.
    mapfile -t sources < <(python3 - <<'PY'
import json, os
db = json.load(open("build/compile_commands.json"))
indexed = {os.path.relpath(e["file"]) for e in db}
for path in sorted(indexed):
    if path.startswith(("src/", "fuzz/")) and path.endswith(".cc"):
        print(path)
PY
)
    clang-tidy -p build --quiet --warnings-as-errors='*' "${sources[@]}"
  else
    echo
    echo "note: clang-tidy not found; skipping the tidy pass" >&2
  fi
fi

echo
echo "lint OK"
