// Observability overhead microbench (ISSUE 4), emitted to BENCH_obs.json:
//
//   1. Instrument hot-path cost — Counter::Add, Histogram::Record, and
//      Gauge::Set in a tight loop, reported as ns/op. The budget is "a
//      relaxed atomic add": single-digit nanoseconds on the reference
//      machine.
//   2. Span cost — ScopedSpan with a null tracer (the disabled path, which
//      must be free) vs an enabled tracer reading the real clock.
//   3. PROFILE overhead and reconciliation — a Table 1-style aggregate
//      query run normally vs under Profile() on both backends: relative
//      slowdown, and the fraction of wall time the operator tree accounts
//      for (the ISSUE's "timings reconcile with wall time" acceptance).
//   4. Export cost — Snapshot + ToPrometheusText/ToJson on a registry the
//      size the engine actually produces.
//
// `--smoke` shrinks iteration counts and the workload for CI.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "query/profile.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"
#include "workloads/bike_sharing.h"

namespace hygraph::bench {
namespace {

struct JsonResult {
  std::string name;
  double value;
  std::string unit;
};

std::vector<JsonResult>& Results() {
  static std::vector<JsonResult> results;
  return results;
}

void Record(const std::string& name, double value, const std::string& unit) {
  Results().push_back({name, value, unit});
}

// ---------------------------------------------------------------------------
// 1. Instrument hot-path cost.

void BenchInstruments(size_t iters) {
  PrintHeader("Instrument cost (ns/op, relaxed atomics)");
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.counter("bench.counter");
  obs::Gauge* gauge = registry.gauge("bench.gauge");
  obs::Histogram* histogram = registry.histogram("bench.histogram");

  const double counter_ms = TimeMs([&] {
    for (size_t i = 0; i < iters; ++i) counter->Add(1);
  });
  const double gauge_ms = TimeMs([&] {
    for (size_t i = 0; i < iters; ++i) gauge->Set(static_cast<double>(i));
  });
  const double histogram_ms = TimeMs([&] {
    for (size_t i = 0; i < iters; ++i) histogram->Record(i & 0xffff);
  });
  if (counter->value() != iters) std::exit(1);  // defeat dead-code elim

  const double n = static_cast<double>(iters);
  std::printf("counter add:      %6.2f ns/op\n", counter_ms * 1e6 / n);
  std::printf("gauge set:        %6.2f ns/op\n", gauge_ms * 1e6 / n);
  std::printf("histogram record: %6.2f ns/op\n", histogram_ms * 1e6 / n);
  Record("counter_add_ns", counter_ms * 1e6 / n, "ns");
  Record("gauge_set_ns", gauge_ms * 1e6 / n, "ns");
  Record("histogram_record_ns", histogram_ms * 1e6 / n, "ns");
}

// ---------------------------------------------------------------------------
// 2. Span cost: disabled (null tracer) vs enabled.

void BenchSpans(size_t iters) {
  PrintHeader("Trace span cost (ns/span)");
  const double disabled_ms = TimeMs([&] {
    for (size_t i = 0; i < iters; ++i) {
      obs::ScopedSpan span(nullptr, "op");
      span.AddCounter("rows", 1);
    }
  });
  obs::Tracer tracer;
  const double enabled_ms = TimeMs([&] {
    for (size_t i = 0; i < iters; ++i) {
      // Same-name spans merge into one node, so the tree stays O(1) and
      // this measures steady-state span cost, not tree growth.
      obs::ScopedSpan span(&tracer, "op");
      span.AddCounter("rows", 1);
    }
  });
  if (tracer.root().children.size() != 1) std::exit(1);

  const double n = static_cast<double>(iters);
  std::printf("disabled (null tracer): %6.2f ns/span\n",
              disabled_ms * 1e6 / n);
  std::printf("enabled  (real clock):  %6.2f ns/span\n", enabled_ms * 1e6 / n);
  Record("span_disabled_ns", disabled_ms * 1e6 / n, "ns");
  Record("span_enabled_ns", enabled_ms * 1e6 / n, "ns");
}

// ---------------------------------------------------------------------------
// 3. PROFILE overhead + reconciliation on both backends.

int BenchProfile(bool smoke) {
  PrintHeader("PROFILE overhead and wall-time reconciliation");
  workloads::BikeSharingConfig config;
  config.stations = smoke ? 20 : 80;
  config.districts = 4;
  config.days = smoke ? 2 : 7;
  config.sample_interval = 5 * kMinute;
  config.seed = 1234;
  auto dataset = workloads::GenerateBikeSharing(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  storage::AllInGraphStore all_in_graph;
  storage::PolyglotStore polyglot;
  if (!workloads::LoadIntoBackend(*dataset, &all_in_graph).ok()) return 1;
  if (!workloads::LoadIntoBackend(*dataset, &polyglot).ok()) return 1;

  // The Q4 shape: full-graph per-station aggregate + top-k.
  const std::string query =
      "MATCH (s:Station) RETURN s.name AS n, ts_avg(s.bikes, " +
      std::to_string(dataset->start()) + ", " +
      std::to_string(dataset->end()) + ") AS a ORDER BY a DESC, n LIMIT 10";
  const size_t repetitions = smoke ? 3 : 7;

  struct BackendRef {
    const char* label;
    const query::QueryBackend* backend;
  };
  for (const BackendRef ref : {BackendRef{"all-in-graph", &all_in_graph},
                               BackendRef{"polyglot", &polyglot}}) {
    const RunningStats normal = Repeat(repetitions, [&] {
      if (!query::Execute(*ref.backend, query).ok()) std::exit(1);
    });
    RunningStats coverage;
    const RunningStats profiled = Repeat(repetitions, [&] {
      auto p = query::Profile(*ref.backend, query);
      if (!p.ok()) std::exit(1);
      coverage.Add(100.0 * static_cast<double>(p->trace.SumSelfNanos()) /
                   static_cast<double>(p->wall_nanos));
    });
    const double overhead =
        normal.mean() > 0
            ? 100.0 * (profiled.mean() - normal.mean()) / normal.mean()
            : 0.0;
    std::printf("%-13s normal %8.3f ms | profiled %8.3f ms | overhead "
                "%+5.1f%% | tree covers %5.1f%% of wall\n",
                ref.label, normal.mean(), profiled.mean(), overhead,
                coverage.mean());
    const std::string prefix = std::string("profile_") + ref.label;
    Record(prefix + "_overhead_pct", overhead, "%");
    Record(prefix + "_wall_coverage_pct", coverage.mean(), "%");
    if (coverage.mean() < 90.0) {
      std::fprintf(stderr,
                   "%s: operator tree accounts for only %.1f%% of wall time "
                   "(acceptance: within 10%%)\n",
                   ref.label, coverage.mean());
      return 1;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// 4. Export cost on an engine-sized registry.

void BenchExport(size_t iters) {
  PrintHeader("Snapshot + export cost");
  obs::MetricsRegistry registry;
  // Roughly the instrument population a loaded engine carries.
  for (int i = 0; i < 24; ++i) {
    registry.counter("c." + std::to_string(i))->Add(i * 1000);
  }
  for (int i = 0; i < 8; ++i) {
    registry.gauge("g." + std::to_string(i))->Set(i * 1.5);
  }
  for (int i = 0; i < 4; ++i) {
    obs::Histogram* h = registry.histogram("h." + std::to_string(i));
    for (uint64_t v = 1; v < 2000; v += 7) h->Record(v * (i + 1));
  }

  size_t sink = 0;
  const double snapshot_ms = TimeMs([&] {
    for (size_t i = 0; i < iters; ++i) {
      sink += registry.Snapshot().counters.size();
    }
  });
  const obs::MetricsSnapshot snap = registry.Snapshot();
  const double prom_ms = TimeMs([&] {
    for (size_t i = 0; i < iters; ++i) sink += snap.ToPrometheusText().size();
  });
  const double json_ms = TimeMs([&] {
    for (size_t i = 0; i < iters; ++i) sink += snap.ToJson().size();
  });
  if (sink == 0) std::exit(1);

  const double n = static_cast<double>(iters);
  std::printf("snapshot:   %8.2f us\n", snapshot_ms * 1e3 / n);
  std::printf("prometheus: %8.2f us (%zu bytes)\n", prom_ms * 1e3 / n,
              snap.ToPrometheusText().size());
  std::printf("json:       %8.2f us (%zu bytes)\n", json_ms * 1e3 / n,
              snap.ToJson().size());
  Record("snapshot_us", snapshot_ms * 1e3 / n, "us");
  Record("export_prometheus_us", prom_ms * 1e3 / n, "us");
  Record("export_json_us", json_ms * 1e3 / n, "us");
}

void WriteJson() {
  FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs.json\n");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"obs\",\n  \"results\": [\n");
  const auto& results = Results();
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_obs.json (%zu results)\n", results.size());
}

}  // namespace
}  // namespace hygraph::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t iters = smoke ? 200000 : 5000000;
  hygraph::bench::BenchInstruments(iters);
  hygraph::bench::BenchSpans(smoke ? 50000 : 1000000);
  if (const int rc = hygraph::bench::BenchProfile(smoke); rc != 0) return rc;
  hygraph::bench::BenchExport(smoke ? 200 : 2000);
  hygraph::bench::WriteJson();
  return 0;
}
