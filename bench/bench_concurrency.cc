// Concurrency bench (DESIGN.md §10), emitted to BENCH_concurrency.json:
//
//   1. Single-writer ingest latency — per-append latency of the polyglot
//      backend under a bike-sharing-shaped load, p50/p99 from an obs
//      histogram (the baseline the mixed phase is compared against).
//   2. N-reader scan throughput — N threads scanning a sealed hypertable
//      series, N = 1, 2, 4. Sealed-chunk reads decode outside any lock, so
//      aggregate throughput must not collapse as readers are added (on the
//      single-core reference machine the expectation is roughly flat
//      scans/sec, not linear speedup).
//   3. Lock-freedom verification — the read-only phase is bracketed with
//      the "concurrency.*" counters: a scan of a sealed series must take
//      exactly two shared lock acquisitions (series-map + shard pin),
//      ZERO exclusive acquisitions, and pin every sealed chunk it reads.
//      The bench exits non-zero if the sealed-chunk read path ever takes
//      an exclusive lock — the acceptance criterion for the PR.
//   4. Mixed 1 writer + N readers — ingest p99 while scan threads churn,
//      showing writer latency under read load (shard locks are per-series,
//      so cross-series readers barely move the writer's tail).
//   5. Morsel-driven parallel scan scaling — ONE caller thread fanning a
//      sealed scan over the worker pool, swept over per-scan thread caps
//      (1 → 2 → 4 threads total) with speedup and efficiency per point.
//      Two guards, mirroring section 3's lock-freedom check: a
//      deterministic one (the parallel store must actually fan out one
//      morsel per overlapping chunk, the serial store must fan out none)
//      that runs everywhere, and a timing one (>=3x speedup at 4 threads)
//      enforced only on full runs with >=4 hardware threads — smoke/TSan
//      timings and single-core machines cannot express the ratio.
//
// `--smoke` shrinks the workload for CI.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "storage/polyglot.h"
#include "ts/hypertable.h"
#include "workloads/bike_sharing.h"

namespace hygraph::bench {
namespace {

struct JsonResult {
  std::string name;
  double value;
  std::string unit;
};

std::vector<JsonResult>& Results() {
  static std::vector<JsonResult> results;
  return results;
}

void Record(const std::string& name, double value, const std::string& unit) {
  Results().push_back({name, value, unit});
}

double ValueAt(Timestamp t) {
  return std::sin(static_cast<double>(t) * 1e-3) * 100.0;
}

// ---------------------------------------------------------------------------
// 1. Single-writer ingest latency (polyglot backend, bike-sharing shape).

void BenchIngestBaseline(bool smoke) {
  PrintHeader("Single-writer ingest latency (polyglot)");
  workloads::BikeSharingConfig config;
  config.stations = smoke ? 12 : 60;
  config.districts = 4;
  config.days = smoke ? 1 : 3;
  config.sample_interval = 5 * kMinute;
  config.seed = 7;
  auto dataset = workloads::GenerateBikeSharing(config);
  if (!dataset.ok()) std::exit(1);

  storage::PolyglotStore store;
  auto stations = workloads::LoadIntoBackend(*dataset, &store);
  if (!stations.ok()) std::exit(1);

  const obs::Clock* clock = obs::SystemClock::Instance();
  obs::Histogram latency;
  const Timestamp from = dataset->end();
  const size_t appends = smoke ? 20000 : 200000;
  for (size_t i = 0; i < appends; ++i) {
    const auto v = (*stations)[i % stations->size()];
    const Timestamp t = from + static_cast<Timestamp>(i) * 1000;
    const uint64_t start = clock->NowNanos();
    if (!store.AppendVertexSample(v, "bikes", t, ValueAt(t)).ok()) {
      std::exit(1);
    }
    latency.Record(clock->NowNanos() - start);
  }
  const auto snap = latency.Snapshot();
  std::printf("appends: %zu  p50: %" PRIu64 " ns  p99: %" PRIu64
              " ns  max: %" PRIu64 " ns\n",
              appends, snap.Quantile(0.5), snap.Quantile(0.99), snap.max);
  Record("ingest_baseline_p50_ns", static_cast<double>(snap.Quantile(0.5)),
         "ns");
  Record("ingest_baseline_p99_ns", static_cast<double>(snap.Quantile(0.99)),
         "ns");
}

// ---------------------------------------------------------------------------
// 2 + 3. N-reader scan throughput over a sealed series, with lock-freedom
// verification via the concurrency.* counters.

int BenchReaderScaling(bool smoke) {
  PrintHeader("N-reader sealed-scan throughput (hypertable)");
  ts::HypertableOptions options;
  options.chunk_duration = kHour;
  ts::HypertableStore store(options);
  const SeriesId id = store.Create("scaling");
  const size_t samples = smoke ? 20000 : 200000;
  for (size_t i = 0; i < samples; ++i) {
    const Timestamp t = static_cast<Timestamp>(i) * 1000;  // 1s cadence
    if (!store.Insert(id, t, ValueAt(t)).ok()) std::exit(1);
  }

  obs::Counter* shared = store.metrics()->counter("concurrency.lock_shared");
  obs::Counter* exclusive =
      store.metrics()->counter("concurrency.lock_exclusive");
  obs::Counter* pins = store.metrics()->counter("concurrency.chunk_pins");

  const size_t scans_per_reader = smoke ? 40 : 200;
  const Interval window{0, static_cast<Timestamp>(samples) * 1000};
  double single_reader_per_sec = 0.0;
  bool lock_free_ok = true;

  for (int readers : {1, 2, 4}) {
    const uint64_t shared_before = shared->value();
    const uint64_t exclusive_before = exclusive->value();
    const uint64_t pins_before = pins->value();

    std::atomic<size_t> total{0};
    const double ms = TimeMs([&] {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(readers));
      for (int r = 0; r < readers; ++r) {
        pool.emplace_back([&] {
          for (size_t i = 0; i < scans_per_reader; ++i) {
            size_t count = 0;
            auto status = store.ScanVisit(
                id, window, [&count](const ts::Sample&) { ++count; });
            if (!status.ok() || count != samples) std::exit(1);
            total.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      for (auto& t : pool) t.join();
    });

    const uint64_t scans = total.load();
    const double per_sec = static_cast<double>(scans) / (ms / 1e3);
    if (readers == 1) single_reader_per_sec = per_sec;
    const uint64_t shared_delta = shared->value() - shared_before;
    const uint64_t exclusive_delta = exclusive->value() - exclusive_before;
    const uint64_t pins_delta = pins->value() - pins_before;
    std::printf(
        "readers=%d  scans/sec: %8.1f  shared-locks/scan: %.2f  "
        "exclusive: %" PRIu64 "  pinned chunks: %" PRIu64 "\n",
        readers, per_sec, static_cast<double>(shared_delta) / scans,
        exclusive_delta, pins_delta);
    Record("scan_throughput_r" + std::to_string(readers), per_sec,
           "scans/sec");

    // Lock-freedom acceptance: the pin is the ONLY lock activity — two
    // shared acquisitions per scan (series map + shard), no exclusive.
    if (exclusive_delta != 0 || shared_delta != 2 * scans ||
        pins_delta == 0) {
      std::fprintf(stderr,
                   "FAIL: sealed-chunk scan path touched locks beyond the "
                   "pin (shared=%" PRIu64 " exclusive=%" PRIu64
                   " pins=%" PRIu64 " scans=%" PRIu64 ")\n",
                   shared_delta, exclusive_delta, pins_delta, scans);
      lock_free_ok = false;
    }
  }
  Record("scan_lock_free", lock_free_ok ? 1.0 : 0.0, "bool");
  Record("scan_throughput_single", single_reader_per_sec, "scans/sec");
  return lock_free_ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// 4. Mixed: one writer ingesting its own series while N readers scan a
// different, sealed series — shard locking keeps them independent.

void BenchMixed(bool smoke) {
  PrintHeader("Mixed 1 writer + N readers (independent series)");
  ts::HypertableOptions options;
  options.chunk_duration = kHour;
  ts::HypertableStore store(options);
  const SeriesId read_id = store.Create("read-side");
  const SeriesId write_id = store.Create("write-side");
  const size_t samples = smoke ? 10000 : 100000;
  for (size_t i = 0; i < samples; ++i) {
    const Timestamp t = static_cast<Timestamp>(i) * 1000;
    if (!store.Insert(read_id, t, ValueAt(t)).ok()) std::exit(1);
  }

  for (int readers : {0, 2}) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(readers));
    const Interval window{0, static_cast<Timestamp>(samples) * 1000};
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          size_t count = 0;
          auto status = store.ScanVisit(
              read_id, window, [&count](const ts::Sample&) { ++count; });
          if (!status.ok() || count != samples) std::exit(1);
        }
      });
    }

    const obs::Clock* clock = obs::SystemClock::Instance();
    obs::Histogram latency;
    const size_t appends = smoke ? 20000 : 100000;
    for (size_t i = 0; i < appends; ++i) {
      const Timestamp t = static_cast<Timestamp>(i) * 1000;
      const uint64_t start = clock->NowNanos();
      if (!store.Insert(write_id, t, ValueAt(t)).ok()) std::exit(1);
      latency.Record(clock->NowNanos() - start);
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : pool) t.join();
    // Empty the series between rounds so both rounds do identical write
    // work (every sample is older than the keep interval).
    if (!store.Retain(write_id, Interval{kMaxTimestamp - 1, kMaxTimestamp})
             .ok()) {
      std::exit(1);
    }

    const auto snap = latency.Snapshot();
    std::printf("readers=%d  ingest p50: %" PRIu64 " ns  p99: %" PRIu64
                " ns\n",
                readers, snap.Quantile(0.5), snap.Quantile(0.99));
    Record("mixed_ingest_p99_r" + std::to_string(readers),
           static_cast<double>(snap.Quantile(0.99)), "ns");
  }
}

// ---------------------------------------------------------------------------
// 5. Morsel-driven parallel scan scaling: one caller thread, the worker
// pool doing the per-chunk decode, swept over per-scan thread caps. The
// per-store `parallel_scan_cap` bounds each point because the process-wide
// pool is grow-only — workers beyond the cap exist but never attach.

int BenchParallelScaling(bool smoke) {
  PrintHeader("Morsel-driven parallel sealed-scan scaling (worker pool)");
  const size_t samples = smoke ? 20000 : 200000;
  const size_t scans = smoke ? 40 : 200;
  const Interval window{0, static_cast<Timestamp>(samples) * 1000};

  auto build = [&](bool parallel, size_t cap) {
    ts::HypertableOptions options;
    options.chunk_duration = kHour;
    options.parallel_scan = parallel;
    options.parallel_scan_cap = cap;
    auto store = std::make_unique<ts::HypertableStore>(options);
    const SeriesId id = store->Create("scaling");
    for (size_t i = 0; i < samples; ++i) {
      const Timestamp t = static_cast<Timestamp>(i) * 1000;  // 1s cadence
      if (!store->Insert(id, t, ValueAt(t)).ok()) std::exit(1);
    }
    return std::make_pair(std::move(store), id);
  };
  auto scan_ms = [&](ts::HypertableStore& store, SeriesId id) {
    return TimeMs([&] {
      for (size_t i = 0; i < scans; ++i) {
        size_t count = 0;
        auto status = store.ScanVisit(
            id, window, [&count](const ts::Sample&) { ++count; });
        if (!status.ok() || count != samples) std::exit(1);
      }
    });
  };

  bool ok = true;
  auto [serial_store, serial_id] = build(/*parallel=*/false, 0);
  const double serial_ms = scan_ms(*serial_store, serial_id);
  std::printf("threads=1  scans/sec: %8.1f  (serial baseline)\n",
              static_cast<double>(scans) / (serial_ms / 1e3));
  Record("pscan_serial_scans_per_sec",
         static_cast<double>(scans) / (serial_ms / 1e3), "scans/sec");
  if (serial_store->stats().morsels_dispatched != 0) {
    std::fprintf(stderr, "FAIL: serial store fanned out morsels\n");
    ok = false;
  }

  ThreadPool* pool = ThreadPool::Instance();
  if (pool->worker_count() < 3) pool->SetWorkerCount(3);
  double speedup_at_4 = 0.0;
  for (const size_t threads : {2u, 4u}) {
    auto [store, id] = build(/*parallel=*/true, threads);
    const double ms = scan_ms(*store, id);
    const double speedup = serial_ms / ms;
    const double efficiency = speedup / static_cast<double>(threads);
    const ts::HypertableStats st = store->stats();
    std::printf("threads=%zu  scans/sec: %8.1f  speedup: %5.2fx  "
                "efficiency: %4.2f  morsels: %zu (%zu stolen)\n",
                threads, static_cast<double>(scans) / (ms / 1e3), speedup,
                efficiency, st.morsels_dispatched, st.morsels_stolen);
    Record("pscan_speedup_t" + std::to_string(threads), speedup, "x");
    Record("pscan_efficiency_t" + std::to_string(threads), efficiency,
           "speedup/thread");
    if (threads == 4) speedup_at_4 = speedup;
    // Deterministic fan-out guard: every scan fans out one morsel per
    // overlapping chunk, and the series spans well over two chunks.
    if (st.morsels_dispatched < 2 * scans) {
      std::fprintf(stderr,
                   "FAIL: parallel store dispatched %zu morsels over %zu "
                   "scans — fan-out did not engage\n",
                   st.morsels_dispatched, scans);
      ok = false;
    }
  }

  // Timing guard, hardware-permitting: on a full run with >=4 hardware
  // threads the 4-thread point must hold a 3x sealed-scan speedup.
  const unsigned hw = std::thread::hardware_concurrency();
  if (!smoke && hw >= 4) {
    if (speedup_at_4 < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 4-thread sealed-scan speedup %.2fx below the 3x "
                   "floor (hardware threads: %u)\n",
                   speedup_at_4, hw);
      ok = false;
    }
  } else {
    std::printf("(timing guard skipped: %s, %u hardware threads)\n",
                smoke ? "smoke run" : "full run", hw);
  }
  Record("pscan_scaling_ok", ok ? 1.0 : 0.0, "bool");
  return ok ? 0 : 1;
}

void WriteJson() {
  FILE* f = std::fopen("BENCH_concurrency.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_concurrency.json\n");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"concurrency\",\n  \"results\": [\n");
  const auto& results = Results();
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_concurrency.json (%zu results)\n",
              results.size());
}

}  // namespace
}  // namespace hygraph::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  hygraph::bench::BenchIngestBaseline(smoke);
  int rc = hygraph::bench::BenchReaderScaling(smoke);
  hygraph::bench::BenchMixed(smoke);
  if (const int scaling_rc = hygraph::bench::BenchParallelScaling(smoke);
      rc == 0) {
    rc = scaling_rc;
  }
  hygraph::bench::WriteJson();
  return rc;
}
