// Durability-layer benchmarks:
//   * WAL append throughput, fsync-per-record vs group commit (the cost of
//     the per-op durability guarantee DurableOptions::sync_wal buys)
//   * recovery (Open) time as a function of WAL length, with and without a
//     covering snapshot
//
// Results go to stdout and to BENCH_recovery.json in the working directory.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storage/all_in_graph.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"
#include "storage/wal.h"

namespace hygraph::bench {
namespace {

using storage::DurableOptions;
using storage::DurableStore;
using storage::Env;
using storage::WalWriter;

struct JsonResult {
  std::string name;
  double value = 0.0;
  std::string unit;
};

std::vector<JsonResult>& Results() {
  static std::vector<JsonResult> results;
  return results;
}

void Record(const std::string& name, double value, const std::string& unit) {
  std::printf("  %-48s %12.2f %s\n", name.c_str(), value, unit.c_str());
  Results().push_back({name, value, unit});
}

std::string FreshDir() {
  char tmpl[] = "/tmp/hygraph_bench_recovery_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return tmpl;
}

void BenchWalAppend() {
  PrintHeader("WAL append throughput");
  Env* env = Env::Default();
  const std::string payload(128, 'x');
  const int kSynced = 400;     // fsync per record is slow by design
  const int kUnsynced = 20000;

  {
    const std::string dir = FreshDir();
    auto writer = WalWriter::Create(env, dir + "/wal.log");
    const double ms = TimeMs([&] {
      for (int i = 0; i < kSynced; ++i) {
        (void)(*writer)->Append(payload, /*sync=*/true);
      }
    });
    Record("wal_append_sync_per_record", kSynced / (ms / 1000.0), "records/s");
    std::system(("rm -rf " + dir).c_str());
  }
  {
    const std::string dir = FreshDir();
    auto writer = WalWriter::Create(env, dir + "/wal.log");
    const double ms = TimeMs([&] {
      for (int i = 0; i < kUnsynced; ++i) {
        (void)(*writer)->Append(payload, /*sync=*/false);
      }
      (void)(*writer)->Sync();  // one group commit at the end
    });
    Record("wal_append_group_commit", kUnsynced / (ms / 1000.0), "records/s");
    std::system(("rm -rf " + dir).c_str());
  }
}

// Ingests `samples` logged sample-appends into a durable store at `dir`.
void Ingest(Env* env, const std::string& dir, int samples, bool checkpoint) {
  DurableOptions options;
  options.sync_wal = false;  // WAL length, not fsync count, is the variable
  DurableStore store(env, dir, std::make_unique<storage::PolyglotStore>(),
                     options);
  if (!store.Open().ok()) std::exit(1);
  auto v = store.AddVertex({"Sensor"}, {});
  if (!v.ok()) std::exit(1);
  for (int i = 0; i < samples; ++i) {
    (void)store.AppendVertexSample(*v, "temp", 1000 + i, 0.25 * i);
  }
  if (checkpoint && !store.Checkpoint().ok()) std::exit(1);
  (void)store.SyncWal();
}

void BenchRecovery() {
  PrintHeader("Recovery time vs WAL length (polyglot backend)");
  Env* env = Env::Default();
  for (int samples : {1000, 10000, 50000}) {
    const std::string dir = FreshDir();
    Ingest(env, dir + "/store", samples, /*checkpoint=*/false);
    DurableStore store(env, dir + "/store",
                       std::make_unique<storage::PolyglotStore>());
    const double ms = TimeMs([&] {
      if (!store.Open().ok()) std::exit(1);
    });
    Record("recover_wal_" + std::to_string(samples) + "_records", ms, "ms");
    std::system(("rm -rf " + dir).c_str());
  }

  PrintHeader("Recovery time with a covering snapshot");
  for (int samples : {50000}) {
    const std::string dir = FreshDir();
    Ingest(env, dir + "/store", samples, /*checkpoint=*/true);
    DurableStore store(env, dir + "/store",
                       std::make_unique<storage::PolyglotStore>());
    const double ms = TimeMs([&] {
      if (!store.Open().ok()) std::exit(1);
    });
    Record("recover_snapshot_" + std::to_string(samples) + "_records", ms,
           "ms");
    std::system(("rm -rf " + dir).c_str());
  }
}

void WriteJson() {
  FILE* f = std::fopen("BENCH_recovery.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_recovery.json\n");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"recovery\",\n  \"results\": [\n");
  const auto& results = Results();
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_recovery.json (%zu results)\n", results.size());
}

}  // namespace
}  // namespace hygraph::bench

int main() {
  hygraph::bench::BenchWalAppend();
  hygraph::bench::BenchRecovery();
  hygraph::bench::WriteJson();
  return 0;
}
