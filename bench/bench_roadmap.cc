// Section 6 roadmap features beyond the core reproduction, exercised
// end-to-end with timings:
//   * time-respecting reachability on TPGs (Wu et al. [87], Figure 3 op)
//   * hybrid link prediction (the GC-LSTM [24] task with classical scorers)
//   * HyGraph-RAG retrieval (vector similarity + neighborhood context)
//   * symbolic (SAX) pattern mining on station series
//   * streaming ingestion with staleness eviction (requirement R3)

#include <cmath>
#include <cstdio>

#include "analytics/link_prediction.h"
#include "analytics/rag.h"
#include "bench_util.h"
#include "core/stream.h"
#include "graph/traversal.h"
#include "temporal/temporal_reachability.h"
#include "ts/sax.h"
#include "workloads/bike_sharing.h"
#include "workloads/financial.h"

int main() {
  using namespace hygraph;

  bench::PrintHeader("Roadmap: temporal reachability (financial TPG)");
  {
    workloads::FinancialConfig config;
    config.companies = 60;
    config.acquisition_probability = 0.5;
    auto hg = workloads::GenerateFinancialHyGraph(config);
    if (!hg.ok()) return 1;
    const auto companies = hg->structure().VerticesWithLabel("Company");
    size_t static_reach = 0;
    size_t temporal_reach = 0;
    const double ms = bench::TimeMs([&] {
      for (graph::VertexId c : companies) {
        auto arrivals = temporal::EarliestArrivalTimes(hg->tpg(), c);
        if (arrivals.ok()) temporal_reach += arrivals->size() - 1;
      }
    });
    for (graph::VertexId c : companies) {
      auto visits = graph::Bfs(hg->structure(), c);
      if (visits.ok()) static_reach += visits->size() - 1;
    }
    std::printf("  %zu sources: static reachable pairs %zu, "
                "time-respecting %zu (%.1f ms total)\n",
                companies.size(), static_reach, temporal_reach, ms);
    std::printf("  time-respecting <= static: %s\n",
                temporal_reach <= static_reach ? "holds" : "VIOLATED");
  }

  bench::PrintHeader("Roadmap: hybrid link prediction (bike network)");
  {
    workloads::BikeSharingConfig config;
    config.stations = 50;
    config.districts = 5;
    config.days = 5;
    config.sample_interval = kHour;
    auto dataset = workloads::GenerateBikeSharing(config);
    // Build a PG-edge view of the trip network (link prediction holds out
    // PG edges; the default HyGraph view models trips as TS edges).
    Result<core::HyGraph> hg = [&]() -> Result<core::HyGraph> {
      core::HyGraph out;
      std::vector<graph::VertexId> ids;
      for (const auto& station : dataset->stations) {
        auto v = out.AddPgVertex(
            {"Station"}, {{"district", Value(station.district)}});
        if (!v.ok()) return v.status();
        ts::MultiSeries ms(station.name, {"bikes"});
        for (const ts::Sample& s : station.bikes.samples()) {
          HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(s.t, {s.value}));
        }
        auto sid = out.SetVertexSeriesProperty(*v, "history", std::move(ms));
        if (!sid.ok()) return sid.status();
        ids.push_back(*v);
      }
      for (const auto& trip : dataset->trips) {
        auto e = out.AddPgEdge(ids[trip.src], ids[trip.dst], "TRIP", {});
        if (!e.ok()) return e.status();
      }
      return out;
    }();
    if (!hg.ok()) return 1;
    analytics::LinkPredictionOptions options;
    options.top_k = 20;
    double hybrid_hits = 0;
    double structural_hits = 0;
    size_t held_out = 0;
    const double ms = bench::TimeMs([&] {
      auto eval = analytics::EvaluateLinkPrediction(*hg, 0.15, 11, options);
      if (eval.ok()) {
        hybrid_hits = static_cast<double>(eval->hybrid_hits);
        structural_hits = static_cast<double>(eval->structural_hits);
        held_out = eval->held_out;
      }
    });
    std::printf("  held out %zu edges; recovered: hybrid %g, "
                "structural-only %g (%.1f ms)\n",
                held_out, hybrid_hits, structural_hits, ms);
  }

  bench::PrintHeader("Roadmap: HyGraph-RAG retrieval (bike network)");
  {
    workloads::BikeSharingConfig config;
    config.stations = 80;
    config.districts = 8;
    config.days = 5;
    config.sample_interval = 30 * kMinute;
    auto dataset = workloads::GenerateBikeSharing(config);
    auto hg = workloads::ToHyGraph(*dataset);
    if (!hg.ok()) return 1;
    analytics::RagOptions options;
    options.top_k = 5;
    double build_ms = 0;
    auto retriever = [&] {
      Result<analytics::HyGraphRetriever> r =
          Status::Internal("unset");
      build_ms = bench::TimeMs(
          [&] { r = analytics::HyGraphRetriever::Build(&*hg, options); });
      return r;
    }();
    if (!retriever.ok()) return 1;
    // Statistical feature embeddings are phase-blind, so "similar" means
    // similar level/volatility — which the generator ties to capacity.
    // Retrieval quality: retrieved anchors should be far closer in
    // capacity to the probe than a random station would be.
    const graph::VertexId probe =
        hg->structure().VerticesWithLabel("Station")[0];
    const double probe_capacity =
        static_cast<double>(hg->GetVertexProperty(probe, "capacity")
                                ->AsInt());
    double retrieved_gap = 0.0;
    const double query_ms = bench::Repeat(20, [&] {
      auto contexts = retriever->RetrieveSimilarTo(probe);
      if (contexts.ok()) {
        retrieved_gap = 0.0;
        for (const auto& context : *contexts) {
          retrieved_gap += std::abs(
              static_cast<double>(
                  hg->GetVertexProperty(context.anchor, "capacity")
                      ->AsInt()) -
              probe_capacity);
        }
        retrieved_gap /= static_cast<double>(contexts->size());
      }
    }).mean();
    double population_gap = 0.0;
    const auto all_stations = hg->structure().VerticesWithLabel("Station");
    for (graph::VertexId v : all_stations) {
      population_gap += std::abs(
          static_cast<double>(
              hg->GetVertexProperty(v, "capacity")->AsInt()) -
          probe_capacity);
    }
    population_gap /= static_cast<double>(all_stations.size());
    std::printf("  index build %.1f ms over %zu vertices; top-5 retrieval "
                "%.2f ms/query;\n  mean |capacity gap| of retrieved %.1f vs "
                "population %.1f (smaller = behaviourally closer)\n",
                build_ms, retriever->index().size(), query_ms,
                retrieved_gap, population_gap);
  }

  bench::PrintHeader("Roadmap: symbolic (SAX) pattern mining");
  {
    workloads::BikeSharingConfig config;
    config.stations = 1;
    config.days = 30;
    config.sample_interval = 5 * kMinute;
    auto dataset = workloads::GenerateBikeSharing(config);
    const ts::Series& series = dataset->stations[0].bikes;
    ts::SaxOptions options;
    options.segments = 8;
    options.alphabet = 4;
    Result<std::vector<ts::SaxPattern>> bag =
        Status::Internal("unset");
    const double ms = bench::TimeMs([&] {
      bag = ts::SaxBagOfPatterns(series, 288, 72, options);
    });
    if (!bag.ok()) return 1;
    std::printf("  %zu samples -> %zu distinct words (%.1f ms); top:",
                series.size(), bag->size(), ms);
    for (size_t i = 0; i < std::min<size_t>(3, bag->size()); ++i) {
      std::printf(" %s x%zu", (*bag)[i].word.c_str(), (*bag)[i].count);
    }
    std::printf("\n");
  }

  bench::PrintHeader("Roadmap/R3: streaming ingestion with eviction");
  {
    core::HyGraph hg;
    core::StreamOptions options;
    options.retention = 6 * kHour;
    options.eviction_period = kHour;
    core::StreamProcessor stream(&hg, options);
    constexpr size_t kSensors = 50;
    for (size_t s = 0; s < kSensors; ++s) {
      (void)stream.Apply(core::UpdateEvent::AddTsVertex(
          0, "s" + std::to_string(s), {"Sensor"}, {"v"}));
    }
    constexpr size_t kTicks = 2000;
    const double ms = bench::TimeMs([&] {
      for (size_t t = 1; t <= kTicks; ++t) {
        for (size_t s = 0; s < kSensors; ++s) {
          (void)stream.Apply(core::UpdateEvent::Sample(
              static_cast<Timestamp>(t) * kMinute, "s" + std::to_string(s),
              {static_cast<double>(t)}));
        }
      }
    });
    const auto& stats = stream.stats();
    std::printf("  %zu samples ingested in %.0f ms (%.0f samples/s), "
                "%zu evicted, instance %s\n",
                stats.samples_appended, ms,
                stats.samples_appended / (ms / 1000.0),
                stats.samples_evicted,
                hg.Validate().ok() ? "consistent" : "CORRUPT");
  }
  return 0;
}
