// Robustness-layer benchmarks (ISSUE 6 acceptance numbers):
//   * cancellation-checkpoint overhead: an uncancelled sealed-chunk scan
//     with a governed QueryContext installed vs the ungoverned baseline —
//     the Charge() fast path must stay within ~2% (two counter bumps and
//     a relaxed atomic load per batch)
//   * deadline-abort latency: how long past its deadline a cut query
//     actually runs (p99 over many aborts; the contract is < 2x deadline,
//     granularity one checkpoint interval)
//   * degraded-mode read throughput: reads served while the durable store
//     is poisoned read-only vs the same store healthy
//
// Results go to stdout and to BENCH_robustness.json in the working
// directory. `--smoke` shrinks workloads for CI.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/context.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/planner.h"
#include "storage/all_in_graph.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/fault_injection_env.h"
#include "storage/polyglot.h"
#include "ts/hypertable.h"

namespace hygraph::bench {
namespace {

struct JsonResult {
  std::string name;
  double value = 0.0;
  std::string unit;
};

std::vector<JsonResult>& Results() {
  static std::vector<JsonResult> results;
  return results;
}

void Record(const std::string& name, double value, const std::string& unit) {
  std::printf("  %-48s %12.3f %s\n", name.c_str(), value, unit.c_str());
  Results().push_back({name, value, unit});
}

std::string FreshDir() {
  char tmpl[] = "/tmp/hygraph_bench_robustness_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return tmpl;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(xs.size()));
  return xs[std::min(idx, xs.size() - 1)];
}

// -- cancellation-checkpoint overhead ----------------------------------------

void BenchCheckpointOverhead(bool smoke) {
  PrintHeader("Cancellation-checkpoint overhead (sealed-chunk scan)");
  const int samples = smoke ? 200'000 : 2'000'000;
  const size_t repetitions = smoke ? 5 : 11;

  ts::HypertableStore table;
  const SeriesId id = table.Create("load");
  for (int i = 0; i < samples; ++i) {
    (void)table.Insert(id, i * kMinute, 0.5 * i);
  }

  double checksum = 0.0;
  auto scan_all = [&] {
    auto scanned = table.Scan(id, Interval::All());
    if (!scanned.ok()) std::exit(1);
    checksum += static_cast<double>(scanned->size());
  };

  const RunningStats baseline = Repeat(repetitions, scan_all);
  const RunningStats governed = Repeat(repetitions, [&] {
    // A live context with no deadline or budget: every sample still passes
    // through Charge()'s fast path — this is the pure checkpoint cost.
    QueryContext ctx;
    QueryContext::Scope scope(&ctx);
    scan_all();
  });

  const double base_ms = baseline.mean();
  const double gov_ms = governed.mean();
  const double overhead_pct =
      base_ms > 0.0 ? (gov_ms - base_ms) / base_ms * 100.0 : 0.0;
  Record("scan_ungoverned", base_ms, "ms");
  Record("scan_governed", gov_ms, "ms");
  Record("checkpoint_overhead", overhead_pct, "%");
  if (checksum < 0.0) std::printf("%f", checksum);  // keep the scans live
}

// -- deadline-abort latency --------------------------------------------------

void BenchDeadlineAbort(bool smoke) {
  PrintHeader("Deadline-abort latency (combinatorial match, 25ms deadline)");
  const int vertices = smoke ? 120 : 300;
  const int aborts = smoke ? 10 : 40;
  const double deadline_ms = 25.0;

  storage::AllInGraphStore store;
  graph::PropertyGraph* g = store.mutable_topology();
  for (int i = 0; i < vertices; ++i) {
    g->AddVertex({"V"}, {{"id", Value(int64_t{i})}});
  }
  auto ast = query::Parse("MATCH (a), (b), (c) RETURN a.id TIMEOUT 25");
  if (!ast.ok()) std::exit(1);
  auto plan = query::CompileQuery(*ast);
  if (!plan.ok()) std::exit(1);

  std::vector<double> latencies;
  for (int i = 0; i < aborts; ++i) {
    const double ms = TimeMs([&] {
      auto result = query::ExecutePlan(store, *plan);
      if (result.ok() || !result.status().IsDeadlineExceeded()) {
        std::fprintf(stderr, "expected a deadline abort\n");
        std::exit(1);
      }
    });
    latencies.push_back(ms);
  }
  Record("deadline_ms", deadline_ms, "ms");
  Record("abort_latency_p50", Percentile(latencies, 0.50), "ms");
  Record("abort_latency_p99", Percentile(latencies, 0.99), "ms");
  Record("abort_overrun_p99",
         Percentile(latencies, 0.99) / deadline_ms, "x deadline");
}

// -- degraded-mode read throughput -------------------------------------------

void BenchDegradedReads(bool smoke) {
  PrintHeader("Degraded read-only mode: read throughput");
  const int samples = smoke ? 5'000 : 50'000;
  const int reads = smoke ? 200 : 2'000;

  storage::FaultInjectionEnv fenv(storage::Env::Default());
  const std::string dir = FreshDir();
  storage::DurableOptions options;
  options.retry_sleep = [](uint64_t) {};  // exhaust retries instantly
  storage::DurableStore store(&fenv, dir + "/store",
                              std::make_unique<storage::PolyglotStore>(),
                              options);
  if (!store.Open().ok()) std::exit(1);
  auto v = store.AddVertex({"Sensor"}, {});
  if (!v.ok()) std::exit(1);
  for (int i = 0; i < samples; ++i) {
    (void)store.AppendVertexSample(*v, "temp", 1000 + i * kMinute, 0.25 * i);
  }

  double checksum = 0.0;
  auto read_pass = [&] {
    for (int i = 0; i < reads; ++i) {
      auto agg = store.VertexSeriesAggregate(*v, "temp", Interval::All(),
                                             ts::AggKind::kSum);
      if (!agg.ok()) std::exit(1);
      checksum += *agg;
    }
  };

  const double healthy_ms = TimeMs(read_pass);
  Record("healthy_reads", reads / (healthy_ms / 1000.0), "aggregates/s");

  // Poison the store: unbounded transient faults exhaust the retry budget
  // on the next mutation and flip it to degraded read-only.
  fenv.SetTransientFailNext(~uint64_t{0} / 2);
  (void)store.AppendVertexSample(*v, "temp", 0, 0.0);
  if (!store.degraded()) {
    std::fprintf(stderr, "store did not enter degraded mode\n");
    std::exit(1);
  }
  const double degraded_ms = TimeMs(read_pass);
  Record("degraded_reads", reads / (degraded_ms / 1000.0), "aggregates/s");
  Record("degraded_read_retention",
         healthy_ms > 0.0 ? healthy_ms / degraded_ms * 100.0 : 0.0, "%");

  std::system(("rm -rf " + dir).c_str());
  if (checksum < 0.0) std::printf("%f", checksum);
}

void WriteJson() {
  FILE* f = std::fopen("BENCH_robustness.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_robustness.json\n");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"robustness\",\n  \"results\": [\n");
  const auto& results = Results();
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_robustness.json (%zu results)\n", results.size());
}

}  // namespace
}  // namespace hygraph::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  hygraph::bench::BenchCheckpointOverhead(smoke);
  hygraph::bench::BenchDeadlineAbort(smoke);
  hygraph::bench::BenchDegradedReads(smoke);
  hygraph::bench::WriteJson();
  return 0;
}
