#ifndef HYGRAPH_BENCH_BENCH_UTIL_H_
#define HYGRAPH_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "common/stats.h"

namespace hygraph::bench {

/// Wall-clock time of one invocation, in milliseconds.
template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Runs `fn` once as warmup and then `repetitions` timed times; returns the
/// per-run statistics (mean response time, CV, ...).
template <typename Fn>
RunningStats Repeat(size_t repetitions, Fn&& fn) {
  fn();  // warmup
  RunningStats stats;
  for (size_t i = 0; i < repetitions; ++i) {
    stats.Add(TimeMs(fn));
  }
  return stats;
}

/// Prints a section header mirroring the paper's table/figure captions.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace hygraph::bench

#endif  // HYGRAPH_BENCH_BENCH_UTIL_H_
