#ifndef HYGRAPH_BENCH_BENCH_UTIL_H_
#define HYGRAPH_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common/stats.h"
#include "obs/clock.h"

namespace hygraph::bench {

/// Wall-clock time of one invocation, in milliseconds. Reads the shared
/// monotonic clock through obs::SystemClock so every timing in the repo
/// goes through one source (enforced by the raw-clock lint rule).
template <typename Fn>
double TimeMs(Fn&& fn) {
  const obs::Clock* clock = obs::SystemClock::Instance();
  const uint64_t start = clock->NowNanos();
  fn();
  return static_cast<double>(clock->NowNanos() - start) / 1e6;
}

/// Runs `fn` once as warmup and then `repetitions` timed times; returns the
/// per-run statistics (mean response time, CV, ...).
template <typename Fn>
RunningStats Repeat(size_t repetitions, Fn&& fn) {
  fn();  // warmup
  RunningStats stats;
  for (size_t i = 0; i < repetitions; ++i) {
    stats.Add(TimeMs(fn));
  }
  return stats;
}

/// Prints a section header mirroring the paper's table/figure captions.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace hygraph::bench

#endif  // HYGRAPH_BENCH_BENCH_UTIL_H_
