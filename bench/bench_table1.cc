// Reproduces Table 1 of the paper: "Performance benchmarking of Neo4j and
// TimeTravelDB (TTDB): Mean Response Time (MRS) and Coefficient of
// Variation (CV)" — here as the all-in-graph architecture (Neo4j with
// time-series samples stored as individual node/edge properties) versus the
// polyglot architecture (graph store + hypertable), both queried through
// the same HGQL text.
//
// Eight queries modelled on the paper's description ("ranging from
// straightforward time-range queries to more complex queries involving
// aggregations of time series values") over the bike-sharing workload:
//   Q1  time-range read on one station (simple range scan)
//   Q2  one-station range aggregate
//   Q3  per-district range aggregates
//   Q4  full-graph per-station aggregate + top-k   (paper: 31109 ms vs 72 ms)
//   Q5  windowed aggregate (daily-average peak) over all stations
//   Q6  correlation of one station against all others
//   Q7  traversal + neighbor aggregates
//   Q8  graph pattern with series predicates on both endpoints
//
// Expected shape: the polyglot engine wins Q2-Q8 by 1-3 orders of
// magnitude; the all-in-graph engine collapses on aggregate-heavy Q4-Q8.
// Known deviation: the paper's TTDB loses Q1 narrowly because its polyglot
// glue crosses two client/server systems; our in-process glue has no such
// round-trip, so the polyglot engine also wins Q1 (see EXPERIMENTS.md).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "query/profile.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"
#include "workloads/bike_sharing.h"

namespace hygraph {
namespace {

struct QuerySpec {
  std::string id;
  std::string description;
  std::string text;
};

std::vector<QuerySpec> BuildQueries(const workloads::BikeSharingDataset& d) {
  const std::string t0 = std::to_string(d.start());
  const std::string t_day = std::to_string(d.start() + kDay);
  const std::string t3d = std::to_string(d.start() + 3 * kDay);
  const std::string t_end = std::to_string(d.end());
  const std::string day_ms = std::to_string(kDay);
  return {
      {"Q1", "time-range read, one station",
       "MATCH (s:Station {name: 'S1'}) RETURN ts_count(s.bikes, " + t0 +
           ", " + t_day + ")"},
      {"Q2", "range aggregate, one station",
       "MATCH (s:Station {name: 'S1'}) RETURN ts_avg(s.bikes, " + t0 + ", " +
           t3d + ")"},
      {"Q3", "range aggregate, one district",
       "MATCH (s:Station) WHERE s.district = 2 RETURN s.name, "
       "ts_avg(s.bikes, " +
           t0 + ", " + t3d + ")"},
      {"Q4", "per-station aggregate + top-10",
       "MATCH (s:Station) RETURN s.name AS n, ts_avg(s.bikes, " + t0 + ", " +
           t_end + ") AS a ORDER BY a DESC, n LIMIT 10"},
      {"Q5", "daily-average peak, all stations",
       "MATCH (s:Station) RETURN s.name, ts_window_agg(s.bikes, " + t0 +
           ", " + t_end + ", " + day_ms + ", 'avg', 'max')"},
      {"Q6", "correlation, one vs all",
       "MATCH (a:Station {name: 'S1'}), (b:Station) WHERE b.name <> 'S1' "
       "RETURN b.name AS n, ts_corr(a.bikes, b.bikes, " +
           t0 + ", " + t_end + ") AS c ORDER BY c DESC, n LIMIT 5"},
      {"Q7", "traversal + neighbor aggregates",
       "MATCH (a:Station {name: 'S1'})-[:TRIP]->(b:Station) "
       "RETURN b.name, ts_avg(b.bikes, " +
           t0 + ", " + t_end + ")"},
      {"Q8", "pattern + series predicates",
       "MATCH (a:Station)-[:TRIP]->(b:Station) WHERE a.district = 1 AND "
       "ts_avg(a.bikes, " +
           t0 + ", " + t_end + ") > ts_avg(b.bikes, " + t0 + ", " + t_end +
           ") RETURN a.name AS x, b.name AS y ORDER BY x, y LIMIT 25"},
  };
}

}  // namespace
}  // namespace hygraph

int main() {
  using namespace hygraph;

  workloads::BikeSharingConfig config;
  config.stations = 150;
  config.districts = 8;
  config.days = 14;
  config.sample_interval = 5 * kMinute;
  config.seed = 1234;

  bench::PrintHeader("Table 1: all-in-graph (Neo4j-style) vs polyglot (TTDB-style)");
  std::printf("workload: %zu stations, %zu days @ %lld min sampling "
              "(%zu samples/station)\n",
              config.stations, config.days,
              static_cast<long long>(config.sample_interval / kMinute),
              static_cast<size_t>(static_cast<Duration>(config.days) * kDay /
                                  config.sample_interval));

  auto dataset = workloads::GenerateBikeSharing(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  storage::AllInGraphStore all_in_graph;
  storage::PolyglotStore polyglot;
  const double load_red = bench::TimeMs([&] {
    (void)workloads::LoadIntoBackend(*dataset, &all_in_graph);
  });
  const double load_green = bench::TimeMs([&] {
    (void)workloads::LoadIntoBackend(*dataset, &polyglot);
  });
  std::printf("load time: all-in-graph %.0f ms, polyglot %.0f ms\n\n",
              load_red, load_green);

  const auto queries = BuildQueries(*dataset);
  constexpr size_t kRepetitions = 7;

  std::printf("%-4s | %-34s | %12s %8s | %12s %8s | %9s\n", "", "query",
              "graph MRS", "CV%", "polyglot MRS", "CV%", "speedup");
  std::printf("%s\n", std::string(104, '-').c_str());

  for (const auto& spec : queries) {
    // Compile once per engine; execution is what Table 1 times.
    auto check_red = query::Execute(all_in_graph, spec.text);
    auto check_green = query::Execute(polyglot, spec.text);
    if (!check_red.ok() || !check_green.ok()) {
      std::fprintf(stderr, "%s failed: %s / %s\n", spec.id.c_str(),
                   check_red.status().ToString().c_str(),
                   check_green.status().ToString().c_str());
      return 1;
    }
    // Consistency: identical answers up to floating-point association.
    bool consistent = check_red->row_count() == check_green->row_count();
    for (size_t r = 0; consistent && r < check_red->row_count(); ++r) {
      for (size_t c = 0; consistent && c < check_red->columns.size(); ++c) {
        const Value& x = check_red->rows[r][c];
        const Value& y = check_green->rows[r][c];
        if (x.is_numeric() && y.is_numeric()) {
          const double dx = x.ToDouble().value();
          const double dy = y.ToDouble().value();
          consistent = std::abs(dx - dy) <= 1e-9 * (1.0 + std::abs(dx));
        } else {
          consistent = x == y;
        }
      }
    }
    if (!consistent) {
      std::fprintf(stderr, "%s: engines disagree on the answer!\n",
                   spec.id.c_str());
      return 1;
    }
    const RunningStats red = bench::Repeat(kRepetitions, [&] {
      (void)query::Execute(all_in_graph, spec.text);
    });
    const RunningStats green = bench::Repeat(kRepetitions, [&] {
      (void)query::Execute(polyglot, spec.text);
    });
    std::printf("%-4s | %-34s | %9.2f ms %7.1f%% | %9.2f ms %7.1f%% | %8.1fx\n",
                spec.id.c_str(), spec.description.c_str(), red.mean(),
                red.cv_percent(), green.mean(), green.cv_percent(),
                green.mean() > 0 ? red.mean() / green.mean() : 0.0);
  }
  std::printf(
      "\npaper (Table 1): Q1 3.4/4.3 ms; Q2 41/7 ms; Q3 56/20 ms; "
      "Q4 31109/72 ms;\n  Q5 73815/63 ms; Q6 73447/65 ms; Q7 48299/48 ms; "
      "Q8 54494/49 ms (Neo4j/TTDB)\n");

  // PROFILE every Table 1 query on both engines. Acceptance: the operator
  // tree's summed self-times account for the query's wall time within 10%.
  // Q4 and Q6 additionally print their full per-operator breakdown (the
  // trees quoted in EXPERIMENTS.md).
  bench::PrintHeader("PROFILE: operator trees reconcile with wall time");
  struct EngineRef {
    const char* label;
    const query::QueryBackend* backend;
  };
  const EngineRef engines[] = {{"all-in-graph", &all_in_graph},
                               {"polyglot", &polyglot}};
  for (const auto& spec : queries) {
    for (const EngineRef& engine : engines) {
      auto profiled = query::Profile(*engine.backend, spec.text);
      if (!profiled.ok()) {
        std::fprintf(stderr, "PROFILE %s on %s failed: %s\n", spec.id.c_str(),
                     engine.label,
                     profiled.status().ToString().c_str());
        return 1;
      }
      const double coverage =
          100.0 * static_cast<double>(profiled->trace.SumSelfNanos()) /
          static_cast<double>(profiled->wall_nanos);
      std::printf("%-4s %-13s wall %10.3f ms | tree covers %5.1f%%\n",
                  spec.id.c_str(), engine.label,
                  static_cast<double>(profiled->wall_nanos) / 1e6, coverage);
      if (coverage < 90.0) {
        std::fprintf(stderr,
                     "%s on %s: tree accounts for only %.1f%% of wall time\n",
                     spec.id.c_str(), engine.label, coverage);
        return 1;
      }
      if (spec.id == "Q4" || spec.id == "Q6") {
        std::printf("%s\n", profiled->trace.ToString().c_str());
      }
    }
  }

  // Metrics snapshot alongside the table: each engine's registry after the
  // full run, in the registry's own JSON export format.
  FILE* f = std::fopen("BENCH_table1_metrics.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_table1_metrics.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"table1_metrics\",\n"
               "  \"all_in_graph\": %s,\n  \"polyglot\": %s\n}\n",
               all_in_graph.metrics()->Snapshot().ToJson().c_str(),
               polyglot.metrics()->Snapshot().ToJson().c_str());
  std::fclose(f);
  std::printf("\nwrote BENCH_table1_metrics.json\n");
  return 0;
}
