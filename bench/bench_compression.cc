// Compression ablation: the cost and payoff of Gorilla-sealing cold chunks
// (ISSUE 3). Five sections, all emitted to BENCH_compression.json:
//
//   1. Codec microbench — encode/decode throughput and bytes/sample on
//      integral random-walk chunks (the bike-sharing value shape).
//   2. Decode path — the streaming scalar decoder vs the wide columnar
//      decoder (DecodeChunkWide) on identical sealed payloads, reported
//      as GB/s of decoded sample data. Outputs are cross-checked
//      bit-for-bit, and the full (non-smoke) run exits non-zero if the
//      wide path loses its >=1.5x single-thread advantage.
//   3. Storage footprint — the bike-sharing workload (150 stations x 14
//      days @ 5 min) loaded into a PolyglotStore with sealing on vs off:
//      sealed bytes/sample, compression ratio vs the raw 16 B/sample
//      layout, and load time.
//   4. Table 1 query family — the eight polyglot timings with compression
//      on vs off, answers cross-checked. The acceptance bar is "within
//      noise": aggregates answer from per-chunk caches either way, and
//      scans decode at memory speed.
//   5. Zone-map pruning — a value-predicated count (the Q8 shape) showing
//      sealed chunks skipped without decoding.
//
// `--smoke` shrinks the workload and repetition count for CI.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "query/executor.h"
#include "storage/polyglot.h"
#include "ts/chunk_codec.h"
#include "ts/hypertable.h"
#include "workloads/bike_sharing.h"

namespace hygraph::bench {
namespace {

struct JsonResult {
  std::string name;
  double value;
  std::string unit;
};

std::vector<JsonResult>& Results() {
  static std::vector<JsonResult> results;
  return results;
}

void Record(const std::string& name, double value, const std::string& unit) {
  Results().push_back({name, value, unit});
}

// ---------------------------------------------------------------------------
// 1. Codec throughput on integral random walks (the post-quantization
//    bike-count shape: small integer steps on a regular 5-minute grid).

void BenchCodec(size_t chunks) {
  PrintHeader("Chunk codec: encode/decode throughput (integral random walk)");
  constexpr size_t kSamplesPerChunk = 288;  // one day @ 5 min
  Rng rng(7);
  std::vector<std::vector<ts::Sample>> raw(chunks);
  double level = 20.0;
  for (size_t c = 0; c < chunks; ++c) {
    raw[c].reserve(kSamplesPerChunk);
    for (size_t i = 0; i < kSamplesPerChunk; ++i) {
      level = std::clamp(level + static_cast<double>(rng.NextInRange(-2, 2)),
                         0.0, 60.0);
      raw[c].push_back({static_cast<Timestamp>(
                            (c * kSamplesPerChunk + i) * 5 * kMinute),
                        level});
    }
  }
  const double raw_mb = static_cast<double>(chunks * kSamplesPerChunk *
                                            sizeof(ts::Sample)) /
                        (1024.0 * 1024.0);

  std::vector<std::string> encoded(chunks);
  const RunningStats enc = Repeat(5, [&] {
    for (size_t c = 0; c < chunks; ++c) encoded[c] = ts::EncodeChunk(raw[c]);
  });
  size_t encoded_bytes = 0;
  for (const std::string& e : encoded) encoded_bytes += e.size();
  const double bytes_per_sample =
      static_cast<double>(encoded_bytes) /
      static_cast<double>(chunks * kSamplesPerChunk);

  const RunningStats dec = Repeat(5, [&] {
    for (size_t c = 0; c < chunks; ++c) {
      auto decoded = ts::DecodeChunk(encoded[c]);
      if (!decoded.ok() || decoded->size() != kSamplesPerChunk) std::exit(1);
    }
  });

  const double enc_mbps = raw_mb / (enc.mean() / 1000.0);
  const double dec_mbps = raw_mb / (dec.mean() / 1000.0);
  std::printf("%zu chunks x %zu samples (%.1f MB raw)\n", chunks,
              kSamplesPerChunk, raw_mb);
  std::printf("encode: %8.1f MB/s   decode: %8.1f MB/s\n", enc_mbps, dec_mbps);
  std::printf("size:   %.2f bytes/sample (%.1fx vs raw %zu B)\n",
              bytes_per_sample, 16.0 / bytes_per_sample, sizeof(ts::Sample));
  Record("codec_encode_throughput", enc_mbps, "MB/s");
  Record("codec_decode_throughput", dec_mbps, "MB/s");
  Record("codec_bytes_per_sample", bytes_per_sample, "bytes");
  Record("codec_compression_ratio", 16.0 / bytes_per_sample, "x");
}

// ---------------------------------------------------------------------------
// 2. Decode path: the streaming scalar decoder vs the wide columnar decoder
//    on identical sealed payloads. The scalar path is the fuzz-hardened
//    reference; the wide path is what the morsel-driven parallel scan runs
//    per chunk, so its single-thread advantage is the floor every parallel
//    speedup multiplies.

int BenchDecodePath(size_t chunks, bool smoke) {
  PrintHeader("Decode path: scalar streaming vs wide columnar");
  constexpr size_t kSamplesPerChunk = 3600;  // one sealed hour @ 1s cadence
  Rng rng(11);
  std::vector<std::string> encoded(chunks);
  double level = 20.0;
  {
    std::vector<ts::Sample> raw;
    raw.reserve(kSamplesPerChunk);
    for (size_t c = 0; c < chunks; ++c) {
      raw.clear();
      for (size_t i = 0; i < kSamplesPerChunk; ++i) {
        level = std::clamp(level + static_cast<double>(rng.NextInRange(-2, 2)),
                           0.0, 60.0);
        raw.push_back({static_cast<Timestamp>(
                           (c * kSamplesPerChunk + i) * 1000),
                       level});
      }
      encoded[c] = ts::EncodeChunk(raw);
    }
  }

  // Bit-identity cross-check: both decoders must produce the exact same
  // samples (timestamps and value bit patterns) from every payload.
  std::vector<ts::Sample> wide_out;
  for (size_t c = 0; c < chunks; ++c) {
    auto scalar = ts::DecodeChunk(encoded[c]);
    auto wide = ts::DecodeChunkWide(encoded[c], &wide_out);
    if (!scalar.ok() || !wide.ok() || scalar->size() != wide_out.size()) {
      std::fprintf(stderr, "FAIL: decoder disagreement on chunk %zu\n", c);
      return 1;
    }
    for (size_t i = 0; i < wide_out.size(); ++i) {
      if ((*scalar)[i].t != wide_out[i].t ||
          std::bit_cast<uint64_t>((*scalar)[i].value) !=
              std::bit_cast<uint64_t>(wide_out[i].value)) {
        std::fprintf(stderr, "FAIL: decoders differ at chunk %zu sample %zu\n",
                     c, i);
        return 1;
      }
    }
  }

  const double raw_gb =
      static_cast<double>(chunks * kSamplesPerChunk * sizeof(ts::Sample)) /
      1e9;
  const size_t repetitions = smoke ? 3 : 7;
  double sink = 0.0;  // consumed below so the decode loops cannot fold away

  const RunningStats scalar = Repeat(repetitions, [&] {
    for (size_t c = 0; c < chunks; ++c) {
      ts::ChunkDecoder decoder(encoded[c]);
      ts::Sample s;
      while (decoder.Next(&s)) sink += s.value;
      if (!decoder.done()) std::exit(1);
    }
  });
  const RunningStats wide = Repeat(repetitions, [&] {
    for (size_t c = 0; c < chunks; ++c) {
      if (!ts::DecodeChunkWide(encoded[c], &wide_out).ok()) std::exit(1);
      sink += wide_out.back().value;
    }
  });

  const double scalar_gbps = raw_gb / (scalar.mean() / 1e3);
  const double wide_gbps = raw_gb / (wide.mean() / 1e3);
  const double speedup = scalar.mean() / wide.mean();
  std::printf("%zu chunks x %zu samples (%.2f GB decoded/pass, sink %.1f)\n",
              chunks, kSamplesPerChunk, raw_gb, sink);
  std::printf("scalar: %6.2f GB/s   wide: %6.2f GB/s   speedup: %.2fx\n",
              scalar_gbps, wide_gbps, speedup);
  Record("decode_scalar_gbps", scalar_gbps, "GB/s");
  Record("decode_wide_gbps", wide_gbps, "GB/s");
  Record("decode_wide_speedup", speedup, "x");

  // Regression guard (full runs only; smoke timings are too short to be
  // stable, and sanitizer builds distort the ratio): the wide decoder must
  // keep its 1.5x single-thread advantage over the streaming decoder.
  if (!smoke && speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: wide decode speedup %.2fx below the 1.5x floor\n",
                 speedup);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// 3-5. Workload footprint + Table 1 on/off + zone-map pruning.

std::vector<std::string> BuildQueries(
    const workloads::BikeSharingDataset& d) {
  const std::string t0 = std::to_string(d.start());
  const std::string t_day = std::to_string(d.start() + kDay);
  const std::string t3d = std::to_string(d.start() + 3 * kDay);
  const std::string t_end = std::to_string(d.end());
  const std::string day_ms = std::to_string(kDay);
  // The Table 1 family from bench_table1.cc, polyglot engine only.
  return {
      "MATCH (s:Station {name: 'S1'}) RETURN ts_count(s.bikes, " + t0 + ", " +
          t_day + ")",
      "MATCH (s:Station {name: 'S1'}) RETURN ts_avg(s.bikes, " + t0 + ", " +
          t3d + ")",
      "MATCH (s:Station) WHERE s.district = 2 RETURN s.name, ts_avg(s.bikes, " +
          t0 + ", " + t3d + ")",
      "MATCH (s:Station) RETURN s.name AS n, ts_avg(s.bikes, " + t0 + ", " +
          t_end + ") AS a ORDER BY a DESC, n LIMIT 10",
      "MATCH (s:Station) RETURN s.name, ts_window_agg(s.bikes, " + t0 + ", " +
          t_end + ", " + day_ms + ", 'avg', 'max')",
      "MATCH (a:Station {name: 'S1'}), (b:Station) WHERE b.name <> 'S1' "
      "RETURN b.name AS n, ts_corr(a.bikes, b.bikes, " +
          t0 + ", " + t_end + ") AS c ORDER BY c DESC, n LIMIT 5",
      "MATCH (a:Station {name: 'S1'})-[:TRIP]->(b:Station) "
      "RETURN b.name, ts_avg(b.bikes, " +
          t0 + ", " + t_end + ")",
      "MATCH (a:Station)-[:TRIP]->(b:Station) WHERE a.district = 1 AND "
      "ts_avg(a.bikes, " +
          t0 + ", " + t_end + ") > ts_avg(b.bikes, " + t0 + ", " + t_end +
          ") RETURN a.name AS x, b.name AS y ORDER BY x, y LIMIT 25",
  };
}

bool SameAnswer(const query::QueryResult& x, const query::QueryResult& y) {
  if (x.row_count() != y.row_count() || x.columns.size() != y.columns.size())
    return false;
  for (size_t r = 0; r < x.row_count(); ++r) {
    for (size_t c = 0; c < x.columns.size(); ++c) {
      const Value& a = x.rows[r][c];
      const Value& b = y.rows[r][c];
      if (a.is_numeric() && b.is_numeric()) {
        const double da = a.ToDouble().value();
        const double db = b.ToDouble().value();
        if (std::abs(da - db) > 1e-9 * (1.0 + std::abs(da))) return false;
      } else if (!(a == b)) {
        return false;
      }
    }
  }
  return true;
}

int BenchWorkload(bool smoke) {
  workloads::BikeSharingConfig config;
  config.stations = smoke ? 20 : 150;
  config.districts = smoke ? 4 : 8;
  config.days = smoke ? 3 : 14;
  config.sample_interval = 5 * kMinute;
  config.seed = 1234;
  const size_t repetitions = smoke ? 3 : 7;

  auto dataset = workloads::GenerateBikeSharing(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  PrintHeader("Bike-sharing footprint: sealed vs all-hot hypertable");
  std::printf("workload: %zu stations, %zu days @ 5 min sampling\n",
              config.stations, config.days);

  ts::HypertableOptions on_opts;   // compress_sealed_chunks defaults to true
  ts::HypertableOptions off_opts;
  off_opts.compress_sealed_chunks = false;
  storage::PolyglotStore on(on_opts);
  storage::PolyglotStore off(off_opts);
  const double load_on = TimeMs([&] {
    if (!workloads::LoadIntoBackend(*dataset, &on).ok()) std::exit(1);
  });
  const double load_off = TimeMs([&] {
    if (!workloads::LoadIntoBackend(*dataset, &off).ok()) std::exit(1);
  });

  const ts::HypertableMemory mem_on = on.SeriesMemoryUsage();
  const ts::HypertableMemory mem_off = off.SeriesMemoryUsage();
  const double bps = mem_on.sealed_bytes_per_sample();
  std::printf("compression on:  %8.2f KB total (%zu sealed + %zu hot "
              "samples), %.2f bytes/sealed-sample, load %.0f ms\n",
              static_cast<double>(mem_on.total_bytes()) / 1024.0,
              mem_on.sealed_samples, mem_on.hot_samples, bps, load_on);
  std::printf("compression off: %8.2f KB total (all %zu samples hot), "
              "load %.0f ms\n",
              static_cast<double>(mem_off.total_bytes()) / 1024.0,
              mem_off.hot_samples, load_off);
  std::printf("ratio vs raw 16 B/sample: %.1fx\n", 16.0 / bps);
  Record("store_sealed_bytes_per_sample", bps, "bytes");
  Record("store_compression_ratio", 16.0 / bps, "x");
  Record("store_total_bytes_on",
         static_cast<double>(mem_on.total_bytes()), "bytes");
  Record("store_total_bytes_off",
         static_cast<double>(mem_off.total_bytes()), "bytes");
  Record("load_ms_on", load_on, "ms");
  Record("load_ms_off", load_off, "ms");

  PrintHeader("Table 1 queries: polyglot with compression on vs off");
  std::printf("%-4s | %12s | %12s | %7s\n", "", "on MRS", "off MRS", "delta");
  const auto queries = BuildQueries(*dataset);
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::string id = "Q" + std::to_string(q + 1);
    auto check_on = query::Execute(on, queries[q]);
    auto check_off = query::Execute(off, queries[q]);
    if (!check_on.ok() || !check_off.ok() ||
        !SameAnswer(*check_on, *check_off)) {
      std::fprintf(stderr, "%s: compression on/off disagree!\n", id.c_str());
      return 1;
    }
    const RunningStats rs_on = Repeat(repetitions, [&] {
      (void)query::Execute(on, queries[q]);
    });
    const RunningStats rs_off = Repeat(repetitions, [&] {
      (void)query::Execute(off, queries[q]);
    });
    std::printf("%-4s | %9.2f ms | %9.2f ms | %+6.1f%%\n", id.c_str(),
                rs_on.mean(), rs_off.mean(),
                rs_off.mean() > 0
                    ? 100.0 * (rs_on.mean() - rs_off.mean()) / rs_off.mean()
                    : 0.0);
    Record("table1_" + id + "_compression_on", rs_on.mean(), "ms");
    Record("table1_" + id + "_compression_off", rs_off.mean(), "ms");
  }

  PrintHeader("Zone-map pruning: value-predicated count (Q8 shape)");
  // Bike counts never go negative, so a count of samples in [-100, -1]
  // must prune every sealed chunk from the zone map alone.
  const std::string prune_query =
      "MATCH (s:Station) RETURN s.name, ts_count_between(s.bikes, " +
      std::to_string(dataset->start()) + ", " +
      std::to_string(dataset->end()) + ", -100, -1)";
  on.mutable_series_store()->ResetStats();
  auto pruned = query::Execute(on, prune_query);
  if (!pruned.ok()) {
    std::fprintf(stderr, "prune query failed: %s\n",
                 pruned.status().ToString().c_str());
    return 1;
  }
  const ts::HypertableStats& st = on.series_store().stats();
  std::printf("chunks: %zu total, %zu zone-map skipped, %zu samples "
              "decoded\n",
              st.chunks_total, st.chunks_zonemap_skipped, st.samples_scanned);
  Record("zonemap_chunks_total", static_cast<double>(st.chunks_total),
         "chunks");
  Record("zonemap_chunks_skipped",
         static_cast<double>(st.chunks_zonemap_skipped), "chunks");
  return 0;
}

void WriteJson() {
  FILE* f = std::fopen("BENCH_compression.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_compression.json\n");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"compression\",\n  \"results\": [\n");
  const auto& results = Results();
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_compression.json (%zu results)\n",
              results.size());
}

}  // namespace
}  // namespace hygraph::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  hygraph::bench::BenchCodec(smoke ? 50 : 500);
  if (const int rc = hygraph::bench::BenchDecodePath(smoke ? 40 : 400, smoke);
      rc != 0) {
    return rc;
  }
  if (const int rc = hygraph::bench::BenchWorkload(smoke); rc != 0) return rc;
  hygraph::bench::WriteJson();
  return 0;
}
