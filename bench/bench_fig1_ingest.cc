// Figure 1's architectural contrast, measured from the write path: the
// paper notes that storing each timestamp/value pair as a separate Neo4j
// property "significantly increases the number of properties, resulting in
// high write overhead". This bench ingests the same samples into both
// architectures and reports per-sample ingestion cost as the series grow —
// the all-in-graph cost climbs with property-map size while the hypertable
// stays flat — and then proves both engines answer the same HGQL query
// identically (the unified-model contract).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "query/executor.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"

int main() {
  using namespace hygraph;

  constexpr size_t kStations = 20;
  constexpr Duration kStep = kMinute;
  const std::vector<size_t> batches = {1000, 1000, 2000, 4000, 8000};

  bench::PrintHeader(
      "Figure 1: ingestion cost, all-in-graph (red) vs polyglot (green)");

  storage::AllInGraphStore red;
  storage::PolyglotStore green;
  std::vector<graph::VertexId> red_ids;
  std::vector<graph::VertexId> green_ids;
  for (size_t i = 0; i < kStations; ++i) {
    graph::PropertyMap props;
    props["name"] = Value("S" + std::to_string(i));
    red_ids.push_back(red.mutable_topology()->AddVertex({"Station"}, props));
    green_ids.push_back(
        green.mutable_topology()->AddVertex({"Station"}, props));
  }

  std::printf("%18s | %22s | %22s\n", "series length", "all-in-graph ns/sample",
              "polyglot ns/sample");
  std::printf("%s\n", std::string(68, '-').c_str());

  size_t written = 0;
  for (size_t batch : batches) {
    const size_t begin = written;
    const double red_ms = bench::TimeMs([&] {
      for (size_t s = 0; s < kStations; ++s) {
        for (size_t i = 0; i < batch; ++i) {
          (void)red.AppendVertexSample(
              red_ids[s], "bikes",
              static_cast<Timestamp>(begin + i) * kStep,
              std::sin(static_cast<double>(begin + i) * 0.01));
        }
      }
    });
    const double green_ms = bench::TimeMs([&] {
      for (size_t s = 0; s < kStations; ++s) {
        for (size_t i = 0; i < batch; ++i) {
          (void)green.AppendVertexSample(
              green_ids[s], "bikes",
              static_cast<Timestamp>(begin + i) * kStep,
              std::sin(static_cast<double>(begin + i) * 0.01));
        }
      }
    });
    written += batch;
    const double total = static_cast<double>(batch * kStations);
    std::printf("%8zu -> %6zu | %19.0f ns | %19.0f ns\n", begin, written,
                red_ms * 1e6 / total, green_ms * 1e6 / total);
  }

  // Unified-model contract: identical answers from both architectures.
  const std::string query =
      "MATCH (s:Station) RETURN s.name AS n, ts_avg(s.bikes, 0, " +
      std::to_string(static_cast<Timestamp>(written) * kStep) +
      ") AS a ORDER BY n";
  auto from_red = query::Execute(red, query);
  auto from_green = query::Execute(green, query);
  if (!from_red.ok() || !from_green.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  bool consistent = from_red->row_count() == from_green->row_count();
  for (size_t r = 0; consistent && r < from_red->row_count(); ++r) {
    consistent = from_red->rows[r][0] == from_green->rows[r][0] &&
                 std::abs(from_red->rows[r][1].AsDouble() -
                          from_green->rows[r][1].AsDouble()) < 1e-9;
  }
  std::printf("\nconsistency: %zu rows from each engine -> %s\n",
              from_red->row_count(),
              consistent ? "IDENTICAL" : "MISMATCH (bug!)");
  std::printf("read check: same ts_avg over %zu samples/station\n", written);
  return consistent ? 0 : 1;
}
