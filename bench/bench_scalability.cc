// Requirements R3 (timeliness) and R4 (scalability) from Section 2:
// ingestion throughput and query latency as the workload grows, for both
// storage architectures. Expected shape: polyglot query latency grows
// roughly linearly with the number of stations and stays flat as series
// lengthen (chunk pruning + aggregate cache); the all-in-graph architecture
// grows superlinearly on aggregate queries because every query rescans
// ever-larger property maps.

#include <cstdio>

#include "bench_util.h"
#include "query/executor.h"
#include "storage/all_in_graph.h"
#include "storage/polyglot.h"
#include "workloads/bike_sharing.h"

namespace hygraph {
namespace {

struct Measurement {
  double load_ms = 0;
  double q_topk_ms = 0;   // per-station aggregate + top-k (Q4 shape)
  double q_point_ms = 0;  // single-station range aggregate (Q2 shape)
};

template <typename Store>
Measurement Measure(const workloads::BikeSharingDataset& dataset) {
  Store store;
  Measurement m;
  m.load_ms = bench::TimeMs(
      [&] { (void)workloads::LoadIntoBackend(dataset, &store); });
  const std::string t0 = std::to_string(dataset.start());
  const std::string t1 = std::to_string(dataset.end());
  const std::string topk =
      "MATCH (s:Station) RETURN s.name AS n, ts_avg(s.bikes, " + t0 + ", " +
      t1 + ") AS a ORDER BY a DESC, n LIMIT 10";
  const std::string point =
      "MATCH (s:Station {name: 'S1'}) RETURN ts_avg(s.bikes, " + t0 + ", " +
      t1 + ")";
  m.q_topk_ms =
      bench::Repeat(3, [&] { (void)query::Execute(store, topk); }).mean();
  m.q_point_ms =
      bench::Repeat(5, [&] { (void)query::Execute(store, point); }).mean();
  return m;
}

}  // namespace
}  // namespace hygraph

int main() {
  using namespace hygraph;

  bench::PrintHeader("R3/R4: scaling in station count (7 days @ 10 min)");
  std::printf("%9s | %26s | %26s | %26s\n", "stations",
              "load ms (red/green)", "top-k ms (red/green)",
              "point ms (red/green)");
  std::printf("%s\n", std::string(97, '-').c_str());
  for (size_t stations : {25, 50, 100, 200}) {
    workloads::BikeSharingConfig config;
    config.stations = stations;
    config.districts = 5;
    config.days = 7;
    config.sample_interval = 10 * kMinute;
    config.seed = 77;
    auto dataset = workloads::GenerateBikeSharing(config);
    if (!dataset.ok()) return 1;
    const Measurement red = Measure<storage::AllInGraphStore>(*dataset);
    const Measurement green = Measure<storage::PolyglotStore>(*dataset);
    std::printf("%9zu | %11.0f / %11.0f | %11.2f / %11.2f | %11.3f / %11.3f\n",
                stations, red.load_ms, green.load_ms, red.q_topk_ms,
                green.q_topk_ms, red.q_point_ms, green.q_point_ms);
  }

  bench::PrintHeader("R3/R4: scaling in series length (50 stations)");
  std::printf("%16s | %26s | %26s\n", "samples/station",
              "load ms (red/green)", "top-k ms (red/green)");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (size_t days : {2, 4, 8, 16}) {
    workloads::BikeSharingConfig config;
    config.stations = 50;
    config.districts = 5;
    config.days = days;
    config.sample_interval = 10 * kMinute;
    config.seed = 78;
    auto dataset = workloads::GenerateBikeSharing(config);
    if (!dataset.ok()) return 1;
    const Measurement red = Measure<storage::AllInGraphStore>(*dataset);
    const Measurement green = Measure<storage::PolyglotStore>(*dataset);
    std::printf("%16zu | %11.0f / %11.0f | %11.2f / %11.2f\n",
                dataset->samples_per_station(), red.load_ms, green.load_ms,
                red.q_topk_ms, green.q_topk_ms);
  }
  return 0;
}
