// Figure 3: the data-model lattice and its arrows. Each numbered arrow of
// the figure maps to an executable operation in this library; this bench
// runs them all on one generated world and reports timings and result
// sizes, plus the R1 losslessness checks for the <X>ToHyGraph /
// HyGraphTo<X> round trips.
//
//   (1) LG ops          label-only pattern matching
//   (2) LPG ops         property pattern matching
//   (3) TPG ops         snapshot retrieval + temporal pattern matching
//   (4) data-series ops downsampling
//   (5) TS ops          aggregation / anomaly detection
//   (6) TS -> graph     similarity graph over series
//   (7) LPG -> series   metricEvolution (degree over time)
//   (8) TS as props     series properties on LPG vertices
//   (9) ops using both  correlation-constrained reachability
//   (10) HyGraph ops    hybrid pattern matching on the unified instance

#include <cstdio>

#include "analytics/corr_reach.h"
#include "analytics/hybrid_match.h"
#include "bench_util.h"
#include "core/convert.h"
#include "graph/pattern.h"
#include "temporal/metric_evolution.h"
#include "temporal/snapshot.h"
#include "ts/anomaly.h"
#include "ts/downsample.h"
#include "workloads/bike_sharing.h"

int main() {
  using namespace hygraph;

  workloads::BikeSharingConfig config;
  config.stations = 60;
  config.districts = 6;
  config.days = 7;
  config.sample_interval = 15 * kMinute;
  auto dataset = workloads::GenerateBikeSharing(config);
  if (!dataset.ok()) return 1;
  auto hg = workloads::ToHyGraph(*dataset);
  if (!hg.ok()) return 1;

  bench::PrintHeader("Figure 3: every arrow as an executable operation");
  auto row = [](const char* arrow, const char* op, double ms, size_t out) {
    std::printf("%-5s %-44s %9.2f ms  -> %zu\n", arrow, op, ms, out);
  };

  // (1) LG: structure-only matching.
  {
    graph::Pattern p;
    p.AddVertex("a", "Station");
    p.AddVertex("b", "Station");
    p.AddEdge("a", "b", "TRIP");
    size_t n = 0;
    const double ms = bench::TimeMs(
        [&] { n = graph::MatchPattern(hg->structure(), p)->size(); });
    row("(1)", "LG subgraph matching (labels only)", ms, n);
  }
  // (2) LPG: property-constrained matching.
  {
    graph::Pattern p;
    p.AddVertex("a", "Station",
                {{"district", graph::CmpOp::kEq, Value(2)}});
    p.AddVertex("b", "Station");
    p.AddEdge("a", "b", "TRIP");
    size_t n = 0;
    const double ms = bench::TimeMs(
        [&] { n = graph::MatchPattern(hg->structure(), p)->size(); });
    row("(2)", "LPG pattern matching (property predicates)", ms, n);
  }
  // (3) TPG: snapshot + event axis.
  {
    size_t n = 0;
    const double ms = bench::TimeMs([&] {
      n = temporal::TakeSnapshot(hg->tpg(), dataset->start() + kDay)
              .graph.VertexCount();
    });
    row("(3)", "TPG snapshot retrieval", ms, n);
  }
  // (4) data series: downsampling.
  {
    size_t n = 0;
    const double ms = bench::TimeMs([&] {
      n = ts::DownsampleLttb(dataset->stations[0].bikes, 100)->size();
    });
    row("(4)", "series downsampling (LTTB)", ms, n);
  }
  // (5) TS: anomaly detection.
  {
    size_t n = 0;
    const double ms = bench::TimeMs([&] {
      n = ts::DetectSlidingWindow(dataset->stations[0].bikes, 48, 3.5)
              ->size();
    });
    row("(5)", "series anomaly detection", ms, n);
  }
  // (6) TS -> graph: similarity graph.
  {
    std::vector<ts::Series> series;
    for (size_t i = 0; i < 30; ++i) {
      series.push_back(dataset->stations[i].bikes);
    }
    core::SimilarityGraphOptions options;
    options.threshold = 0.85;
    size_t n = 0;
    const double ms = bench::TimeMs([&] {
      n = core::SeriesSimilarityGraph(series, options)->EdgeCount();
    });
    row("(6)", "series -> similarity graph (edges)", ms, n);
  }
  // (7) LPG -> series: metricEvolution.
  {
    temporal::TemporalPropertyGraph tpg = *core::ToTemporalGraph(*hg);
    std::vector<Timestamp> times;
    for (int i = 0; i < 24; ++i) {
      times.push_back(dataset->start() + i * 6 * kHour);
    }
    size_t n = 0;
    const double ms = bench::TimeMs([&] {
      n = temporal::AllDegreeEvolutions(tpg, times)->size();
    });
    row("(7)", "metricEvolution (degree series per vertex)", ms, n);
  }
  // (8) TS as properties: series-property access on the LPG.
  {
    size_t n = 0;
    const double ms = bench::TimeMs([&] {
      for (graph::VertexId v :
           hg->structure().VerticesWithLabel("Station")) {
        auto series = hg->GetVertexSeriesProperty(v, "history");
        if (series.ok()) n += (*series)->size();
      }
    });
    row("(8)", "series-as-property access (total samples)", ms, n);
  }
  // (9) ops using both models: correlation reachability.
  {
    analytics::CorrReachOptions options;
    options.min_correlation = 0.7;
    size_t n = 0;
    const graph::VertexId source =
        hg->structure().VerticesWithLabel("Station")[0];
    const double ms = bench::TimeMs([&] {
      n = analytics::CorrelationReachability(*hg, source, options)->size();
    });
    row("(9)", "correlation-constrained reachability", ms, n);
  }
  // (10) HyGraph ops: hybrid pattern matching.
  {
    analytics::HybridPatternQuery q;
    q.structure.AddVertex("a", "Station");
    q.structure.AddVertex("b", "Station");
    q.structure.AddEdge("a", "b", "TRIP");
    analytics::SeriesShapeConstraint c;
    c.var = "a";
    c.series_key = "history";
    c.shape = {0.1, 0.4, 0.8, 0.4, 0.1};
    c.max_distance = 2.0;
    q.constraints.push_back(c);
    size_t n = 0;
    const double ms = bench::TimeMs(
        [&] { n = analytics::MatchHybridPattern(*hg, q)->size(); });
    row("(10)", "hybrid pattern matching on HyGraph", ms, n);
  }

  // R1 losslessness checks for the conversion interfaces.
  bench::PrintHeader("R1: round-trip losslessness");
  {
    auto tpg = core::ToTemporalGraph(*hg);
    auto back = core::FromTemporalGraph(*tpg);
    const bool structure_ok = back->VertexCount() == hg->VertexCount() &&
                              back->EdgeCount() == hg->EdgeCount();
    std::printf("HyGraph -> TPG -> HyGraph: %s (%zu vertices, %zu edges)\n",
                structure_ok ? "LOSSLESS" : "LOSSY (bug!)",
                back->VertexCount(), back->EdgeCount());
    const auto collection = core::ToSeriesCollection(*hg);
    auto from_series = core::FromSeriesCollection(collection);
    std::printf("HyGraph -> series collection: %zu series extracted\n",
                collection.size());
    std::printf("series collection -> HyGraph: %zu TS vertices\n",
                from_series->TsVertices().size());
    if (!structure_ok) return 1;
  }
  return 0;
}
