// Server load bench (DESIGN.md §14), emitted to BENCH_server.json:
//
//   1. Open-loop HGQL query sweep — a Poisson arrival process at each
//      offered QPS level; W worker threads with their own HgqlClient drain
//      a shared precomputed arrival schedule over loopback TCP. Latency is
//      measured from the SCHEDULED arrival, not the actual send, so queueing
//      delay under overload is charged to the server instead of silently
//      dropped (no coordinated omission). Per level: achieved QPS and
//      p50/p99/p999. The knee is the first level where the server can no
//      longer keep up (achieved < 90% of offered, or p99 beyond 20x the
//      unloaded baseline); if the sweep never saturates, the knee reports
//      the last level as a lower bound.
//   2. Group-commit wire ingest — 8 concurrent writer connections issuing
//      durable single-sample appends, reporting the fsync batching factor
//      (wal.appends / wal.syncs — far above 1 whenever writers overlap).
//      The deterministic batching guarantee is asserted in
//      tests/group_commit_test.cc; here the factor is a measurement.
//
// `--smoke` shrinks the sweep for CI.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "obs/clock.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"

namespace hygraph::bench {
namespace {

struct JsonResult {
  std::string name;
  double value;
  std::string unit;
};

std::vector<JsonResult>& Results() {
  static std::vector<JsonResult> results;
  return results;
}

void Record(const std::string& name, double value, const std::string& unit) {
  Results().push_back({name, value, unit});
}

uint64_t Counter(const obs::MetricsSnapshot& snap, const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

uint64_t QuantileNs(std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(q * double(sorted.size())));
  return sorted[idx];
}

// ---------------------------------------------------------------------------
// Fixture: a durable store with a small station graph behind a server.

struct Fixture {
  std::unique_ptr<storage::DurableStore> store;
  std::unique_ptr<server::HgqlServer> server;
  graph::VertexId vertex = 0;
};

Fixture StartFixture() {
  Fixture f;
  char tmpl[] = "/tmp/hygraph_bench_server_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) std::exit(1);
  storage::DurableOptions options;
  options.sync_wal = false;  // group-commit mode
  f.store = std::make_unique<storage::DurableStore>(
      storage::Env::Default(), tmpl,
      std::make_unique<storage::PolyglotStore>(), options);
  if (!f.store->Open().ok()) std::exit(1);
  const char* cities[] = {"berlin", "munich", "hamburg", "cologne"};
  for (const char* city : cities) {
    auto v = f.store->AddVertex({"Station"}, {{"city", Value(city)}});
    if (!v.ok()) std::exit(1);
    f.vertex = *v;
    for (int i = 0; i < 100; ++i) {
      if (!f.store->AppendVertexSample(*v, "load", 1000 * i, double(i)).ok()) {
        std::exit(1);
      }
    }
  }
  server::ServerOptions server_options;
  server_options.max_connections = 64;
  server_options.max_inflight = 64;
  f.server = std::make_unique<server::HgqlServer>(
      f.store.get(), f.store.get(), server_options);
  if (!f.server->Start().ok()) std::exit(1);
  return f;
}

// ---------------------------------------------------------------------------
// 1. Open-loop Poisson query sweep.

struct LevelResult {
  double offered_qps = 0;
  double achieved_qps = 0;
  uint64_t p50 = 0, p99 = 0, p999 = 0;
  size_t errors = 0;
};

LevelResult RunLevel(const Fixture& f, double qps, double seconds,
                     size_t workers) {
  // Precompute the Poisson arrival schedule (exponential inter-arrival
  // gaps) so workers only consume it — the generator never throttles the
  // load it is supposed to offer.
  Rng rng(42);
  std::vector<int64_t> arrivals;
  const size_t count = std::min<size_t>(
      static_cast<size_t>(qps * seconds), 40000);
  arrivals.reserve(count);
  double t_ns = 0;
  for (size_t i = 0; i < count; ++i) {
    t_ns += rng.NextExponential(1e9 / qps);
    arrivals.push_back(static_cast<int64_t>(t_ns));
  }

  const std::string query = "MATCH (s:Station) RETURN s.city AS c LIMIT 1";
  const obs::Clock* clock = obs::SystemClock::Instance();
  std::atomic<size_t> next{0};
  std::atomic<size_t> errors{0};
  std::vector<std::vector<uint64_t>> latencies(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const int64_t start_ns = static_cast<int64_t>(clock->NowNanos());
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto client =
          server::HgqlClient::Connect("127.0.0.1", f.server->port(), "bench");
      if (!client.ok()) {
        errors.fetch_add(arrivals.size());  // poison the level
        return;
      }
      latencies[w].reserve(arrivals.size() / workers + 1);
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= arrivals.size()) break;
        const int64_t target = start_ns + arrivals[i];
        const int64_t now = static_cast<int64_t>(clock->NowNanos());
        if (now < target) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(target - now));
        }
        auto result = client->Query(query);
        const int64_t done = static_cast<int64_t>(clock->NowNanos());
        if (result.ok()) {
          // From the scheduled arrival: queueing delay counts.
          latencies[w].push_back(static_cast<uint64_t>(done - target));
        } else {
          errors.fetch_add(1);
        }
      }
      client->Close();
    });
  }
  for (auto& t : threads) t.join();
  const int64_t end_ns = static_cast<int64_t>(clock->NowNanos());

  std::vector<uint64_t> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LevelResult r;
  r.offered_qps = qps;
  r.errors = errors.load();
  const double wall_s = double(end_ns - start_ns) / 1e9;
  r.achieved_qps = wall_s > 0 ? double(all.size()) / wall_s : 0;
  r.p50 = QuantileNs(all, 0.50);
  r.p99 = QuantileNs(all, 0.99);
  r.p999 = QuantileNs(all, 0.999);
  return r;
}

void BenchQuerySweep(const Fixture& f, bool smoke) {
  PrintHeader("Open-loop HGQL query sweep (Poisson arrivals, loopback TCP)");
  const std::vector<double> levels =
      smoke ? std::vector<double>{200, 1000}
            : std::vector<double>{500, 2000, 8000, 16000, 32000, 64000};
  const double seconds = smoke ? 0.5 : 2.0;
  const size_t workers = smoke ? 4 : 8;

  double knee_qps = 0;
  uint64_t base_p99 = 0;
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelResult r = RunLevel(f, levels[i], seconds, workers);
    if (i == 0) base_p99 = r.p99 > 0 ? r.p99 : 1;
    std::printf("offered %8.0f qps  achieved %8.0f qps  p50 %8" PRIu64
                " ns  p99 %9" PRIu64 " ns  p999 %9" PRIu64 " ns  errors %zu\n",
                r.offered_qps, r.achieved_qps, r.p50, r.p99, r.p999, r.errors);
    const std::string prefix =
        "qps" + std::to_string(static_cast<int64_t>(r.offered_qps));
    Record(prefix + "_achieved_qps", r.achieved_qps, "qps");
    Record(prefix + "_p50_ns", double(r.p50), "ns");
    Record(prefix + "_p99_ns", double(r.p99), "ns");
    Record(prefix + "_p999_ns", double(r.p999), "ns");
    const bool saturated = r.achieved_qps < 0.9 * r.offered_qps ||
                           r.p99 > 20 * base_p99;
    if (saturated && knee_qps == 0) knee_qps = r.offered_qps;
  }
  if (knee_qps == 0) {
    // Never saturated: the last level is a lower bound on capacity.
    knee_qps = levels.back();
    std::printf("sweep did not saturate; knee >= %.0f qps\n", knee_qps);
  } else {
    std::printf("knee (first overloaded level): %.0f qps\n", knee_qps);
  }
  Record("knee_qps", knee_qps, "qps");
}

// ---------------------------------------------------------------------------
// 2. Group-commit wire ingest: 8 writers, fsyncs must batch.

int BenchGroupCommitIngest(const Fixture& f, bool smoke) {
  PrintHeader("Group-commit wire ingest (8 durable writers)");
  const size_t writers = 8;
  const size_t appends_per_writer = smoke ? 50 : 400;
  const auto before = f.server->MergedMetrics();
  const uint64_t appends_before = Counter(before, "wal.appends");
  const uint64_t syncs_before = Counter(before, "wal.syncs");

  const obs::Clock* clock = obs::SystemClock::Instance();
  std::atomic<size_t> errors{0};
  std::vector<std::vector<uint64_t>> latencies(writers);
  std::vector<std::thread> threads;
  threads.reserve(writers);
  const uint64_t start_ns = clock->NowNanos();
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      auto client =
          server::HgqlClient::Connect("127.0.0.1", f.server->port(), "bench");
      if (!client.ok()) {
        errors.fetch_add(appends_per_writer);
        return;
      }
      for (size_t i = 0; i < appends_per_writer; ++i) {
        server::SampleUpdate s;
        s.id = f.vertex;
        s.timestamp =
            static_cast<Timestamp>(5000000 + w * appends_per_writer + i);
        s.value = double(w);
        s.key = "bench";
        const uint64_t t0 = clock->NowNanos();
        if (client->Append({s}).ok()) {
          latencies[w].push_back(clock->NowNanos() - t0);
        } else {
          errors.fetch_add(1);
        }
      }
      client->Close();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = double(clock->NowNanos() - start_ns) / 1e9;

  const auto after = f.server->MergedMetrics();
  const uint64_t appends = Counter(after, "wal.appends") - appends_before;
  const uint64_t syncs = Counter(after, "wal.syncs") - syncs_before;
  std::vector<uint64_t> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  const double batching = syncs > 0 ? double(appends) / double(syncs) : 0;
  std::printf("appends %" PRIu64 "  fsyncs %" PRIu64
              "  batching %.1fx  throughput %.0f appends/s  commit p50 %"
              PRIu64 " ns  p99 %" PRIu64 " ns  errors %zu\n",
              appends, syncs, batching,
              wall_s > 0 ? double(all.size()) / wall_s : 0,
              QuantileNs(all, 0.50), QuantileNs(all, 0.99), errors.load());
  Record("group_commit_appends", double(appends), "count");
  Record("group_commit_syncs", double(syncs), "count");
  Record("group_commit_batching", batching, "x");
  Record("group_commit_p50_ns", double(QuantileNs(all, 0.50)), "ns");
  Record("group_commit_p99_ns", double(QuantileNs(all, 0.99)), "ns");

  if (errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %zu append errors\n", errors.load());
    return 1;
  }
  // Accounting sanity: the committer can never sync more often than it
  // appends. Batching DEPTH is workload- and disk-dependent (a fast fsync
  // shrinks the window writers can pile into), so it is reported above and
  // asserted deterministically in tests/group_commit_test.cc instead.
  if (syncs > appends) {
    std::fprintf(stderr,
                 "FAIL: more fsyncs than appends (syncs=%" PRIu64
                 " appends=%" PRIu64 ")\n",
                 syncs, appends);
    return 1;
  }
  if (batching < 2.0) {
    std::fprintf(stderr,
                 "WARN: low batching factor %.1fx — fsync on this volume may "
                 "be too fast for writers to overlap\n",
                 batching);
  }
  return 0;
}

void WriteJson() {
  FILE* f = std::fopen("BENCH_server.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_server.json\n");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"server\",\n  \"results\": [\n");
  const auto& results = Results();
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_server.json (%zu results)\n", results.size());
}

}  // namespace
}  // namespace hygraph::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  hygraph::bench::Fixture fixture = hygraph::bench::StartFixture();
  hygraph::bench::BenchQuerySweep(fixture, smoke);
  const int rc = hygraph::bench::BenchGroupCommitIngest(fixture, smoke);
  fixture.server->Stop();
  hygraph::bench::WriteJson();
  return rc;
}
