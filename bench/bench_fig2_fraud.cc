// Figure 2: "Existing methods to enhance Fraud Detection" — the graph-only
// path (Listing 1), the time-series-only path (Listing 2), and the HyGRAPH
// hybrid pipeline, scored against planted ground truth while the fraud rate
// sweeps. The paper's qualitative claims to reproduce:
//   * graph-only flags ring fraud but also benign burst-shoppers
//     (precision loss);
//   * ts-only flags balance anomalies but also benign heavy spenders —
//     the paper's "User 3" false positive — and misses nothing ring-shaped
//     only because rings also crash balances;
//   * the hybrid pipeline resolves both decoy families -> highest F1.

#include <cstdio>

#include "analytics/fraud.h"
#include "bench_util.h"
#include "workloads/fraud_workload.h"

int main() {
  using namespace hygraph;

  bench::PrintHeader("Figure 2: graph-only vs ts-only vs hybrid detection");
  std::printf("%8s | %-28s | %-28s | %-28s\n", "fraud%",
              "graph-only  P / R / F1", "ts-only     P / R / F1",
              "hybrid      P / R / F1");
  std::printf("%s\n", std::string(104, '-').c_str());

  for (double fraud_rate : {0.02, 0.04, 0.06, 0.08, 0.10}) {
    workloads::FraudConfig config;
    config.users = 400;
    config.merchants = 40;
    config.merchant_clusters = 5;
    config.days = 7;
    config.fraud_rate = fraud_rate;
    config.heavy_spender_rate = 0.06;
    config.burst_shopper_rate = 0.06;
    config.seed = 1000 + static_cast<uint64_t>(fraud_rate * 1000);
    auto hg = workloads::GenerateFraudHyGraph(config);
    if (!hg.ok()) {
      std::fprintf(stderr, "generate: %s\n", hg.status().ToString().c_str());
      return 1;
    }
    auto graph_verdict = analytics::DetectFraudGraphOnly(*hg);
    auto ts_verdict = analytics::DetectFraudTsOnly(*hg);
    auto hybrid_verdict = analytics::DetectFraudHybrid(*hg);
    if (!graph_verdict.ok() || !ts_verdict.ok() || !hybrid_verdict.ok()) {
      return 1;
    }
    const auto mg = *analytics::EvaluateVerdict(*hg, *graph_verdict);
    const auto mt = *analytics::EvaluateVerdict(*hg, *ts_verdict);
    const auto mh = *analytics::EvaluateVerdict(*hg, *hybrid_verdict);
    std::printf(
        "%7.0f%% | %8.3f /%6.3f /%6.3f | %8.3f /%6.3f /%6.3f | "
        "%8.3f /%6.3f /%6.3f\n",
        fraud_rate * 100, mg.precision(), mg.recall(), mg.f1(),
        mt.precision(), mt.recall(), mt.f1(), mh.precision(), mh.recall(),
        mh.f1());
  }
  std::printf(
      "\nexpected shape: hybrid F1 >= both single paths at every rate; "
      "graph-only and\n  ts-only lose precision to their respective decoy "
      "families (burst shoppers /\n  heavy spenders).\n");
  return 0;
}
