// Ablation micro-benchmarks for the design choices DESIGN.md calls out,
// using google-benchmark:
//   * hypertable chunk duration (range aggregate latency)
//   * chunk-level aggregate cache on/off
//   * HGQL predicate pushdown on/off (Q8-style pattern + predicate query)
//   * DTW band width
//   * FastRP embedding dimensionality

#include <benchmark/benchmark.h>

#include <cmath>

#include "analytics/embedding.h"
#include "query/executor.h"
#include "query/parser.h"
#include "storage/polyglot.h"
#include "ts/distance.h"
#include "ts/hypertable.h"
#include "workloads/bike_sharing.h"

namespace hygraph {
namespace {

// ---- hypertable chunk duration ---------------------------------------------

void BM_HypertableAggregate_ChunkMinutes(benchmark::State& state) {
  ts::HypertableOptions options;
  options.chunk_duration = state.range(0) * kMinute;
  ts::HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (int i = 0; i < 20000; ++i) {
    (void)store.Insert(id, static_cast<Timestamp>(i) * kMinute,
                       std::sin(i * 0.001));
  }
  const Interval range{100 * kMinute, 19000 * kMinute};
  for (auto _ : state) {
    auto sum = store.Aggregate(id, range, ts::AggKind::kSum);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_HypertableAggregate_ChunkMinutes)
    ->Arg(60)      // 1 h chunks
    ->Arg(360)     // 6 h
    ->Arg(1440)    // 1 day
    ->Arg(10080);  // 1 week

// ---- aggregate cache on/off -------------------------------------------------

void BM_HypertableAggregate_Cache(benchmark::State& state) {
  ts::HypertableOptions options;
  options.chunk_duration = kDay;
  options.enable_chunk_cache = state.range(0) != 0;
  ts::HypertableStore store(options);
  const SeriesId id = store.Create("s");
  for (int i = 0; i < 20000; ++i) {
    (void)store.Insert(id, static_cast<Timestamp>(i) * kMinute,
                       std::sin(i * 0.001));
  }
  for (auto _ : state) {
    auto sum = store.Aggregate(id, Interval::All(), ts::AggKind::kStdDev);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_HypertableAggregate_Cache)->Arg(0)->Arg(1);

// ---- HGQL predicate pushdown -------------------------------------------------

struct QueryWorld {
  storage::PolyglotStore store;
  query::Plan with_pushdown;
  query::Plan without_pushdown;
};

QueryWorld* BuildQueryWorld() {
  auto* world = new QueryWorld();
  workloads::BikeSharingConfig config;
  config.stations = 120;
  config.districts = 12;
  config.days = 2;
  config.sample_interval = kHour;
  auto dataset = workloads::GenerateBikeSharing(config);
  (void)workloads::LoadIntoBackend(*dataset, &world->store);
  const std::string text =
      "MATCH (a:Station)-[:TRIP]->(b:Station) "
      "WHERE a.district = 3 AND b.capacity > 30 "
      "RETURN a.name, b.name";
  auto ast = query::Parse(text);
  query::PlannerOptions on;
  query::PlannerOptions off;
  off.enable_pushdown = false;
  world->with_pushdown = std::move(*query::CompileQuery(*ast, on));
  world->without_pushdown = std::move(*query::CompileQuery(*ast, off));
  return world;
}

void BM_QueryPushdown(benchmark::State& state) {
  static QueryWorld* world = BuildQueryWorld();
  const query::Plan& plan =
      state.range(0) != 0 ? world->with_pushdown : world->without_pushdown;
  for (auto _ : state) {
    auto result = query::ExecutePlan(world->store, plan);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_QueryPushdown)->Arg(0)->Arg(1);

// ---- DTW band ---------------------------------------------------------------

void BM_DtwBand(benchmark::State& state) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(std::sin(i * 0.05));
    b.push_back(std::sin((i - 7) * 0.05));
  }
  const size_t band = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto d = ts::DtwDistance(a, b, band);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DtwBand)->Arg(5)->Arg(20)->Arg(100)->Arg(1000);

// ---- FastRP dimensions --------------------------------------------------------

void BM_FastRpDimensions(benchmark::State& state) {
  static graph::PropertyGraph* g = [] {
    auto* graph = new graph::PropertyGraph();
    workloads::BikeSharingConfig config;
    config.stations = 200;
    config.days = 1;
    config.sample_interval = kDay;  // series irrelevant here
    auto dataset = workloads::GenerateBikeSharing(config);
    std::vector<graph::VertexId> ids;
    for (const auto& s : dataset->stations) {
      ids.push_back(graph->AddVertex({"Station"},
                                     {{"district", Value(s.district)}}));
    }
    for (const auto& t : dataset->trips) {
      (void)graph->AddEdge(ids[t.src], ids[t.dst], "TRIP", {});
    }
    return graph;
  }();
  analytics::FastRpOptions options;
  options.dimensions = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto embeddings = analytics::FastRp(*g, options);
    benchmark::DoNotOptimize(embeddings);
  }
}
BENCHMARK(BM_FastRpDimensions)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace hygraph

BENCHMARK_MAIN();
