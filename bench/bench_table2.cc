// Executes every row of the paper's Table 2 ("Time Series vs Graphs:
// Querying, Analysis, and ML"): for each row the pure time-series operator,
// the pure graph operator, and the hybrid operator the HyGRAPH roadmap
// derives from their combination. Reports per-operator timings and result
// sizes, demonstrating that each hybrid operator is executable and returns
// strictly richer results than either half alone.
//
//   Q1  subsequence matching   x subgraph matching   -> hybrid pattern match
//   Q2  downsampling           x graph aggregation   -> hybrid aggregate
//   Q3  correlation            x reachability        -> corr-reachability
//   Q4  segmentation           x snapshot            -> seg-snapshots
//   D   anomaly detection      x community detection -> contextual anomalies
//   PM  motif discovery        x subgraph mining     -> trend-annotated mining
//   E   subsequence features   x vertex embeddings   -> hybrid embeddings
//   C1  temporal features      x label features      -> kNN on hybrid space
//   C2  temporal proximity     x connectivity        -> hybrid k-medoids

#include <cstdio>

#include "analytics/classify.h"
#include "analytics/cluster.h"
#include "analytics/corr_reach.h"
#include "analytics/detection.h"
#include "analytics/embedding.h"
#include "analytics/hybrid_aggregate.h"
#include "analytics/hybrid_match.h"
#include "analytics/pattern_mining.h"
#include "analytics/seg_snapshot.h"
#include "bench_util.h"
#include "graph/aggregate.h"
#include "graph/community.h"
#include "graph/pattern.h"
#include "graph/traversal.h"
#include "ts/correlate.h"
#include "temporal/metric_evolution.h"
#include "temporal/snapshot.h"
#include "ts/anomaly.h"
#include "ts/downsample.h"
#include "ts/motif.h"
#include "ts/segmentation.h"
#include "ts/subsequence.h"
#include "workloads/bike_sharing.h"
#include "workloads/fraud_workload.h"

namespace hygraph {
namespace {

void Row(const char* id, const char* name, double ts_ms, size_t ts_out,
         double graph_ms, size_t graph_out, double hybrid_ms,
         size_t hybrid_out) {
  std::printf("%-3s %-22s | ts: %8.2f ms (%4zu) | graph: %8.2f ms (%4zu) | "
              "hybrid: %8.2f ms (%4zu)\n",
              id, name, ts_ms, ts_out, graph_ms, graph_out, hybrid_ms,
              hybrid_out);
}

}  // namespace
}  // namespace hygraph

int main() {
  using namespace hygraph;

  // Worlds: a bike network HyGraph (stations with series + TRIP edges) and
  // a fraud HyGraph for the detection/classification rows.
  workloads::BikeSharingConfig bike_config;
  bike_config.stations = 60;
  bike_config.districts = 6;
  bike_config.days = 7;
  bike_config.sample_interval = 15 * kMinute;
  auto dataset = workloads::GenerateBikeSharing(bike_config);
  if (!dataset.ok()) return 1;
  auto bike = workloads::ToHyGraph(*dataset);
  if (!bike.ok()) return 1;

  workloads::FraudConfig fraud_config;
  fraud_config.users = 150;
  fraud_config.merchants = 24;
  fraud_config.merchant_clusters = 4;
  fraud_config.days = 7;
  auto fraud = workloads::GenerateFraudHyGraph(fraud_config);
  if (!fraud.ok()) return 1;

  const ts::Series probe = dataset->stations[0].bikes;
  const std::vector<double> shape = {0.2, 0.5, 0.9, 0.5, 0.2, -0.1};

  bench::PrintHeader("Table 2: TS op x graph op -> hybrid operator");

  // -- Q1: subsequence matching x subgraph matching -> hybrid pattern.
  {
    size_t ts_out = 0, graph_out = 0, hybrid_out = 0;
    const double ts_ms = bench::TimeMs([&] {
      ts_out = ts::MatchSubsequence(probe, shape, 3)->size();
    });
    graph::Pattern pattern;
    pattern.AddVertex("a", "Station");
    pattern.AddVertex("b", "Station");
    pattern.AddEdge("a", "b", "TRIP");
    const double graph_ms = bench::TimeMs([&] {
      graph_out = graph::MatchPattern(bike->structure(), pattern)->size();
    });
    analytics::HybridPatternQuery hybrid;
    hybrid.structure = pattern;
    analytics::SeriesShapeConstraint constraint;
    constraint.var = "a";
    constraint.series_key = "history";
    constraint.shape = shape;
    constraint.max_distance = 2.0;
    hybrid.constraints.push_back(constraint);
    const double hybrid_ms = bench::TimeMs([&] {
      hybrid_out = analytics::MatchHybridPattern(*bike, hybrid)->size();
    });
    Row("Q1", "hybrid pattern match", ts_ms, ts_out, graph_ms, graph_out,
        hybrid_ms, hybrid_out);
  }

  // -- Q2: downsampling x graph aggregation -> hybrid aggregate.
  {
    size_t ts_out = 0, graph_out = 0, hybrid_out = 0;
    const double ts_ms = bench::TimeMs([&] {
      ts_out = ts::DownsampleAverage(probe, kHour)->size();
    });
    graph::GroupingSpec spec;
    spec.vertex_group_key = "district";
    const double graph_ms = bench::TimeMs([&] {
      graph_out = graph::GroupBy(bike->structure(), spec)->summary
                      .VertexCount();
    });
    analytics::HybridAggregateOptions options;
    options.group_key = "district";
    options.granularity = kHour;
    const double hybrid_ms = bench::TimeMs([&] {
      hybrid_out =
          analytics::HybridAggregate(*bike, options)->summary.VertexCount();
    });
    Row("Q2", "hybrid aggregate", ts_ms, ts_out, graph_ms, graph_out,
        hybrid_ms, hybrid_out);
  }

  // -- Q3: correlation x reachability -> correlation reachability.
  {
    size_t ts_out = 0, graph_out = 0, hybrid_out = 0;
    const double ts_ms = bench::TimeMs([&] {
      auto corr = ts::Correlation(dataset->stations[0].bikes,
                                  dataset->stations[1].bikes);
      ts_out = corr.ok() ? 1 : 0;
    });
    const graph::VertexId source =
        bike->structure().VerticesWithLabel("Station")[0];
    const double graph_ms = bench::TimeMs([&] {
      graph_out = graph::Bfs(bike->structure(), source)->size();
    });
    analytics::CorrReachOptions options;
    options.min_correlation = 0.6;
    const double hybrid_ms = bench::TimeMs([&] {
      hybrid_out =
          analytics::CorrelationReachability(*bike, source, options)->size();
    });
    Row("Q3", "corr-reachability", ts_ms, ts_out, graph_ms, graph_out,
        hybrid_ms, hybrid_out);
  }

  // -- Q4: segmentation x snapshot -> segmentation-driven snapshots.
  {
    size_t ts_out = 0, graph_out = 0, hybrid_out = 0;
    const double ts_ms = bench::TimeMs([&] {
      ts_out = ts::SegmentTopDown(probe, 50.0, 8)->size();
    });
    const double graph_ms = bench::TimeMs([&] {
      graph_out = temporal::TakeSnapshot(fraud->tpg(), fraud_config.start_time)
                      .graph.VertexCount();
    });
    analytics::SegSnapshotOptions options;
    options.max_error = 200.0;
    options.max_segments = 6;
    const double hybrid_ms = bench::TimeMs([&] {
      hybrid_out =
          analytics::SegmentationSnapshots(*bike, probe, options)->size();
    });
    Row("Q4", "seg-snapshots", ts_ms, ts_out, graph_ms, graph_out, hybrid_ms,
        hybrid_out);
  }

  // -- D: anomaly detection x community detection -> contextual anomalies.
  {
    size_t ts_out = 0, graph_out = 0, hybrid_out = 0;
    const double ts_ms = bench::TimeMs([&] {
      ts_out = ts::DetectZScore(probe, 3.0)->size();
    });
    const double graph_ms = bench::TimeMs([&] {
      auto communities = graph::Louvain(bike->structure());
      size_t max_community = 0;
      for (const auto& [_, c] : *communities) {
        max_community = std::max(max_community, c + 1);
      }
      graph_out = max_community;
    });
    analytics::ContextualDetectionOptions options;
    options.threshold = 3.0;
    const double hybrid_ms = bench::TimeMs([&] {
      hybrid_out =
          analytics::DetectContextualAnomalies(*bike, options)->anomalies
              .size();
    });
    Row("D", "contextual anomalies", ts_ms, ts_out, graph_ms, graph_out,
        hybrid_ms, hybrid_out);
  }

  // -- PM: motif discovery x frequent subgraphs -> trend-annotated mining.
  {
    size_t ts_out = 0, graph_out = 0, hybrid_out = 0;
    const double ts_ms = bench::TimeMs([&] {
      ts_out = ts::FindMotifs(probe, 12, 3)->size();
    });
    analytics::MiningOptions structural_only;
    structural_only.min_support = 5;
    structural_only.include_chains = false;
    const double graph_ms = bench::TimeMs([&] {
      graph_out =
          analytics::MineFrequentPatterns(*fraud, structural_only)->size();
    });
    analytics::MiningOptions full;
    full.min_support = 5;
    const double hybrid_ms = bench::TimeMs([&] {
      hybrid_out = analytics::MineFrequentPatterns(*fraud, full)->size();
    });
    Row("PM", "pattern mining", ts_ms, ts_out, graph_ms, graph_out, hybrid_ms,
        hybrid_out);
  }

  // -- E: temporal features x structural embedding -> hybrid embeddings.
  {
    size_t ts_out = 0, graph_out = 0, hybrid_out = 0;
    const double ts_ms = bench::TimeMs([&] {
      ts_out = analytics::TemporalEmbeddings(*bike)->size();
    });
    const double graph_ms = bench::TimeMs([&] {
      graph_out = analytics::FastRp(bike->structure())->size();
    });
    const double hybrid_ms = bench::TimeMs([&] {
      hybrid_out = analytics::HybridEmbeddings(*bike, {}, {}, 0.5)->size();
    });
    Row("E", "embeddings", ts_ms, ts_out, graph_ms, graph_out, hybrid_ms,
        hybrid_out);
  }

  // -- C1: classification on temporal vs structural vs hybrid features.
  {
    auto temporal_embeddings = analytics::TemporalEmbeddings(*fraud);
    auto structural_embeddings = analytics::FastRp(fraud->structure());
    auto hybrid_embeddings = analytics::HybridEmbeddings(*fraud, {}, {}, 0.5);
    if (!temporal_embeddings.ok() || !structural_embeddings.ok() ||
        !hybrid_embeddings.ok()) {
      return 1;
    }
    // Labels: the card's owner ground truth (cards are the TS vertices).
    auto labeled = [&](const analytics::EmbeddingMap& embeddings) {
      std::vector<analytics::LabeledExample> out;
      for (graph::VertexId card :
           fraud->structure().VerticesWithLabel("CreditCard")) {
        auto it = embeddings.find(card);
        if (it == embeddings.end()) continue;
        // owner = the USES in-neighbor.
        int label = 0;
        for (graph::EdgeId e : fraud->structure().InEdges(card)) {
          const graph::Edge& edge = **fraud->structure().GetEdge(e);
          if (edge.label != "USES") continue;
          auto gt = fraud->GetVertexProperty(edge.src, "gt_fraud");
          if (gt.ok() && gt->is_bool() && gt->AsBool()) label = 1;
        }
        out.push_back({it->second, label});
      }
      return out;
    };
    double f1_ts = 0, f1_graph = 0, f1_hybrid = 0;
    const double ts_ms = bench::TimeMs([&] {
      f1_ts = analytics::LeaveOneOutEvaluate(labeled(*temporal_embeddings), 5)
                  ->f1();
    });
    const double graph_ms = bench::TimeMs([&] {
      f1_graph =
          analytics::LeaveOneOutEvaluate(labeled(*structural_embeddings), 5)
              ->f1();
    });
    const double hybrid_ms = bench::TimeMs([&] {
      f1_hybrid =
          analytics::LeaveOneOutEvaluate(labeled(*hybrid_embeddings), 5)
              ->f1();
    });
    Row("C1", "classification", ts_ms, 0, graph_ms, 0, hybrid_ms, 0);
    std::printf("    kNN F1 on fraud cards: temporal %.3f | structural %.3f "
                "| hybrid %.3f\n",
                f1_ts, f1_graph, f1_hybrid);
  }

  // -- C2: clustering quality in the three feature spaces.
  {
    analytics::ClusterOptions options;
    options.k = 6;
    double sil_ts = 0, sil_graph = 0, sil_hybrid = 0;
    auto temporal_embeddings = analytics::TemporalEmbeddings(*bike);
    auto structural_embeddings = analytics::FastRp(bike->structure());
    auto hybrid_embeddings = analytics::HybridEmbeddings(*bike, {}, {}, 0.5);
    const double ts_ms = bench::TimeMs([&] {
      sil_ts = analytics::KMedoids(*temporal_embeddings, options)->silhouette;
    });
    const double graph_ms = bench::TimeMs([&] {
      sil_graph =
          analytics::KMedoids(*structural_embeddings, options)->silhouette;
    });
    const double hybrid_ms = bench::TimeMs([&] {
      sil_hybrid =
          analytics::KMedoids(*hybrid_embeddings, options)->silhouette;
    });
    Row("C2", "clustering", ts_ms, 0, graph_ms, 0, hybrid_ms, 0);
    std::printf("    k-medoids silhouette: temporal %.3f | structural %.3f "
                "| hybrid %.3f\n",
                sil_ts, sil_graph, sil_hybrid);
  }

  return 0;
}
