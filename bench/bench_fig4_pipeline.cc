// Figure 4: "HyGRAPH pipeline to solve the running example" — the full
// chain from raw temporal-graph + time-series data to an annotated HyGraph
// with classified clusters, timed stage by stage:
//
//   stage 1  <X>ToHyGraph        generate/import the credit-card world
//   stage 2  metricEvolution     degree-over-time meta-series
//   stage 3  similarity          credit-card balance similarity edges
//   stage 4  detectors           graph-only + ts-only signals
//   stage 5  hybrid clustering   embedding + k-medoids over users' cards
//   stage 6  classification      hybrid verdict + annotation
//
// Ends with the detection-quality table the pipeline exists to improve.

#include <cstdio>

#include "analytics/cluster.h"
#include "analytics/fraud.h"
#include "bench_util.h"
#include "core/convert.h"
#include "temporal/metric_evolution.h"
#include "ts/correlate.h"
#include "workloads/fraud_workload.h"

int main() {
  using namespace hygraph;

  bench::PrintHeader("Figure 4: the HyGraph pipeline, stage by stage");

  workloads::FraudConfig config;
  config.users = 300;
  config.merchants = 40;
  config.merchant_clusters = 5;
  config.days = 7;
  config.seed = 99;

  core::HyGraph hg;
  const double t_import = bench::TimeMs([&] {
    auto generated = workloads::GenerateFraudHyGraph(config);
    if (generated.ok()) hg = std::move(*generated);
  });
  std::printf("stage 1  import (<X>ToHyGraph)        %9.1f ms  "
              "(%zu vertices, %zu edges)\n",
              t_import, hg.VertexCount(), hg.EdgeCount());

  std::vector<Timestamp> times;
  for (size_t d = 0; d <= config.days; ++d) {
    times.push_back(config.start_time + static_cast<Duration>(d) * kDay);
  }
  size_t evolution_count = 0;
  const double t_evolution = bench::TimeMs([&] {
    auto evolutions = temporal::AllDegreeEvolutions(hg.tpg(), times);
    if (evolutions.ok()) evolution_count = evolutions->size();
  });
  std::printf("stage 2  metricEvolution              %9.1f ms  "
              "(%zu degree series)\n",
              t_evolution, evolution_count);

  // Stage 3: similarity edges between card balances (sampled pairs).
  size_t similarity_edges = 0;
  const double t_similarity = bench::TimeMs([&] {
    const auto cards = hg.TsVertices();
    for (size_t i = 0; i < cards.size(); i += 7) {
      for (size_t j = i + 7; j < cards.size(); j += 7) {
        auto a = (*hg.VertexSeries(cards[i]))->Variable("balance");
        auto b = (*hg.VertexSeries(cards[j]))->Variable("balance");
        if (!a.ok() || !b.ok()) continue;
        auto corr = ts::Correlation(*a, *b);
        if (corr.ok() && *corr > 0.8) {
          ts::MultiSeries sim("sim", {"correlation"});
          (void)sim.AppendRow(config.start_time, {*corr});
          auto e = hg.AddTsEdge(cards[i], cards[j], "SIMILAR_TO",
                                std::move(sim));
          if (e.ok()) ++similarity_edges;
        }
      }
    }
  });
  std::printf("stage 3  card similarity edges        %9.1f ms  "
              "(%zu TS edges added)\n",
              t_similarity, similarity_edges);

  analytics::FraudVerdict graph_verdict;
  analytics::FraudVerdict ts_verdict;
  const double t_detectors = bench::TimeMs([&] {
    graph_verdict = *analytics::DetectFraudGraphOnly(hg);
    ts_verdict = *analytics::DetectFraudTsOnly(hg);
  });
  std::printf("stage 4  single-model detectors       %9.1f ms  "
              "(graph flags %zu, ts flags %zu)\n",
              t_detectors, graph_verdict.flagged_users.size(),
              ts_verdict.flagged_users.size());

  double silhouette = 0.0;
  const double t_cluster = bench::TimeMs([&] {
    analytics::ClusterOptions options;
    options.k = 4;
    auto clusters = analytics::HybridCluster(hg, options, 0.5, "history");
    if (clusters.ok()) silhouette = clusters->silhouette;
  });
  std::printf("stage 5  hybrid clustering            %9.1f ms  "
              "(silhouette %.3f)\n",
              t_cluster, silhouette);

  analytics::FraudVerdict hybrid_verdict;
  const double t_classify = bench::TimeMs([&] {
    hybrid_verdict = *analytics::DetectFraudHybrid(hg, {}, &hg);
  });
  std::printf("stage 6  hybrid verdict + annotation  %9.1f ms  "
              "(%zu suspicious users, %zu subgraphs)\n",
              t_classify, hybrid_verdict.flagged_users.size(),
              hg.SubgraphIds().size());

  const auto mg = *analytics::EvaluateVerdict(hg, graph_verdict);
  const auto mt = *analytics::EvaluateVerdict(hg, ts_verdict);
  const auto mh = *analytics::EvaluateVerdict(hg, hybrid_verdict);
  std::printf("\n%-12s %10s %10s %10s\n", "path", "precision", "recall",
              "F1");
  std::printf("%-12s %10.3f %10.3f %10.3f\n", "graph-only", mg.precision(),
              mg.recall(), mg.f1());
  std::printf("%-12s %10.3f %10.3f %10.3f\n", "ts-only", mt.precision(),
              mt.recall(), mt.f1());
  std::printf("%-12s %10.3f %10.3f %10.3f\n", "hybrid", mh.precision(),
              mh.recall(), mh.f1());
  const bool hybrid_wins = mh.f1() >= mg.f1() && mh.f1() >= mt.f1();
  std::printf("\nhybrid wins: %s\n", hybrid_wins ? "yes" : "NO (unexpected)");
  return hybrid_wins ? 0 : 1;
}
