// Cold-tier benchmarks (DESIGN.md §15):
//   * full-series scan latency over spilled chunks as a function of the
//     chunk-cache budget (all-resident, partial, thrash), cold vs warm
//   * checkpoint spill throughput (sealed samples moved to segment files)
//   * recovery (Open) time as a function of the cold fraction — the
//     tentpole claim is that recovery cost tracks HOT data, not history
//
// Results go to stdout and to BENCH_tiering.json in the working directory.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"
#include "storage/segment/segment_store.h"
#include "ts/hypertable.h"

namespace hygraph::bench {
namespace {

using storage::DurableOptions;
using storage::DurableStore;
using storage::Env;

// --smoke shrinks the workload so CI just proves the paths run.
int kSamples = 40000;

struct JsonResult {
  std::string name;
  double value = 0.0;
  std::string unit;
};

std::vector<JsonResult>& Results() {
  static std::vector<JsonResult> results;
  return results;
}

void Record(const std::string& name, double value, const std::string& unit) {
  std::printf("  %-48s %12.2f %s\n", name.c_str(), value, unit.c_str());
  Results().push_back({name, value, unit});
}

std::string FreshDir() {
  char tmpl[] = "/tmp/hygraph_bench_tiering_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return tmpl;
}

DurableOptions Tiered(size_t cache_budget) {
  DurableOptions options;
  options.sync_wal = false;
  options.tiering.enabled = true;
  options.tiering.cache_budget_bytes = cache_budget;
  return options;
}

std::unique_ptr<storage::PolyglotStore> Backend() {
  // ~256 samples per chunk: kSamples yields ~156 chunks, enough that the
  // cache-budget sweep has real residency ratios to vary.
  ts::HypertableOptions o;
  o.chunk_duration = 256;
  return std::make_unique<storage::PolyglotStore>(o);
}

std::unique_ptr<DurableStore> OpenStore(const std::string& dir,
                                        size_t cache_budget) {
  auto store = std::make_unique<DurableStore>(Env::Default(), dir, Backend(),
                                              Tiered(cache_budget));
  if (!store->Open().ok()) std::exit(1);
  return store;
}

/// Ingests kSamples appends; `cold_fraction` of them are checkpointed into
/// the cold tier, the rest stay hot (snapshot + WAL tail).
void Ingest(const std::string& dir, double cold_fraction) {
  auto store = OpenStore(dir, 64u << 20);
  auto v = store->AddVertex({"Sensor"}, {});
  if (!v.ok()) std::exit(1);
  const int boundary = static_cast<int>(kSamples * cold_fraction);
  for (int i = 0; i < boundary; ++i) {
    (void)store->AppendVertexSample(*v, "temp", i, 0.25 * i);
  }
  if (boundary > 0 && !store->Checkpoint().ok()) std::exit(1);
  for (int i = boundary; i < kSamples; ++i) {
    (void)store->AppendVertexSample(*v, "temp", i, 0.25 * i);
  }
  (void)store->SyncWal();
}

double SweepMs(DurableStore* store) {
  return TimeMs([&] {
    auto range = store->VertexSeriesRange(0, "temp", Interval::All());
    if (!range.ok() || range->samples().size() < size_t(kSamples) / 2) {
      std::fprintf(stderr, "scan lost samples\n");
      std::exit(1);
    }
  });
}

void BenchScanVsCacheBudget() {
  PrintHeader("Cold scan latency vs chunk-cache budget");
  const std::string dir = FreshDir();
  Ingest(dir + "/store", /*cold_fraction=*/1.0);
  struct Point {
    const char* label;
    size_t budget;
  };
  // All-resident, roughly half the encoded cold bytes, and a budget
  // smaller than one chunk (every pin is a miss).
  for (const Point p : {Point{"resident", 64u << 20},
                        Point{"partial", 24u << 10}, Point{"thrash", 64}}) {
    auto store = OpenStore(dir + "/store", p.budget);
    const double cold_ms = SweepMs(store.get());
    const double warm_ms = SweepMs(store.get());
    const auto stats = store->cold_tier()->cache_stats();
    Record(std::string("scan_cold_") + p.label, cold_ms, "ms");
    Record(std::string("scan_warm_") + p.label, warm_ms, "ms");
    Record(std::string("cache_miss_rate_") + p.label,
           stats.hits + stats.misses == 0
               ? 0.0
               : 100.0 * double(stats.misses) /
                     double(stats.hits + stats.misses),
           "%");
  }
  std::system(("rm -rf " + dir).c_str());
}

void BenchSpillThroughput() {
  PrintHeader("Checkpoint spill throughput");
  const std::string dir = FreshDir();
  auto store = OpenStore(dir + "/store", 64u << 20);
  auto v = store->AddVertex({"Sensor"}, {});
  if (!v.ok()) std::exit(1);
  for (int i = 0; i < kSamples; ++i) {
    (void)store->AppendVertexSample(*v, "temp", i, 0.25 * i);
  }
  const size_t sealed =
      store->inner()->series_hypertable()->MemoryUsage().sealed_samples;
  const double ms = TimeMs([&] {
    if (!store->Checkpoint().ok()) std::exit(1);
  });
  Record("checkpoint_spill_sealed_samples", double(sealed), "samples");
  Record("checkpoint_spill_throughput", sealed / (ms / 1000.0), "samples/s");
  const auto hs = store->inner()->series_hypertable()->stats();
  Record("checkpoint_cold_bytes", double(hs.cold_bytes_spilled), "bytes");
  std::system(("rm -rf " + dir).c_str());
}

void BenchRecoveryVsColdFraction() {
  PrintHeader("Recovery time vs cold fraction (same total history)");
  for (const double fraction : {0.0, 0.5, 1.0}) {
    const std::string dir = FreshDir();
    Ingest(dir + "/store", fraction);
    auto store = std::make_unique<DurableStore>(Env::Default(), dir + "/store",
                                                Backend(), Tiered(64u << 20));
    const double ms = TimeMs([&] {
      if (!store->Open().ok()) std::exit(1);
    });
    const uint64_t adopted = store->recovery().cold_chunks_adopted;
    Record("recover_cold_fraction_" + std::to_string(int(fraction * 100)), ms,
           "ms");
    Record("recover_adopted_chunks_" + std::to_string(int(fraction * 100)),
           double(adopted), "chunks");
    std::system(("rm -rf " + dir).c_str());
  }
}

void WriteJson() {
  FILE* f = std::fopen("BENCH_tiering.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_tiering.json\n");
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"tiering\",\n  \"results\": [\n");
  const auto& results = Results();
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\"}%s\n",
                 results[i].name.c_str(), results[i].value,
                 results[i].unit.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_tiering.json (%zu results)\n", results.size());
}

}  // namespace
}  // namespace hygraph::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") hygraph::bench::kSamples = 4000;
  }
  hygraph::bench::BenchScanVsCacheBudget();
  hygraph::bench::BenchSpillThroughput();
  hygraph::bench::BenchRecoveryVsColdFraction();
  hygraph::bench::WriteJson();
  return 0;
}
